//! §4.1.3 — software-controlled multithreading: a four-instruction miss
//! handler switches between two register-partitioned threads, overlapping
//! their dependent (pointer-chase) misses. With multiple rounds the chains
//! become L2-resident, exposing the switch-policy tradeoff the paper's
//! footnote 4 describes (switch on every miss vs only on secondary misses).
//!
//! ```sh
//! cargo run --release --example multithreading [iters] [stride] [rounds]
//! ```

use informing_memops::core::multithread::{
    evaluate_multithreading_with, MultithreadDemo, SwitchPolicy,
};
use informing_memops::core::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let iters: u64 = std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(400);
    let stride: u64 = std::env::args().nth(2).map(|s| s.parse()).transpose()?.unwrap_or(4096);
    let rounds: u64 = std::env::args().nth(3).map(|s| s.parse()).transpose()?.unwrap_or(1);
    let demo = MultithreadDemo { iters_per_thread: iters, stride, rounds, save_restore: 0 };

    println!(
        "two threads, each chasing a {iters}-node pointer chain (one node per \
         {stride}-byte page), {rounds} round(s)\n"
    );
    for machine in [Machine::default_ooo(), Machine::default_in_order()] {
        println!("[{}]", machine.name());
        for (name, policy) in [
            ("every miss (trap)", SwitchPolicy::EveryMiss),
            ("secondary only (bmissmem)", SwitchPolicy::SecondaryMiss),
        ] {
            let cmp = evaluate_multithreading_with(&demo, &machine, policy)?;
            println!("  serial                      : {:>9} cycles", cmp.serial.cycles);
            println!(
                "  switch on {name:<18}: {:>9} cycles ({} switches), speedup {:.3}x",
                cmp.switching.cycles,
                cmp.switching.informing_traps,
                cmp.speedup()
            );
        }
        println!();
    }
    println!(
        "the handler is 4 instructions (rdmhrr/setmhrr/move/jmhrr): the compiler\n\
         partitioned the register file between the threads, so nothing is saved\n\
         or restored — the paper's proposed optimization."
    );
    Ok(())
}
