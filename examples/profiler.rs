//! §4.1.1 — performance monitoring: exact per-reference miss profiles of a
//! SPEC92-like workload, with both the per-reference-counter tool and the
//! zero-hit-overhead hash-table tool, and the profiling overhead itself.
//!
//! ```sh
//! cargo run --release --example profiler [workload]
//! ```

use informing_memops::core::profile::{profile_misses, profile_misses_hashed};
use informing_memops::core::Machine;
use informing_memops::workloads::{by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "compress".to_string());
    let spec = by_name(&name).ok_or_else(|| format!("unknown workload `{name}`"))?;
    let program = (spec.build)(Scale::Small);
    let machine = Machine::default_ooo();

    // Baseline for overhead measurement.
    let base = machine.run(&program)?;

    println!("profiling `{name}` ({}) on the out-of-order machine\n", spec.behaviour);
    let prof = profile_misses(&program, &machine)?;
    println!("hottest static references (exact per-reference counters):");
    for site in prof.hottest().into_iter().take(8) {
        if site.misses == 0 {
            break;
        }
        println!("  pc {:#08x}  {:>9} misses", site.old_pc, site.misses);
    }
    println!(
        "\ntotal attributed misses : {} (machine counted {})",
        prof.total_misses(),
        prof.run.mem.l1d_misses
    );
    println!(
        "profiling overhead      : {:.1}% more cycles than the uninstrumented run",
        (prof.run.cycles as f64 / base.cycles as f64 - 1.0) * 100.0
    );

    let hashed = profile_misses_hashed(&program, &machine, 4096)?;
    println!(
        "\nhash-table tool (single ~10-instruction handler, zero hit overhead):\n\
         \x20 overhead {:.1}%, {} bucket collisions",
        (hashed.profile.run.cycles as f64 / base.cycles as f64 - 1.0) * 100.0,
        hashed.collisions()
    );
    Ok(())
}
