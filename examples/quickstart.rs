//! Quickstart: write a kernel in the IRIS assembler, rewrite it with an
//! informing miss handler, and run it on both cycle-level machines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use informing_memops::core::instrument::{instrument, HandlerBody, HandlerKind, Scheme};
use informing_memops::core::Machine;
use informing_memops::isa::{Asm, Cond, Reg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small kernel: sum an array that streams through the cache.
    let mut a = Asm::new();
    let (ptr, end, v, sum) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    a.li(ptr, 0x10_0000);
    a.li(end, 0x10_0000 + 2048 * 8);
    let top = a.here("top");
    a.load(v, ptr, 0);
    a.add(sum, sum, v);
    a.addi(ptr, ptr, 8);
    a.branch(Cond::Lt, ptr, end, top);
    a.halt();
    let plain = a.assemble()?;

    // 2. Make every load informing, with a single one-instruction handler
    //    that counts misses in r27 (zero overhead on hits: the MHAR is
    //    loaded once at program entry).
    let scheme = Scheme::Trap { handlers: HandlerKind::Single, body: HandlerBody::CountInRegister };
    let inst = instrument(&plain, &scheme)?;
    println!(
        "instrumented: +{} inline instruction(s), {} handler instruction(s)\n",
        inst.inline_overhead, inst.handler_instructions
    );

    // 3. Run on both machines of the paper (Table 1 configurations).
    for machine in [Machine::default_ooo(), Machine::default_in_order()] {
        let (res, state) = machine.run_full(&inst.program)?;
        println!("[{}]", machine.name());
        println!("  cycles            : {}", res.cycles);
        println!("  instructions      : {}", res.instructions);
        println!("  IPC               : {:.2}", res.ipc());
        println!("  informing traps   : {}", res.informing_traps);
        println!("  misses counted(r27): {}", state.int(Reg::int(27)));
        println!(
            "  L1 miss rate      : {:.1}% ({} of {})",
            res.mem.l1d_miss_rate() * 100.0,
            res.mem.l1d_misses,
            res.mem.l1d_accesses
        );
        let (busy, cache, other) = res.slots.fractions();
        println!(
            "  graduation slots  : {:.0}% busy, {:.0}% cache stall, {:.0}% other\n",
            busy * 100.0,
            cache * 100.0,
            other * 100.0
        );
        assert_eq!(state.int(Reg::int(27)), res.informing_traps);
    }
    Ok(())
}
