//! §4.1.2 — adapting prefetching on the fly with code versioning: the
//! program carries a plain and a prefetching version of its loop, counts its
//! own misses through an informing handler, and selects the version per
//! chunk (probing with plain chunks so successful prefetching does not mask
//! its own selection signal).
//!
//! ```sh
//! cargo run --release --example adaptive
//! ```

use informing_memops::core::adaptive::{evaluate_adaptive, AdaptiveDemo};
use informing_memops::core::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let demo = AdaptiveDemo::default();
    println!(
        "phase-changing workload: {} streaming chunks, then {} cache-resident chunks\n",
        demo.stream_chunks, demo.hot_chunks
    );
    for machine in [Machine::default_ooo(), Machine::default_in_order()] {
        let cmp = evaluate_adaptive(&demo, &machine)?;
        println!("[{}]", machine.name());
        println!("  always plain    : {:>8} cycles", cmp.plain.cycles);
        println!("  always prefetch : {:>8} cycles", cmp.prefetch.cycles);
        println!(
            "  adaptive        : {:>8} cycles ({:+.1}% vs best static)",
            cmp.adaptive.cycles,
            (cmp.adaptive.cycles as f64 / cmp.best_static() as f64 - 1.0) * 100.0
        );
        println!();
    }
    println!(
        "the adaptive program pays a small probing cost but never commits to the\n\
         wrong version for a whole phase — the paper's \"select which version to\n\
         run\" option, driven entirely by the informing miss counter."
    );
    Ok(())
}
