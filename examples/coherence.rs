//! §4.3 — cache coherence with fine-grained access control: compare the
//! three software schemes (reference checking, ECC faults, informing memory
//! operations) on one parallel application.
//!
//! ```sh
//! cargo run --release --example coherence [app] [procs]
//! ```

use informing_memops::coherence::{simulate, MachineParams, Scheme};
use informing_memops::util::table::Table;
use informing_memops::workloads::parallel::{all_apps, TraceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "migratory".to_string());
    let procs: usize = std::env::args().nth(2).map(|s| s.parse()).transpose()?.unwrap_or(16);

    let cfg = TraceConfig { procs, ops_per_proc: 12_000, seed: 0x1996 };
    let app = all_apps(&cfg).into_iter().find(|a| a.name == name).ok_or_else(|| {
        format!(
            "unknown app `{name}` (stencil, migratory, producer_consumer, reduction, readmostly)"
        )
    })?;
    let params = MachineParams::table2();

    println!(
        "`{}` on {} processors (write fraction {:.0}%, {} refs/proc)\n",
        app.name,
        procs,
        app.write_fraction() * 100.0,
        cfg.ops_per_proc
    );

    let mut results = Vec::new();
    for scheme in Scheme::all() {
        results.push(simulate(&app, scheme, &params)?);
    }
    let base = results[2].total_cycles as f64; // informing

    let mut t = Table::new([
        "scheme", "cycles", "per ref", "lookups", "faults", "actions", "invals", "norm",
    ]);
    for r in &results {
        t.row([
            r.scheme.name().to_string(),
            r.total_cycles.to_string(),
            format!("{:.1}", r.cycles_per_op()),
            r.lookups.to_string(),
            r.faults.to_string(),
            r.actions.to_string(),
            r.invalidations.to_string(),
            format!("{:.3}", r.total_cycles as f64 / base),
        ]);
    }
    print!("{}", t.render());
    println!("\nnormalized to the informing scheme (= 1.000)");
    Ok(())
}
