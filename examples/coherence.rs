//! §4.3 — cache coherence with fine-grained access control: compare the
//! three software schemes (reference checking, ECC faults, informing memory
//! operations) on one parallel application.
//!
//! ```sh
//! cargo run --release --example coherence [app] [procs]
//! ```

use informing_memops::coherence::{simulate, MachineParams, Scheme};
use informing_memops::workloads::parallel::{all_apps, TraceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "migratory".to_string());
    let procs: usize = std::env::args().nth(2).map(|s| s.parse()).transpose()?.unwrap_or(16);

    let cfg = TraceConfig { procs, ops_per_proc: 12_000, seed: 0x1996 };
    let app = all_apps(&cfg).into_iter().find(|a| a.name == name).ok_or_else(|| {
        format!(
            "unknown app `{name}` (stencil, migratory, producer_consumer, reduction, readmostly)"
        )
    })?;
    let params = MachineParams::table2();

    println!(
        "`{}` on {} processors (write fraction {:.0}%, {} refs/proc)\n",
        app.name,
        procs,
        app.write_fraction() * 100.0,
        cfg.ops_per_proc
    );

    let mut results = Vec::new();
    for scheme in Scheme::all() {
        let r = simulate(&app, scheme, &params)?;
        println!("[{}]", scheme.name());
        println!(
            "  completion    : {:>10} cycles ({:.1} per reference)",
            r.total_cycles,
            r.cycles_per_op()
        );
        println!("  lookups       : {:>10}", r.lookups);
        println!("  faults        : {:>10}", r.faults);
        println!("  protocol acts : {:>10}", r.actions);
        println!("  invalidations : {:>10}\n", r.invalidations);
        results.push(r);
    }
    let base = results[2].total_cycles as f64; // informing
    println!("normalized (informing = 1.000):");
    for r in &results {
        println!("  {:10} {:.3}", r.scheme.name(), r.total_cycles as f64 / base);
    }
    Ok(())
}
