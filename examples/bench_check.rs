//! Baseline-schema check: every `BENCH_*.json` at the repository root must
//! parse with the in-tree JSON parser and carry the bench envelope (a
//! `bench` name plus a payload). Corrupt or truncated baselines fail loudly
//! here rather than silently during a later comparison.
//!
//! ```sh
//! cargo run --release --example bench_check
//! ```

use std::error::Error;
use std::fs;

use informing_memops::util::json;

fn main() -> Result<(), Box<dyn Error>> {
    let root = env!("CARGO_MANIFEST_DIR");
    let mut names: Vec<_> = fs::read_dir(root)?
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    if names.is_empty() {
        return Err("no BENCH_*.json baselines found; run `cargo bench` first".into());
    }

    let mut bad = 0;
    for name in &names {
        let path = format!("{root}/{name}");
        let text = fs::read_to_string(&path)?;
        match json::parse(&text) {
            Ok(doc) if doc.get("bench").is_some() => {
                if name == "BENCH_obs_overhead.json" {
                    if let Err(e) = check_obs_overhead(&doc) {
                        eprintln!("BAD  {name}: {e}");
                        bad += 1;
                        continue;
                    }
                }
                println!("ok   {name}");
            }
            Ok(_) => {
                eprintln!("BAD  {name}: parses but lacks the `bench` envelope");
                bad += 1;
            }
            Err(e) => {
                eprintln!("BAD  {name}: {e}");
                bad += 1;
            }
        }
    }
    if bad > 0 {
        return Err(format!("{bad} of {} baselines are corrupt", names.len()).into());
    }
    println!("{} baselines parse and carry the bench envelope", names.len());
    Ok(())
}

/// The observability baseline carries proof obligations, not just timings:
/// the recorder must have been bit-identical to the unobserved runs.
fn check_obs_overhead(doc: &json::Json) -> Result<(), String> {
    let data = doc.get("data").ok_or("missing `data` payload")?;
    for flag in ["disabled_identical", "full_identical", "coherence_identical"] {
        match data.get(flag) {
            Some(json::Json::Bool(true)) => {}
            Some(json::Json::Bool(false)) => {
                return Err(format!("`{flag}` is false: the recorder perturbed a run"));
            }
            _ => return Err(format!("missing boolean `{flag}`")),
        }
    }
    let overheads = match data.get("overheads") {
        Some(json::Json::Arr(items)) if !items.is_empty() => items,
        _ => return Err("missing non-empty `overheads` array".to_string()),
    };
    for o in overheads {
        if o.get("machine").is_none() || o.get("disabled_over_plain").is_none() {
            return Err("overhead entry lacks machine/ratio fields".to_string());
        }
    }
    Ok(())
}
