//! Baseline-schema check: every `BENCH_*.json` at the repository root must
//! parse with the in-tree JSON parser and satisfy its declarative schema
//! from [`imo_bench::gate::SCHEMAS`] — the same rule table `ci_gate` runs
//! before diffing. Corrupt, truncated, or shape-drifted baselines fail
//! loudly here rather than silently during a later comparison.
//!
//! ```sh
//! cargo run --release --example bench_check
//! ```

use std::error::Error;
use std::fs;

use imo_bench::gate;
use informing_memops::util::json;

fn main() -> Result<(), Box<dyn Error>> {
    let root = env!("CARGO_MANIFEST_DIR");
    let mut names: Vec<_> = fs::read_dir(root)?
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    if names.is_empty() {
        return Err("no BENCH_*.json baselines found; run `cargo bench` first".into());
    }

    let mut bad = 0;
    let mut seen = 0;
    for name in &names {
        let bench = name.trim_start_matches("BENCH_").trim_end_matches(".json");
        let text = fs::read_to_string(format!("{root}/{name}"))?;
        let doc = match json::parse(&text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("BAD  {name}: {e}");
                bad += 1;
                continue;
            }
        };
        let Some(schema) = gate::schema_for(bench) else {
            eprintln!("BAD  {name}: no schema registered — add one to imo_bench::gate::SCHEMAS");
            bad += 1;
            continue;
        };
        seen += 1;
        let errs = gate::validate(&doc, schema);
        if errs.is_empty() {
            println!("ok   {name} ({} rules)", schema.rules.len());
        } else {
            for e in &errs {
                eprintln!("BAD  {name}: {e}");
            }
            bad += 1;
        }
    }
    if bad > 0 {
        return Err(format!("{bad} of {} baselines are corrupt or off-schema", names.len()).into());
    }
    if seen < gate::SCHEMAS.len() {
        return Err(format!(
            "only {seen} of {} schema'd baselines exist; run `cargo bench -p imo-bench`",
            gate::SCHEMAS.len()
        )
        .into());
    }
    println!("{} baselines parse and satisfy their declarative schemas", names.len());
    Ok(())
}
