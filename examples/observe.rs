//! Observability CLI: run one workload under the event recorder and emit
//! the CPI stack, counters, latency histograms, and a Perfetto-loadable
//! Chrome trace.
//!
//! ```sh
//! cargo run --release --example observe [workload] [machine] [mask]
//! #   workload : any kernel name from the registry (default: compress)
//! #   machine  : ooo | in-order                     (default: ooo)
//! #   mask     : all | none | comma list, e.g. cache,trap (default: all)
//! ```
//!
//! The trace is written to `target/observe_<workload>_<machine>.json`;
//! load it at <https://ui.perfetto.dev> (or chrome://tracing) to see the
//! per-category event lanes.

use informing_memops::core::Machine;
use informing_memops::obs::{chrome_trace, flame_summary, CategoryMask, Recorder};
use informing_memops::workloads::spec::{self, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = std::env::args().nth(1).unwrap_or_else(|| "compress".to_string());
    let machine_name = std::env::args().nth(2).unwrap_or_else(|| "ooo".to_string());
    let mask_arg = std::env::args().nth(3).unwrap_or_else(|| "all".to_string());

    let spec = spec::by_name(&workload).ok_or_else(|| {
        let names: Vec<&str> = spec::all().iter().map(|s| s.name).collect();
        format!("unknown workload `{workload}` (try one of: {})", names.join(", "))
    })?;
    let machine = match machine_name.as_str() {
        "ooo" => Machine::default_ooo(),
        "in-order" | "inorder" => Machine::default_in_order(),
        other => return Err(format!("unknown machine `{other}` (ooo | in-order)").into()),
    };
    let mask = CategoryMask::parse(&mask_arg)
        .ok_or_else(|| format!("bad mask `{mask_arg}` (all | none | comma list)"))?;

    let program = (spec.build)(Scale::Test);
    let mut rec = Recorder::new(mask);
    let (res, _) = machine.run_observed(&program, &mut rec)?;

    print!("{}", flame_summary(&rec, &format!("{} on {}", spec.name, machine.name())));
    assert_eq!(rec.cpi.total(), res.cycles, "CPI stack must reconcile exactly with total cycles");

    let path = format!("target/observe_{}_{}.json", spec.name, machine.name());
    std::fs::write(&path, chrome_trace(&rec).pretty())?;
    println!("\nwrote {path} ({} events, {} dropped)", rec.len(), rec.dropped());
    println!("load it at https://ui.perfetto.dev");
    Ok(())
}
