//! "Why did this miss?" — run one workload under the miss-attribution
//! analyzer and print the per-PC hot-miss table: miss classes
//! (compulsory / coherence / capacity / conflict), reuse-distance
//! histograms, and the detected access pattern per PC.
//!
//! ```sh
//! cargo run --release --example why_miss [workload] [machine]
//! #   workload : any kernel name from the registry (default: compress)
//! #   machine  : ooo | in-order                    (default: ooo)
//! ```
//!
//! A Perfetto-track twin of the profile is written to
//! `target/why_miss_<workload>_<machine>.json`; the versioned JSON
//! profile goes to `target/why_miss_<workload>_<machine>.profile.json`.

use informing_memops::core::Machine;
use informing_memops::obs::Recorder;
use informing_memops::workloads::spec::{self, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = std::env::args().nth(1).unwrap_or_else(|| "compress".to_string());
    let machine_name = std::env::args().nth(2).unwrap_or_else(|| "ooo".to_string());

    let spec = spec::by_name(&workload).ok_or_else(|| {
        let names: Vec<&str> = spec::all().iter().map(|s| s.name).collect();
        format!("unknown workload `{workload}` (try one of: {})", names.join(", "))
    })?;
    let machine = match machine_name.as_str() {
        "ooo" => Machine::default_ooo(),
        "in-order" | "inorder" => Machine::default_in_order(),
        other => return Err(format!("unknown machine `{other}` (ooo | in-order)").into()),
    };

    // The analyzer taps the event stream before the category mask, so a
    // disabled recorder still attributes every demand miss with no ring
    // buffer cost.
    let mut rec = Recorder::disabled();
    rec.enable_attribution(machine.attrib_config());
    let (res, _) = machine.run_observed(&(spec.build)(Scale::Test), &mut rec)?;

    let attrib = rec.attribution().expect("attribution was enabled");
    assert!(
        attrib.reconciles_cpu(res.mem.l1d_misses, res.mem.l2_misses),
        "classified misses must reconcile exactly with the cache counters"
    );
    let profile = attrib.profile(&format!("{} on {}", spec.name, machine.name()));
    print!("{}", profile.table().render());
    println!(
        "\n{} demand refs, {} misses reconciled exactly against the cache counters",
        attrib.cpu_demand_refs(),
        attrib.cpu_classified_total(),
    );

    let base = format!("target/why_miss_{}_{}", spec.name, machine.name());
    std::fs::write(format!("{base}.profile.json"), profile.to_json().pretty())?;
    std::fs::write(format!("{base}.json"), profile.chrome_trace())?;
    println!("wrote {base}.profile.json (versioned profile, v{})", profile.version);
    println!("wrote {base}.json — load at https://ui.perfetto.dev");
    Ok(())
}
