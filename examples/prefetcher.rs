//! §4.1.2 — adaptive software prefetching: the miss handler prefetches the
//! next cache lines after the missing address, so prefetch overhead is paid
//! only when the program actually misses.
//!
//! ```sh
//! cargo run --release --example prefetcher [workload] [lines]
//! ```

use informing_memops::core::prefetch::evaluate_prefetching;
use informing_memops::core::Machine;
use informing_memops::workloads::{by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "alvinn".to_string());
    let lines: u32 = std::env::args().nth(2).map(|s| s.parse()).transpose()?.unwrap_or(2);
    let spec = by_name(&name).ok_or_else(|| format!("unknown workload `{name}`"))?;
    let program = (spec.build)(Scale::Small);

    println!("in-handler prefetching of {lines} line(s) on `{name}` ({})\n", spec.behaviour);
    for machine in [Machine::default_ooo(), Machine::default_in_order()] {
        let cmp = evaluate_prefetching(&program, &machine, lines)?;
        println!("[{}]", machine.name());
        println!(
            "  baseline   : {:>9} cycles, {:>7} L1 misses",
            cmp.baseline.cycles, cmp.baseline.mem.l1d_misses
        );
        println!(
            "  prefetched : {:>9} cycles, {:>7} L1 misses ({} traps ran the handler)",
            cmp.prefetched.cycles, cmp.prefetched.mem.l1d_misses, cmp.prefetched.informing_traps
        );
        println!(
            "  speedup    : {:.3}x, miss reduction {:.1}%\n",
            cmp.speedup(),
            cmp.miss_reduction() * 100.0
        );
    }
    println!(
        "(streaming workloads like alvinn/ear benefit; pointer chasers like xlisp are\n\
         actively hurt — useless prefetches burn memory bandwidth ahead of the demand\n\
         misses. That is the paper's point about deploying prefetch handlers\n\
         selectively, which per-reference handlers make possible.)"
    );
    Ok(())
}
