//! Thin entry point; the real harness lives in `imo_bench::targets::substrate`.

fn main() {
    imo_bench::targets::substrate::run();
}
