//! Criterion microbenches of the simulator substrate itself: cache probes,
//! functional execution, instrumentation rewriting, and the two cycle-level
//! models end-to-end on a small kernel. These track the *simulator's* speed
//! (host time), not simulated time.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use imo_core::instrument::{instrument, HandlerBody, HandlerKind, Scheme};
use imo_cpu::{inorder, ooo, InOrderConfig, OooConfig, RunLimits};
use imo_isa::exec::{Executor, NeverMiss};
use imo_mem::{Cache, CacheConfig, HierarchyConfig, MemoryHierarchy};
use imo_workloads::{by_name, Scale};

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/probe_hit", |b| {
        let mut cache = Cache::new(CacheConfig::new(32 * 1024, 2, 32));
        cache.access(0x1000, false);
        b.iter(|| black_box(cache.access(black_box(0x1000), false)));
    });
    c.bench_function("cache/probe_streaming_miss", |b| {
        let mut cache = Cache::new(CacheConfig::new(32 * 1024, 2, 32));
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(32);
            black_box(cache.access(black_box(addr), false))
        });
    });
    c.bench_function("hierarchy/probe_and_schedule", |b| {
        let mut h = MemoryHierarchy::new(HierarchyConfig::out_of_order());
        let mut addr = 0u64;
        let mut cycle = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(8);
            cycle += 1;
            let p = h.probe_data(black_box(addr), false);
            black_box(h.schedule_data(p, cycle))
        });
    });
}

fn bench_exec(c: &mut Criterion) {
    let spec = by_name("espresso").expect("espresso exists");
    let program = (spec.build)(Scale::Test);
    c.bench_function("exec/functional_espresso_test", |b| {
        b.iter(|| {
            let mut e = Executor::new(&program);
            e.run(&mut NeverMiss, 50_000_000).expect("runs")
        });
    });
}

fn bench_instrument(c: &mut Criterion) {
    let spec = by_name("compress").expect("compress exists");
    let program = (spec.build)(Scale::Test);
    c.bench_function("instrument/trap_unique_compress", |b| {
        let scheme = Scheme::Trap {
            handlers: HandlerKind::PerReference,
            body: HandlerBody::Generic { len: 10 },
        };
        b.iter(|| instrument(black_box(&program), &scheme).expect("instruments"));
    });
}

fn bench_models(c: &mut Criterion) {
    let spec = by_name("doduc").expect("doduc exists");
    let program = (spec.build)(Scale::Test);
    let mut g = c.benchmark_group("models");
    g.sample_size(10);
    g.bench_function("ooo_doduc_test", |b| {
        b.iter(|| ooo::simulate(&program, &OooConfig::paper(), RunLimits::default()).expect("runs"));
    });
    g.bench_function("inorder_doduc_test", |b| {
        b.iter(|| {
            inorder::simulate(&program, &InOrderConfig::paper(), RunLimits::default())
                .expect("runs")
        });
    });
    g.finish();
}

criterion_group!(benches, bench_cache, bench_exec, bench_instrument, bench_models);
criterion_main!(benches);
