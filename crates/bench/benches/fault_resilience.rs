//! Thin entry point; the real harness lives in `imo_bench::targets::fault_resilience`.

fn main() {
    imo_bench::targets::fault_resilience::run();
}
