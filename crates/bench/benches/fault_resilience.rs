//! Fault-resilience sweep: the §4.3 coherence protocol on an *unreliable*
//! interconnect, across message-loss rates and retry/backoff policies.
//!
//! Two things are measured:
//!
//! 1. **Zero-fault identity** — a run driven by an all-zero `FaultPlan` must
//!    be bit-identical to the fault-free baseline for every scheme (the fault
//!    hooks may cost nothing when no fault fires). The bench aborts if not.
//! 2. **Recovery cost** — completion-time slowdown vs the fault-free run as
//!    the drop rate rises, under three backoff policies (aggressive /
//!    default / conservative), plus the retry and timeout counters.

use imo_bench::{emit, Table};
use imo_coherence::{simulate_baseline, simulate_faulty, BackoffPolicy, MachineParams, Scheme};
use imo_faults::{FaultConfig, FaultPlan};
use imo_util::json::Json;
use imo_workloads::parallel::{all_apps, migratory, TraceConfig};

const DROP_RATES: [f64; 5] = [0.0, 0.02, 0.05, 0.10, 0.20];
const FAULT_SEED: u64 = 0x1996;

fn policies() -> [(&'static str, BackoffPolicy); 3] {
    let default = MachineParams::table2().backoff;
    let aggressive = BackoffPolicy { base: 100, multiplier: 2, cap: 1_000, max_retries: 32 };
    let conservative = BackoffPolicy { base: 1_000, multiplier: 4, cap: 32_000, max_retries: 16 };
    [("aggressive", aggressive), ("default", default), ("conservative", conservative)]
}

fn main() {
    println!("FAULT RESILIENCE. Coherence protocol recovery on a lossy interconnect.");
    println!("(migratory app, Table 2 machine; slowdown vs the fault-free run)\n");

    let cfg = TraceConfig { procs: 8, ops_per_proc: 8_000, seed: 0x1996 };
    let params = MachineParams::table2();

    // 1. Zero-fault identity across every app and scheme.
    let mut identical = true;
    for app in all_apps(&cfg) {
        for scheme in Scheme::all() {
            let base = simulate_baseline(&app, scheme, &params);
            let faulty = simulate_faulty(&app, scheme, &params, &FaultPlan::none())
                .expect("zero-fault run completes");
            if base != faulty {
                identical = false;
                eprintln!(
                    "MISMATCH: {}/{} differs under the zero-fault plan",
                    app.name,
                    scheme.name()
                );
            }
        }
    }
    assert!(identical, "zero-fault runs must be bit-identical to the baseline");
    println!("zero-fault identity: all apps x schemes bit-identical to baseline\n");

    // 2. Drop-rate x backoff-policy sweep.
    let trace = migratory(&cfg);
    let base = simulate_baseline(&trace, Scheme::Informing, &params);
    let mut t =
        Table::new(["policy", "drop rate", "slowdown", "retries", "timeouts", "backoff cycles"]);
    let mut rows = Vec::new();
    for (name, backoff) in policies() {
        let mut p = params;
        p.backoff = backoff;
        for rate in DROP_RATES {
            let mut fc = FaultConfig::none(FAULT_SEED);
            fc.drop_rate = rate;
            let r = simulate_faulty(&trace, Scheme::Informing, &p, &FaultPlan::new(fc))
                .expect("sweep rates recover via retry");
            let slowdown = r.total_cycles as f64 / base.total_cycles as f64;
            t.row([
                name.to_string(),
                format!("{rate:.2}"),
                format!("{slowdown:.3}"),
                r.retries.to_string(),
                r.timeouts.to_string(),
                format!("{}..{}", backoff.delay(0), backoff.cap),
            ]);
            rows.push(Json::obj([
                ("policy", Json::from(name)),
                ("base", Json::from(backoff.base)),
                ("multiplier", Json::from(backoff.multiplier)),
                ("cap", Json::from(backoff.cap)),
                ("drop_rate", Json::from(rate)),
                ("total_cycles", Json::from(r.total_cycles)),
                ("slowdown", Json::from(slowdown)),
                ("retries", Json::from(r.retries)),
                ("timeouts", Json::from(r.timeouts)),
                ("dropped_msgs", Json::from(r.dropped_msgs)),
                ("nacks", Json::from(r.nacks)),
            ]));
        }
    }
    print!("{}", t.render());

    emit(
        "fault_resilience",
        Json::obj([
            ("zero_fault_identical", Json::Bool(identical)),
            ("baseline_cycles", Json::from(base.total_cycles)),
            ("sweep", Json::Arr(rows)),
        ]),
    );
}
