//! Thin entry point; the real harness lives in `imo_bench::targets::ablation_checkpoints`.

fn main() {
    imo_bench::targets::ablation_checkpoints::run();
}
