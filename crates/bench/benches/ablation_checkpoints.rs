//! Regenerates the **§3.2 shadow-state ablation**: under the
//! mispredicted-branch treatment, every informing memory operation holds a
//! rename checkpoint while its cache outcome is unresolved. The R10000
//! provides 3; the paper estimates informing-as-branch needs ~3× as much
//! shadow state. This bench sweeps the checkpoint budget on a dense
//! informing workload.

use imo_bench::{emit, Table};
use imo_core::instrument::{instrument, HandlerBody, HandlerKind, Scheme};
use imo_cpu::{ooo, OooConfig, RunLimits};
use imo_util::json::Json;
use imo_workloads::{by_name, Scale};

fn main() {
    println!("§3.2 ablation: rename-checkpoint budget under informing-as-branch.\n");
    let spec = by_name("alvinn").expect("alvinn exists"); // dense, mostly-hitting loads
    let program = (spec.build)(Scale::Small);
    let scheme =
        Scheme::Trap { handlers: HandlerKind::Single, body: HandlerBody::Generic { len: 1 } };
    let inst = instrument(&program, &scheme).expect("instruments");

    let cycles: Vec<(u32, u64)> = [1u32, 2, 3, 6, 12]
        .iter()
        .map(|&c| {
            let mut cfg = OooConfig::paper();
            cfg.max_checkpoints = c;
            let r = ooo::simulate(&inst.program, &cfg, RunLimits::default()).expect("runs");
            (c, r.cycles)
        })
        .collect();
    let base12 = cycles.last().unwrap().1 as f64;
    let mut t = Table::new(["checkpoints", "cycles", "slowdown vs 12"]);
    for (c, cy) in &cycles {
        t.row([c.to_string(), cy.to_string(), format!("{:.3}x", *cy as f64 / base12)]);
    }
    print!("{}", t.render());
    println!(
        "\nexpected: the R10000's 3 checkpoints throttle dispatch when every reference\n\
         is a potential branch; ~3x the budget recovers the performance (§3.2)."
    );
    emit(
        "ablation_checkpoints",
        Json::arr(cycles.iter().map(|(c, cy)| {
            Json::obj([
                ("checkpoints", Json::from(u64::from(*c))),
                ("cycles", Json::from(*cy)),
                ("slowdown_vs_12", Json::from(*cy as f64 / base12)),
            ])
        })),
    );
}
