//! Regenerates the **§4.2.2 branch-vs-exception** comparison: on the
//! out-of-order machine the informing trap can be taken as soon as the miss
//! is detected (mispredicted-branch treatment) or postponed until the
//! operation reaches the head of the reorder buffer (exception treatment).
//! The paper measured the exception treatment 9 % / 7 % slower on `compress`
//! with 1- / 10-instruction handlers.

use imo_bench::emit;
use imo_core::experiment::{run_experiment, Variant};
use imo_core::instrument::{HandlerBody, HandlerKind, Scheme};
use imo_core::Machine;
use imo_cpu::{OooConfig, RunLimits, TrapModel};
use imo_util::json::Json;
use imo_workloads::{by_name, Scale};

fn main() {
    println!(
        "§4.2.2: informing trap handled as mispredicted branch vs exception (compress, ooo).\n"
    );
    let spec = by_name("compress").expect("compress exists");
    let program = (spec.build)(Scale::Small);
    let mut json_rows = Vec::new();

    for len in [1u32, 10] {
        let variants = [
            Variant { label: "N", scheme: Scheme::None },
            Variant {
                label: "S",
                scheme: Scheme::Trap {
                    handlers: HandlerKind::Single,
                    body: HandlerBody::Generic { len },
                },
            },
        ];
        let mut cycles = Vec::new();
        for trap_model in [TrapModel::Branch, TrapModel::Exception] {
            let mut cfg = OooConfig::paper();
            cfg.trap_model = trap_model;
            let res = run_experiment(
                "compress",
                &program,
                &Machine::OutOfOrder(cfg),
                &variants,
                RunLimits::default(),
            )
            .expect("experiment runs");
            let s = res.raw.iter().find(|(l, _)| *l == "S").expect("S ran").1;
            let norm = res.bars.iter().find(|b| b.label == "S").unwrap().total;
            println!(
                "{len:>3}-instr handler, {trap_model:?}: {} cycles (norm {:.3})",
                s.cycles, norm
            );
            json_rows.push(Json::obj([
                ("handler_len", Json::from(u64::from(len))),
                ("trap_model", Json::Str(format!("{trap_model:?}"))),
                ("cycles", Json::from(s.cycles)),
                ("norm_time", Json::from(norm)),
            ]));
            cycles.push(s.cycles);
        }
        let slowdown = cycles[1] as f64 / cycles[0] as f64 - 1.0;
        println!(
            "  exception vs branch: +{:.1}% (paper: +{}%)\n",
            slowdown * 100.0,
            if len == 1 { 9 } else { 7 }
        );
    }
    emit("branch_vs_exception", Json::arr(json_rows));
}
