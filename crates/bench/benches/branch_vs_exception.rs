//! Thin entry point; the real harness lives in `imo_bench::targets::branch_vs_exception`.

fn main() {
    imo_bench::targets::branch_vs_exception::run();
}
