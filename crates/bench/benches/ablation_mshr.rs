//! Regenerates the **§3.3 ablation**: MSHR lifetime extension. A squashed
//! speculative informing load must not silently install primary-cache state
//! (it would let a coherence access check be bypassed); the extended-MSHR
//! mechanism invalidates the line on squash, and the data usually remains in
//! L2 — an effective L2 prefetch.
//!
//! This drives the MSHR machinery directly with a synthetic speculation
//! trace (the cycle-level models fetch along the correct path, so wrong-path
//! loads are exercised here, at the component level).

use imo_bench::{emit, Table};
use imo_mem::{Cache, CacheConfig, HierarchyConfig, MemoryHierarchy, MshrFile, MshrMode};
use imo_util::json::Json;

struct Outcome {
    silent_installs: u64,
    invalidations: u64,
    l2_prefetches: u64,
}

/// Replays N speculative informing loads, of which every third is squashed,
/// under the given MSHR mode.
fn replay(mode: MshrMode, n: u64) -> Outcome {
    let mut l1 = Cache::new(CacheConfig::new(32 * 1024, 2, 32));
    let mut hier = MemoryHierarchy::new(HierarchyConfig::out_of_order());
    let mut mshrs = MshrFile::new(8, mode);
    let mut out = Outcome { silent_installs: 0, invalidations: 0, l2_prefetches: 0 };

    for i in 0..n {
        let addr = 0x10_0000 + i * 4096; // every load cold-misses
        let _ = hier.probe_data(addr, false); // fills L1+L2 state
        l1.access(addr, false);
        let id = mshrs.allocate(hier.config().l1d.line_of(addr)).expect("mshr free");
        mshrs.note_fill(id);
        let squashed = i % 3 == 2;
        if squashed {
            if mshrs.squash(id, &mut l1).is_some() {
                out.invalidations += 1;
                hier.invalidate_l1d(addr);
            }
            if l1.contains(addr) {
                out.silent_installs += 1;
            }
            if hier.l2_contains(addr) {
                out.l2_prefetches += 1;
            }
        } else {
            mshrs.graduate(id);
        }
        mshrs.reap();
    }
    out
}

fn main() {
    println!("§3.3 ablation: MSHR lifetime extension for squashed speculative informing loads.\n");
    let n = 3000;
    let mut t = Table::new([
        "MSHR mode",
        "squashed loads",
        "silent L1 installs",
        "squash invalidations",
        "lines left in L2 (prefetch effect)",
    ]);
    let mut json_rows = Vec::new();
    for (name, mode) in
        [("standard", MshrMode::Standard), ("extended lifetime", MshrMode::ExtendedLifetime)]
    {
        let o = replay(mode, n);
        t.row([
            name.to_string(),
            (n / 3).to_string(),
            o.silent_installs.to_string(),
            o.invalidations.to_string(),
            o.l2_prefetches.to_string(),
        ]);
        json_rows.push(Json::obj([
            ("mode", Json::from(name)),
            ("squashed_loads", Json::from(n / 3)),
            ("silent_l1_installs", Json::from(o.silent_installs)),
            ("squash_invalidations", Json::from(o.invalidations)),
            ("l2_prefetches", Json::from(o.l2_prefetches)),
        ]));
    }
    print!("{}", t.render());
    println!(
        "\nexpected: the standard mode leaves every squashed load's line in L1 (unsafe for\n\
         access control); the extended mode invalidates all of them while the data stays\n\
         in L2, so the squashed load acted as an L2 prefetch."
    );
    emit("ablation_mshr", Json::arr(json_rows));
}
