//! Thin entry point; the real harness lives in `imo_bench::targets::ablation_mshr`.

fn main() {
    imo_bench::targets::ablation_mshr::run();
}
