//! Thin entry point; the real harness lives in `imo_bench::targets::handler100`.

fn main() {
    imo_bench::targets::handler100::run();
}
