//! Regenerates the **§4.2.2 100-instruction-handler** experiment: with very
//! expensive handlers, miss-heavy applications slow down dramatically
//! (paper: compress ~6×, su2cor ~7×) while low-miss applications barely
//! notice (paper: ora ~2 %). The paper's suggested mitigation — sampling —
//! is measured alongside: the 100-instruction body runs on every 16th miss
//! only.

use imo_bench::{emit, experiments_to_json, fig2_for, fmt_bars};
use imo_core::experiment::{handler100_variants, Variant};
use imo_core::instrument::{HandlerBody, HandlerKind, Scheme};
use imo_workloads::Scale;

fn main() {
    println!("§4.2.2: generic miss handlers of 100 data-dependent instructions.\n");
    let mut variants = handler100_variants();
    variants.push(Variant {
        label: "100/16",
        scheme: Scheme::Trap {
            handlers: HandlerKind::Single,
            body: HandlerBody::SampledGeneric { len: 100, period: 16 },
        },
    });
    let mut summary = Vec::new();
    let mut collected = Vec::new();
    for name in ["compress", "su2cor", "ora"] {
        for res in fig2_for(name, Scale::Small, &variants) {
            println!("{}", fmt_bars(&res));
            let full = res.bars.iter().find(|b| b.label == "100S").expect("100S bar");
            let sampled = res.bars.iter().find(|b| b.label == "100/16").expect("sampled bar");
            summary.push(format!(
                "{name} [{}]: {:.2}x full, {:.2}x sampled 1/16",
                res.machine, full.total, sampled.total
            ));
            collected.push(res);
        }
    }
    println!("== summary (paper: compress ~6x, su2cor ~7x, ora ~1.02x; sampling mitigates) ==");
    for s in summary {
        println!("  {s}");
    }
    emit("handler100", experiments_to_json(&collected));
}
