//! Thin entry point; the real harness lives in `imo_bench::targets::table1`.

fn main() {
    imo_bench::targets::table1::run();
}
