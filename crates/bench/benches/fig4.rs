//! Thin entry point; the real harness lives in `imo_bench::targets::fig4`.

fn main() {
    imo_bench::targets::fig4::run();
}
