//! Thin entry point; the real harness lives in `imo_bench::targets::chaos_soak`.

fn main() {
    imo_bench::targets::chaos_soak::run();
}
