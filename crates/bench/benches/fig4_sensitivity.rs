//! Regenerates the **§4.3.2 sensitivity** observations: "either smaller
//! network latencies or larger primary cache sizes tend to improve the
//! relative performance of the informing memory implementation."

use imo_bench::{emit, fig4_rows, Table};
use imo_coherence::MachineParams;
use imo_util::json::Json;
use imo_workloads::parallel::TraceConfig;

fn advantage(cfg: &TraceConfig, params: &MachineParams) -> (f64, f64) {
    let rows = fig4_rows(cfg, params);
    let n = rows.len() as f64;
    let rc: f64 = rows.iter().map(|r| r.normalized[0]).sum::<f64>() / n;
    let ecc: f64 = rows.iter().map(|r| r.normalized[1]).sum::<f64>() / n;
    (rc, ecc)
}

fn main() {
    println!("§4.3.2 sensitivity: informing's average advantage vs network latency and L1 size.\n");
    let cfg = TraceConfig::default();

    let mut lat_rows = Vec::new();
    let mut t = Table::new(["1-way msg latency", "ref-check / informing", "ecc / informing"]);
    for latency in [300u64, 900, 1800] {
        let mut p = MachineParams::table2();
        p.msg_latency = latency;
        let (rc, ecc) = advantage(&cfg, &p);
        t.row([format!("{latency} cycles"), format!("{rc:.3}"), format!("{ecc:.3}")]);
        lat_rows.push(Json::obj([
            ("msg_latency", Json::from(latency)),
            ("refcheck_over_informing", Json::from(rc)),
            ("ecc_over_informing", Json::from(ecc)),
        ]));
    }
    print!("{}", t.render());
    println!("(expected: advantage grows as the network gets faster)\n");

    let mut l1_rows = Vec::new();
    let mut t = Table::new(["L1 size", "ref-check / informing", "ecc / informing"]);
    for l1 in [8u64, 16, 64] {
        let mut p = MachineParams::table2();
        p.l1_bytes = l1 * 1024;
        let (rc, ecc) = advantage(&cfg, &p);
        t.row([format!("{l1} KB"), format!("{rc:.3}"), format!("{ecc:.3}")]);
        l1_rows.push(Json::obj([
            ("l1_kb", Json::from(l1)),
            ("refcheck_over_informing", Json::from(rc)),
            ("ecc_over_informing", Json::from(ecc)),
        ]));
    }
    print!("{}", t.render());
    println!("(expected: advantage grows with the primary cache — fewer capacity misses inform)");
    emit(
        "fig4_sensitivity",
        Json::obj([
            ("msg_latency_sweep", Json::arr(lat_rows)),
            ("l1_size_sweep", Json::arr(l1_rows)),
        ]),
    );
}
