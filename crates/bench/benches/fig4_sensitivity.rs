//! Thin entry point; the real harness lives in `imo_bench::targets::fig4_sensitivity`.

fn main() {
    imo_bench::targets::fig4_sensitivity::run();
}
