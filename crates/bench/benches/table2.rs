//! Thin entry point; the real harness lives in `imo_bench::targets::table2`.

fn main() {
    imo_bench::targets::table2::run();
}
