//! Thin entry point; the real harness lives in `imo_bench::targets::simspeed`.

fn main() {
    imo_bench::targets::simspeed::run();
}
