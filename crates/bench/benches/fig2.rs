//! Regenerates **Figure 2**: normalized execution time with generic miss
//! handlers of 1 and 10 instructions, for thirteen SPEC92-like benchmarks
//! (`su2cor` is Figure 3) on both processor models.
//!
//! Bars per benchmark: N (no handler), 1S/10S (single handler — zero hit
//! overhead), 1U/10U (unique handler per static reference — one `setmhar`
//! per reference). Heights are normalized to N and split into busy /
//! cache-stall / other-stall graduation slots, as in the paper.

use imo_bench::{emit, experiments_to_json, fig2_for, fmt_bars};
use imo_core::experiment::figure2_variants;
use imo_workloads::{all, Scale};

fn main() {
    let variants = figure2_variants();
    let mut worst: (f64, String) = (0.0, String::new());
    let mut over_40 = Vec::new();
    let mut collected = Vec::new();

    println!("FIGURE 2. Performance of generic miss handlers (1 and 10 instructions).\n");
    for spec in all() {
        if spec.name == "su2cor" {
            continue; // Figure 3
        }
        for res in fig2_for(spec.name, Scale::Small, &variants) {
            println!("{}", fmt_bars(&res));
            for b in &res.bars {
                if b.total > worst.0 {
                    worst = (b.total, format!("{} {} {}", res.workload, res.machine, b.label));
                }
                if b.total > 1.40 && b.label != "N" {
                    over_40.push(format!(
                        "{} [{}] {}: {:.3}",
                        res.workload, res.machine, b.label, b.total
                    ));
                }
            }
            collected.push(res);
        }
    }

    println!("== summary ==");
    println!("worst normalized time: {:.3} ({})", worst.0, worst.1);
    if over_40.is_empty() {
        println!("all configurations within 40% overhead (paper: 12 of 13 benchmarks).");
    } else {
        println!("configurations above 40% overhead (paper: tomcatv 10-instr in-order):");
        for s in over_40 {
            println!("  {s}");
        }
    }
    emit("fig2", experiments_to_json(&collected));
}
