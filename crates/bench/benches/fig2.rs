//! Thin entry point; the real harness lives in `imo_bench::targets::fig2`.

fn main() {
    imo_bench::targets::fig2::run();
}
