//! Regenerates **Figure 3**: the `su2cor` benchmark with 1- and
//! 10-instruction generic handlers. `su2cor` conflicts severely in the
//! in-order model's 8 KB direct-mapped primary cache, so the handlers run on
//! nearly every reference: the paper reports the 10-instruction handler
//! quintupling the instruction count and tripling execution time there,
//! while the out-of-order model (32 KB 2-way) suffers far less. The paper
//! also observed unique handlers sometimes *beating* the single handler,
//! because distinct handlers are not data-dependent on each other.

use imo_bench::{emit, experiments_to_json, fig2_for, fmt_bars};
use imo_core::experiment::figure2_variants;
use imo_workloads::Scale;

fn main() {
    println!("FIGURE 3. SU2COR with generic miss handlers (1 and 10 instructions).\n");
    let results = fig2_for("su2cor", Scale::Small, &figure2_variants());
    for res in &results {
        println!("{}", fmt_bars(res));
    }

    println!("== summary ==");
    let get = |machine: &str, label: &str| {
        results
            .iter()
            .find(|r| r.machine == machine)
            .and_then(|r| r.bars.iter().find(|b| b.label == label))
            .copied()
            .expect("bar exists")
    };
    let ino = get("in-order", "10S");
    let ooo = get("ooo", "10S");
    println!(
        "in-order 10S: {:.2}x time, {:.2}x instructions (paper: ~3x time, ~5x instructions)",
        ino.total, ino.instr_ratio
    );
    println!("out-of-order 10S: {:.2}x time (paper: far smaller than in-order)", ooo.total);
    let (s, u) = (get("in-order", "10S").total, get("in-order", "10U").total);
    println!(
        "in-order 10U vs 10S: {:.3} vs {:.3}{}",
        u,
        s,
        if u + 5e-3 < s {
            "  <- unique handlers win (the paper's surprising artifact)"
        } else {
            ""
        }
    );
    emit("fig3", experiments_to_json(&results));
}
