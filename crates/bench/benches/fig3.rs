//! Thin entry point; the real harness lives in `imo_bench::targets::fig3`.

fn main() {
    imo_bench::targets::fig3::run();
}
