//! Miss-attribution bench binary: `cargo bench --bench attrib`.

fn main() {
    imo_bench::targets::attrib::run();
}
