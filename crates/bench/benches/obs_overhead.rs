//! Observability-overhead bench: proves the recorder is free when disabled
//! and measures what it costs when enabled.
//!
//! Two things are measured:
//!
//! 1. **Disabled-path identity** — for every tier-1 workload on both
//!    machines (and the coherence simulator on every scheme), a run under a
//!    disabled recorder must return results *bit-identical* to the
//!    unobserved run; a fully-enabled recorder must too (it is passive by
//!    construction). The bench aborts if not.
//! 2. **Wall-clock overhead** — host time for the plain, disabled-recorder
//!    and full-recorder runs of a representative kernel on each machine;
//!    the ratios land in `BENCH_obs_overhead.json`.

use imo_bench::report::emit;
use imo_bench::Table;
use imo_coherence::{simulate_baseline, simulate_observed, MachineParams, Scheme};
use imo_cpu::{inorder, ooo, InOrderConfig, OooConfig, RunLimits};
use imo_faults::FaultPlan;
use imo_obs::Recorder;
use imo_util::json::Json;
use imo_util::Bench;
use imo_workloads::parallel::{migratory, TraceConfig};
use imo_workloads::{spec, Scale};

fn main() {
    println!("OBSERVABILITY OVERHEAD. Recorder identity + host-time cost.\n");

    // 1. Identity: disabled and fully-enabled recorders must not perturb
    //    any tier-1 workload on either machine.
    let mut identical = true;
    for s in spec::all() {
        let p = (s.build)(Scale::Test);
        let plain_ooo = ooo::simulate(&p, &OooConfig::paper(), RunLimits::default()).expect("runs");
        let plain_ino =
            inorder::simulate(&p, &InOrderConfig::paper(), RunLimits::default()).expect("runs");
        for (label, mut rec) in [("disabled", Recorder::disabled()), ("full", Recorder::all())] {
            let (o, _) =
                ooo::simulate_observed(&p, &OooConfig::paper(), RunLimits::default(), &mut rec)
                    .expect("runs");
            if o != plain_ooo {
                identical = false;
                eprintln!("MISMATCH: {}/ooo differs under the {label} recorder", s.name);
            }
        }
        for (label, mut rec) in [("disabled", Recorder::disabled()), ("full", Recorder::all())] {
            let (o, _) = inorder::simulate_observed(
                &p,
                &InOrderConfig::paper(),
                RunLimits::default(),
                &mut rec,
            )
            .expect("runs");
            if o != plain_ino {
                identical = false;
                eprintln!("MISMATCH: {}/in-order differs under the {label} recorder", s.name);
            }
        }
    }
    let mut coh_identical = true;
    let cfg = TraceConfig { procs: 8, ops_per_proc: 4_000, seed: 0x1996 };
    let trace = migratory(&cfg);
    let params = MachineParams::table2();
    for scheme in Scheme::all() {
        let base = simulate_baseline(&trace, scheme, &params);
        let mut rec = Recorder::all();
        let (o, _) = simulate_observed(&trace, scheme, &params, &FaultPlan::none(), &mut rec)
            .expect("zero-fault run completes");
        if o != base {
            coh_identical = false;
            eprintln!("MISMATCH: coherence/{} differs under the recorder", scheme.name());
        }
    }
    assert!(identical, "observed CPU runs must be bit-identical to plain runs");
    assert!(coh_identical, "observed coherence runs must be bit-identical to baseline");
    println!("identity: all workloads x machines bit-identical under the recorder\n");

    // 2. Host-time overhead on a representative kernel per machine.
    let mut b = Bench::new("obs_overhead");
    let p = (spec::by_name("compress").expect("compress exists").build)(Scale::Test);
    b.bench_sampled("ooo/plain", 5, || {
        ooo::simulate(&p, &OooConfig::paper(), RunLimits::default()).expect("runs")
    });
    b.bench_sampled("ooo/disabled_recorder", 5, || {
        let mut rec = Recorder::disabled();
        ooo::simulate_observed(&p, &OooConfig::paper(), RunLimits::default(), &mut rec)
            .expect("runs")
            .0
    });
    b.bench_sampled("ooo/full_recorder", 5, || {
        let mut rec = Recorder::all();
        ooo::simulate_observed(&p, &OooConfig::paper(), RunLimits::default(), &mut rec)
            .expect("runs")
            .0
    });
    b.bench_sampled("inorder/plain", 5, || {
        inorder::simulate(&p, &InOrderConfig::paper(), RunLimits::default()).expect("runs")
    });
    b.bench_sampled("inorder/disabled_recorder", 5, || {
        let mut rec = Recorder::disabled();
        inorder::simulate_observed(&p, &InOrderConfig::paper(), RunLimits::default(), &mut rec)
            .expect("runs")
            .0
    });
    b.bench_sampled("inorder/full_recorder", 5, || {
        let mut rec = Recorder::all();
        inorder::simulate_observed(&p, &InOrderConfig::paper(), RunLimits::default(), &mut rec)
            .expect("runs")
            .0
    });
    print!("{}", b.render());

    let median =
        |id: &str| -> f64 { b.results().iter().find(|r| r.id == id).map_or(0.0, |r| r.median_ns) };
    let ratio = |num: &str, den: &str| -> f64 {
        let d = median(den);
        if d == 0.0 {
            0.0
        } else {
            median(num) / d
        }
    };
    let mut t = Table::new(["machine", "disabled / plain", "full / plain"]);
    let mut overheads = Vec::new();
    for m in ["ooo", "inorder"] {
        let disabled = ratio(&format!("{m}/disabled_recorder"), &format!("{m}/plain"));
        let full = ratio(&format!("{m}/full_recorder"), &format!("{m}/plain"));
        t.row([m.to_string(), format!("{disabled:.3}x"), format!("{full:.3}x")]);
        overheads.push(Json::obj([
            ("machine", Json::from(m)),
            ("disabled_over_plain", Json::from(disabled)),
            ("full_over_plain", Json::from(full)),
        ]));
    }
    println!();
    print!("{}", t.render());

    emit(
        "obs_overhead",
        Json::obj([
            ("disabled_identical", Json::Bool(identical)),
            ("full_identical", Json::Bool(identical)),
            ("coherence_identical", Json::Bool(coh_identical)),
            ("overheads", Json::Arr(overheads)),
            ("timings", b.to_json()),
        ]),
    );
}
