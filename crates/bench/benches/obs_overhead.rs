//! Thin entry point; the real harness lives in `imo_bench::targets::obs_overhead`.

fn main() {
    imo_bench::targets::obs_overhead::run();
}
