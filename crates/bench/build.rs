//! Bakes the *code fingerprint* into the bench crate: an FNV-1a 64 digest
//! of every simulator crate's sources. The on-disk sweep store
//! (`imo-util::store`) is addressed by this fingerprint, so any change to
//! the simulator moves the whole store to a fresh directory — cached
//! results can never survive the code that produced them.
//!
//! The bench and serve crates are deliberately *excluded*: they only
//! decide which cells exist and how results are shipped, and every
//! cell-shaping input is already part of the memo key. Editing a bench
//! matrix therefore invalidates exactly the touched cells, not the store.

use std::fs;
use std::path::Path;

/// Simulator crates whose sources feed the fingerprint, in hash order.
const SIM_CRATES: &[&str] =
    &["util", "faults", "isa", "mem", "obs", "cpu", "core", "workloads", "coherence"];

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

fn rust_sources(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn main() {
    let manifest = std::env::var("CARGO_MANIFEST_DIR").expect("CARGO_MANIFEST_DIR");
    let crates = Path::new(&manifest).parent().expect("crates dir").to_path_buf();

    let mut files = Vec::new();
    for name in SIM_CRATES {
        let src = crates.join(name).join("src");
        println!("cargo:rerun-if-changed={}", src.display());
        rust_sources(&src, &mut files);
    }
    // Sort by the path *relative to crates/*, so the digest is identical on
    // every checkout location.
    let mut keyed: Vec<(String, std::path::PathBuf)> = files
        .into_iter()
        .map(|p| {
            let rel = p.strip_prefix(&crates).unwrap_or(&p).to_string_lossy().replace('\\', "/");
            (rel, p)
        })
        .collect();
    keyed.sort();

    let mut hash = FNV_OFFSET;
    for (rel, path) in &keyed {
        let contents = fs::read(path).unwrap_or_default();
        fnv1a(&mut hash, rel.as_bytes());
        fnv1a(&mut hash, &[0]);
        fnv1a(&mut hash, &contents);
        fnv1a(&mut hash, &[0]);
    }

    println!("cargo:rustc-env=IMO_CODE_FINGERPRINT={hash:016x}");
}
