//! Shared experiment runners used by the bench targets, built on the
//! deterministic parallel sweep engine in [`crate::sweep`].

use imo_coherence::{simulate_baseline, MachineParams, Scheme, SimResult};
use imo_core::experiment::{ExperimentResult, Variant};
use imo_util::hash::debug_hash;
use imo_workloads::parallel::{all_apps, ParallelTrace, TraceConfig};
use imo_workloads::Scale;

use crate::sweep::{cpu_cells, cross2, memoized_stored, run_cpu_cells, SweepSpec};

/// Runs the Figure 2/3 variant set for one workload on both machines
/// (a 1 × 2 sweep; the full-figure targets fan out all workloads at once).
///
/// # Panics
///
/// Panics if the workload name is unknown or a simulation fails — the bench
/// harness has no useful recovery.
pub fn fig2_for(name: &'static str, scale: Scale, variants: &[Variant]) -> Vec<ExperimentResult> {
    run_cpu_cells("fig2_for", cpu_cells(&[name], scale, variants))
}

/// One row of Figure 4: an application's normalized execution time under the
/// three access-control schemes.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// Application name.
    pub app: &'static str,
    /// Raw results in `[RefCheck, Ecc, Informing]` order.
    pub results: [SimResult; 3],
    /// Execution times normalized to the informing scheme.
    pub normalized: [f64; 3],
}

/// [`simulate_baseline`] through both memo tiers
/// ([`crate::sweep::memoized_stored`]). The trace — tens of thousands of
/// generated ops — enters the key as a structural `Debug` hash rather than
/// verbatim; every other counter-relevant input (`scheme`, full machine
/// params) is in the key directly. Values persist as serve-layer
/// `SimResult` wire JSON, so warm runs serve the Figure 4 / fault-identity
/// baselines from disk.
pub fn memoized_baseline(app: &ParallelTrace, scheme: Scheme, params: &MachineParams) -> SimResult {
    let key = format!("coh-baseline/{}/{:016x}/{scheme:?}/{params:?}", app.name, debug_hash(app));
    memoized_stored(&key, crate::serve::sim_result_json, crate::serve::decode_sim_result, || {
        simulate_baseline(app, scheme, params)
    })
}

/// Runs Figure 4: every application under every scheme, as an app-major
/// app × scheme sweep across the pool.
pub fn fig4_rows(trace_cfg: &TraceConfig, params: &MachineParams) -> Vec<Fig4Row> {
    let apps = all_apps(trace_cfg);
    let cells = cross2(&apps, &Scheme::all());
    let results = SweepSpec::new("fig4", cells)
        .run(|_, (app, scheme)| memoized_baseline(&app, scheme, params));
    results
        .chunks_exact(Scheme::all().len())
        .map(|chunk| {
            let results: [SimResult; 3] = [chunk[0].clone(), chunk[1].clone(), chunk[2].clone()];
            let base = results[2].total_cycles.max(1) as f64;
            let normalized = [
                results[0].total_cycles as f64 / base,
                results[1].total_cycles as f64 / base,
                results[2].total_cycles as f64 / base,
            ];
            Fig4Row { app: results[0].app, results, normalized }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_core::experiment::figure2_variants;

    #[test]
    fn fig2_runner_produces_both_machines() {
        let res = fig2_for("ora", Scale::Test, &figure2_variants());
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].machine, "ooo");
        assert_eq!(res[1].machine, "in-order");
        assert_eq!(res[0].bars.len(), 5);
    }

    #[test]
    fn fig4_runner_covers_all_apps_and_schemes() {
        let cfg = TraceConfig { procs: 4, ops_per_proc: 1500, seed: 3 };
        let rows = fig4_rows(&cfg, &MachineParams::table2());
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!((r.normalized[2] - 1.0).abs() < 1e-12, "informing is the baseline");
        }
    }
}
