//! The deterministic parallel sweep engine behind every bench target.
//!
//! A bench is a *matrix*: a cross product of axes (workload, machine,
//! variant set, scheme, seed, …) whose cells are independent simulations.
//! Instead of hand-rolled nested loops, each target declares its cells with
//! [`Matrix`] / [`cross2`] / [`cross3`] and fans them out with
//! [`SweepSpec::run`], which executes the cells on the
//! [`imo_util::pool`] work-stealing pool and returns results **in cell
//! order** — so the rendered tables and `BENCH_*.json` baselines are
//! byte-identical for any thread count (`IMO_THREADS=1` reproduces the
//! serial run exactly).
//!
//! The module also provides the two canonical cell shapes of this paper's
//! experiment matrix: [`CpuCell`] (one workload × machine × variant-set
//! point of the Figure 2/3-style sweeps) and the parallel
//! [`crate::runners::fig4_rows`] app × scheme sweep built on it.

use imo_core::experiment::{run_experiment, ExperimentResult, Variant};
use imo_core::Machine;
use imo_cpu::RunLimits;
use imo_util::pool::Pool;
use imo_workloads::{by_name, Scale};

/// A flat list of experiment cells (usually a cross product of axes).
#[derive(Debug, Clone)]
pub struct Matrix<C> {
    /// The cells, in declaration order — the order results come back in.
    pub cells: Vec<C>,
}

impl<C> Matrix<C> {
    /// Wraps an explicit cell list.
    pub fn new(cells: Vec<C>) -> Matrix<C> {
        Matrix { cells }
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the matrix has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// The cross product of two axes, first axis major.
pub fn cross2<A: Clone, B: Clone>(a: &[A], b: &[B]) -> Vec<(A, B)> {
    a.iter().flat_map(|x| b.iter().map(move |y| (x.clone(), y.clone()))).collect()
}

/// The cross product of three axes, leftmost axis major.
pub fn cross3<A: Clone, B: Clone, C: Clone>(a: &[A], b: &[B], c: &[C]) -> Vec<(A, B, C)> {
    a.iter()
        .flat_map(|x| {
            b.iter().flat_map(move |y| {
                let x = x.clone();
                c.iter().map(move |z| (x.clone(), y.clone(), z.clone()))
            })
        })
        .collect()
}

/// A named sweep over a [`Matrix`]: the declarative core of one bench
/// target.
#[derive(Debug, Clone)]
pub struct SweepSpec<C> {
    /// Bench-target name (diagnostics only; the baseline file is named by
    /// [`crate::report::emit`]).
    pub name: &'static str,
    /// The cell matrix.
    pub matrix: Matrix<C>,
}

impl<C: Send> SweepSpec<C> {
    /// A sweep over an explicit cell list.
    pub fn new(name: &'static str, cells: Vec<C>) -> SweepSpec<C> {
        SweepSpec { name, matrix: Matrix::new(cells) }
    }

    /// Runs every cell on the auto-sized pool (`IMO_THREADS` override) and
    /// returns results in cell order.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f` — a bench cell has no useful recovery.
    pub fn run<R, F>(self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, C) -> R + Sync,
    {
        self.run_on(&Pool::auto(), f)
    }

    /// [`SweepSpec::run`] on an explicit pool (tests pin thread counts).
    pub fn run_on<R, F>(self, pool: &Pool, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, C) -> R + Sync,
    {
        pool.map_indexed(self.matrix.cells, f)
    }
}

/// One cell of a Figure 2/3-style sweep: a workload at a scale, on a
/// machine, under a variant set.
#[derive(Debug, Clone)]
pub struct CpuCell {
    /// Workload name (must exist in the registry).
    pub workload: &'static str,
    /// Problem scale.
    pub scale: Scale,
    /// Machine model and configuration.
    pub machine: Machine,
    /// The instrumentation variants to run, first is the N baseline.
    pub variants: Vec<Variant>,
}

impl CpuCell {
    /// Runs this cell to its [`ExperimentResult`].
    ///
    /// # Panics
    ///
    /// Panics if the workload name is unknown or a simulation fails — the
    /// bench harness has no useful recovery.
    #[must_use]
    pub fn run(&self) -> ExperimentResult {
        let spec = by_name(self.workload)
            .unwrap_or_else(|| panic!("unknown workload `{}`", self.workload));
        let program = (spec.build)(self.scale);
        run_experiment(self.workload, &program, &self.machine, &self.variants, RunLimits::default())
            .unwrap_or_else(|e| panic!("{} on {}: {e}", self.workload, self.machine.name()))
    }
}

/// The standard machine axis, in the paper's presentation order.
#[must_use]
pub fn both_machines() -> [Machine; 2] {
    [Machine::default_ooo(), Machine::default_in_order()]
}

/// Builds the workload-major × machine cell list of a Figure 2/3-style
/// sweep: for each name, one cell per machine (ooo then in-order).
pub fn cpu_cells(names: &[&'static str], scale: Scale, variants: &[Variant]) -> Vec<CpuCell> {
    cross2(names, &both_machines())
        .into_iter()
        .map(|(workload, machine)| CpuCell {
            workload,
            scale,
            machine,
            variants: variants.to_vec(),
        })
        .collect()
}

/// Fans a [`CpuCell`] list out across the pool, returning results in cell
/// order.
pub fn run_cpu_cells(name: &'static str, cells: Vec<CpuCell>) -> Vec<ExperimentResult> {
    SweepSpec::new(name, cells).run(|_, cell| cell.run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_core::experiment::figure2_variants;

    #[test]
    fn cross_products_are_major_order() {
        assert_eq!(cross2(&[1, 2], &['a', 'b']), vec![(1, 'a'), (1, 'b'), (2, 'a'), (2, 'b')]);
        let c3 = cross3(&[1, 2], &['a'], &[true, false]);
        assert_eq!(c3, vec![(1, 'a', true), (1, 'a', false), (2, 'a', true), (2, 'a', false)]);
    }

    #[test]
    fn cpu_cells_enumerate_machines_per_workload() {
        let cells = cpu_cells(&["ora", "compress"], Scale::Test, &figure2_variants());
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].workload, "ora");
        assert_eq!(cells[0].machine.name(), "ooo");
        assert_eq!(cells[1].machine.name(), "in-order");
        assert_eq!(cells[2].workload, "compress");
    }

    #[test]
    fn sweep_results_are_thread_count_invariant() {
        let cells = cpu_cells(&["ora"], Scale::Test, &figure2_variants());
        let serial =
            SweepSpec::new("t", cells.clone()).run_on(&Pool::new(1), |_, c: CpuCell| c.run());
        let par = SweepSpec::new("t", cells).run_on(&Pool::new(4), |_, c: CpuCell| c.run());
        assert_eq!(serial, par);
    }

    #[test]
    fn matrix_reports_size() {
        let m = Matrix::new(vec![1, 2, 3]);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert!(Matrix::<u8>::new(vec![]).is_empty());
    }
}
