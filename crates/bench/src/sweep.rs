//! The deterministic parallel sweep engine behind every bench target.
//!
//! A bench is a *matrix*: a cross product of axes (workload, machine,
//! variant set, scheme, seed, …) whose cells are independent simulations.
//! Instead of hand-rolled nested loops, each target declares its cells with
//! [`Matrix`] / [`cross2`] / [`cross3`] and fans them out with
//! [`SweepSpec::run`], which executes the cells on the
//! [`imo_util::pool`] work-stealing pool and returns results **in cell
//! order** — so the rendered tables and `BENCH_*.json` baselines are
//! byte-identical for any thread count (`IMO_THREADS=1` reproduces the
//! serial run exactly).
//!
//! The module also provides the two canonical cell shapes of this paper's
//! experiment matrix: [`CpuCell`] (one workload × machine × variant-set
//! point of the Figure 2/3-style sweeps) and the parallel
//! [`crate::runners::fig4_rows`] app × scheme sweep built on it.
//!
//! ## Result memoization
//!
//! The 13 bench targets overlap: `handler100` re-runs `fig2`/`fig3`'s
//! uninstrumented N cells, `fig4_sensitivity`'s centre sweep points are
//! exactly `fig4`'s matrix, `fault_resilience`'s migratory baseline is one
//! of its own identity cells. [`memoized`] is a process-wide cache keyed by
//! a *structural* key string — every input that can change the simulated
//! counters (workload spec, machine params, scheme, fault plan, seed,
//! limits) rendered via `Debug`, with oversized components (generated
//! traces) folded to an [`imo_util::hash::debug_hash`] — so one `registry()`
//! pass (`ci_gate`, `tier2.sh`) simulates each distinct cell once.
//! Simulations are deterministic, which is what makes serving a cached
//! `RunResult` sound: a cache hit is bit-identical to a re-run, and
//! [`memo_stats`] proves the dedup coverage without affecting any payload.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use imo_core::experiment::{normalize_experiment, ExperimentResult, Variant};
use imo_core::instrument::instrument;
use imo_core::Machine;
use imo_cpu::RunLimits;
use imo_util::pool::Pool;
use imo_workloads::{by_name, Scale};

/// Process-wide memo cache: structural key → boxed result.
static MEMO: OnceLock<Mutex<HashMap<String, Box<dyn Any + Send + Sync>>>> = OnceLock::new();
/// Total [`memoized`] calls (cache hits included).
static MEMO_REQUESTED: AtomicU64 = AtomicU64::new(0);

/// Runs `compute` at most once per distinct `key`, serving repeats from the
/// process-wide cache.
///
/// The value is computed *outside* the cache lock (cells are long
/// simulations; holding the lock would serialize the pool), so two workers
/// racing on the same key may both compute — determinism makes their values
/// identical, and the first to finish populates the cache. The stats
/// reported by [`memo_stats`] count *unique keys*, which is
/// interleaving-invariant.
pub fn memoized<T, F>(key: &str, compute: F) -> T
where
    T: Clone + Send + Sync + 'static,
    F: FnOnce() -> T,
{
    MEMO_REQUESTED.fetch_add(1, Ordering::Relaxed);
    let map = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = map.lock().expect("memo lock").get(key) {
        return hit.downcast_ref::<T>().expect("memo key reused at a different type").clone();
    }
    let value = compute();
    map.lock()
        .expect("memo lock")
        .entry(key.to_string())
        .or_insert_with(|| Box::new(value.clone()));
    value
}

/// Memo-cache coverage counters; see [`memo_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoStats {
    /// Cell results requested through [`memoized`].
    pub requested: u64,
    /// Distinct cells actually simulated (unique cache keys).
    pub simulated: u64,
}

impl MemoStats {
    /// Requests served from the cache instead of re-simulating.
    #[must_use]
    pub fn deduped(&self) -> u64 {
        self.requested.saturating_sub(self.simulated)
    }

    /// Fraction of requests served from the cache (`0.0` when idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.requested == 0 {
            0.0
        } else {
            self.deduped() as f64 / self.requested as f64
        }
    }
}

/// Snapshot of the process-wide memo coverage: how many cell results were
/// requested and how many distinct cells were actually simulated.
#[must_use]
pub fn memo_stats() -> MemoStats {
    let simulated = MEMO.get().map_or(0, |m| m.lock().expect("memo lock").len() as u64);
    MemoStats { requested: MEMO_REQUESTED.load(Ordering::Relaxed), simulated }
}

/// A flat list of experiment cells (usually a cross product of axes).
#[derive(Debug, Clone)]
pub struct Matrix<C> {
    /// The cells, in declaration order — the order results come back in.
    pub cells: Vec<C>,
}

impl<C> Matrix<C> {
    /// Wraps an explicit cell list.
    pub fn new(cells: Vec<C>) -> Matrix<C> {
        Matrix { cells }
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the matrix has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// The cross product of two axes, first axis major.
pub fn cross2<A: Clone, B: Clone>(a: &[A], b: &[B]) -> Vec<(A, B)> {
    a.iter().flat_map(|x| b.iter().map(move |y| (x.clone(), y.clone()))).collect()
}

/// The cross product of three axes, leftmost axis major.
pub fn cross3<A: Clone, B: Clone, C: Clone>(a: &[A], b: &[B], c: &[C]) -> Vec<(A, B, C)> {
    a.iter()
        .flat_map(|x| {
            b.iter().flat_map(move |y| {
                let x = x.clone();
                c.iter().map(move |z| (x.clone(), y.clone(), z.clone()))
            })
        })
        .collect()
}

/// A named sweep over a [`Matrix`]: the declarative core of one bench
/// target.
#[derive(Debug, Clone)]
pub struct SweepSpec<C> {
    /// Bench-target name (diagnostics only; the baseline file is named by
    /// [`crate::report::emit`]).
    pub name: &'static str,
    /// The cell matrix.
    pub matrix: Matrix<C>,
}

impl<C: Send> SweepSpec<C> {
    /// A sweep over an explicit cell list.
    pub fn new(name: &'static str, cells: Vec<C>) -> SweepSpec<C> {
        SweepSpec { name, matrix: Matrix::new(cells) }
    }

    /// Runs every cell on the auto-sized pool (`IMO_THREADS` override) and
    /// returns results in cell order.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f` — a bench cell has no useful recovery.
    pub fn run<R, F>(self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, C) -> R + Sync,
    {
        self.run_on(&Pool::auto(), f)
    }

    /// [`SweepSpec::run`] on an explicit pool (tests pin thread counts).
    pub fn run_on<R, F>(self, pool: &Pool, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, C) -> R + Sync,
    {
        pool.map_indexed(self.matrix.cells, f)
    }
}

/// One cell of a Figure 2/3-style sweep: a workload at a scale, on a
/// machine, under a variant set.
#[derive(Debug, Clone)]
pub struct CpuCell {
    /// Workload name (must exist in the registry).
    pub workload: &'static str,
    /// Problem scale.
    pub scale: Scale,
    /// Machine model and configuration.
    pub machine: Machine,
    /// The instrumentation variants to run, first is the N baseline.
    pub variants: Vec<Variant>,
}

impl CpuCell {
    /// Runs this cell to its [`ExperimentResult`].
    ///
    /// Each variant's raw `RunResult` goes through [`memoized`]
    /// individually, so a variant shared between targets (every target's N
    /// baseline, say) simulates once per process even when the surrounding
    /// variant sets differ. The program is only built if some variant
    /// actually misses the cache.
    ///
    /// # Panics
    ///
    /// Panics if the workload name is unknown or a simulation fails — the
    /// bench harness has no useful recovery.
    #[must_use]
    pub fn run(&self) -> ExperimentResult {
        let spec = by_name(self.workload)
            .unwrap_or_else(|| panic!("unknown workload `{}`", self.workload));
        let limits = RunLimits::default();
        let mut program = None;
        let mut raw = Vec::with_capacity(self.variants.len());
        for v in &self.variants {
            let key = format!(
                "cpu-run/{}/{:?}/{:?}/{:?}/{:?}",
                self.workload, self.scale, self.machine, v.scheme, limits
            );
            let result = memoized(&key, || {
                let program = program.get_or_insert_with(|| (spec.build)(self.scale));
                let inst = instrument(program, &v.scheme).unwrap_or_else(|e| {
                    panic!("instrumenting {} as {:?}: {e}", self.workload, v.scheme)
                });
                self.machine
                    .run_limited(&inst.program, limits)
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", self.workload, self.machine.name()))
            });
            raw.push((v.label, result));
        }
        normalize_experiment(self.workload, self.machine.name(), raw)
    }
}

/// The standard machine axis, in the paper's presentation order.
#[must_use]
pub fn both_machines() -> [Machine; 2] {
    [Machine::default_ooo(), Machine::default_in_order()]
}

/// Builds the workload-major × machine cell list of a Figure 2/3-style
/// sweep: for each name, one cell per machine (ooo then in-order).
pub fn cpu_cells(names: &[&'static str], scale: Scale, variants: &[Variant]) -> Vec<CpuCell> {
    cross2(names, &both_machines())
        .into_iter()
        .map(|(workload, machine)| CpuCell {
            workload,
            scale,
            machine,
            variants: variants.to_vec(),
        })
        .collect()
}

/// Fans a [`CpuCell`] list out across the pool, returning results in cell
/// order.
///
/// When `IMO_SERVE_ADDR` names a running [`crate::serve`] job server, the
/// cells are shipped there instead and the results stream back over TCP —
/// byte-identical to the in-process path, which is exactly what
/// `ci_gate --serve` asserts.
pub fn run_cpu_cells(name: &'static str, cells: Vec<CpuCell>) -> Vec<ExperimentResult> {
    if let Ok(addr) = std::env::var("IMO_SERVE_ADDR") {
        if !addr.trim().is_empty() {
            return crate::serve::run_cells_via_server(addr.trim(), name, cells);
        }
    }
    SweepSpec::new(name, cells).run(|_, cell| cell.run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_core::experiment::figure2_variants;

    #[test]
    fn cross_products_are_major_order() {
        assert_eq!(cross2(&[1, 2], &['a', 'b']), vec![(1, 'a'), (1, 'b'), (2, 'a'), (2, 'b')]);
        let c3 = cross3(&[1, 2], &['a'], &[true, false]);
        assert_eq!(c3, vec![(1, 'a', true), (1, 'a', false), (2, 'a', true), (2, 'a', false)]);
    }

    #[test]
    fn cpu_cells_enumerate_machines_per_workload() {
        let cells = cpu_cells(&["ora", "compress"], Scale::Test, &figure2_variants());
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].workload, "ora");
        assert_eq!(cells[0].machine.name(), "ooo");
        assert_eq!(cells[1].machine.name(), "in-order");
        assert_eq!(cells[2].workload, "compress");
    }

    #[test]
    fn sweep_results_are_thread_count_invariant() {
        let cells = cpu_cells(&["ora"], Scale::Test, &figure2_variants());
        let serial =
            SweepSpec::new("t", cells.clone()).run_on(&Pool::new(1), |_, c: CpuCell| c.run());
        let par = SweepSpec::new("t", cells).run_on(&Pool::new(4), |_, c: CpuCell| c.run());
        assert_eq!(serial, par);
    }

    #[test]
    fn memoized_computes_each_key_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let calls = AtomicU32::new(0);
        let before = memo_stats();
        let a = memoized("test/memo/unique-key-1", || {
            calls.fetch_add(1, Ordering::SeqCst);
            42u64
        });
        let b = memoized("test/memo/unique-key-1", || {
            calls.fetch_add(1, Ordering::SeqCst);
            99u64
        });
        assert_eq!(a, 42);
        assert_eq!(b, 42, "second call served from cache");
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        // Other tests share the process-wide cache, so only lower bounds on
        // the deltas are safe to assert.
        let after = memo_stats();
        assert!(after.requested >= before.requested + 2);
        assert!(after.simulated > before.simulated);
    }

    #[test]
    fn memo_stats_math() {
        let s = MemoStats { requested: 10, simulated: 4 };
        assert_eq!(s.deduped(), 6);
        assert!((s.hit_rate() - 0.6).abs() < 1e-12);
        let idle = MemoStats { requested: 0, simulated: 0 };
        assert_eq!(idle.deduped(), 0);
        assert_eq!(idle.hit_rate(), 0.0);
    }

    #[test]
    fn matrix_reports_size() {
        let m = Matrix::new(vec![1, 2, 3]);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert!(Matrix::<u8>::new(vec![]).is_empty());
    }
}
