//! The deterministic parallel sweep engine behind every bench target.
//!
//! A bench is a *matrix*: a cross product of axes (workload, machine,
//! variant set, scheme, seed, …) whose cells are independent simulations.
//! Instead of hand-rolled nested loops, each target declares its cells with
//! [`Matrix`] / [`cross2`] / [`cross3`] and fans them out with
//! [`SweepSpec::run`], which executes the cells on the
//! [`imo_util::pool`] work-stealing pool and returns results **in cell
//! order** — so the rendered tables and `BENCH_*.json` baselines are
//! byte-identical for any thread count (`IMO_THREADS=1` reproduces the
//! serial run exactly).
//!
//! The module also provides the two canonical cell shapes of this paper's
//! experiment matrix: [`CpuCell`] (one workload × machine × variant-set
//! point of the Figure 2/3-style sweeps) and the parallel
//! [`crate::runners::fig4_rows`] app × scheme sweep built on it.
//!
//! ## Result memoization
//!
//! The 13 bench targets overlap: `handler100` re-runs `fig2`/`fig3`'s
//! uninstrumented N cells, `fig4_sensitivity`'s centre sweep points are
//! exactly `fig4`'s matrix, `fault_resilience`'s migratory baseline is one
//! of its own identity cells. [`memoized`] is a process-wide cache keyed by
//! a *structural* key string — every input that can change the simulated
//! counters (workload spec, machine params, scheme, fault plan, seed,
//! limits) rendered via `Debug`, with oversized components (generated
//! traces) folded to an [`imo_util::hash::debug_hash`] — so one `registry()`
//! pass (`ci_gate`, `tier2.sh`) simulates each distinct cell once.
//! Simulations are deterministic, which is what makes serving a cached
//! `RunResult` sound: a cache hit is bit-identical to a re-run, and
//! [`memo_stats`] proves the dedup coverage without affecting any payload.
//!
//! ## The on-disk L2: the content-addressed sweep store
//!
//! The in-process map is the L1; [`memoized_stored`] adds the persistent
//! L2 of [`imo_util::store`] under `.imo-cache/`, addressed by
//! `(store schema version, code fingerprint, key)`. The fingerprint
//! ([`code_fingerprint`]) is a build-time digest of every simulator
//! crate's sources, so a simulator change invalidates the store wholesale
//! while a bench-matrix edit invalidates only the touched cells (their
//! inputs are the key). Disk values round-trip through the serve-layer
//! wire codecs — the same bit-exact encodings `ci_gate --serve` proves —
//! and any verification or decode failure silently falls back to
//! recompute: a stale or corrupt store can cost time, never correctness.
//!
//! Configuration: `IMO_STORE=off|ro|rw` (default `rw`), `IMO_STORE_DIR`
//! (default `<repo>/.imo-cache`).

use std::any::Any;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use imo_core::experiment::{normalize_experiment, ExperimentResult, Variant};
use imo_core::instrument::instrument;
use imo_core::Machine;
use imo_cpu::RunLimits;
use imo_util::json::Json;
use imo_util::pool::Pool;
use imo_util::snapshot::SnapshotError;
use imo_util::store::{Store, StoreMode};
use imo_workloads::{by_name, Scale};

/// Process-wide memo cache: structural key → boxed result.
static MEMO: OnceLock<Mutex<HashMap<String, Box<dyn Any + Send + Sync>>>> = OnceLock::new();
/// Total [`memoized`]/[`memoized_stored`] calls (cache hits included).
static MEMO_REQUESTED: AtomicU64 = AtomicU64::new(0);
/// Distinct keys whose value came from running `compute`.
static MEMO_SIMULATED: AtomicU64 = AtomicU64::new(0);
/// Distinct keys whose value came from the on-disk store.
static MEMO_SERVED_DISK: AtomicU64 = AtomicU64::new(0);
/// The process-wide store handle (`None` when `IMO_STORE=off`).
static STORE: OnceLock<Option<Store>> = OnceLock::new();

/// The code fingerprint addressing the on-disk store: the build-time
/// digest of every simulator crate's sources baked in by `build.rs`, or
/// the `IMO_CODE_HASH` override (16 hex digits, else the string itself is
/// hashed) for tests and tooling that need to pin or perturb it.
#[must_use]
pub fn code_fingerprint() -> u64 {
    static FP: OnceLock<u64> = OnceLock::new();
    *FP.get_or_init(|| {
        if let Ok(over) = std::env::var("IMO_CODE_HASH") {
            let t = over.trim().trim_start_matches("0x");
            if !t.is_empty() {
                return u64::from_str_radix(t, 16)
                    .unwrap_or_else(|_| imo_util::hash::fnv1a_64(t.as_bytes()));
            }
        }
        u64::from_str_radix(env!("IMO_CODE_FINGERPRINT"), 16).unwrap_or(0)
    })
}

/// The process-wide on-disk sweep store, opened on first use from
/// `IMO_STORE` / `IMO_STORE_DIR`; `None` when disabled.
pub fn store() -> Option<&'static Store> {
    STORE
        .get_or_init(|| {
            let mode = match std::env::var("IMO_STORE").as_deref() {
                Ok("off") | Ok("0") => return None,
                Ok("ro") => StoreMode::ReadOnly,
                Ok("rw") | Ok("") | Err(_) => StoreMode::ReadWrite,
                Ok(other) => {
                    eprintln!("warning: unknown IMO_STORE={other:?}, store disabled");
                    return None;
                }
            };
            let dir = match std::env::var("IMO_STORE_DIR") {
                Ok(d) if !d.trim().is_empty() => PathBuf::from(d.trim()),
                _ => crate::report::repo_root().join(".imo-cache"),
            };
            Some(Store::open(&dir, mode, code_fingerprint()))
        })
        .as_ref()
}

/// The `IMO_STORE` value subprocess workers should run with: shared
/// consumers get the store read-only (only the coordinating process
/// writes), or `off` when this process has it off.
#[must_use]
pub fn worker_store_env() -> &'static str {
    if store().is_some() {
        "ro"
    } else {
        "off"
    }
}

fn l1() -> &'static Mutex<HashMap<String, Box<dyn Any + Send + Sync>>> {
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

fn l1_get<T: Clone + Send + Sync + 'static>(key: &str) -> Option<T> {
    l1().lock()
        .expect("memo lock")
        .get(key)
        .map(|hit| hit.downcast_ref::<T>().expect("memo key reused at a different type").clone())
}

/// Inserts into the L1, counting the key once under `simulated` or
/// `served_disk` depending on where its value came from. Racing inserts of
/// the same key count once (first wins), so the stats are
/// interleaving-invariant.
fn l1_insert<T: Clone + Send + Sync + 'static>(key: &str, value: &T, from_disk: bool) {
    match l1().lock().expect("memo lock").entry(key.to_string()) {
        Entry::Occupied(_) => {}
        Entry::Vacant(slot) => {
            slot.insert(Box::new(value.clone()));
            let counter = if from_disk { &MEMO_SERVED_DISK } else { &MEMO_SIMULATED };
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Runs `compute` at most once per distinct `key`, serving repeats from the
/// process-wide in-memory cache. Values never touch the disk store — use
/// [`memoized_stored`] for results worth keeping across runs.
///
/// The value is computed *outside* the cache lock (cells are long
/// simulations; holding the lock would serialize the pool), so two workers
/// racing on the same key may both compute — determinism makes their values
/// identical, and the first to finish populates the cache. The stats
/// reported by [`memo_stats`] count *unique keys*, which is
/// interleaving-invariant.
pub fn memoized<T, F>(key: &str, compute: F) -> T
where
    T: Clone + Send + Sync + 'static,
    F: FnOnce() -> T,
{
    MEMO_REQUESTED.fetch_add(1, Ordering::Relaxed);
    if let Some(hit) = l1_get(key) {
        return hit;
    }
    let value = compute();
    l1_insert(key, &value, false);
    value
}

/// [`memoized`] with the on-disk store as the L2: an L1 miss probes the
/// store before computing, and a computed value is persisted for future
/// runs.
///
/// `encode`/`decode` are the value's wire codec (the serve-layer
/// `result_json`/`decode_result` pair for `RunResult`, say). A store hit
/// that fails `decode` is rejected — counted, deleted in read-write mode —
/// and falls back to recompute, so a stale or corrupt entry can never
/// change a result.
pub fn memoized_stored<T, F, E, D>(key: &str, encode: E, decode: D, compute: F) -> T
where
    T: Clone + Send + Sync + 'static,
    F: FnOnce() -> T,
    E: Fn(&T) -> Json,
    D: Fn(&Json) -> Result<T, SnapshotError>,
{
    MEMO_REQUESTED.fetch_add(1, Ordering::Relaxed);
    if let Some(hit) = l1_get(key) {
        return hit;
    }
    if let Some(store) = store() {
        if let Some(payload) = store.get(key) {
            match decode(&payload) {
                Ok(value) => {
                    l1_insert(key, &value, true);
                    return value;
                }
                Err(_) => store.reject(key),
            }
        }
    }
    let value = compute();
    if let Some(store) = store() {
        store.put(key, &encode(&value));
    }
    l1_insert(key, &value, false);
    value
}

/// Memo-cache coverage counters; see [`memo_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoStats {
    /// Cell results requested through [`memoized`]/[`memoized_stored`].
    pub requested: u64,
    /// Distinct cells actually simulated (computed in this process).
    pub simulated: u64,
    /// Distinct cells served from the on-disk store instead of simulating.
    pub served_disk: u64,
    /// Values persisted to the on-disk store this process.
    pub disk_writes: u64,
    /// Store entries rejected (torn/corrupt/stale) and recomputed.
    pub disk_rejected: u64,
}

impl MemoStats {
    /// Requests served from either cache tier instead of re-simulating.
    #[must_use]
    pub fn deduped(&self) -> u64 {
        self.requested.saturating_sub(self.simulated)
    }

    /// Requests served from the in-process map (repeat keys).
    #[must_use]
    pub fn served_memory(&self) -> u64 {
        self.deduped().saturating_sub(self.served_disk)
    }

    /// Fraction of requests served from either cache tier (`0.0` when
    /// idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.requested == 0 {
            0.0
        } else {
            self.deduped() as f64 / self.requested as f64
        }
    }

    /// Of the distinct cells this process needed, the percentage served
    /// from disk instead of simulated — the warm-store coverage `ci_gate
    /// --assert-warm` gates on. `0.0` when nothing was needed.
    #[must_use]
    pub fn disk_coverage_pct(&self) -> f64 {
        let distinct = self.simulated + self.served_disk;
        if distinct == 0 {
            0.0
        } else {
            self.served_disk as f64 * 100.0 / distinct as f64
        }
    }
}

/// Snapshot of the process-wide memo coverage across both tiers: how many
/// cell results were requested, how many distinct cells were simulated vs
/// served from the on-disk store, and the store's write/reject counters.
#[must_use]
pub fn memo_stats() -> MemoStats {
    let (disk_writes, disk_rejected) =
        store().map_or((0, 0), |s| (s.stats().writes, s.stats().rejected));
    MemoStats {
        requested: MEMO_REQUESTED.load(Ordering::Relaxed),
        simulated: MEMO_SIMULATED.load(Ordering::Relaxed),
        served_disk: MEMO_SERVED_DISK.load(Ordering::Relaxed),
        disk_writes,
        disk_rejected,
    }
}

/// A flat list of experiment cells (usually a cross product of axes).
#[derive(Debug, Clone)]
pub struct Matrix<C> {
    /// The cells, in declaration order — the order results come back in.
    pub cells: Vec<C>,
}

impl<C> Matrix<C> {
    /// Wraps an explicit cell list.
    pub fn new(cells: Vec<C>) -> Matrix<C> {
        Matrix { cells }
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the matrix has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// The cross product of two axes, first axis major.
pub fn cross2<A: Clone, B: Clone>(a: &[A], b: &[B]) -> Vec<(A, B)> {
    a.iter().flat_map(|x| b.iter().map(move |y| (x.clone(), y.clone()))).collect()
}

/// The cross product of three axes, leftmost axis major.
pub fn cross3<A: Clone, B: Clone, C: Clone>(a: &[A], b: &[B], c: &[C]) -> Vec<(A, B, C)> {
    a.iter()
        .flat_map(|x| {
            b.iter().flat_map(move |y| {
                let x = x.clone();
                c.iter().map(move |z| (x.clone(), y.clone(), z.clone()))
            })
        })
        .collect()
}

/// A named sweep over a [`Matrix`]: the declarative core of one bench
/// target.
#[derive(Debug, Clone)]
pub struct SweepSpec<C> {
    /// Bench-target name (diagnostics only; the baseline file is named by
    /// [`crate::report::emit`]).
    pub name: &'static str,
    /// The cell matrix.
    pub matrix: Matrix<C>,
}

impl<C: Send> SweepSpec<C> {
    /// A sweep over an explicit cell list.
    pub fn new(name: &'static str, cells: Vec<C>) -> SweepSpec<C> {
        SweepSpec { name, matrix: Matrix::new(cells) }
    }

    /// Runs every cell on the auto-sized pool (`IMO_THREADS` override) and
    /// returns results in cell order.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f` — a bench cell has no useful recovery.
    pub fn run<R, F>(self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, C) -> R + Sync,
    {
        self.run_on(&Pool::auto(), f)
    }

    /// [`SweepSpec::run`] on an explicit pool (tests pin thread counts).
    pub fn run_on<R, F>(self, pool: &Pool, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, C) -> R + Sync,
    {
        pool.map_indexed(self.matrix.cells, f)
    }
}

/// One cell of a Figure 2/3-style sweep: a workload at a scale, on a
/// machine, under a variant set.
#[derive(Debug, Clone)]
pub struct CpuCell {
    /// Workload name (must exist in the registry).
    pub workload: &'static str,
    /// Problem scale.
    pub scale: Scale,
    /// Machine model and configuration.
    pub machine: Machine,
    /// The instrumentation variants to run, first is the N baseline.
    pub variants: Vec<Variant>,
}

impl CpuCell {
    /// Runs this cell to its [`ExperimentResult`].
    ///
    /// Each variant's raw `RunResult` goes through [`memoized_stored`]
    /// individually, so a variant shared between targets (every target's N
    /// baseline, say) simulates once per process even when the surrounding
    /// variant sets differ — and persists to the on-disk store, so a later
    /// run with the same code fingerprint serves it without simulating at
    /// all. The program is only built if some variant actually misses both
    /// cache tiers.
    ///
    /// # Panics
    ///
    /// Panics if the workload name is unknown or a simulation fails — the
    /// bench harness has no useful recovery.
    #[must_use]
    pub fn run(&self) -> ExperimentResult {
        let spec = by_name(self.workload)
            .unwrap_or_else(|| panic!("unknown workload `{}`", self.workload));
        let limits = RunLimits::default();
        let mut program = None;
        let mut raw = Vec::with_capacity(self.variants.len());
        for v in &self.variants {
            let key = format!(
                "cpu-run/{}/{:?}/{:?}/{:?}/{:?}",
                self.workload, self.scale, self.machine, v.scheme, limits
            );
            let result = memoized_stored(
                &key,
                crate::serve::result_json,
                crate::serve::decode_result,
                || {
                    let program = program.get_or_insert_with(|| (spec.build)(self.scale));
                    let inst = instrument(program, &v.scheme).unwrap_or_else(|e| {
                        panic!("instrumenting {} as {:?}: {e}", self.workload, v.scheme)
                    });
                    self.machine.run_limited(&inst.program, limits).unwrap_or_else(|e| {
                        panic!("{} on {}: {e}", self.workload, self.machine.name())
                    })
                },
            );
            raw.push((v.label, result));
        }
        normalize_experiment(self.workload, self.machine.name(), raw)
    }
}

/// The standard machine axis, in the paper's presentation order.
#[must_use]
pub fn both_machines() -> [Machine; 2] {
    [Machine::default_ooo(), Machine::default_in_order()]
}

/// Builds the workload-major × machine cell list of a Figure 2/3-style
/// sweep: for each name, one cell per machine (ooo then in-order).
pub fn cpu_cells(names: &[&'static str], scale: Scale, variants: &[Variant]) -> Vec<CpuCell> {
    cross2(names, &both_machines())
        .into_iter()
        .map(|(workload, machine)| CpuCell {
            workload,
            scale,
            machine,
            variants: variants.to_vec(),
        })
        .collect()
}

/// Fans a [`CpuCell`] list out across the pool, returning results in cell
/// order.
///
/// When `IMO_SERVE_ADDR` names a running [`crate::serve`] job server, the
/// cells are shipped there instead and the results stream back over TCP —
/// byte-identical to the in-process path, which is exactly what
/// `ci_gate --serve` asserts.
pub fn run_cpu_cells(name: &'static str, cells: Vec<CpuCell>) -> Vec<ExperimentResult> {
    if let Ok(addr) = std::env::var("IMO_SERVE_ADDR") {
        if !addr.trim().is_empty() {
            return crate::serve::run_cells_via_server(addr.trim(), name, cells);
        }
    }
    SweepSpec::new(name, cells).run(|_, cell| cell.run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_core::experiment::figure2_variants;

    #[test]
    fn cross_products_are_major_order() {
        assert_eq!(cross2(&[1, 2], &['a', 'b']), vec![(1, 'a'), (1, 'b'), (2, 'a'), (2, 'b')]);
        let c3 = cross3(&[1, 2], &['a'], &[true, false]);
        assert_eq!(c3, vec![(1, 'a', true), (1, 'a', false), (2, 'a', true), (2, 'a', false)]);
    }

    #[test]
    fn cpu_cells_enumerate_machines_per_workload() {
        let cells = cpu_cells(&["ora", "compress"], Scale::Test, &figure2_variants());
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].workload, "ora");
        assert_eq!(cells[0].machine.name(), "ooo");
        assert_eq!(cells[1].machine.name(), "in-order");
        assert_eq!(cells[2].workload, "compress");
    }

    #[test]
    fn sweep_results_are_thread_count_invariant() {
        let cells = cpu_cells(&["ora"], Scale::Test, &figure2_variants());
        let serial =
            SweepSpec::new("t", cells.clone()).run_on(&Pool::new(1), |_, c: CpuCell| c.run());
        let par = SweepSpec::new("t", cells).run_on(&Pool::new(4), |_, c: CpuCell| c.run());
        assert_eq!(serial, par);
    }

    #[test]
    fn memoized_computes_each_key_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let calls = AtomicU32::new(0);
        let before = memo_stats();
        let a = memoized("test/memo/unique-key-1", || {
            calls.fetch_add(1, Ordering::SeqCst);
            42u64
        });
        let b = memoized("test/memo/unique-key-1", || {
            calls.fetch_add(1, Ordering::SeqCst);
            99u64
        });
        assert_eq!(a, 42);
        assert_eq!(b, 42, "second call served from cache");
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        // Other tests share the process-wide cache, so only lower bounds on
        // the deltas are safe to assert.
        let after = memo_stats();
        assert!(after.requested >= before.requested + 2);
        assert!(after.simulated > before.simulated);
    }

    #[test]
    fn memo_stats_math() {
        let s = MemoStats {
            requested: 10,
            simulated: 4,
            served_disk: 2,
            disk_writes: 4,
            disk_rejected: 1,
        };
        assert_eq!(s.deduped(), 6);
        assert_eq!(s.served_memory(), 4);
        assert!((s.hit_rate() - 0.6).abs() < 1e-12);
        // 6 distinct cells were needed; 2 came from disk.
        assert!((s.disk_coverage_pct() - 100.0 * 2.0 / 6.0).abs() < 1e-12);
        let idle = MemoStats {
            requested: 0,
            simulated: 0,
            served_disk: 0,
            disk_writes: 0,
            disk_rejected: 0,
        };
        assert_eq!(idle.deduped(), 0);
        assert_eq!(idle.hit_rate(), 0.0);
        assert_eq!(idle.disk_coverage_pct(), 0.0);
    }

    #[test]
    fn memoized_stored_round_trips_through_the_disk_tier() {
        use imo_util::snapshot;
        let Some(store) = store() else {
            return; // IMO_STORE=off in this environment: nothing to test
        };
        let encode = |v: &u64| Json::obj([("v", snapshot::u64_json(*v))]);
        let decode = |j: &Json| snapshot::get_u64(j, "v");
        // A key unique to this test but stable across runs, so the second
        // `cargo test` in a workspace serves it from disk — either source
        // must produce the same value.
        let key = "test/memo/stored-round-trip";
        let v = memoized_stored(key, encode, decode, || 0x1996_u64);
        assert_eq!(v, 0x1996);
        if store.mode() == imo_util::store::StoreMode::ReadWrite {
            let payload = store.get(key).expect("entry persisted");
            assert_eq!(decode(&payload).expect("decodes"), 0x1996);
        }
    }

    #[test]
    fn matrix_reports_size() {
        let m = Matrix::new(vec![1, 2, 3]);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert!(Matrix::<u8>::new(vec![]).is_empty());
    }
}
