//! **§4.2.2, 100-instruction handlers**: with very expensive handlers,
//! miss-heavy applications slow down dramatically (paper: compress ~6×,
//! su2cor ~7×) while low-miss applications barely notice (paper: ora ~2 %).
//! The paper's suggested mitigation — sampling — is measured alongside:
//! the 100-instruction body runs on every 16th miss only.

use imo_core::experiment::{handler100_variants, ExperimentResult, Variant};
use imo_core::instrument::{HandlerBody, HandlerKind, Scheme};
use imo_workloads::Scale;

use crate::report::{emit, experiments_to_json, fmt_bars};
use crate::sweep::{cpu_cells, run_cpu_cells};
use imo_util::json::Json;

const WORKLOADS: [&str; 3] = ["compress", "su2cor", "ora"];

/// The 3-workload × 2-machine sweep results, workload-major.
pub struct Output {
    /// One result per (workload, machine) cell.
    pub results: Vec<ExperimentResult>,
}

/// The N / 100S / sampled-1-in-16 variant set.
#[must_use]
pub fn variants() -> Vec<Variant> {
    let mut variants = handler100_variants();
    variants.push(Variant {
        label: "100/16",
        scheme: Scheme::Trap {
            handlers: HandlerKind::Single,
            body: HandlerBody::SampledGeneric { len: 100, period: 16 },
        },
    });
    variants
}

/// Runs the sweep across the pool.
#[must_use]
pub fn compute() -> Output {
    Output {
        results: run_cpu_cells("handler100", cpu_cells(&WORKLOADS, Scale::Small, &variants())),
    }
}

/// The baseline payload.
#[must_use]
pub fn payload(out: &Output) -> Json {
    experiments_to_json(&out.results)
}

/// Prints the bar tables and the full-vs-sampled summary.
pub fn print(out: &Output) {
    println!("§4.2.2: generic miss handlers of 100 data-dependent instructions.\n");
    let mut summary = Vec::new();
    for res in &out.results {
        println!("{}", fmt_bars(res));
        let full = res.bars.iter().find(|b| b.label == "100S").expect("100S bar");
        let sampled = res.bars.iter().find(|b| b.label == "100/16").expect("sampled bar");
        summary.push(format!(
            "{} [{}]: {:.2}x full, {:.2}x sampled 1/16",
            res.workload, res.machine, full.total, sampled.total
        ));
    }
    println!("== summary (paper: compress ~6x, su2cor ~7x, ora ~1.02x; sampling mitigates) ==");
    for s in summary {
        println!("  {s}");
    }
}

/// The whole bench target: compute, print, write the baseline.
pub fn run() {
    let out = compute();
    print(&out);
    emit("handler100", payload(&out));
}
