//! Miss-attribution bench: profiles every workload on both machines under
//! the streaming "why did this miss" analyzer and gates its core invariant
//! **exactly** — every demand miss is classified into exactly one of
//! compulsory / coherence / capacity / conflict, so the class totals
//! reconcile with the cache's own miss counters. Coherence rows do the
//! same for the parallel simulator under all three access-control schemes.
//!
//! Fully deterministic: no wall-clock fields, every counter diffs exactly.

use imo_coherence::{simulate_observed, MachineParams, Scheme};
use imo_core::Machine;
use imo_faults::FaultPlan;
use imo_obs::{AttribConfig, Pattern, Recorder};
use imo_util::json::Json;
use imo_workloads::parallel::{migratory, TraceConfig};
use imo_workloads::{spec, Scale};

use crate::report::{emit, Table};
use crate::sweep::SweepSpec;

/// One workload × machine classification row.
pub struct CpuRow {
    /// Workload name.
    pub workload: &'static str,
    /// Machine name ("ooo" / "in-order").
    pub machine: &'static str,
    /// Demand references the analyzer saw.
    pub demand_refs: u64,
    /// Demand misses (== sum of `classes`).
    pub demand_misses: u64,
    /// Per-class totals: compulsory, coherence, capacity, conflict.
    pub classes: [u64; 4],
    /// Classes sum exactly to the cache's `l1d_misses`, and memory-served
    /// references to `l2_misses`.
    pub reconciled: bool,
    /// Attribution-on result is bit-identical to the plain run.
    pub passive: bool,
    /// Hottest missing PC (`0` if the run never missed).
    pub hot_pc: u64,
    /// Access pattern of the hottest PC.
    pub hot_pattern: String,
    /// Hot-PC taxonomy counts: fixed-stride, pointer-chase, irregular.
    pub patterns: [u64; 3],
}

/// One coherence-scheme classification row.
pub struct CohRow {
    /// Scheme name.
    pub scheme: &'static str,
    /// L1 misses classified (== simulator's `l1_misses`).
    pub classified: u64,
    /// Per-class totals: compulsory, coherence, capacity, conflict.
    pub classes: [u64; 4],
    /// Classes reconcile exactly with `SimResult` miss counters.
    pub reconciled: bool,
}

/// The full classification matrix.
pub struct Output {
    /// All workloads × both machines.
    pub cpu: Vec<CpuRow>,
    /// The migratory trace under all three schemes.
    pub coherence: Vec<CohRow>,
}

fn cpu_cell(name: &'static str) -> Vec<CpuRow> {
    let s = spec::by_name(name).expect("workload exists");
    let p = (s.build)(Scale::Test);
    let mut rows = Vec::new();
    for m in [Machine::default_ooo(), Machine::default_in_order()] {
        let plain = m.run(&p).expect("plain run");
        let mut rec = Recorder::disabled();
        rec.enable_attribution(m.attrib_config());
        let (res, _) = m.run_observed(&p, &mut rec).expect("observed run");
        let a = rec.attribution().expect("attribution enabled");
        let profile = a.profile(name);
        let mut patterns = [0u64; 3];
        for pc in &profile.pcs {
            patterns[match pc.pattern {
                Pattern::FixedStride(_) => 0,
                Pattern::PointerChase => 1,
                Pattern::Irregular => 2,
            }] += 1;
        }
        let hot = profile.pcs.first();
        rows.push(CpuRow {
            workload: name,
            machine: m.name(),
            demand_refs: a.cpu_demand_refs(),
            demand_misses: a.cpu_classified_total(),
            classes: a.cpu_classes(),
            reconciled: a.reconciles_cpu(res.mem.l1d_misses, res.mem.l2_misses),
            passive: res == plain,
            hot_pc: hot.map_or(0, |pc| pc.pc),
            hot_pattern: hot.map_or_else(|| "-".to_string(), |pc| pc.pattern.to_string()),
            patterns,
        });
    }
    rows
}

/// Runs the whole matrix: one pool cell per workload, plus the serial
/// three-scheme coherence section.
#[must_use]
pub fn compute() -> Output {
    let names: Vec<&'static str> = spec::all().into_iter().map(|s| s.name).collect();
    let cpu = SweepSpec::new("attrib", names)
        .run(|_, name| cpu_cell(name))
        .into_iter()
        .flatten()
        .collect();

    let cfg = TraceConfig { procs: 8, ops_per_proc: 4_000, seed: 0x1996 };
    let trace = migratory(&cfg);
    let params = MachineParams::table2();
    let coherence = Scheme::all()
        .iter()
        .map(|&scheme| {
            let mut rec = Recorder::disabled();
            rec.enable_attribution(AttribConfig::for_l1(params.l1_bytes, 1, params.line_bytes));
            let (res, _) = simulate_observed(&trace, scheme, &params, &FaultPlan::none(), &mut rec)
                .expect("zero-fault coherence run");
            let a = rec.attribution().expect("attribution enabled");
            CohRow {
                scheme: scheme.name(),
                classified: a.coh_classified_total(),
                classes: a.coh_classes(),
                reconciled: a.reconciles_coh(res.l1_misses, res.l2_misses),
            }
        })
        .collect();

    Output { cpu, coherence }
}

fn classes_json(classes: &[u64; 4]) -> [(&'static str, Json); 4] {
    let n = |v: u64| Json::Num(v as f64);
    [
        ("compulsory", n(classes[0])),
        ("coherence", n(classes[1])),
        ("capacity", n(classes[2])),
        ("conflict", n(classes[3])),
    ]
}

/// The baseline payload, with `reconciled` / `passive` proof bits on every
/// row.
#[must_use]
pub fn payload(out: &Output) -> Json {
    let n = |v: u64| Json::Num(v as f64);
    let cpu = out.cpu.iter().map(|row| {
        let mut fields = vec![
            ("workload", Json::from(row.workload)),
            ("machine", Json::from(row.machine)),
            ("demand_refs", n(row.demand_refs)),
            ("demand_misses", n(row.demand_misses)),
        ];
        fields.extend(classes_json(&row.classes));
        fields.extend([
            ("reconciled", Json::Bool(row.reconciled)),
            ("passive", Json::Bool(row.passive)),
            ("hot_pc", Json::from(format!("{:#x}", row.hot_pc))),
            ("hot_pattern", Json::from(row.hot_pattern.clone())),
            ("stride_pcs", n(row.patterns[0])),
            ("chase_pcs", n(row.patterns[1])),
            ("irregular_pcs", n(row.patterns[2])),
        ]);
        Json::obj(fields)
    });
    let coh = out.coherence.iter().map(|row| {
        let mut fields =
            vec![("scheme", Json::from(row.scheme)), ("classified", n(row.classified))];
        fields.extend(classes_json(&row.classes));
        fields.push(("reconciled", Json::Bool(row.reconciled)));
        Json::obj(fields)
    });
    Json::obj([("cpu", Json::arr(cpu)), ("coherence", Json::arr(coh))])
}

/// Prints the classification matrix.
///
/// # Panics
///
/// Panics if any row failed reconciliation or passivity.
pub fn print(out: &Output) {
    println!("MISS ATTRIBUTION. Exact per-class reconciliation on every workload.\n");
    let mut t = Table::new([
        "workload",
        "machine",
        "refs",
        "misses",
        "compulsory",
        "coherence",
        "capacity",
        "conflict",
        "hot pattern",
    ]);
    for row in &out.cpu {
        assert!(row.reconciled, "{}/{}: classes must reconcile exactly", row.workload, row.machine);
        assert!(row.passive, "{}/{}: attribution must be passive", row.workload, row.machine);
        t.row([
            row.workload.to_string(),
            row.machine.to_string(),
            row.demand_refs.to_string(),
            row.demand_misses.to_string(),
            row.classes[0].to_string(),
            row.classes[1].to_string(),
            row.classes[2].to_string(),
            row.classes[3].to_string(),
            row.hot_pattern.clone(),
        ]);
    }
    print!("{}", t.render());

    println!();
    let mut t =
        Table::new(["scheme", "classified", "compulsory", "coherence", "capacity", "conflict"]);
    for row in &out.coherence {
        assert!(row.reconciled, "{}: coherence classes must reconcile exactly", row.scheme);
        t.row([
            row.scheme.to_string(),
            row.classified.to_string(),
            row.classes[0].to_string(),
            row.classes[1].to_string(),
            row.classes[2].to_string(),
            row.classes[3].to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("\nall rows reconciled exactly; attribution bit-passive on every run");
}

/// The whole bench target: compute, print, write the baseline.
pub fn run() {
    let out = compute();
    print(&out);
    emit("attrib", payload(&out));
}
