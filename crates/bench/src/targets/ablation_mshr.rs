//! **§3.3 ablation**: MSHR lifetime extension. A squashed speculative
//! informing load must not silently install primary-cache state (it would
//! let a coherence access check be bypassed); the extended-MSHR mechanism
//! invalidates the line on squash, and the data usually remains in L2 — an
//! effective L2 prefetch. A two-cell sweep over the MSHR modes, driving the
//! MSHR machinery directly with a synthetic speculation trace.

use imo_mem::{Cache, CacheConfig, HierarchyConfig, MemoryHierarchy, MshrFile, MshrMode};
use imo_util::json::Json;

use crate::report::{emit, Table};
use crate::sweep::SweepSpec;

const SQUASH_LOADS: u64 = 3000;

/// Counters from one MSHR-mode replay.
pub struct Outcome {
    /// Mode display name.
    pub mode: &'static str,
    /// Squashed loads whose line stayed silently in L1.
    pub silent_installs: u64,
    /// Squash-driven L1 invalidations.
    pub invalidations: u64,
    /// Squashed lines still present in L2 (the prefetch effect).
    pub l2_prefetches: u64,
}

/// Both MSHR modes' outcomes, `[standard, extended]`.
pub struct Output {
    /// The sweep results in cell order.
    pub outcomes: Vec<Outcome>,
}

/// Replays N speculative informing loads, of which every third is squashed,
/// under the given MSHR mode.
fn replay(name: &'static str, mode: MshrMode, n: u64) -> Outcome {
    let mut l1 = Cache::new(CacheConfig::new(32 * 1024, 2, 32));
    let mut hier = MemoryHierarchy::new(HierarchyConfig::out_of_order());
    let mut mshrs = MshrFile::new(8, mode);
    let mut out = Outcome { mode: name, silent_installs: 0, invalidations: 0, l2_prefetches: 0 };

    for i in 0..n {
        let addr = 0x10_0000 + i * 4096; // every load cold-misses
        let _ = hier.probe_data(addr, false); // fills L1+L2 state
        l1.access(addr, false);
        let id = mshrs.allocate(hier.config().l1d.line_of(addr)).expect("mshr free");
        mshrs.note_fill(id);
        let squashed = i % 3 == 2;
        if squashed {
            if mshrs.squash(id, &mut l1).is_some() {
                out.invalidations += 1;
                hier.invalidate_l1d(addr);
            }
            if l1.contains(addr) {
                out.silent_installs += 1;
            }
            if hier.l2_contains(addr) {
                out.l2_prefetches += 1;
            }
        } else {
            mshrs.graduate(id);
        }
        mshrs.reap();
    }
    out
}

/// Runs both modes as a two-cell sweep.
#[must_use]
pub fn compute() -> Output {
    let cells =
        vec![("standard", MshrMode::Standard), ("extended lifetime", MshrMode::ExtendedLifetime)];
    let outcomes = SweepSpec::new("ablation_mshr", cells)
        .run(|_, (name, mode)| replay(name, mode, SQUASH_LOADS));
    Output { outcomes }
}

/// The baseline payload: one row per mode.
#[must_use]
pub fn payload(out: &Output) -> Json {
    Json::arr(out.outcomes.iter().map(|o| {
        Json::obj([
            ("mode", Json::from(o.mode)),
            ("squashed_loads", Json::from(SQUASH_LOADS / 3)),
            ("silent_l1_installs", Json::from(o.silent_installs)),
            ("squash_invalidations", Json::from(o.invalidations)),
            ("l2_prefetches", Json::from(o.l2_prefetches)),
        ])
    }))
}

/// Prints the per-mode table and the expected outcome.
pub fn print(out: &Output) {
    println!("§3.3 ablation: MSHR lifetime extension for squashed speculative informing loads.\n");
    let mut t = Table::new([
        "MSHR mode",
        "squashed loads",
        "silent L1 installs",
        "squash invalidations",
        "lines left in L2 (prefetch effect)",
    ]);
    for o in &out.outcomes {
        t.row([
            o.mode.to_string(),
            (SQUASH_LOADS / 3).to_string(),
            o.silent_installs.to_string(),
            o.invalidations.to_string(),
            o.l2_prefetches.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nexpected: the standard mode leaves every squashed load's line in L1 (unsafe for\n\
         access control); the extended mode invalidates all of them while the data stays\n\
         in L2, so the squashed load acted as an L2 prefetch."
    );
}

/// The whole bench target: compute, print, write the baseline.
pub fn run() {
    let out = compute();
    print(&out);
    emit("ablation_mshr", payload(&out));
}
