//! **Table 1**: simulation parameters for the two superscalar processor
//! models, straight from the configuration structs the simulators actually
//! run with — so the printed table cannot drift from the code. Also prints
//! the Figure 1 pipeline notes for the in-order model.

use imo_cpu::{InOrderConfig, OooConfig};
use imo_isa::{Instr, Reg};
use imo_util::json::Json;

use crate::report::{emit, Table};

/// The two rendered parameter tables.
pub struct Output {
    /// Pipeline-parameter table.
    pub pipeline: Table,
    /// Memory-parameter table.
    pub memory: Table,
    /// Replay-trap penalty for the Figure 1 notes.
    pub replay_trap_penalty: u64,
    /// Front-end depth for the Figure 1 notes.
    pub frontend_depth: u64,
}

/// Builds both tables from the paper configurations.
#[must_use]
pub fn compute() -> Output {
    let o = OooConfig::paper();
    let i = InOrderConfig::paper();

    let mut t = Table::new(["Pipeline Parameters", "Out-Of-Order", "In-Order"]);
    t.row(["Issue Width", &o.issue_width.to_string(), &i.issue_width.to_string()]);
    t.row([
        "Functional Units",
        &format!(
            "{} INT, {} FP, {} Branch, {} Memory",
            o.int_units, o.fp_units, o.branch_units, o.mem_units
        ),
        &format!("{} INT, {} FP, {} Branch", i.int_units, i.fp_units, i.branch_units),
    ]);
    t.row(["Reorder Buffer Size", &o.rob_entries.to_string(), "N/A"]);
    let r = Reg::int(1);
    let f = Reg::fp(1);
    let lat = |ins: &Instr| (o.latency(ins), i.latency(ins));
    let rows: [(&str, Instr); 5] = [
        ("Integer Multiply", Instr::Mul { rd: r, rs: r, rt: r }),
        ("Integer Divide", Instr::Div { rd: r, rs: r, rt: r }),
        ("FP Divide", Instr::Fdiv { fd: f, fs: f, ft: f }),
        ("FP Square Root", Instr::Fsqrt { fd: f, fs: f }),
        ("All Other FP", Instr::Fadd { fd: f, fs: f, ft: f }),
    ];
    for (name, ins) in rows {
        let (a, b) = lat(&ins);
        t.row([name, &format!("{a} cycles"), &format!("{b} cycles")]);
    }
    t.row(["Branch Prediction Scheme", "2-bit Counters", "2-bit Counters"]);

    let mut m = Table::new(["Memory Parameters", "Out-Of-Order", "In-Order"]);
    m.row(["Primary I and D Caches".to_string(), o.hier.l1d.to_string(), i.hier.l1d.to_string()]);
    m.row(["Unified Secondary Cache".to_string(), o.hier.l2.to_string(), i.hier.l2.to_string()]);
    m.row([
        "Primary-to-Secondary Miss Latency".to_string(),
        format!("{} cycles", o.hier.l2_latency),
        format!("{} cycles", i.hier.l2_latency),
    ]);
    m.row([
        "Primary-to-Memory Miss Latency".to_string(),
        format!("{} cycles", o.hier.mem_latency),
        format!("{} cycles", i.hier.mem_latency),
    ]);
    m.row(["MSHRs".to_string(), o.hier.mshrs.to_string(), i.hier.mshrs.to_string()]);
    m.row(["Data Cache Banks".to_string(), o.hier.banks.to_string(), i.hier.banks.to_string()]);
    m.row([
        "Data Cache Fill Time".to_string(),
        format!("{} cycles", o.hier.fill_cycles),
        format!("{} cycles", i.hier.fill_cycles),
    ]);
    m.row([
        "Main Memory Bandwidth".to_string(),
        format!("1 access per {} cycles", o.hier.mem_cycles_per_access),
        format!("1 access per {} cycles", i.hier.mem_cycles_per_access),
    ]);

    Output {
        pipeline: t,
        memory: m,
        replay_trap_penalty: i.replay_trap_penalty,
        frontend_depth: i.frontend_depth,
    }
}

/// The baseline payload: both tables as JSON.
#[must_use]
pub fn payload(out: &Output) -> Json {
    Json::obj([("pipeline", out.pipeline.to_json()), ("memory", out.memory.to_json())])
}

/// Prints both tables and the Figure 1 notes.
pub fn print(out: &Output) {
    println!("TABLE 1. Simulation parameters for superscalar processors.\n");
    print!("{}", out.pipeline.render());
    println!();
    print!("{}", out.memory.render());
    println!(
        "\nFIGURE 1 (notes): the in-order model follows the Alpha 21164 discipline —\n\
         presence-bit issue, no post-issue stalls, replay trap on hit-speculated\n\
         consumers of missing loads (penalty {} cycles), {}-deep front end.\n",
        out.replay_trap_penalty, out.frontend_depth
    );
}

/// The whole bench target: compute, print, write the baseline.
pub fn run() {
    let out = compute();
    print(&out);
    emit("table1", payload(&out));
}
