//! **Fault-resilience sweep**: the §4.3 coherence protocol on an
//! *unreliable* interconnect, across message-loss rates and retry/backoff
//! policies. Two matrices fanned out across the pool:
//!
//! 1. **Zero-fault identity** — an app × scheme sweep proving a run driven
//!    by an all-zero `FaultPlan` is bit-identical to the fault-free
//!    baseline (the fault hooks may cost nothing when no fault fires).
//! 2. **Recovery cost** — a policy × drop-rate sweep of completion-time
//!    slowdown vs the fault-free run, plus retry and timeout counters.

use imo_coherence::{simulate_faulty, BackoffPolicy, MachineParams, Scheme};
use imo_faults::{FaultConfig, FaultPlan};
use imo_util::json::Json;
use imo_workloads::parallel::{all_apps, migratory, TraceConfig};

use crate::report::{emit, Table};
use crate::runners::memoized_baseline;
use crate::sweep::{cross2, SweepSpec};

const DROP_RATES: [f64; 5] = [0.0, 0.02, 0.05, 0.10, 0.20];
const FAULT_SEED: u64 = 0x1996;

fn policies() -> [(&'static str, BackoffPolicy); 3] {
    let default = MachineParams::table2().backoff;
    let aggressive = BackoffPolicy { base: 100, multiplier: 2, cap: 1_000, max_retries: 32 };
    let conservative = BackoffPolicy { base: 1_000, multiplier: 4, cap: 32_000, max_retries: 16 };
    [("aggressive", aggressive), ("default", default), ("conservative", conservative)]
}

fn trace_config() -> TraceConfig {
    TraceConfig { procs: 8, ops_per_proc: 8_000, seed: 0x1996 }
}

/// One sweep cell's outcome.
pub struct SweepCell {
    /// Backoff policy name.
    pub policy: &'static str,
    /// The policy's parameters.
    pub backoff: BackoffPolicy,
    /// Message drop rate.
    pub drop_rate: f64,
    /// The faulty run's result.
    pub result: imo_coherence::SimResult,
}

/// Identity proof plus the policy × rate sweep.
pub struct Output {
    /// `(app, scheme, identical)` per identity cell; all must be true.
    pub identity: Vec<(&'static str, &'static str, bool)>,
    /// Fault-free baseline cycles of the sweep trace.
    pub baseline_cycles: u64,
    /// The policy-major × drop-rate sweep.
    pub sweep: Vec<SweepCell>,
}

/// Runs both matrices across the pool.
///
/// # Panics
///
/// Panics if a zero-fault run differs from the baseline (the identity
/// proof) or a sweep run fails to recover via retry.
#[must_use]
pub fn compute() -> Output {
    let cfg = trace_config();
    let params = MachineParams::table2();

    // 1. Zero-fault identity across every app and scheme.
    let id_cells = cross2(&all_apps(&cfg), &Scheme::all());
    let identity = SweepSpec::new("fault_identity", id_cells).run(|_, (app, scheme)| {
        let base = memoized_baseline(&app, scheme, &params);
        let faulty = simulate_faulty(&app, scheme, &params, &FaultPlan::none())
            .expect("zero-fault run completes");
        (app.name, scheme.name(), base == faulty)
    });

    // 2. Drop-rate x backoff-policy sweep on the migratory app.
    // Dedups against the identity sweep's migratory/informing cell above.
    let trace = migratory(&cfg);
    let base = memoized_baseline(&trace, Scheme::Informing, &params);
    let cells = cross2(&policies(), &DROP_RATES);
    let sweep = SweepSpec::new("fault_resilience", cells).run(|_, ((name, backoff), rate)| {
        let mut p = params;
        p.backoff = backoff;
        let mut fc = FaultConfig::none(FAULT_SEED);
        fc.drop_rate = rate;
        let result = simulate_faulty(&trace, Scheme::Informing, &p, &FaultPlan::new(fc))
            .expect("sweep rates recover via retry");
        SweepCell { policy: name, backoff, drop_rate: rate, result }
    });

    Output { identity, baseline_cycles: base.total_cycles, sweep }
}

/// Whether every zero-fault run was bit-identical to its baseline.
#[must_use]
pub fn all_identical(out: &Output) -> bool {
    out.identity.iter().all(|(_, _, ok)| *ok)
}

/// The baseline payload.
#[must_use]
pub fn payload(out: &Output) -> Json {
    let base = out.baseline_cycles;
    let rows = out.sweep.iter().map(|c| {
        Json::obj([
            ("policy", Json::from(c.policy)),
            ("base", Json::from(c.backoff.base)),
            ("multiplier", Json::from(c.backoff.multiplier)),
            ("cap", Json::from(c.backoff.cap)),
            ("drop_rate", Json::from(c.drop_rate)),
            ("total_cycles", Json::from(c.result.total_cycles)),
            ("slowdown", Json::from(c.result.total_cycles as f64 / base as f64)),
            ("retries", Json::from(c.result.retries)),
            ("timeouts", Json::from(c.result.timeouts)),
            ("dropped_msgs", Json::from(c.result.dropped_msgs)),
            ("nacks", Json::from(c.result.nacks)),
        ])
    });
    Json::obj([
        ("zero_fault_identical", Json::Bool(all_identical(out))),
        ("baseline_cycles", Json::from(base)),
        ("sweep", Json::arr(rows)),
    ])
}

/// Prints the identity verdict and the sweep table.
///
/// # Panics
///
/// Panics if any zero-fault run differed from its baseline.
pub fn print(out: &Output) {
    println!("FAULT RESILIENCE. Coherence protocol recovery on a lossy interconnect.");
    println!("(migratory app, Table 2 machine; slowdown vs the fault-free run)\n");

    for (app, scheme, ok) in &out.identity {
        if !ok {
            eprintln!("MISMATCH: {app}/{scheme} differs under the zero-fault plan");
        }
    }
    assert!(all_identical(out), "zero-fault runs must be bit-identical to the baseline");
    println!("zero-fault identity: all apps x schemes bit-identical to baseline\n");

    let mut t =
        Table::new(["policy", "drop rate", "slowdown", "retries", "timeouts", "backoff cycles"]);
    for c in &out.sweep {
        t.row([
            c.policy.to_string(),
            format!("{:.2}", c.drop_rate),
            format!("{:.3}", c.result.total_cycles as f64 / out.baseline_cycles as f64),
            c.result.retries.to_string(),
            c.result.timeouts.to_string(),
            format!("{}..{}", c.backoff.delay(0), c.backoff.cap),
        ]);
    }
    print!("{}", t.render());
}

/// The whole bench target: compute, print, write the baseline.
pub fn run() {
    let out = compute();
    print(&out);
    emit("fault_resilience", payload(&out));
}
