//! **§4.2.2, branch-vs-exception**: on the out-of-order machine the
//! informing trap can be taken as soon as the miss is detected
//! (mispredicted-branch treatment) or postponed until the operation reaches
//! the head of the reorder buffer (exception treatment). The paper measured
//! the exception treatment 9 % / 7 % slower on `compress` with 1- /
//! 10-instruction handlers. A handler-length × trap-model sweep.

use imo_core::experiment::{run_experiment, Variant};
use imo_core::instrument::{HandlerBody, HandlerKind, Scheme};
use imo_core::Machine;
use imo_cpu::{OooConfig, RunLimits, TrapModel};
use imo_util::json::Json;
use imo_workloads::{by_name, Scale};

use crate::report::emit;
use crate::sweep::{cross2, SweepSpec};

/// One cell's outcome: the instrumented run under one trap model.
pub struct Cell {
    /// Generic handler length (1 or 10 instructions).
    pub handler_len: u32,
    /// Branch or Exception treatment.
    pub trap_model: TrapModel,
    /// Cycles of the instrumented (S) run.
    pub cycles: u64,
    /// S-run time normalized to the uninstrumented N run.
    pub norm_time: f64,
}

/// All four cells, handler-length-major, `[Branch, Exception]` inner.
pub struct Output {
    /// The sweep results in cell order.
    pub cells: Vec<Cell>,
}

/// Runs the 2 × 2 sweep across the pool.
///
/// # Panics
///
/// Panics if `compress` is missing or a simulation fails.
#[must_use]
pub fn compute() -> Output {
    let spec = by_name("compress").expect("compress exists");
    let program = (spec.build)(Scale::Small);
    let cells = cross2(&[1u32, 10], &[TrapModel::Branch, TrapModel::Exception]);
    let results = SweepSpec::new("branch_vs_exception", cells).run(|_, (len, trap_model)| {
        let variants = [
            Variant { label: "N", scheme: Scheme::None },
            Variant {
                label: "S",
                scheme: Scheme::Trap {
                    handlers: HandlerKind::Single,
                    body: HandlerBody::Generic { len },
                },
            },
        ];
        let mut cfg = OooConfig::paper();
        cfg.trap_model = trap_model;
        let res = run_experiment(
            "compress",
            &program,
            &Machine::OutOfOrder(cfg),
            &variants,
            RunLimits::default(),
        )
        .expect("experiment runs");
        let s = res.raw.iter().find(|(l, _)| *l == "S").expect("S ran").1;
        let norm = res.bars.iter().find(|b| b.label == "S").expect("S bar").total;
        Cell { handler_len: len, trap_model, cycles: s.cycles, norm_time: norm }
    });
    Output { cells: results }
}

/// The baseline payload: one row per cell.
#[must_use]
pub fn payload(out: &Output) -> Json {
    Json::arr(out.cells.iter().map(|c| {
        Json::obj([
            ("handler_len", Json::from(u64::from(c.handler_len))),
            ("trap_model", Json::Str(format!("{:?}", c.trap_model))),
            ("cycles", Json::from(c.cycles)),
            ("norm_time", Json::from(c.norm_time)),
        ])
    }))
}

/// Prints per-model cycles and the exception-vs-branch slowdowns.
pub fn print(out: &Output) {
    println!(
        "§4.2.2: informing trap handled as mispredicted branch vs exception (compress, ooo).\n"
    );
    for pair in out.cells.chunks_exact(2) {
        for c in pair {
            println!(
                "{:>3}-instr handler, {:?}: {} cycles (norm {:.3})",
                c.handler_len, c.trap_model, c.cycles, c.norm_time
            );
        }
        let slowdown = pair[1].cycles as f64 / pair[0].cycles as f64 - 1.0;
        println!(
            "  exception vs branch: +{:.1}% (paper: +{}%)\n",
            slowdown * 100.0,
            if pair[0].handler_len == 1 { 9 } else { 7 }
        );
    }
}

/// The whole bench target: compute, print, write the baseline.
pub fn run() {
    let out = compute();
    print(&out);
    emit("branch_vs_exception", payload(&out));
}
