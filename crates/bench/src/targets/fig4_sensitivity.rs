//! **§4.3.2 sensitivity**: "either smaller network latencies or larger
//! primary cache sizes tend to improve the relative performance of the
//! informing memory implementation." Two parameter sweeps, each point a
//! full app × scheme matrix fanned out across the pool.

use imo_coherence::MachineParams;
use imo_util::json::Json;
use imo_workloads::parallel::TraceConfig;

use crate::report::{emit, Table};
use crate::runners::fig4_rows;

const MSG_LATENCIES: [u64; 3] = [300, 900, 1800];
const L1_KBS: [u64; 3] = [8, 16, 64];

/// One sweep point: the parameter value and the two average advantages.
pub struct Point {
    /// The swept parameter value (cycles or KB).
    pub value: u64,
    /// Average ref-check time over informing time.
    pub refcheck_over_informing: f64,
    /// Average ECC time over informing time.
    pub ecc_over_informing: f64,
}

/// Both parameter sweeps.
pub struct Output {
    /// Network-latency sweep points.
    pub latency: Vec<Point>,
    /// L1-size sweep points.
    pub l1: Vec<Point>,
}

fn advantage(cfg: &TraceConfig, params: &MachineParams) -> (f64, f64) {
    let rows = fig4_rows(cfg, params);
    let n = rows.len() as f64;
    let rc: f64 = rows.iter().map(|r| r.normalized[0]).sum::<f64>() / n;
    let ecc: f64 = rows.iter().map(|r| r.normalized[1]).sum::<f64>() / n;
    (rc, ecc)
}

/// Runs both sweeps.
#[must_use]
pub fn compute() -> Output {
    let cfg = TraceConfig::default();
    let latency = MSG_LATENCIES
        .iter()
        .map(|&latency| {
            let mut p = MachineParams::table2();
            p.msg_latency = latency;
            let (rc, ecc) = advantage(&cfg, &p);
            Point { value: latency, refcheck_over_informing: rc, ecc_over_informing: ecc }
        })
        .collect();
    let l1 = L1_KBS
        .iter()
        .map(|&l1| {
            let mut p = MachineParams::table2();
            p.l1_bytes = l1 * 1024;
            let (rc, ecc) = advantage(&cfg, &p);
            Point { value: l1, refcheck_over_informing: rc, ecc_over_informing: ecc }
        })
        .collect();
    Output { latency, l1 }
}

/// The baseline payload: both sweeps.
#[must_use]
pub fn payload(out: &Output) -> Json {
    let lat_rows = out.latency.iter().map(|p| {
        Json::obj([
            ("msg_latency", Json::from(p.value)),
            ("refcheck_over_informing", Json::from(p.refcheck_over_informing)),
            ("ecc_over_informing", Json::from(p.ecc_over_informing)),
        ])
    });
    let l1_rows = out.l1.iter().map(|p| {
        Json::obj([
            ("l1_kb", Json::from(p.value)),
            ("refcheck_over_informing", Json::from(p.refcheck_over_informing)),
            ("ecc_over_informing", Json::from(p.ecc_over_informing)),
        ])
    });
    Json::obj([("msg_latency_sweep", Json::arr(lat_rows)), ("l1_size_sweep", Json::arr(l1_rows))])
}

/// Prints both sweep tables with the expected trends.
pub fn print(out: &Output) {
    println!("§4.3.2 sensitivity: informing's average advantage vs network latency and L1 size.\n");

    let mut t = Table::new(["1-way msg latency", "ref-check / informing", "ecc / informing"]);
    for p in &out.latency {
        t.row([
            format!("{} cycles", p.value),
            format!("{:.3}", p.refcheck_over_informing),
            format!("{:.3}", p.ecc_over_informing),
        ]);
    }
    print!("{}", t.render());
    println!("(expected: advantage grows as the network gets faster)\n");

    let mut t = Table::new(["L1 size", "ref-check / informing", "ecc / informing"]);
    for p in &out.l1 {
        t.row([
            format!("{} KB", p.value),
            format!("{:.3}", p.refcheck_over_informing),
            format!("{:.3}", p.ecc_over_informing),
        ]);
    }
    print!("{}", t.render());
    println!("(expected: advantage grows with the primary cache — fewer capacity misses inform)");
}

/// The whole bench target: compute, print, write the baseline.
pub fn run() {
    let out = compute();
    print(&out);
    emit("fig4_sensitivity", payload(&out));
}
