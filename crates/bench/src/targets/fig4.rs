//! **Figure 4**: normalized execution times of the three fine-grained
//! access-control methods on five parallel applications under the Table 2
//! machine — an app × scheme sweep. The paper's findings: the
//! informing-memory scheme always wins (on average 18 % faster than ECC and
//! 24 % faster than reference checking), while the relative order of the
//! other two fluctuates with application parameters.

use imo_coherence::MachineParams;
use imo_util::json::Json;
use imo_workloads::parallel::TraceConfig;

use crate::report::{emit, fig4_to_json, Table};
use crate::runners::{fig4_rows, Fig4Row};

/// The five application rows.
pub struct Output {
    /// Per-app results under the three schemes.
    pub rows: Vec<Fig4Row>,
}

/// Runs the 5-app × 3-scheme sweep on the Table 2 machine (16 processors).
#[must_use]
pub fn compute() -> Output {
    Output { rows: fig4_rows(&TraceConfig::default(), &MachineParams::table2()) }
}

/// The baseline payload.
#[must_use]
pub fn payload(out: &Output) -> Json {
    fig4_to_json(&out.rows)
}

/// Prints the normalized-time table, the averages, and per-app detail.
pub fn print(out: &Output) {
    println!("FIGURE 4. Normalized execution times for three access control methods.");
    println!("(normalized to the informing-memory scheme; lower is better)\n");

    let rows = &out.rows;
    let mut t = Table::new(["application", "ref-check", "ecc", "informing", "winner"]);
    let (mut rc_sum, mut ecc_sum) = (0.0, 0.0);
    for r in rows {
        let winner = if r.normalized[0] >= 1.0 && r.normalized[1] >= 1.0 {
            "informing"
        } else {
            "NOT informing (!)"
        };
        t.row([
            r.app.to_string(),
            format!("{:.3}", r.normalized[0]),
            format!("{:.3}", r.normalized[1]),
            format!("{:.3}", r.normalized[2]),
            winner.to_string(),
        ]);
        rc_sum += r.normalized[0];
        ecc_sum += r.normalized[1];
    }
    print!("{}", t.render());

    let n = rows.len() as f64;
    println!("\n== summary ==");
    println!(
        "informing is on average {:.1}% faster than reference checking (paper: 24%)",
        (rc_sum / n - 1.0) * 100.0
    );
    println!(
        "informing is on average {:.1}% faster than the ECC scheme (paper: 18%)",
        (ecc_sum / n - 1.0) * 100.0
    );
    let rc_beats_ecc = rows.iter().filter(|r| r.normalized[0] < r.normalized[1]).count();
    println!(
        "reference checking beats ECC on {rc_beats_ecc} of {} apps (paper: the order fluctuates)",
        rows.len()
    );

    println!("\nper-app detail:");
    let mut d = Table::new(["application", "scheme", "lookups", "faults", "actions", "L1 misses"]);
    for r in rows {
        for res in &r.results {
            d.row([
                r.app.to_string(),
                res.scheme.name().to_string(),
                res.lookups.to_string(),
                res.faults.to_string(),
                res.actions.to_string(),
                res.l1_misses.to_string(),
            ]);
        }
    }
    print!("{}", d.render());
}

/// The whole bench target: compute, print, write the baseline.
pub fn run() {
    let out = compute();
    print(&out);
    emit("fig4", payload(&out));
}
