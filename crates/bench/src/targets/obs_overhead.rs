//! Observability-overhead bench: proves the recorder is free when disabled
//! and measures what it costs when enabled.
//!
//! 1. **Identity** — a workload × machine sweep (fanned out across the
//!    pool): runs under a disabled and a fully-enabled recorder must return
//!    results *bit-identical* to the unobserved run, and likewise for the
//!    coherence simulator on every scheme.
//! 2. **Wall-clock overhead** — host time for the plain, disabled-recorder,
//!    full-recorder and attribution-on runs of a representative kernel on
//!    each machine; serial, for timing fidelity. The attribution column is
//!    additionally bounded by a hard ceiling ([`ATTRIB_CEILING`]).

use imo_coherence::{simulate_baseline, simulate_observed, MachineParams, Scheme};
use imo_core::Machine;
use imo_cpu::{inorder, ooo, InOrderConfig, OooConfig, RunLimits};
use imo_faults::FaultPlan;
use imo_obs::Recorder;
use imo_util::json::Json;
use imo_util::Bench;
use imo_workloads::parallel::{migratory, TraceConfig};
use imo_workloads::{spec, Scale};

use crate::report::{emit, Table};
use crate::sweep::SweepSpec;

/// Hard ceiling on the attribution-on / plain wall-clock ratio. The
/// streaming analyzer is O(log window) per access, so anything past this
/// is a real regression, not host noise.
pub const ATTRIB_CEILING: f64 = 10.0;

/// A disabled recorder with the miss-attribution analyzer attached —
/// the `why_miss` configuration.
fn attrib_recorder(m: &Machine) -> Recorder {
    let mut rec = Recorder::disabled();
    rec.enable_attribution(m.attrib_config());
    rec
}

/// The identity proofs and host timings.
pub struct Output {
    /// Per-workload CPU identity failures (`workload/machine recorder`).
    pub cpu_mismatches: Vec<String>,
    /// Per-scheme coherence identity failures.
    pub coh_mismatches: Vec<String>,
    /// The host-time bench runner.
    pub bench: Bench,
}

/// Checks one workload on both machines under both recorder modes,
/// returning mismatch descriptions (empty = bit-identical).
fn cpu_identity(name: &'static str) -> Vec<String> {
    let s = spec::by_name(name).expect("workload exists");
    let p = (s.build)(Scale::Test);
    let mut mismatches = Vec::new();
    for m in [Machine::default_ooo(), Machine::default_in_order()] {
        let plain = m.run(&p).expect("runs");
        let modes = [
            ("disabled", Recorder::disabled()),
            ("full", Recorder::all()),
            ("attrib", attrib_recorder(&m)),
        ];
        for (label, mut rec) in modes {
            let (o, _) = m.run_observed(&p, &mut rec).expect("runs");
            if o != plain {
                mismatches.push(format!("{name}/{} differs under the {label} recorder", m.name()));
            }
        }
    }
    mismatches
}

/// Runs the identity sweeps and the serial wall-clock section.
#[must_use]
pub fn compute() -> Output {
    // 1. Identity: one sweep cell per workload (each checks both machines
    //    and both recorder modes).
    let names: Vec<&'static str> = spec::all().into_iter().map(|s| s.name).collect();
    let cpu_mismatches = SweepSpec::new("obs_identity", names)
        .run(|_, name| cpu_identity(name))
        .into_iter()
        .flatten()
        .collect();

    let cfg = TraceConfig { procs: 8, ops_per_proc: 4_000, seed: 0x1996 };
    let trace = migratory(&cfg);
    let params = MachineParams::table2();
    let coh_mismatches = SweepSpec::new("obs_identity_coh", Scheme::all().to_vec())
        .run(|_, scheme| {
            let base = simulate_baseline(&trace, scheme, &params);
            let mut rec = Recorder::all();
            let (o, _) = simulate_observed(&trace, scheme, &params, &FaultPlan::none(), &mut rec)
                .expect("zero-fault run completes");
            (o != base).then(|| format!("coherence/{} differs under the recorder", scheme.name()))
        })
        .into_iter()
        .flatten()
        .collect();

    // 2. Host-time overhead on a representative kernel per machine (serial).
    let mut b = Bench::new("obs_overhead");
    let p = (spec::by_name("compress").expect("compress exists").build)(Scale::Test);
    b.bench_sampled("ooo/plain", 5, || {
        ooo::simulate(&p, &OooConfig::paper(), RunLimits::default()).expect("runs")
    });
    b.bench_sampled("ooo/disabled_recorder", 5, || {
        let mut rec = Recorder::disabled();
        ooo::simulate_observed(&p, &OooConfig::paper(), RunLimits::default(), &mut rec)
            .expect("runs")
            .0
    });
    b.bench_sampled("ooo/full_recorder", 5, || {
        let mut rec = Recorder::all();
        ooo::simulate_observed(&p, &OooConfig::paper(), RunLimits::default(), &mut rec)
            .expect("runs")
            .0
    });
    b.bench_sampled("ooo/attrib_recorder", 5, || {
        let mut rec = attrib_recorder(&Machine::default_ooo());
        ooo::simulate_observed(&p, &OooConfig::paper(), RunLimits::default(), &mut rec)
            .expect("runs")
            .0
    });
    b.bench_sampled("inorder/plain", 5, || {
        inorder::simulate(&p, &InOrderConfig::paper(), RunLimits::default()).expect("runs")
    });
    b.bench_sampled("inorder/disabled_recorder", 5, || {
        let mut rec = Recorder::disabled();
        inorder::simulate_observed(&p, &InOrderConfig::paper(), RunLimits::default(), &mut rec)
            .expect("runs")
            .0
    });
    b.bench_sampled("inorder/full_recorder", 5, || {
        let mut rec = Recorder::all();
        inorder::simulate_observed(&p, &InOrderConfig::paper(), RunLimits::default(), &mut rec)
            .expect("runs")
            .0
    });
    b.bench_sampled("inorder/attrib_recorder", 5, || {
        let mut rec = attrib_recorder(&Machine::default_in_order());
        inorder::simulate_observed(&p, &InOrderConfig::paper(), RunLimits::default(), &mut rec)
            .expect("runs")
            .0
    });

    Output { cpu_mismatches, coh_mismatches, bench: b }
}

fn overheads(out: &Output) -> Vec<(String, f64, f64, f64)> {
    let median = |id: &str| -> f64 {
        out.bench.results().iter().find(|r| r.id == id).map_or(0.0, |r| r.median_ns)
    };
    let ratio = |num: &str, den: &str| -> f64 {
        let d = median(den);
        if d == 0.0 {
            0.0
        } else {
            median(num) / d
        }
    };
    ["ooo", "inorder"]
        .iter()
        .map(|m| {
            (
                (*m).to_string(),
                ratio(&format!("{m}/disabled_recorder"), &format!("{m}/plain")),
                ratio(&format!("{m}/full_recorder"), &format!("{m}/plain")),
                ratio(&format!("{m}/attrib_recorder"), &format!("{m}/plain")),
            )
        })
        .collect()
}

/// The baseline payload, including the identity proof obligations.
#[must_use]
pub fn payload(out: &Output) -> Json {
    let identical = out.cpu_mismatches.is_empty();
    let coh_identical = out.coh_mismatches.is_empty();
    let within_ceiling =
        overheads(out).iter().all(|&(_, _, _, attrib)| attrib > 0.0 && attrib <= ATTRIB_CEILING);
    let rows = overheads(out).into_iter().map(|(m, disabled, full, attrib)| {
        Json::obj([
            ("machine", Json::from(m)),
            ("disabled_over_plain", Json::from(disabled)),
            ("full_over_plain", Json::from(full)),
            ("attrib_over_plain", Json::from(attrib)),
        ])
    });
    Json::obj([
        ("disabled_identical", Json::Bool(identical)),
        ("full_identical", Json::Bool(identical)),
        ("attrib_identical", Json::Bool(identical)),
        ("coherence_identical", Json::Bool(coh_identical)),
        ("attrib_within_ceiling", Json::Bool(within_ceiling)),
        ("attrib_ceiling", Json::from(ATTRIB_CEILING)),
        ("overheads", Json::arr(rows)),
        ("timings", out.bench.to_json()),
    ])
}

/// Prints the identity verdicts and the timing/overhead tables.
///
/// # Panics
///
/// Panics if any observed run differed from its unobserved twin.
pub fn print(out: &Output) {
    println!("OBSERVABILITY OVERHEAD. Recorder identity + host-time cost.\n");
    for m in out.cpu_mismatches.iter().chain(&out.coh_mismatches) {
        eprintln!("MISMATCH: {m}");
    }
    assert!(out.cpu_mismatches.is_empty(), "observed CPU runs must be bit-identical to plain runs");
    assert!(
        out.coh_mismatches.is_empty(),
        "observed coherence runs must be bit-identical to baseline"
    );
    println!("identity: all workloads x machines bit-identical under the recorder\n");

    print!("{}", out.bench.render());
    let mut t = Table::new(["machine", "disabled / plain", "full / plain", "attrib / plain"]);
    for (m, disabled, full, attrib) in overheads(out) {
        assert!(
            attrib > 0.0 && attrib <= ATTRIB_CEILING,
            "{m}: attribution overhead {attrib:.3}x exceeds the {ATTRIB_CEILING}x ceiling"
        );
        t.row([m, format!("{disabled:.3}x"), format!("{full:.3}x"), format!("{attrib:.3}x")]);
    }
    println!();
    print!("{}", t.render());
    println!("\nattribution overhead within the hard {ATTRIB_CEILING}x ceiling on both machines");
}

/// The whole bench target: compute, print, write the baseline.
pub fn run() {
    let out = compute();
    print(&out);
    emit("obs_overhead", payload(&out));
}
