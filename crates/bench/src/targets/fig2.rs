//! **Figure 2**: normalized execution time with generic miss handlers of 1
//! and 10 instructions, for thirteen SPEC92-like benchmarks (`su2cor` is
//! Figure 3) on both processor models — a workload × machine sweep.

use imo_core::experiment::{figure2_variants, ExperimentResult};
use imo_workloads::{all, Scale};

use crate::report::{emit, experiments_to_json, fmt_bars};
use crate::sweep::{cpu_cells, run_cpu_cells};
use imo_util::json::Json;

/// The collected workload × machine experiment results, in cell order.
pub struct Output {
    /// One result per (workload, machine) cell, workload-major.
    pub results: Vec<ExperimentResult>,
}

/// Runs the 13-workload × 2-machine × 5-variant sweep across the pool.
#[must_use]
pub fn compute() -> Output {
    let names: Vec<&'static str> =
        all().into_iter().map(|s| s.name).filter(|n| *n != "su2cor").collect();
    Output { results: run_cpu_cells("fig2", cpu_cells(&names, Scale::Small, &figure2_variants())) }
}

/// The baseline payload (all per-variant reports plus normalized bars).
#[must_use]
pub fn payload(out: &Output) -> Json {
    experiments_to_json(&out.results)
}

/// Prints every bar table plus the worst-case / over-40 % summary.
pub fn print(out: &Output) {
    println!("FIGURE 2. Performance of generic miss handlers (1 and 10 instructions).\n");
    let mut worst: (f64, String) = (0.0, String::new());
    let mut over_40 = Vec::new();
    for res in &out.results {
        println!("{}", fmt_bars(res));
        for b in &res.bars {
            if b.total > worst.0 {
                worst = (b.total, format!("{} {} {}", res.workload, res.machine, b.label));
            }
            if b.total > 1.40 && b.label != "N" {
                over_40.push(format!(
                    "{} [{}] {}: {:.3}",
                    res.workload, res.machine, b.label, b.total
                ));
            }
        }
    }
    println!("== summary ==");
    println!("worst normalized time: {:.3} ({})", worst.0, worst.1);
    if over_40.is_empty() {
        println!("all configurations within 40% overhead (paper: 12 of 13 benchmarks).");
    } else {
        println!("configurations above 40% overhead (paper: tomcatv 10-instr in-order):");
        for s in over_40 {
            println!("  {s}");
        }
    }
}

/// The whole bench target: compute, print, write the baseline.
pub fn run() {
    let out = compute();
    print(&out);
    emit("fig2", payload(&out));
}
