//! One module per bench target: the computation behind each table/figure,
//! factored out of the `benches/*.rs` binaries so the `ci_gate` binary can
//! regenerate every baseline payload in-memory and diff it against the
//! committed `BENCH_*.json`.
//!
//! Every module follows the same shape:
//!
//! * `compute()` — the deterministic (or, for the wall-clock targets,
//!   host-timed) sweep, declared as [`crate::sweep`] cells and fanned out
//!   across the pool;
//! * `payload(&Output)` — the JSON baseline payload, exactly what the bench
//!   binary hands to [`crate::report::emit`];
//! * `print(&Output)` — the human report the bench binary writes to stdout;
//! * `run()` — print + emit, the whole body of the thin bench binary.
//!
//! [`registry`] enumerates all targets for the gate.

use imo_util::json::Json;

pub mod ablation_checkpoints;
pub mod ablation_mshr;
pub mod attrib;
pub mod branch_vs_exception;
pub mod chaos_soak;
pub mod fault_resilience;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig4_sensitivity;
pub mod handler100;
pub mod obs_overhead;
pub mod simspeed;
pub mod substrate;
pub mod table1;
pub mod table2;

/// One registered bench target, as seen by `ci_gate`.
pub struct Target {
    /// Baseline name: the `<name>` of `BENCH_<name>.json`.
    pub name: &'static str,
    /// Whether the payload contains host wall-clock timings (these fields
    /// are compared with tolerance bands rather than exactly).
    pub wall_clock: bool,
    /// Regenerates the baseline payload in-memory, without writing files.
    pub payload: fn() -> Json,
}

/// Every bench target, in `EXPERIMENTS.md` presentation order.
#[must_use]
pub fn registry() -> Vec<Target> {
    fn t(name: &'static str, wall_clock: bool, payload: fn() -> Json) -> Target {
        Target { name, wall_clock, payload }
    }
    vec![
        t("table1", false, || table1::payload(&table1::compute())),
        t("fig2", false, || fig2::payload(&fig2::compute())),
        t("fig3", false, || fig3::payload(&fig3::compute())),
        t("handler100", false, || handler100::payload(&handler100::compute())),
        t("branch_vs_exception", false, || {
            branch_vs_exception::payload(&branch_vs_exception::compute())
        }),
        t("table2", false, || table2::payload(&table2::compute())),
        t("fig4", false, || fig4::payload(&fig4::compute())),
        t("fig4_sensitivity", false, || fig4_sensitivity::payload(&fig4_sensitivity::compute())),
        t("ablation_mshr", false, || ablation_mshr::payload(&ablation_mshr::compute())),
        t("ablation_checkpoints", false, || {
            ablation_checkpoints::payload(&ablation_checkpoints::compute())
        }),
        t("fault_resilience", false, || fault_resilience::payload(&fault_resilience::compute())),
        t("attrib", false, || attrib::payload(&attrib::compute())),
        t("substrate", true, || substrate::payload(&substrate::compute())),
        t("obs_overhead", true, || obs_overhead::payload(&obs_overhead::compute())),
        t("simspeed", true, || simspeed::payload(&simspeed::compute())),
        t("chaos_soak", true, || chaos_soak::payload(&chaos_soak::compute())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_complete() {
        let targets = registry();
        assert_eq!(targets.len(), 16);
        let mut names: Vec<_> = targets.iter().map(|t| t.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16, "duplicate target names");
        assert_eq!(targets.iter().filter(|t| t.wall_clock).count(), 4);
    }
}
