//! **Simulator performance**: how fast the event-driven timing cores
//! simulate, in sim-cycles per wall-second, on a miss-dominated workload
//! (`mdljsp2`: index-list gathers, scattered FP loads) for both machines
//! × 3 instrumentation schemes.
//!
//! Each row carries three proofs alongside its timing:
//!
//! * `identical_to_tick_accurate` — the fast-forwarding core's `RunResult`
//!   is bit-identical to a reference run with
//!   `RunLimits::force_tick_accurate` (cycle skipping is a pure
//!   optimization);
//! * `speedup_vs_tick` — the measured wall-clock win of cycle skipping;
//! * `dedup` — a controlled double-pass over six cells through the sweep
//!   memo cache ([`crate::sweep::memoized`]), nonce-namespaced so the
//!   counts are exactly requested=12 / simulated=6 / deduped=6 whether the
//!   target runs standalone or after twelve other targets have warmed the
//!   cache in the same `ci_gate` process.
//!
//! Simulated counters and the dedup counts are exact in the gate; the
//! `*_ns` / `cycles_per_sec` / `speedup_vs_tick` fields are host wall-clock
//! and compared with the tolerance band.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use imo_core::instrument::{instrument, HandlerBody, HandlerKind, Scheme};
use imo_cpu::speed::{speed_stats, SpeedStats};
use imo_cpu::{RunLimits, RunResult};
use imo_util::json::Json;
use imo_workloads::{by_name, Scale};

use crate::report::{emit, Table};
use crate::sweep::{both_machines, memo_stats, memoized, MemoStats};

const WORKLOAD: &str = "mdljsp2";

fn schemes() -> [(&'static str, Scheme); 3] {
    let body = HandlerBody::Generic { len: 10 };
    [
        ("none", Scheme::None),
        ("trap-10S", Scheme::Trap { handlers: HandlerKind::Single, body }),
        ("cc-10S", Scheme::ConditionCode { handlers: HandlerKind::Single, body }),
    ]
}

/// One machine × scheme measurement.
pub struct Row {
    /// Machine name ("ooo" / "in-order").
    pub machine: &'static str,
    /// Scheme label ("none" / "trap-10S" / "cc-10S").
    pub scheme: &'static str,
    /// The event-driven run's result (simulated counters are exact).
    pub result: RunResult,
    /// Event-driven result equals the tick-accurate reference bit-for-bit.
    pub identical: bool,
    /// Median wall time of one event-driven run.
    pub wall_ns: u64,
    /// Median wall time of one tick-accurate reference run.
    pub tick_ns: u64,
    /// Fraction of the event run's fetch groups served from a single
    /// pre-decoded basic block (exact counter, not wall clock).
    pub block_hit_rate: f64,
    /// Percentage of the event run's instructions retired through batched
    /// plain-run execution (exact counter, not wall clock).
    pub batched_instr_pct: f64,
}

impl Row {
    /// Simulated cycles per wall-second of the event-driven core.
    #[must_use]
    pub fn cycles_per_sec(&self) -> f64 {
        self.result.cycles as f64 * 1e9 / self.wall_ns.max(1) as f64
    }

    /// Wall-clock speedup of cycle skipping over the tick-accurate core.
    #[must_use]
    pub fn speedup_vs_tick(&self) -> f64 {
        self.tick_ns as f64 / self.wall_ns.max(1) as f64
    }
}

/// All rows plus the memo-dedup proof counts.
pub struct Output {
    /// Machine-major × scheme measurements.
    pub rows: Vec<Row>,
    /// The controlled dedup proof (requested=12, simulated=6).
    pub dedup: MemoStats,
}

fn samples() -> u32 {
    std::env::var("IMO_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(5)
        .clamp(3, 101)
}

/// Median wall time of one `f()` call (one warmup, then `samples` timed
/// runs).
fn median_run_ns(samples: u32, mut f: impl FnMut() -> RunResult) -> u64 {
    std::hint::black_box(f());
    let mut v = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let t = Instant::now();
        std::hint::black_box(f());
        v.push(t.elapsed().as_nanos() as u64);
    }
    v.sort_unstable();
    v[v.len() / 2].max(1)
}

/// A controlled double-pass over six small cells through the memo cache.
///
/// The key namespace carries a per-invocation nonce, so pass 1 always misses
/// (6 simulations) and pass 2 always hits (6 served from cache) — the
/// returned deltas are exactly `requested: 12, simulated: 6` regardless of
/// what else has used the process-wide cache. The cells deliberately go
/// through the memory-only [`memoized`], never the on-disk store: the
/// nonce restarts at 0 each process, so a persisted entry would turn pass
/// 1's misses into disk hits across runs and break the exact counts.
fn dedup_proof() -> MemoStats {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let nonce = NONCE.fetch_add(1, Ordering::Relaxed);
    let spec = by_name(WORKLOAD).expect("workload exists");
    let program = (spec.build)(Scale::Test);
    let before = memo_stats();
    for _pass in 0..2 {
        for machine in both_machines() {
            for (label, scheme) in schemes() {
                let key = format!("simspeed-dedup/{nonce}/{}/{label}", machine.name());
                memoized(&key, || {
                    let inst = instrument(&program, &scheme).expect("instruments");
                    machine
                        .run_limited(&inst.program, RunLimits::default())
                        .expect("dedup cell simulates")
                });
            }
        }
    }
    let after = memo_stats();
    MemoStats {
        requested: after.requested - before.requested,
        simulated: after.simulated - before.simulated,
        served_disk: after.served_disk - before.served_disk,
        disk_writes: after.disk_writes - before.disk_writes,
        disk_rejected: after.disk_rejected - before.disk_rejected,
    }
}

/// Runs every machine × scheme row (serial — these are wall-clock timings)
/// plus the dedup proof.
///
/// # Panics
///
/// Panics if instrumentation or a simulation fails, or if an event-driven
/// run is not bit-identical to its tick-accurate reference.
#[must_use]
pub fn compute() -> Output {
    let spec = by_name(WORKLOAD).expect("workload exists");
    let program = (spec.build)(Scale::Small);
    let n = samples();
    let mut rows = Vec::new();
    for machine in both_machines() {
        for (label, scheme) in schemes() {
            let inst = instrument(&program, &scheme).expect("instruments");
            let p = &inst.program;
            let before = speed_stats();
            let event = machine.run_limited(p, RunLimits::default()).expect("event run");
            let after = speed_stats();
            // Fast-path coverage counters for exactly this event run (the
            // globals keep accumulating across the timed samples below).
            let fast = SpeedStats {
                groups: after.groups - before.groups,
                block_groups: after.block_groups - before.block_groups,
                plain_instrs: after.plain_instrs - before.plain_instrs,
                instrs: after.instrs - before.instrs,
            };
            let tick = machine.run_limited(p, RunLimits::tick_accurate()).expect("tick run");
            let identical = event == tick;
            assert!(
                identical,
                "{}/{label}: fast-forward diverged from tick-accurate",
                machine.name()
            );
            let wall_ns = median_run_ns(n, || {
                machine.run_limited(p, RunLimits::default()).expect("event run")
            });
            let tick_ns = median_run_ns(n, || {
                machine.run_limited(p, RunLimits::tick_accurate()).expect("tick run")
            });
            rows.push(Row {
                machine: machine.name(),
                scheme: label,
                result: event,
                identical,
                wall_ns,
                tick_ns,
                block_hit_rate: fast.block_hit_rate(),
                batched_instr_pct: fast.batched_instr_pct(),
            });
        }
    }
    Output { rows, dedup: dedup_proof() }
}

/// The baseline payload.
#[must_use]
pub fn payload(out: &Output) -> Json {
    let rows = out.rows.iter().map(|r| {
        Json::obj([
            ("machine", Json::from(r.machine)),
            ("scheme", Json::from(r.scheme)),
            ("sim_cycles", Json::from(r.result.cycles)),
            ("instructions", Json::from(r.result.instructions)),
            ("identical_to_tick_accurate", Json::Bool(r.identical)),
            ("wall_ns", Json::from(r.wall_ns)),
            ("tick_wall_ns", Json::from(r.tick_ns)),
            ("cycles_per_sec", Json::from(r.cycles_per_sec())),
            ("speedup_vs_tick", Json::from(r.speedup_vs_tick())),
            ("block_hit_rate", Json::from(r.block_hit_rate)),
            ("batched_instr_pct", Json::from(r.batched_instr_pct)),
        ])
    });
    Json::obj([
        ("workload", Json::from(WORKLOAD)),
        ("rows", Json::arr(rows)),
        (
            "dedup",
            Json::obj([
                ("requested", Json::from(out.dedup.requested)),
                ("simulated", Json::from(out.dedup.simulated)),
                ("deduped", Json::from(out.dedup.deduped())),
                ("hit_rate", Json::from(out.dedup.hit_rate())),
            ]),
        ),
    ])
}

/// Prints the timing table, the dedup proof, and the process-wide memo
/// coverage.
pub fn print(out: &Output) {
    println!("SIMULATOR PERFORMANCE. Event-driven cores on {WORKLOAD} (miss-dominated).\n");
    let mut t = Table::new([
        "machine",
        "scheme",
        "sim cycles",
        "Mcycles/sec",
        "speedup vs tick",
        "block hit",
        "batched",
        "identical",
    ]);
    for r in &out.rows {
        t.row([
            r.machine.to_string(),
            r.scheme.to_string(),
            r.result.cycles.to_string(),
            format!("{:.1}", r.cycles_per_sec() / 1e6),
            format!("{:.2}x", r.speedup_vs_tick()),
            format!("{:.1}%", r.block_hit_rate * 100.0),
            format!("{:.1}%", r.batched_instr_pct),
            if r.identical { "yes".to_string() } else { "NO".to_string() },
        ]);
    }
    print!("{}", t.render());
    println!(
        "\ndedup proof: {} requested, {} simulated, {} served from cache (hit rate {:.0}%)",
        out.dedup.requested,
        out.dedup.simulated,
        out.dedup.deduped(),
        out.dedup.hit_rate() * 100.0
    );
    let s = memo_stats();
    println!(
        "process-wide memo: {} requested, {} simulated, {} served from memory, {} from disk",
        s.requested,
        s.simulated,
        s.served_memory(),
        s.served_disk
    );
}

/// The whole bench target: compute, print, write the baseline.
pub fn run() {
    let out = compute();
    print(&out);
    emit("simspeed", payload(&out));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_proof_counts_are_exact() {
        // Twice, to prove the nonce keeps repeat invocations exact too.
        for _ in 0..2 {
            let s = dedup_proof();
            assert_eq!(s.requested, 12);
            assert_eq!(s.simulated, 6);
            assert_eq!(s.deduped(), 6);
            assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn schemes_cover_none_trap_cc() {
        let labels: Vec<_> = schemes().iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, ["none", "trap-10S", "cc-10S"]);
    }
}
