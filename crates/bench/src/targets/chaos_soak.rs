//! **Chaos soak**: the sweep service's exactly-once guarantee under
//! deterministic failure injection, at scale.
//!
//! Spawns a private `imo-serve` (4 workers on an ephemeral loopback port)
//! and pushes four sweeps through it:
//!
//! 1. `synth` — [`SynthCell`] hash chains (10^4 by default,
//!    `IMO_CHAOS_CELLS` scales to 10^5 for the tier-2 soak) under the full
//!    chaos menu: worker kills after a checkpoint slice, stalls, dropped
//!    connections, torn and corrupted done frames, duplicated frames, and
//!    graceful retirements.
//! 2. `coh` — checkpointable coherence cells (5 parallel apps × 2 schemes)
//!    under a kill-heavy schedule, proving a worker killed mid-simulation
//!    resumes from its last `CohCheckpoint` (`recovered_ckpt_coh > 0`).
//! 3. `cpu` — preempted CPU experiment cells under kills and retirements.
//! 4. `clean` — a zero-chaos control sweep over the same synth cells.
//!
//! Every sweep's streamed results are byte-compared (compact-JSON string
//! equality) against a clean, serial, in-process run of the same cells —
//! chaos may cost re-dispatches and wasted cycles, never bytes. Because
//! the chaos schedule is content-addressed by `(cell index, attempt)`
//! (see [`imo_faults::ChaosPlan`]), every recovery counter the server
//! reports is deterministic regardless of worker scheduling, so the
//! whole `counters` block is compared exactly by the gate; only the
//! `wall_ms` fields are host wall-clock.
//!
//! `IMO_CHAOS_CHECK=1` turns the recorded proof bits into hard panics —
//! the tier-2 `IMO_CHAOS=1` soak runs with it set.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Instant;

use imo_core::experiment::figure2_variants;
use imo_faults::ChaosConfig;
use imo_util::json::{self, Json};
use imo_util::rng::mix64;
use imo_workloads::Scale;

use crate::report::{emit, Table};
use crate::serve::{
    cell_result_json, run_any_cell_plain, try_run_cells_via_server, AnyCell, CohCell, SweepPolicy,
    SweepRequest, SynthCell,
};
use crate::sweep::cpu_cells;

/// Counters exported into the baseline, in fixed order (the server only
/// materializes a counter on first touch, so reading a fixed list keeps
/// the payload shape stable). All are deterministic — chaos fates are
/// content-addressed per `(index, attempt)`, independent of worker
/// scheduling.
const COUNTERS: &[&str] = &[
    "sweeps",
    "cells_dispatched",
    "cells_completed",
    "redispatches",
    "quarantined_cells",
    "worker_failures",
    "worker_exits",
    "workers_respawned",
    "deadline_timeouts",
    "heartbeats",
    "recovered_from_checkpoint",
    "recovered_ckpt_cpu",
    "recovered_ckpt_coh",
    "recovered_ckpt_synth",
    "recovered_cycles",
    "useful_cycles",
    "wasted_cycles",
    "dup_frames",
    "stale_frames",
    "corrupt_frames",
];

/// One sweep's scorecard.
pub struct SweepStat {
    /// Sweep name (`synth` / `coh` / `cpu` / `clean`).
    pub name: &'static str,
    /// Cells pushed through the server.
    pub cells: usize,
    /// Streamed results byte-identical to the clean serial run.
    pub byte_identical: bool,
    /// Sweep wall time (host-dependent; gate-banded).
    pub wall_ms: u64,
}

/// Everything the soak measured.
pub struct Output {
    /// Total cells across all four sweeps.
    pub cells: usize,
    /// Per-sweep scorecards.
    pub sweeps: Vec<SweepStat>,
    /// The zero-chaos control sweep matched the serial run.
    pub clean_identical: bool,
    /// At least one coherence cell resumed from a `CohCheckpoint`.
    pub coh_recovered: bool,
    /// No cell exhausted its attempt budget.
    pub no_quarantine: bool,
    /// The server's `/status` counters after all sweeps, in
    /// [`COUNTERS`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// Total wall time (host-dependent; gate-banded).
    pub wall_ms: u64,
}

fn synth_count() -> usize {
    std::env::var("IMO_CHAOS_CELLS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|n| *n > 0)
        .unwrap_or(10_000)
}

fn hard_check() -> bool {
    std::env::var("IMO_CHAOS_CHECK").map(|v| v == "1").unwrap_or(false)
}

/// The spawned server, killed when the soak exits.
struct ServeGuard {
    child: Child,
}

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Finds the `imo-serve` binary next to the current executable. Bench
/// binaries live one level down (`target/release/deps/`), so the parent
/// directory is tried too.
fn server_binary() -> PathBuf {
    let exe = std::env::current_exe().expect("current_exe");
    let sibling = exe.with_file_name("imo-serve");
    if sibling.is_file() {
        return sibling;
    }
    if let Some(updir) = exe.parent().and_then(|d| d.parent()) {
        let above = updir.join("imo-serve");
        if above.is_file() {
            return above;
        }
    }
    panic!(
        "chaos_soak: imo-serve not found near {} (build it first: \
         cargo build --release -p imo-serve)",
        exe.display()
    );
}

/// Starts `imo-serve --workers 4` on an ephemeral port; the fixed worker
/// count keeps dispatch capacity (not results — those are invariant)
/// reproducible across hosts.
fn start_server() -> (ServeGuard, String) {
    let mut child = Command::new(server_binary())
        .args(["--addr", "127.0.0.1:0", "--workers", "4"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("chaos_soak: spawning imo-serve");
    let stdout = child.stdout.take().expect("imo-serve stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("imo-serve banner");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected imo-serve banner: {line:?}"))
        .to_string();
    (ServeGuard { child }, addr)
}

/// Fetches `GET /status` and returns the parsed body.
fn fetch_status(addr: &str) -> Json {
    let mut stream = TcpStream::connect(addr).expect("status connect");
    write!(stream, "GET /status HTTP/1.0\r\n\r\n").expect("status request");
    stream.flush().expect("status flush");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("status response");
    let body = response
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("status response has no body: {response:?}"))
        .1;
    json::parse(body).unwrap_or_else(|e| panic!("status body is not JSON ({e}): {body:?}"))
}

fn counter(status: &Json, name: &str) -> u64 {
    status
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Json::as_f64)
        .map_or(0, |v| v as u64)
}

/// The synth sweep's chaos menu: every event class enabled, rates tuned
/// so a 10^4-cell sweep sees hundreds of failures but stays inside the
/// default attempt budget.
fn synth_chaos() -> ChaosConfig {
    let mut c = ChaosConfig::none(0x50AC_0001);
    c.kill_rate = 0.015;
    c.kill_slices = 2;
    c.stall_rate = 0.0003;
    c.drop_conn_rate = 0.003;
    c.torn_rate = 0.003;
    c.corrupt_rate = 0.003;
    c.dup_done_rate = 0.008;
    c.exit_rate = 0.01;
    c
}

/// The coherence sweep's schedule is kill-heavy: with 10 cells at a 45%
/// kill rate the (deterministic, seed-checked) schedule kills several
/// workers after a checkpoint slice, forcing resume-from-`CohCheckpoint`.
fn coh_chaos() -> ChaosConfig {
    let mut c = ChaosConfig::none(0x50AC_0002);
    c.kill_rate = 0.45;
    c.kill_slices = 2;
    c.dup_done_rate = 0.10;
    c.exit_rate = 0.10;
    c
}

fn cpu_chaos() -> ChaosConfig {
    let mut c = ChaosConfig::none(0x50AC_0003);
    c.kill_rate = 0.5;
    c.kill_slices = 1;
    c.exit_rate = 0.25;
    c
}

/// Every killed attempt still advances at least one checkpoint slice, so
/// a cell of `W` work units under a `preempt_every` of `P` completes
/// within `W/P + 1` attempts even if *every* dispatch is killed —
/// `max_attempts` must sit above that structural worst case, not just
/// above the expected failure chain.
fn policy(deadline_ms: u64, max_attempts: u32) -> SweepPolicy {
    SweepPolicy { deadline_ms, max_attempts, backoff_base_ms: 2, backoff_cap_ms: 20 }
}

fn synth_cells(n: usize) -> Vec<AnyCell> {
    (0..n)
        .map(|i| AnyCell::Synth(SynthCell { seed: mix64(0xC0FF_EE00, i as u64), iters: 600 }))
        .collect()
}

fn coh_cells() -> Vec<AnyCell> {
    let apps = ["stencil", "migratory", "producer_consumer", "reduction", "readmostly"];
    let schemes = [imo_coherence::Scheme::Ecc, imo_coherence::Scheme::Informing];
    let mut cells = Vec::new();
    for (i, app) in apps.iter().enumerate() {
        for scheme in schemes {
            cells.push(AnyCell::Coh(CohCell {
                app,
                procs: 4,
                ops_per_proc: 1500,
                seed: 40 + i as u64,
                scheme,
            }));
        }
    }
    cells
}

fn chaos_cpu_cells() -> Vec<AnyCell> {
    cpu_cells(&["ora"], Scale::Test, &figure2_variants()).into_iter().map(AnyCell::Cpu).collect()
}

/// Pushes one sweep through the server and byte-compares the streamed
/// results against a clean serial in-process run of the same cells.
fn run_sweep(
    addr: &str,
    name: &'static str,
    cells: Vec<AnyCell>,
    preempt_every: Option<u64>,
    chaos: Option<ChaosConfig>,
    pol: Option<SweepPolicy>,
) -> SweepStat {
    let expected: Vec<String> =
        cells.iter().map(|c| cell_result_json(&run_any_cell_plain(c, None)).compact()).collect();
    let n = cells.len();
    let request = SweepRequest {
        name: name.to_string(),
        preempt_every,
        chaos,
        policy: pol,
        attrib: false,
        cells,
    };
    let t0 = Instant::now();
    let got = try_run_cells_via_server(addr, &request)
        .unwrap_or_else(|e| panic!("chaos_soak: sweep `{name}` failed: {e}"));
    let wall_ms = (t0.elapsed().as_millis() as u64).max(1);
    let byte_identical = got.len() == n
        && got.iter().zip(&expected).all(|(r, e)| cell_result_json(r).compact() == *e);
    if hard_check() {
        assert!(byte_identical, "chaos_soak: sweep `{name}` is not byte-identical");
    }
    SweepStat { name, cells: n, byte_identical, wall_ms }
}

/// Runs the full soak against a private server.
///
/// # Panics
///
/// Panics if the server cannot be spawned or a sweep aborts; with
/// `IMO_CHAOS_CHECK=1` also panics on any failed proof bit.
#[must_use]
pub fn compute() -> Output {
    let t0 = Instant::now();
    let (_guard, addr) = start_server();
    let n = synth_count();

    let sweeps = vec![
        run_sweep(
            &addr,
            "synth",
            synth_cells(n),
            Some(200),
            Some(synth_chaos()),
            Some(policy(3000, 6)),
        ),
        run_sweep(&addr, "coh", coh_cells(), Some(500), Some(coh_chaos()), Some(policy(8000, 16))),
        run_sweep(
            &addr,
            "cpu",
            chaos_cpu_cells(),
            Some(5000),
            Some(cpu_chaos()),
            Some(policy(30_000, 16)),
        ),
        run_sweep(&addr, "clean", synth_cells(n.min(200)), None, None, None),
    ];

    let status = fetch_status(&addr);
    let counters: Vec<(&'static str, u64)> =
        COUNTERS.iter().map(|name| (*name, counter(&status, name))).collect();
    let coh_recovered = counter(&status, "recovered_ckpt_coh") > 0;
    let no_quarantine = counter(&status, "quarantined_cells") == 0;
    if hard_check() {
        assert!(coh_recovered, "chaos_soak: no coherence cell resumed from a checkpoint");
        assert!(no_quarantine, "chaos_soak: a cell was quarantined");
    }

    Output {
        cells: sweeps.iter().map(|s| s.cells).sum(),
        clean_identical: sweeps
            .iter()
            .find(|s| s.name == "clean")
            .is_some_and(|s| s.byte_identical),
        coh_recovered,
        no_quarantine,
        counters,
        sweeps,
        wall_ms: (t0.elapsed().as_millis() as u64).max(1),
    }
}

/// The baseline payload: proof bits and exact recovery counters, with
/// `wall_ms` fields gate-banded.
#[must_use]
pub fn payload(out: &Output) -> Json {
    Json::obj([
        ("cells", Json::from(out.cells)),
        (
            "sweeps",
            Json::arr(out.sweeps.iter().map(|s| {
                Json::obj([
                    ("name", Json::from(s.name)),
                    ("cells", Json::from(s.cells)),
                    ("byte_identical", Json::Bool(s.byte_identical)),
                    ("wall_ms", Json::from(s.wall_ms)),
                ])
            })),
        ),
        ("clean_identical", Json::Bool(out.clean_identical)),
        ("coh_recovered", Json::Bool(out.coh_recovered)),
        ("no_quarantine", Json::Bool(out.no_quarantine)),
        (
            "counters",
            Json::Obj(
                out.counters.iter().map(|(k, v)| ((*k).to_string(), Json::from(*v))).collect(),
            ),
        ),
        ("wall_ms", Json::from(out.wall_ms)),
    ])
}

/// Console report.
pub fn print(out: &Output) {
    println!("Chaos soak: {} cells through imo-serve under failure injection\n", out.cells);
    let mut t = Table::new(["sweep", "cells", "byte-identical", "wall ms"]);
    for s in &out.sweeps {
        t.row([
            s.name.to_string(),
            s.cells.to_string(),
            if s.byte_identical { "yes".into() } else { "NO".into() },
            s.wall_ms.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("recovery counters:");
    for (k, v) in &out.counters {
        println!("  {k:<26} {v}");
    }
    println!(
        "\ncoh_recovered={} no_quarantine={} clean_identical={}",
        out.coh_recovered, out.no_quarantine, out.clean_identical
    );
}

/// Bench entry point: compute, print, write `BENCH_chaos_soak.json`.
pub fn run() {
    let out = compute();
    print(&out);
    emit("chaos_soak", payload(&out));
}
