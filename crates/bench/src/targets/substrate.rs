//! Microbenches of the simulator substrate itself: cache probes, functional
//! execution, instrumentation rewriting, and the two cycle-level models
//! end-to-end on a small kernel. These track the *simulator's* speed (host
//! time), not simulated time — so this target stays serial: running timing
//! samples concurrently would corrupt the measurements.

use std::hint::black_box;

use imo_util::json::Json;
use imo_util::Bench;

use imo_core::instrument::{instrument, HandlerBody, HandlerKind, Scheme};
use imo_cpu::{inorder, ooo, InOrderConfig, OooConfig, RunLimits};
use imo_isa::exec::{Executor, NeverMiss};
use imo_mem::{Cache, CacheConfig, HierarchyConfig, MemoryHierarchy};
use imo_workloads::{by_name, Scale};

use crate::report::emit;

/// The completed bench runner.
pub struct Output {
    /// All recorded timings.
    pub bench: Bench,
}

fn bench_cache(b: &mut Bench) {
    let mut cache = Cache::new(CacheConfig::new(32 * 1024, 2, 32));
    cache.access(0x1000, false);
    b.bench("cache/probe_hit", || black_box(cache.access(black_box(0x1000), false)));

    let mut cache = Cache::new(CacheConfig::new(32 * 1024, 2, 32));
    let mut addr = 0u64;
    b.bench("cache/probe_streaming_miss", || {
        addr = addr.wrapping_add(32);
        black_box(cache.access(black_box(addr), false))
    });

    let mut h = MemoryHierarchy::new(HierarchyConfig::out_of_order());
    let mut addr = 0u64;
    let mut cycle = 0u64;
    b.bench("hierarchy/probe_and_schedule", || {
        addr = addr.wrapping_add(8);
        cycle += 1;
        let p = h.probe_data(black_box(addr), false);
        black_box(h.schedule_data(p, cycle))
    });
}

fn bench_exec(b: &mut Bench) {
    let spec = by_name("espresso").expect("espresso exists");
    let program = (spec.build)(Scale::Test);
    b.bench("exec/functional_espresso_test", || {
        let mut e = Executor::new(&program);
        e.run(&mut NeverMiss, 50_000_000).expect("runs")
    });
}

fn bench_instrument(b: &mut Bench) {
    let spec = by_name("compress").expect("compress exists");
    let program = (spec.build)(Scale::Test);
    let scheme = Scheme::Trap {
        handlers: HandlerKind::PerReference,
        body: HandlerBody::Generic { len: 10 },
    };
    b.bench("instrument/trap_unique_compress", || {
        instrument(black_box(&program), &scheme).expect("instruments")
    });
}

fn bench_models(b: &mut Bench) {
    let spec = by_name("doduc").expect("doduc exists");
    let program = (spec.build)(Scale::Test);
    b.bench_sampled("models/ooo_doduc_test", 5, || {
        ooo::simulate(&program, &OooConfig::paper(), RunLimits::default()).expect("runs")
    });
    b.bench_sampled("models/inorder_doduc_test", 5, || {
        inorder::simulate(&program, &InOrderConfig::paper(), RunLimits::default()).expect("runs")
    });
}

/// Runs every microbench serially (wall-clock fidelity).
#[must_use]
pub fn compute() -> Output {
    let mut b = Bench::new("substrate");
    bench_cache(&mut b);
    bench_exec(&mut b);
    bench_instrument(&mut b);
    bench_models(&mut b);
    Output { bench: b }
}

/// The baseline payload (carries its own `bench` envelope).
#[must_use]
pub fn payload(out: &Output) -> Json {
    out.bench.to_json()
}

/// Prints the timing table.
pub fn print(out: &Output) {
    println!("Substrate microbenches (host ns/iter, median of samples).\n");
    print!("{}", out.bench.render());
}

/// The whole bench target: compute, print, write the baseline.
pub fn run() {
    let out = compute();
    print(&out);
    emit("substrate", payload(&out));
}
