//! **Figure 3**: the `su2cor` conflict pathology with 1- and 10-instruction
//! generic handlers on both machines. `su2cor` conflicts severely in the
//! in-order model's 8 KB direct-mapped primary cache, so the handlers run
//! on nearly every reference; the out-of-order model (32 KB 2-way) suffers
//! far less, and unique handlers sometimes *beat* the single handler.

use imo_core::experiment::{figure2_variants, ExperimentResult, NormalizedBar};
use imo_workloads::Scale;

use crate::report::{emit, experiments_to_json, fmt_bars};
use crate::sweep::{cpu_cells, run_cpu_cells};
use imo_util::json::Json;

/// `su2cor` on both machines.
pub struct Output {
    /// `[ooo, in-order]` results.
    pub results: Vec<ExperimentResult>,
}

/// Runs the 1-workload × 2-machine sweep.
#[must_use]
pub fn compute() -> Output {
    Output {
        results: run_cpu_cells("fig3", cpu_cells(&["su2cor"], Scale::Small, &figure2_variants())),
    }
}

/// The baseline payload.
#[must_use]
pub fn payload(out: &Output) -> Json {
    experiments_to_json(&out.results)
}

fn get(out: &Output, machine: &str, label: &str) -> NormalizedBar {
    out.results
        .iter()
        .find(|r| r.machine == machine)
        .and_then(|r| r.bars.iter().find(|b| b.label == label))
        .copied()
        .expect("bar exists")
}

/// Prints the bar tables and the paper-comparison summary.
pub fn print(out: &Output) {
    println!("FIGURE 3. SU2COR with generic miss handlers (1 and 10 instructions).\n");
    for res in &out.results {
        println!("{}", fmt_bars(res));
    }

    println!("== summary ==");
    let ino = get(out, "in-order", "10S");
    let ooo = get(out, "ooo", "10S");
    println!(
        "in-order 10S: {:.2}x time, {:.2}x instructions (paper: ~3x time, ~5x instructions)",
        ino.total, ino.instr_ratio
    );
    println!("out-of-order 10S: {:.2}x time (paper: far smaller than in-order)", ooo.total);
    let (s, u) = (get(out, "in-order", "10S").total, get(out, "in-order", "10U").total);
    println!(
        "in-order 10U vs 10S: {:.3} vs {:.3}{}",
        u,
        s,
        if u + 5e-3 < s {
            "  <- unique handlers win (the paper's surprising artifact)"
        } else {
            ""
        }
    );
}

/// The whole bench target: compute, print, write the baseline.
pub fn run() {
    let out = compute();
    print(&out);
    emit("fig3", payload(&out));
}
