//! **Table 2**: machine and experiment parameters for the three
//! access-control methods, printed from the structs the coherence simulator
//! actually uses.

use imo_coherence::MachineParams;
use imo_util::json::Json;

use crate::report::{emit, Table};

/// The two rendered parameter tables.
pub struct Output {
    /// Machine-parameter table.
    pub machine: Table,
    /// Per-approach cost table.
    pub approaches: Table,
}

/// Builds both tables from the Table 2 machine.
#[must_use]
pub fn compute() -> Output {
    let p = MachineParams::table2();

    let mut t = Table::new(["Machine Parameters", "Value"]);
    t.row(["Processors".to_string(), p.procs.to_string()]);
    t.row([
        "L1 cache / proc".to_string(),
        format!("{} KB ({}-cycle miss penalty)", p.l1_bytes / 1024, p.l1_miss_penalty),
    ]);
    t.row([
        "L2 cache / proc".to_string(),
        format!("{} KB ({}-cycle miss penalty)", p.l2_bytes / 1024, p.l2_miss_penalty),
    ]);
    t.row(["Coherence unit".to_string(), format!("{} bytes", p.line_bytes)]);
    t.row(["1-way message latency".to_string(), format!("{} cycles", p.msg_latency)]);

    let mut s = Table::new(["Approach", "Costs"]);
    s.row([
        "Reference checking".to_string(),
        format!(
            "{}-cycle lookup per shared reference; {}-cycle state change",
            p.costs.refcheck_lookup, p.costs.state_change
        ),
    ]);
    s.row([
        "ECC-based".to_string(),
        format!(
            "{} cycles per read to an invalid block; {} cycles per write on a page with READONLY data",
            p.costs.ecc_read_invalid, p.costs.ecc_write_readonly_page
        ),
    ]);
    s.row([
        "Informing memory".to_string(),
        format!(
            "{}-cycle lookup on a primary miss (6-cycle pipeline delay + 9 handler cycles); {}-cycle state change",
            p.costs.informing_lookup, p.costs.state_change
        ),
    ]);

    Output { machine: t, approaches: s }
}

/// The baseline payload: both tables as JSON.
#[must_use]
pub fn payload(out: &Output) -> Json {
    Json::obj([("machine", out.machine.to_json()), ("approaches", out.approaches.to_json())])
}

/// Prints both tables.
pub fn print(out: &Output) {
    println!("TABLE 2. Machine and experiment parameters for access control methods.\n");
    print!("{}", out.machine.render());
    println!();
    print!("{}", out.approaches.render());
}

/// The whole bench target: compute, print, write the baseline.
pub fn run() {
    let out = compute();
    print(&out);
    emit("table2", payload(&out));
}
