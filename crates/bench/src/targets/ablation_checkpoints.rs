//! **§3.2 ablation**: under the mispredicted-branch treatment, every
//! informing memory operation holds a rename checkpoint while its cache
//! outcome is unresolved. The R10000 provides 3; the paper estimates
//! informing-as-branch needs ~3× as much shadow state. A checkpoint-budget
//! sweep on a dense informing workload.

use imo_core::instrument::{instrument, HandlerBody, HandlerKind, Scheme};
use imo_cpu::{ooo, OooConfig, RunLimits};
use imo_util::json::Json;
use imo_workloads::{by_name, Scale};

use crate::report::{emit, Table};
use crate::sweep::SweepSpec;

const BUDGETS: [u32; 5] = [1, 2, 3, 6, 12];

/// The cycles measured at each checkpoint budget, in ascending order.
pub struct Output {
    /// `(checkpoints, cycles)` per budget.
    pub cycles: Vec<(u32, u64)>,
}

/// Runs the checkpoint-budget sweep across the pool.
///
/// # Panics
///
/// Panics if the workload is missing or a simulation fails.
#[must_use]
pub fn compute() -> Output {
    let spec = by_name("alvinn").expect("alvinn exists"); // dense, mostly-hitting loads
    let program = (spec.build)(Scale::Small);
    let scheme =
        Scheme::Trap { handlers: HandlerKind::Single, body: HandlerBody::Generic { len: 1 } };
    let inst = instrument(&program, &scheme).expect("instruments");

    let cycles = SweepSpec::new("ablation_checkpoints", BUDGETS.to_vec()).run(|_, c| {
        let mut cfg = OooConfig::paper();
        cfg.max_checkpoints = c;
        let r = ooo::simulate(&inst.program, &cfg, RunLimits::default()).expect("runs");
        (c, r.cycles)
    });
    Output { cycles }
}

fn base12(out: &Output) -> f64 {
    out.cycles.last().expect("sweep is non-empty").1 as f64
}

/// The baseline payload: one row per budget.
#[must_use]
pub fn payload(out: &Output) -> Json {
    let base = base12(out);
    Json::arr(out.cycles.iter().map(|(c, cy)| {
        Json::obj([
            ("checkpoints", Json::from(u64::from(*c))),
            ("cycles", Json::from(*cy)),
            ("slowdown_vs_12", Json::from(*cy as f64 / base)),
        ])
    }))
}

/// Prints the budget table and the expected shape.
pub fn print(out: &Output) {
    println!("§3.2 ablation: rename-checkpoint budget under informing-as-branch.\n");
    let base = base12(out);
    let mut t = Table::new(["checkpoints", "cycles", "slowdown vs 12"]);
    for (c, cy) in &out.cycles {
        t.row([c.to_string(), cy.to_string(), format!("{:.3}x", *cy as f64 / base)]);
    }
    print!("{}", t.render());
    println!(
        "\nexpected: the R10000's 3 checkpoints throttle dispatch when every reference\n\
         is a potential branch; ~3x the budget recovers the performance (§3.2)."
    );
}

/// The whole bench target: compute, print, write the baseline.
pub fn run() {
    let out = compute();
    print(&out);
    emit("ablation_checkpoints", payload(&out));
}
