//! Wire codecs and the client side of the sweep job server (`imo-serve`).
//!
//! The job server shards a [`CpuCell`] matrix across worker processes, so
//! every cell input and every [`ExperimentResult`] must cross a process
//! boundary. This module defines that wire — line-delimited JSON frames
//! under the [`imo_util::snapshot`] discipline (versioned envelopes, u64
//! counters as fixed-width hex, f64 as bit patterns) so a decoded result is
//! bit-identical to the in-process one — plus:
//!
//! * [`run_cells_via_server`] — the client [`crate::sweep::run_cpu_cells`]
//!   routes through when `IMO_SERVE_ADDR` is set; and
//! * [`run_cell`] — the worker-side cell runner, with optional
//!   checkpoint-based preemption: `preempt_every` makes every simulation
//!   pause at cycle-boundary slices and resume from a JSON-serialized
//!   [`Checkpoint`], exactly as a preempted worker handing the cell to
//!   another process would. Determinism makes the sliced result
//!   bit-identical to the uninterrupted one.
//!
//! ## Frames
//!
//! Every frame is one line of compact JSON ([`imo_util::json::Json::compact`]):
//!
//! * client → server: one [`SweepRequest`] (`serve.sweep`);
//! * server → client: one [`CellDone`] (`serve.done`) per cell **in
//!   input-index order**, or a [`ServeError`] (`serve.error`);
//! * server → worker: one [`CellJob`] (`serve.job`) per dispatched cell;
//! * worker → server: [`CellDone`] frames, in the worker's completion order
//!   (the server's reorder buffer restores input order).

use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::sync::Mutex;

use imo_core::experiment::{normalize_experiment, ExperimentResult, Variant};
use imo_core::instrument::{instrument, HandlerBody, HandlerKind, Scheme};
use imo_core::Machine;
use imo_cpu::{Checkpoint, Outcome, RunLimits, RunResult, SimSession};
use imo_isa::Program;
use imo_util::json::{parse, Json};
use imo_util::snapshot::{self, Snapshot, SnapshotError};
use imo_util::{debug_hash, SlotBreakdown};
use imo_workloads::{by_name, Scale};

use crate::sweep::{memoized, CpuCell};

/// Leak-once intern table for decoded `&'static str` labels. The label
/// vocabulary is tiny and fixed ("N", "1S", "ooo", …), so the leak is
/// bounded: each distinct string leaks at most once per process.
static LABELS: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// Interns a decoded label as `&'static str`.
fn intern(s: &str) -> &'static str {
    let mut table = LABELS.lock().expect("label intern lock");
    if let Some(hit) = table.iter().find(|l| **l == s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    table.push(leaked);
    leaked
}

fn scale_json(s: Scale) -> Json {
    snapshot::u64_json(match s {
        Scale::Test => 0,
        Scale::Small => 1,
        Scale::Reference => 2,
    })
}

fn decode_scale(j: &Json, key: &'static str) -> Result<Scale, SnapshotError> {
    match snapshot::get_u64(j, key)? {
        0 => Ok(Scale::Test),
        1 => Ok(Scale::Small),
        2 => Ok(Scale::Reference),
        _ => Err(SnapshotError::Bad(key)),
    }
}

fn body_json(b: HandlerBody) -> Json {
    let (kind, a, b2) = match b {
        HandlerBody::Generic { len } => (0, u64::from(len), 0),
        HandlerBody::CountInRegister => (1, 0, 0),
        HandlerBody::CountPerReference { table_base } => (2, table_base, 0),
        HandlerBody::PcHash { table_base, buckets } => (3, table_base, buckets),
        HandlerBody::NextLinePrefetch { lines } => (4, u64::from(lines), 0),
        HandlerBody::SampledGeneric { len, period } => (5, u64::from(len), u64::from(period)),
    };
    Json::obj([
        ("kind", snapshot::u64_json(kind)),
        ("a", snapshot::u64_json(a)),
        ("b", snapshot::u64_json(b2)),
    ])
}

fn u32_field(v: u64, key: &'static str) -> Result<u32, SnapshotError> {
    u32::try_from(v).map_err(|_| SnapshotError::Bad(key))
}

fn decode_body(j: &Json) -> Result<HandlerBody, SnapshotError> {
    let a = snapshot::get_u64(j, "a")?;
    let b = snapshot::get_u64(j, "b")?;
    Ok(match snapshot::get_u64(j, "kind")? {
        0 => HandlerBody::Generic { len: u32_field(a, "a")? },
        1 => HandlerBody::CountInRegister,
        2 => HandlerBody::CountPerReference { table_base: a },
        3 => HandlerBody::PcHash { table_base: a, buckets: b },
        4 => HandlerBody::NextLinePrefetch { lines: u32_field(a, "a")? },
        5 => HandlerBody::SampledGeneric { len: u32_field(a, "a")?, period: u32_field(b, "b")? },
        _ => return Err(SnapshotError::Bad("body")),
    })
}

fn scheme_json(s: Scheme) -> Json {
    let (kind, handlers, body) = match s {
        Scheme::None => (0, None, None),
        Scheme::Trap { handlers, body } => (1, Some(handlers), Some(body)),
        Scheme::ConditionCode { handlers, body } => (2, Some(handlers), Some(body)),
    };
    let handlers = handlers.map(|h| match h {
        HandlerKind::Single => 0,
        HandlerKind::PerReference => 1,
    });
    Json::obj([
        ("kind", snapshot::u64_json(kind)),
        ("handlers", snapshot::opt_u64_json(handlers)),
        ("body", body.map_or(Json::Null, body_json)),
    ])
}

fn decode_scheme(j: &Json) -> Result<Scheme, SnapshotError> {
    let kind = snapshot::get_u64(j, "kind")?;
    if kind == 0 {
        return Ok(Scheme::None);
    }
    let handlers = match snapshot::get_opt_u64(j, "handlers")? {
        Some(0) => HandlerKind::Single,
        Some(1) => HandlerKind::PerReference,
        _ => return Err(SnapshotError::Bad("handlers")),
    };
    let body = decode_body(snapshot::field(j, "body")?)?;
    match kind {
        1 => Ok(Scheme::Trap { handlers, body }),
        2 => Ok(Scheme::ConditionCode { handlers, body }),
        _ => Err(SnapshotError::Bad("scheme")),
    }
}

fn variant_json(v: &Variant) -> Json {
    Json::obj([("label", Json::from(v.label)), ("scheme", scheme_json(v.scheme))])
}

fn decode_variant(j: &Json) -> Result<Variant, SnapshotError> {
    Ok(Variant {
        label: intern(snapshot::get_str(j, "label")?),
        scheme: decode_scheme(snapshot::field(j, "scheme")?)?,
    })
}

/// Encodes a machine as its name plus a `Debug`-hash of its full
/// configuration. The decoder rebuilds the *default* machine of that name
/// and verifies the hash, so a cell carrying a non-default configuration is
/// rejected loudly instead of silently simulated under the wrong parameters.
fn machine_json(m: &Machine) -> Json {
    Json::obj([("name", Json::from(m.name())), ("hash", snapshot::u64_json(debug_hash(m)))])
}

fn decode_machine(j: &Json) -> Result<Machine, SnapshotError> {
    let machine = match snapshot::get_str(j, "name")? {
        "ooo" => Machine::default_ooo(),
        "in-order" => Machine::default_in_order(),
        _ => return Err(SnapshotError::Bad("machine")),
    };
    if snapshot::get_u64(j, "hash")? != debug_hash(&machine) {
        return Err(SnapshotError::Bad("machine"));
    }
    Ok(machine)
}

/// Encodes one sweep cell.
pub fn cell_json(cell: &CpuCell) -> Json {
    Json::obj([
        ("workload", Json::from(cell.workload)),
        ("scale", scale_json(cell.scale)),
        ("machine", machine_json(&cell.machine)),
        ("variants", Json::arr(cell.variants.iter().map(variant_json))),
    ])
}

/// Decodes a [`cell_json`] cell; the workload must exist in the registry.
pub fn decode_cell(j: &Json) -> Result<CpuCell, SnapshotError> {
    let workload = intern(snapshot::get_str(j, "workload")?);
    if by_name(workload).is_none() {
        return Err(SnapshotError::Bad("workload"));
    }
    Ok(CpuCell {
        workload,
        scale: decode_scale(j, "scale")?,
        machine: decode_machine(snapshot::field(j, "machine")?)?,
        variants: snapshot::get_arr(j, "variants", decode_variant)?,
    })
}

/// Encodes a raw simulation result, bit-exactly (u64 counters as hex, the
/// branch-accuracy f64 as its bit pattern).
pub fn result_json(r: &RunResult) -> Json {
    Json::obj([
        ("cycles", snapshot::u64_json(r.cycles)),
        ("instructions", snapshot::u64_json(r.instructions)),
        ("slots_busy", snapshot::u64_json(r.slots.busy)),
        ("slots_cache", snapshot::u64_json(r.slots.cache_stall)),
        ("slots_other", snapshot::u64_json(r.slots.other_stall)),
        ("informing_traps", snapshot::u64_json(r.informing_traps)),
        ("mispredictions", snapshot::u64_json(r.mispredictions)),
        ("branch_accuracy", snapshot::f64_json(r.branch_accuracy)),
        ("handler_faults", snapshot::u64_json(r.handler_faults)),
        ("degraded", Json::Bool(r.degraded)),
        ("l1d_accesses", snapshot::u64_json(r.mem.l1d_accesses)),
        ("l1d_misses", snapshot::u64_json(r.mem.l1d_misses)),
        ("l2_misses", snapshot::u64_json(r.mem.l2_misses)),
        ("inst_misses", snapshot::u64_json(r.mem.inst_misses)),
    ])
}

/// Decodes a [`result_json`] result.
pub fn decode_result(j: &Json) -> Result<RunResult, SnapshotError> {
    Ok(RunResult {
        cycles: snapshot::get_u64(j, "cycles")?,
        instructions: snapshot::get_u64(j, "instructions")?,
        slots: SlotBreakdown {
            busy: snapshot::get_u64(j, "slots_busy")?,
            cache_stall: snapshot::get_u64(j, "slots_cache")?,
            other_stall: snapshot::get_u64(j, "slots_other")?,
        },
        informing_traps: snapshot::get_u64(j, "informing_traps")?,
        mispredictions: snapshot::get_u64(j, "mispredictions")?,
        branch_accuracy: snapshot::get_f64(j, "branch_accuracy")?,
        handler_faults: snapshot::get_u64(j, "handler_faults")?,
        degraded: snapshot::get_bool(j, "degraded")?,
        mem: imo_cpu::result::MemCounters {
            l1d_accesses: snapshot::get_u64(j, "l1d_accesses")?,
            l1d_misses: snapshot::get_u64(j, "l1d_misses")?,
            l2_misses: snapshot::get_u64(j, "l2_misses")?,
            inst_misses: snapshot::get_u64(j, "inst_misses")?,
        },
    })
}

/// Encodes an experiment result. Only the raw per-variant results cross the
/// wire; the decoder recomputes the normalized bars with the same
/// [`normalize_experiment`] the in-process path uses, so derived floats are
/// bit-identical by construction.
pub fn experiment_json(e: &ExperimentResult) -> Json {
    Json::obj([
        ("workload", Json::from(e.workload.as_str())),
        ("machine", Json::from(e.machine)),
        (
            "raw",
            Json::arr(e.raw.iter().map(|(label, r)| {
                Json::obj([("label", Json::from(*label)), ("result", result_json(r))])
            })),
        ),
    ])
}

/// Decodes an [`experiment_json`] result, rebuilding the normalized bars.
pub fn decode_experiment(j: &Json) -> Result<ExperimentResult, SnapshotError> {
    let workload = snapshot::get_str(j, "workload")?.to_string();
    let machine = intern(snapshot::get_str(j, "machine")?);
    let raw = snapshot::get_arr(j, "raw", |v| {
        Ok((intern(snapshot::get_str(v, "label")?), decode_result(snapshot::field(v, "result")?)?))
    })?;
    if raw.is_empty() {
        return Err(SnapshotError::Bad("raw"));
    }
    Ok(normalize_experiment(&workload, machine, raw))
}

/// A client's sweep submission: a named cell list, optionally preempted.
#[derive(Debug, Clone)]
pub struct SweepRequest {
    /// Sweep name (diagnostics only).
    pub name: String,
    /// Preempt every simulation at this cycle stride (see [`run_cell`]).
    pub preempt_every: Option<u64>,
    /// The cells, in the order results must stream back.
    pub cells: Vec<CpuCell>,
}

impl Snapshot for SweepRequest {
    const KIND: &'static str = "serve.sweep";
    const VERSION: u32 = 1;

    fn encode(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("preempt_every", snapshot::opt_u64_json(self.preempt_every)),
            ("cells", Json::arr(self.cells.iter().map(cell_json))),
        ])
    }

    fn decode(data: &Json) -> Result<Self, SnapshotError> {
        Ok(SweepRequest {
            name: snapshot::get_str(data, "name")?.to_string(),
            preempt_every: snapshot::get_opt_u64(data, "preempt_every")?,
            cells: snapshot::get_arr(data, "cells", decode_cell)?,
        })
    }
}

/// One cell dispatched to a worker.
#[derive(Debug, Clone)]
pub struct CellJob {
    /// The cell's input index (echoed back in [`CellDone`]).
    pub index: u64,
    /// The cell to run.
    pub cell: CpuCell,
    /// Preemption stride, if any.
    pub preempt_every: Option<u64>,
}

impl Snapshot for CellJob {
    const KIND: &'static str = "serve.job";
    const VERSION: u32 = 1;

    fn encode(&self) -> Json {
        Json::obj([
            ("index", snapshot::u64_json(self.index)),
            ("cell", cell_json(&self.cell)),
            ("preempt_every", snapshot::opt_u64_json(self.preempt_every)),
        ])
    }

    fn decode(data: &Json) -> Result<Self, SnapshotError> {
        Ok(CellJob {
            index: snapshot::get_u64(data, "index")?,
            cell: decode_cell(snapshot::field(data, "cell")?)?,
            preempt_every: snapshot::get_opt_u64(data, "preempt_every")?,
        })
    }
}

/// One completed cell.
#[derive(Debug, Clone)]
pub struct CellDone {
    /// The cell's input index.
    pub index: u64,
    /// Its result.
    pub result: ExperimentResult,
}

impl Snapshot for CellDone {
    const KIND: &'static str = "serve.done";
    const VERSION: u32 = 1;

    fn encode(&self) -> Json {
        Json::obj([
            ("index", snapshot::u64_json(self.index)),
            ("result", experiment_json(&self.result)),
        ])
    }

    fn decode(data: &Json) -> Result<Self, SnapshotError> {
        Ok(CellDone {
            index: snapshot::get_u64(data, "index")?,
            result: decode_experiment(snapshot::field(data, "result")?)?,
        })
    }
}

/// A fatal protocol or simulation error, streamed instead of results.
#[derive(Debug, Clone)]
pub struct ServeError {
    /// Human-readable description.
    pub message: String,
}

impl Snapshot for ServeError {
    const KIND: &'static str = "serve.error";
    const VERSION: u32 = 1;

    fn encode(&self) -> Json {
        Json::obj([("message", Json::from(self.message.as_str()))])
    }

    fn decode(data: &Json) -> Result<Self, SnapshotError> {
        Ok(ServeError { message: snapshot::get_str(data, "message")?.to_string() })
    }
}

/// Runs a simulation, optionally sliced into `preempt_every`-cycle
/// checkpoints: each slice pauses at a cycle boundary, serializes the
/// [`Checkpoint`] through its JSON wire format, and resumes from the decoded
/// copy — the full preemption path a worker handoff would take. Determinism
/// makes the final result bit-identical to the uninterrupted run.
fn run_sliced(
    machine: &Machine,
    program: &Program,
    limits: RunLimits,
    preempt_every: Option<u64>,
    context: &str,
) -> RunResult {
    let Some(step) = preempt_every.filter(|s| *s > 0) else {
        return machine.run_limited(program, limits).unwrap_or_else(|e| panic!("{context}: {e}"));
    };
    let mut limits = limits;
    let mut ckpt: Option<Checkpoint> = None;
    let mut stop = step;
    loop {
        limits.stop_at = Some(stop);
        let session = SimSession::new(program, machine.core_config()).limits(limits);
        let outcome = match &ckpt {
            None => session.run(),
            Some(c) => session.resume(c),
        }
        .unwrap_or_else(|e| panic!("{context} (slice at {stop}): {e}"));
        match outcome {
            Outcome::Complete { result, .. } => return result,
            Outcome::Paused(c) => {
                let line = c.to_wire().compact();
                let parsed =
                    parse(&line).unwrap_or_else(|e| panic!("{context}: checkpoint reparse: {e}"));
                let back = Checkpoint::from_wire(&parsed)
                    .unwrap_or_else(|e| panic!("{context}: checkpoint decode: {e}"));
                stop = back.cycle().saturating_add(step);
                ckpt = Some(back);
            }
        }
    }
}

/// Runs one cell to its [`ExperimentResult`] — the worker-side counterpart
/// of [`CpuCell::run`], sharing its per-variant memo keys (so a persistent
/// worker dedups shared baselines) and adding checkpoint-based preemption.
///
/// # Panics
///
/// Panics if the workload is unknown or a simulation fails, like the rest of
/// the bench harness.
#[must_use]
pub fn run_cell(cell: &CpuCell, preempt_every: Option<u64>) -> ExperimentResult {
    let spec =
        by_name(cell.workload).unwrap_or_else(|| panic!("unknown workload `{}`", cell.workload));
    let limits = RunLimits::default();
    let mut program = None;
    let mut raw = Vec::with_capacity(cell.variants.len());
    for v in &cell.variants {
        let key = format!(
            "cpu-run/{}/{:?}/{:?}/{:?}/{:?}",
            cell.workload, cell.scale, cell.machine, v.scheme, limits
        );
        let result = memoized(&key, || {
            let program = program.get_or_insert_with(|| (spec.build)(cell.scale));
            let inst = instrument(program, &v.scheme).unwrap_or_else(|e| {
                panic!("instrumenting {} as {:?}: {e}", cell.workload, v.scheme)
            });
            let context = format!("{} on {}", cell.workload, cell.machine.name());
            run_sliced(&cell.machine, &inst.program, limits, preempt_every, &context)
        });
        raw.push((v.label, result));
    }
    normalize_experiment(cell.workload, cell.machine.name(), raw)
}

/// Submits `cells` to the job server at `addr` and streams the results back
/// in input-index order. `IMO_SERVE_PREEMPT` (a cycle stride) turns on
/// checkpoint-based preemption server-side.
///
/// # Panics
///
/// Panics on connection, protocol, or server-reported errors — a bench cell
/// has no useful recovery, and a silent fallback to in-process execution
/// would defeat the point of routing through the server.
#[must_use]
pub fn run_cells_via_server(addr: &str, name: &str, cells: Vec<CpuCell>) -> Vec<ExperimentResult> {
    let preempt_every = std::env::var("IMO_SERVE_PREEMPT")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|s| *s > 0);
    let expected = cells.len();
    let request = SweepRequest { name: name.to_string(), preempt_every, cells };

    let stream = TcpStream::connect(addr)
        .unwrap_or_else(|e| panic!("sweep `{name}`: connecting to job server {addr}: {e}"));
    let mut writer =
        stream.try_clone().unwrap_or_else(|e| panic!("sweep `{name}`: cloning server stream: {e}"));
    writeln!(writer, "{}", request.to_wire().compact())
        .unwrap_or_else(|e| panic!("sweep `{name}`: submitting to {addr}: {e}"));
    writer.flush().unwrap_or_else(|e| panic!("sweep `{name}`: flushing request: {e}"));

    let mut results = Vec::with_capacity(expected);
    let mut lines = BufReader::new(stream).lines();
    for i in 0..expected {
        let line = match lines.next() {
            Some(Ok(line)) => line,
            Some(Err(e)) => panic!("sweep `{name}`: reading cell {i}: {e}"),
            None => panic!("sweep `{name}`: server closed after {i}/{expected} cells"),
        };
        let frame =
            parse(&line).unwrap_or_else(|e| panic!("sweep `{name}`: corrupt frame {i}: {e}"));
        if let Ok(err) = ServeError::from_wire(&frame) {
            panic!("sweep `{name}`: server error: {}", err.message);
        }
        let done = CellDone::from_wire(&frame)
            .unwrap_or_else(|e| panic!("sweep `{name}`: frame {i}: {e}"));
        assert_eq!(done.index as usize, i, "sweep `{name}`: results must stream in input order");
        results.push(done.result);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_core::experiment::figure2_variants;
    use imo_cpu::SimError;

    #[test]
    fn cell_codec_round_trips_every_body_kind() {
        let bodies = [
            HandlerBody::Generic { len: 10 },
            HandlerBody::CountInRegister,
            HandlerBody::CountPerReference { table_base: 0x7000_0000 },
            HandlerBody::PcHash { table_base: 0x7000_0000, buckets: 64 },
            HandlerBody::NextLinePrefetch { lines: 2 },
            HandlerBody::SampledGeneric { len: 100, period: 16 },
        ];
        for (i, body) in bodies.into_iter().enumerate() {
            let scheme = if i % 2 == 0 {
                Scheme::Trap { handlers: HandlerKind::Single, body }
            } else {
                Scheme::ConditionCode { handlers: HandlerKind::PerReference, body }
            };
            let cell = CpuCell {
                workload: "compress",
                scale: Scale::Test,
                machine: Machine::default_ooo(),
                variants: vec![
                    Variant { label: "N", scheme: Scheme::None },
                    Variant { label: "X", scheme },
                ],
            };
            let line = cell_json(&cell).compact();
            let back = decode_cell(&parse(&line).expect("parses")).expect("decodes");
            assert_eq!(back.workload, cell.workload);
            assert_eq!(back.scale, cell.scale);
            assert_eq!(back.machine, cell.machine);
            assert_eq!(back.variants, cell.variants);
        }
    }

    #[test]
    fn cell_decode_rejects_unknown_workload_and_tampered_machine() {
        let cell = CpuCell {
            workload: "compress",
            scale: Scale::Test,
            machine: Machine::default_ooo(),
            variants: figure2_variants(),
        };
        let mut j = cell_json(&cell);
        if let Json::Obj(pairs) = &mut j {
            pairs[0].1 = Json::from("no-such-workload");
        }
        assert_eq!(decode_cell(&j).err(), Some(SnapshotError::Bad("workload")));

        let mut j = cell_json(&cell);
        if let Json::Obj(pairs) = &mut j {
            pairs[2].1 = machine_json(&Machine::default_in_order());
            if let Json::Obj(m) = &mut pairs[2].1 {
                m[0].1 = Json::from("ooo"); // name says ooo, hash says in-order
            }
        }
        assert_eq!(decode_cell(&j).err(), Some(SnapshotError::Bad("machine")));
    }

    #[test]
    fn experiment_codec_is_bit_identical() {
        let cell = CpuCell {
            workload: "ora",
            scale: Scale::Test,
            machine: Machine::default_in_order(),
            variants: figure2_variants(),
        };
        let direct = cell.run();
        let line = experiment_json(&direct).compact();
        let back = decode_experiment(&parse(&line).expect("parses")).expect("decodes");
        assert_eq!(back, direct, "raw results and recomputed bars match bit-for-bit");
    }

    #[test]
    fn preempted_cell_matches_uninterrupted_run() {
        let cell = CpuCell {
            workload: "ora",
            scale: Scale::Test,
            machine: Machine::default_ooo(),
            variants: figure2_variants(),
        };
        let direct = cell.run();
        // Every variant's run is sliced into ~20 checkpoint wire round
        // trips. Bypass `memoized` (whose keys match `CpuCell::run`) by
        // calling run_sliced directly — the memo would otherwise serve
        // `direct`'s values and prove nothing.
        let spec = by_name(cell.workload).expect("workload exists");
        let program = (spec.build)(cell.scale);
        let mut raw = Vec::new();
        for v in &cell.variants {
            let inst = instrument(&program, &v.scheme).expect("instruments");
            let baseline = cell
                .machine
                .run_limited(&inst.program, RunLimits::default())
                .expect("baseline runs");
            let stride = (baseline.cycles / 20).max(1);
            let r = run_sliced(
                &cell.machine,
                &inst.program,
                RunLimits::default(),
                Some(stride),
                "preempt test",
            );
            raw.push((v.label, r));
        }
        let sliced = normalize_experiment(cell.workload, cell.machine.name(), raw);
        assert_eq!(sliced, direct, "preemption slicing must be invisible");
    }

    #[test]
    fn wire_structs_round_trip() {
        let cell = CpuCell {
            workload: "ora",
            scale: Scale::Test,
            machine: Machine::default_ooo(),
            variants: figure2_variants(),
        };
        let req = SweepRequest {
            name: "fig2".to_string(),
            preempt_every: Some(1000),
            cells: vec![cell.clone()],
        };
        let back = SweepRequest::from_wire(&parse(&req.to_wire().compact()).expect("parses"))
            .expect("decodes");
        assert_eq!(back.name, "fig2");
        assert_eq!(back.preempt_every, Some(1000));
        assert_eq!(back.cells.len(), 1);

        let job = CellJob { index: 3, cell, preempt_every: None };
        let back =
            CellJob::from_wire(&parse(&job.to_wire().compact()).expect("parses")).expect("decodes");
        assert_eq!(back.index, 3);
        assert_eq!(back.preempt_every, None);

        let err = ServeError { message: "boom".to_string() };
        let back = ServeError::from_wire(&parse(&err.to_wire().compact()).expect("parses"))
            .expect("decodes");
        assert_eq!(back.message, "boom");
    }

    #[test]
    fn client_panics_cleanly_when_no_server_listens() {
        // A connection failure must not silently fall back to in-process.
        let r = std::panic::catch_unwind(|| {
            let _ = run_cells_via_server("127.0.0.1:9", "x", Vec::new());
        });
        assert!(r.is_err());
        let _ = SimError::Paused { cycle: 0 }; // keep the import honest
    }
}
