//! Wire codecs and the client side of the sweep job server (`imo-serve`).
//!
//! The job server shards a cell matrix across worker processes, so every
//! cell input and every result must cross a process boundary. This module
//! defines that wire — line-delimited JSON frames under the
//! [`imo_util::snapshot`] discipline (versioned envelopes, u64 counters as
//! fixed-width hex, f64 as bit patterns) so a decoded result is
//! bit-identical to the in-process one — plus:
//!
//! * [`run_cells_via_server`] — the client [`crate::sweep::run_cpu_cells`]
//!   routes through when `IMO_SERVE_ADDR` is set, and its typed-error,
//!   timeout-bounded core [`try_run_cells_via_server`];
//! * [`run_cell`] — the worker-side CPU cell runner, with optional
//!   checkpoint-based preemption: `preempt_every` makes every simulation
//!   pause at cycle-boundary slices and resume from a JSON-serialized
//!   [`Checkpoint`], exactly as a preempted worker handing the cell to
//!   another process would. Determinism makes the sliced result
//!   bit-identical to the uninterrupted one; and
//! * [`run_any_cell`] — the resumable runner behind the chaos-hardened
//!   server: any [`AnyCell`] kind (CPU sweep cell, coherence trace,
//!   synthetic hash chain) runs slice by slice, reporting an encoded
//!   cell-state JSON at every preemption boundary so a killed worker's
//!   replacement can resume from the last reported state.
//!
//! ## Frames
//!
//! Every frame is one line of compact JSON ([`imo_util::json::Json::compact`]):
//!
//! * client → server: one [`SweepRequest`] (`serve.sweep`);
//! * server → client: one [`CellDone`] (`serve.done`) per cell **in
//!   input-index order**, or a [`ServeError`] (`serve.error`);
//! * server → worker: one [`CellJob`] (`serve.job`) per dispatched cell,
//!   carrying an optional resume state;
//! * worker → server: [`WorkerCkpt`] (`serve.ckpt`) heartbeats at each
//!   preemption boundary while chaos is armed, then one [`WorkerDone`]
//!   (`serve.wdone`) per cell in the worker's completion order (the
//!   server's reorder buffer restores input order), and a [`WorkerBye`]
//!   (`serve.bye`) before a chaos-scheduled graceful retirement.
//!
//! ## Progress units
//!
//! `progress` in worker frames is cumulative work in cell-kind units: CPU
//! cells count simulated cycles (summed across the cell's variants),
//! coherence cells count references retired, synthetic cells count
//! iterations. `worked` is the part of `progress` this attempt simulated
//! itself — the server's useful/recovered/wasted-cycle accounting needs
//! both.

use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

use imo_coherence::{CohCheckpoint, CohOutcome, CohSession, MachineParams, SimResult};
use imo_core::experiment::{normalize_experiment, ExperimentResult, Variant};
use imo_core::instrument::{instrument, HandlerBody, HandlerKind, Scheme};
use imo_core::Machine;
use imo_cpu::{Checkpoint, Outcome, RunLimits, RunResult, SimSession};
use imo_faults::ChaosConfig;
use imo_isa::Program;
use imo_util::json::{parse, Json};
use imo_util::rng::mix64;
use imo_util::snapshot::{self, Snapshot, SnapshotError};
use imo_util::{debug_hash, SlotBreakdown};
use imo_workloads::parallel::{self, ParallelTrace, TraceConfig};
use imo_workloads::{by_name, Scale};

use crate::sweep::{memoized_stored, CpuCell};

/// Leak-once intern table for decoded `&'static str` labels. The label
/// vocabulary is tiny and fixed ("N", "1S", "ooo", …), so the leak is
/// bounded: each distinct string leaks at most once per process.
static LABELS: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// Interns a decoded label as `&'static str`.
fn intern(s: &str) -> &'static str {
    let mut table = LABELS.lock().expect("label intern lock");
    if let Some(hit) = table.iter().find(|l| **l == s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    table.push(leaked);
    leaked
}

fn scale_json(s: Scale) -> Json {
    snapshot::u64_json(match s {
        Scale::Test => 0,
        Scale::Small => 1,
        Scale::Reference => 2,
    })
}

fn decode_scale(j: &Json, key: &'static str) -> Result<Scale, SnapshotError> {
    match snapshot::get_u64(j, key)? {
        0 => Ok(Scale::Test),
        1 => Ok(Scale::Small),
        2 => Ok(Scale::Reference),
        _ => Err(SnapshotError::Bad(key)),
    }
}

fn body_json(b: HandlerBody) -> Json {
    let (kind, a, b2) = match b {
        HandlerBody::Generic { len } => (0, u64::from(len), 0),
        HandlerBody::CountInRegister => (1, 0, 0),
        HandlerBody::CountPerReference { table_base } => (2, table_base, 0),
        HandlerBody::PcHash { table_base, buckets } => (3, table_base, buckets),
        HandlerBody::NextLinePrefetch { lines } => (4, u64::from(lines), 0),
        HandlerBody::SampledGeneric { len, period } => (5, u64::from(len), u64::from(period)),
    };
    Json::obj([
        ("kind", snapshot::u64_json(kind)),
        ("a", snapshot::u64_json(a)),
        ("b", snapshot::u64_json(b2)),
    ])
}

fn u32_field(v: u64, key: &'static str) -> Result<u32, SnapshotError> {
    u32::try_from(v).map_err(|_| SnapshotError::Bad(key))
}

fn decode_body(j: &Json) -> Result<HandlerBody, SnapshotError> {
    let a = snapshot::get_u64(j, "a")?;
    let b = snapshot::get_u64(j, "b")?;
    Ok(match snapshot::get_u64(j, "kind")? {
        0 => HandlerBody::Generic { len: u32_field(a, "a")? },
        1 => HandlerBody::CountInRegister,
        2 => HandlerBody::CountPerReference { table_base: a },
        3 => HandlerBody::PcHash { table_base: a, buckets: b },
        4 => HandlerBody::NextLinePrefetch { lines: u32_field(a, "a")? },
        5 => HandlerBody::SampledGeneric { len: u32_field(a, "a")?, period: u32_field(b, "b")? },
        _ => return Err(SnapshotError::Bad("body")),
    })
}

fn scheme_json(s: Scheme) -> Json {
    let (kind, handlers, body) = match s {
        Scheme::None => (0, None, None),
        Scheme::Trap { handlers, body } => (1, Some(handlers), Some(body)),
        Scheme::ConditionCode { handlers, body } => (2, Some(handlers), Some(body)),
    };
    let handlers = handlers.map(|h| match h {
        HandlerKind::Single => 0,
        HandlerKind::PerReference => 1,
    });
    Json::obj([
        ("kind", snapshot::u64_json(kind)),
        ("handlers", snapshot::opt_u64_json(handlers)),
        ("body", body.map_or(Json::Null, body_json)),
    ])
}

fn decode_scheme(j: &Json) -> Result<Scheme, SnapshotError> {
    let kind = snapshot::get_u64(j, "kind")?;
    if kind == 0 {
        return Ok(Scheme::None);
    }
    let handlers = match snapshot::get_opt_u64(j, "handlers")? {
        Some(0) => HandlerKind::Single,
        Some(1) => HandlerKind::PerReference,
        _ => return Err(SnapshotError::Bad("handlers")),
    };
    let body = decode_body(snapshot::field(j, "body")?)?;
    match kind {
        1 => Ok(Scheme::Trap { handlers, body }),
        2 => Ok(Scheme::ConditionCode { handlers, body }),
        _ => Err(SnapshotError::Bad("scheme")),
    }
}

fn variant_json(v: &Variant) -> Json {
    Json::obj([("label", Json::from(v.label)), ("scheme", scheme_json(v.scheme))])
}

fn decode_variant(j: &Json) -> Result<Variant, SnapshotError> {
    Ok(Variant {
        label: intern(snapshot::get_str(j, "label")?),
        scheme: decode_scheme(snapshot::field(j, "scheme")?)?,
    })
}

/// Encodes a machine as its name plus a `Debug`-hash of its full
/// configuration. The decoder rebuilds the *default* machine of that name
/// and verifies the hash, so a cell carrying a non-default configuration is
/// rejected loudly instead of silently simulated under the wrong parameters.
fn machine_json(m: &Machine) -> Json {
    Json::obj([("name", Json::from(m.name())), ("hash", snapshot::u64_json(debug_hash(m)))])
}

fn decode_machine(j: &Json) -> Result<Machine, SnapshotError> {
    let machine = match snapshot::get_str(j, "name")? {
        "ooo" => Machine::default_ooo(),
        "in-order" => Machine::default_in_order(),
        _ => return Err(SnapshotError::Bad("machine")),
    };
    if snapshot::get_u64(j, "hash")? != debug_hash(&machine) {
        return Err(SnapshotError::Bad("machine"));
    }
    Ok(machine)
}

/// Encodes one sweep cell.
pub fn cell_json(cell: &CpuCell) -> Json {
    Json::obj([
        ("workload", Json::from(cell.workload)),
        ("scale", scale_json(cell.scale)),
        ("machine", machine_json(&cell.machine)),
        ("variants", Json::arr(cell.variants.iter().map(variant_json))),
    ])
}

/// Decodes a [`cell_json`] cell; the workload must exist in the registry.
pub fn decode_cell(j: &Json) -> Result<CpuCell, SnapshotError> {
    let workload = intern(snapshot::get_str(j, "workload")?);
    if by_name(workload).is_none() {
        return Err(SnapshotError::Bad("workload"));
    }
    Ok(CpuCell {
        workload,
        scale: decode_scale(j, "scale")?,
        machine: decode_machine(snapshot::field(j, "machine")?)?,
        variants: snapshot::get_arr(j, "variants", decode_variant)?,
    })
}

/// Encodes a raw simulation result, bit-exactly (u64 counters as hex, the
/// branch-accuracy f64 as its bit pattern).
pub fn result_json(r: &RunResult) -> Json {
    Json::obj([
        ("cycles", snapshot::u64_json(r.cycles)),
        ("instructions", snapshot::u64_json(r.instructions)),
        ("slots_busy", snapshot::u64_json(r.slots.busy)),
        ("slots_cache", snapshot::u64_json(r.slots.cache_stall)),
        ("slots_other", snapshot::u64_json(r.slots.other_stall)),
        ("informing_traps", snapshot::u64_json(r.informing_traps)),
        ("mispredictions", snapshot::u64_json(r.mispredictions)),
        ("branch_accuracy", snapshot::f64_json(r.branch_accuracy)),
        ("handler_faults", snapshot::u64_json(r.handler_faults)),
        ("degraded", Json::Bool(r.degraded)),
        ("l1d_accesses", snapshot::u64_json(r.mem.l1d_accesses)),
        ("l1d_misses", snapshot::u64_json(r.mem.l1d_misses)),
        ("l2_misses", snapshot::u64_json(r.mem.l2_misses)),
        ("inst_misses", snapshot::u64_json(r.mem.inst_misses)),
    ])
}

/// Decodes a [`result_json`] result.
pub fn decode_result(j: &Json) -> Result<RunResult, SnapshotError> {
    Ok(RunResult {
        cycles: snapshot::get_u64(j, "cycles")?,
        instructions: snapshot::get_u64(j, "instructions")?,
        slots: SlotBreakdown {
            busy: snapshot::get_u64(j, "slots_busy")?,
            cache_stall: snapshot::get_u64(j, "slots_cache")?,
            other_stall: snapshot::get_u64(j, "slots_other")?,
        },
        informing_traps: snapshot::get_u64(j, "informing_traps")?,
        mispredictions: snapshot::get_u64(j, "mispredictions")?,
        branch_accuracy: snapshot::get_f64(j, "branch_accuracy")?,
        handler_faults: snapshot::get_u64(j, "handler_faults")?,
        degraded: snapshot::get_bool(j, "degraded")?,
        mem: imo_cpu::result::MemCounters {
            l1d_accesses: snapshot::get_u64(j, "l1d_accesses")?,
            l1d_misses: snapshot::get_u64(j, "l1d_misses")?,
            l2_misses: snapshot::get_u64(j, "l2_misses")?,
            inst_misses: snapshot::get_u64(j, "inst_misses")?,
        },
    })
}

/// Encodes an experiment result. Only the raw per-variant results cross the
/// wire; the decoder recomputes the normalized bars with the same
/// [`normalize_experiment`] the in-process path uses, so derived floats are
/// bit-identical by construction.
pub fn experiment_json(e: &ExperimentResult) -> Json {
    Json::obj([
        ("workload", Json::from(e.workload.as_str())),
        ("machine", Json::from(e.machine)),
        (
            "raw",
            Json::arr(e.raw.iter().map(|(label, r)| {
                Json::obj([("label", Json::from(*label)), ("result", result_json(r))])
            })),
        ),
    ])
}

/// Decodes an [`experiment_json`] result, rebuilding the normalized bars.
pub fn decode_experiment(j: &Json) -> Result<ExperimentResult, SnapshotError> {
    let workload = snapshot::get_str(j, "workload")?.to_string();
    let machine = intern(snapshot::get_str(j, "machine")?);
    let raw = snapshot::get_arr(j, "raw", |v| {
        Ok((intern(snapshot::get_str(v, "label")?), decode_result(snapshot::field(v, "result")?)?))
    })?;
    if raw.is_empty() {
        return Err(SnapshotError::Bad("raw"));
    }
    Ok(normalize_experiment(&workload, machine, raw))
}

/// A coherence simulation cell: one Table-2 parallel application trace under
/// one access-control scheme, run on the default [`MachineParams::table2`]
/// machine with no interconnect faults (service-level chaos is injected
/// around the cell, not inside it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CohCell {
    /// Parallel application name (a [`imo_workloads::parallel`] generator:
    /// `stencil`, `migratory`, `producer_consumer`, `reduction`,
    /// `readmostly`).
    pub app: &'static str,
    /// Processors in the trace.
    pub procs: usize,
    /// References per processor.
    pub ops_per_proc: usize,
    /// Trace-generation seed.
    pub seed: u64,
    /// Access-control scheme to simulate.
    pub scheme: imo_coherence::Scheme,
}

impl CohCell {
    /// Regenerates this cell's trace (deterministic per seed).
    #[must_use]
    pub fn trace(&self) -> ParallelTrace {
        let cfg =
            TraceConfig { procs: self.procs, ops_per_proc: self.ops_per_proc, seed: self.seed };
        parallel_trace_by_name(self.app, &cfg)
            .unwrap_or_else(|| panic!("unknown parallel app `{}`", self.app))
    }
}

/// Looks a parallel-trace generator up by app name.
#[must_use]
pub fn parallel_trace_by_name(app: &str, cfg: &TraceConfig) -> Option<ParallelTrace> {
    match app {
        "stencil" => Some(parallel::stencil(cfg)),
        "migratory" => Some(parallel::migratory(cfg)),
        "producer_consumer" => Some(parallel::producer_consumer(cfg)),
        "reduction" => Some(parallel::reduction(cfg)),
        "readmostly" => Some(parallel::readmostly(cfg)),
        _ => None,
    }
}

/// A synthetic chaos-soak cell: `iters` rounds of a [`mix64`] hash chain.
/// Cheap enough to run 10^5 of them under churn, yet order-sensitive —
/// any dropped, duplicated or resumed-from-the-wrong-place iteration
/// changes the final hash, so byte-comparing the result vector against a
/// clean serial run proves end-to-end exactly-once delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthCell {
    /// Chain seed (the initial hash value).
    pub seed: u64,
    /// Chain length.
    pub iters: u64,
}

fn coh_scheme_json(s: imo_coherence::Scheme) -> Json {
    snapshot::u64_json(match s {
        imo_coherence::Scheme::RefCheck => 0,
        imo_coherence::Scheme::Ecc => 1,
        imo_coherence::Scheme::Informing => 2,
    })
}

fn decode_coh_scheme(j: &Json, key: &'static str) -> Result<imo_coherence::Scheme, SnapshotError> {
    match snapshot::get_u64(j, key)? {
        0 => Ok(imo_coherence::Scheme::RefCheck),
        1 => Ok(imo_coherence::Scheme::Ecc),
        2 => Ok(imo_coherence::Scheme::Informing),
        _ => Err(SnapshotError::Bad(key)),
    }
}

fn coh_cell_json(c: &CohCell) -> Json {
    Json::obj([
        ("app", Json::from(c.app)),
        ("procs", snapshot::u64_json(c.procs as u64)),
        ("ops_per_proc", snapshot::u64_json(c.ops_per_proc as u64)),
        ("seed", snapshot::u64_json(c.seed)),
        ("scheme", coh_scheme_json(c.scheme)),
    ])
}

fn decode_coh_cell(j: &Json) -> Result<CohCell, SnapshotError> {
    let app = intern(snapshot::get_str(j, "app")?);
    let probe = TraceConfig { procs: 1, ops_per_proc: 0, seed: 0 };
    if parallel_trace_by_name(app, &probe).is_none() {
        return Err(SnapshotError::Bad("app"));
    }
    Ok(CohCell {
        app,
        procs: snapshot::get_usize(j, "procs")?,
        ops_per_proc: snapshot::get_usize(j, "ops_per_proc")?,
        seed: snapshot::get_u64(j, "seed")?,
        scheme: decode_coh_scheme(j, "scheme")?,
    })
}

/// Encodes a coherence [`SimResult`], bit-exactly.
pub fn sim_result_json(r: &SimResult) -> Json {
    Json::obj([
        ("app", Json::from(r.app)),
        ("scheme", coh_scheme_json(r.scheme)),
        ("total_cycles", snapshot::u64_json(r.total_cycles)),
        ("proc_cycles", snapshot::u64s_json(&r.proc_cycles)),
        ("ops", snapshot::u64_json(r.ops)),
        ("lookups", snapshot::u64_json(r.lookups)),
        ("faults", snapshot::u64_json(r.faults)),
        ("actions", snapshot::u64_json(r.actions)),
        ("l1_misses", snapshot::u64_json(r.l1_misses)),
        ("l2_misses", snapshot::u64_json(r.l2_misses)),
        ("invalidations", snapshot::u64_json(r.invalidations)),
        ("retries", snapshot::u64_json(r.retries)),
        ("timeouts", snapshot::u64_json(r.timeouts)),
        ("nacks", snapshot::u64_json(r.nacks)),
        ("dropped_msgs", snapshot::u64_json(r.dropped_msgs)),
        ("ecc_corrected", snapshot::u64_json(r.ecc_corrected)),
        ("ecc_uncorrectable", snapshot::u64_json(r.ecc_uncorrectable)),
    ])
}

/// Decodes a [`sim_result_json`] result.
pub fn decode_sim_result(j: &Json) -> Result<SimResult, SnapshotError> {
    Ok(SimResult {
        app: intern(snapshot::get_str(j, "app")?),
        scheme: decode_coh_scheme(j, "scheme")?,
        total_cycles: snapshot::get_u64(j, "total_cycles")?,
        proc_cycles: snapshot::get_u64s(j, "proc_cycles")?,
        ops: snapshot::get_u64(j, "ops")?,
        lookups: snapshot::get_u64(j, "lookups")?,
        faults: snapshot::get_u64(j, "faults")?,
        actions: snapshot::get_u64(j, "actions")?,
        l1_misses: snapshot::get_u64(j, "l1_misses")?,
        l2_misses: snapshot::get_u64(j, "l2_misses")?,
        invalidations: snapshot::get_u64(j, "invalidations")?,
        retries: snapshot::get_u64(j, "retries")?,
        timeouts: snapshot::get_u64(j, "timeouts")?,
        nacks: snapshot::get_u64(j, "nacks")?,
        dropped_msgs: snapshot::get_u64(j, "dropped_msgs")?,
        ecc_corrected: snapshot::get_u64(j, "ecc_corrected")?,
        ecc_uncorrectable: snapshot::get_u64(j, "ecc_uncorrectable")?,
    })
}

/// Any cell kind the job server can shard.
#[derive(Debug, Clone)]
pub enum AnyCell {
    /// A Figure 2/3-style CPU sweep cell.
    Cpu(CpuCell),
    /// A coherence trace under one scheme.
    Coh(CohCell),
    /// A synthetic hash-chain cell for chaos soaks.
    Synth(SynthCell),
}

/// Encodes an [`AnyCell`] with a kind tag.
pub fn any_cell_json(c: &AnyCell) -> Json {
    let (k, cell) = match c {
        AnyCell::Cpu(c) => ("cpu", cell_json(c)),
        AnyCell::Coh(c) => ("coh", coh_cell_json(c)),
        AnyCell::Synth(c) => (
            "synth",
            Json::obj([
                ("seed", snapshot::u64_json(c.seed)),
                ("iters", snapshot::u64_json(c.iters)),
            ]),
        ),
    };
    Json::obj([("k", Json::from(k)), ("cell", cell)])
}

/// Decodes an [`any_cell_json`] cell.
pub fn decode_any_cell(j: &Json) -> Result<AnyCell, SnapshotError> {
    let cell = snapshot::field(j, "cell")?;
    match snapshot::get_str(j, "k")? {
        "cpu" => Ok(AnyCell::Cpu(decode_cell(cell)?)),
        "coh" => Ok(AnyCell::Coh(decode_coh_cell(cell)?)),
        "synth" => Ok(AnyCell::Synth(SynthCell {
            seed: snapshot::get_u64(cell, "seed")?,
            iters: snapshot::get_u64(cell, "iters")?,
        })),
        _ => Err(SnapshotError::Bad("k")),
    }
}

/// A completed cell's result, tagged by cell kind.
#[derive(Debug, Clone, PartialEq)]
pub enum CellResult {
    /// CPU cell: the normalized experiment.
    Cpu(ExperimentResult),
    /// Coherence cell: the simulation counters.
    Coh(SimResult),
    /// Synthetic cell: the final chain hash.
    Synth(u64),
}

/// Encodes a [`CellResult`] with a kind tag.
pub fn cell_result_json(r: &CellResult) -> Json {
    let (k, result) = match r {
        CellResult::Cpu(r) => ("cpu", experiment_json(r)),
        CellResult::Coh(r) => ("coh", sim_result_json(r)),
        CellResult::Synth(h) => ("synth", snapshot::u64_json(*h)),
    };
    Json::obj([("k", Json::from(k)), ("result", result)])
}

/// Decodes a [`cell_result_json`] result.
pub fn decode_cell_result(j: &Json) -> Result<CellResult, SnapshotError> {
    let result = snapshot::field(j, "result")?;
    match snapshot::get_str(j, "k")? {
        "cpu" => Ok(CellResult::Cpu(decode_experiment(result)?)),
        "coh" => Ok(CellResult::Coh(decode_sim_result(result)?)),
        "synth" => Ok(CellResult::Synth(snapshot::get_u64(j, "result")?)),
        _ => Err(SnapshotError::Bad("k")),
    }
}

/// Content-addressed hash of a [`CellResult`]: the [`debug_hash`] of its
/// compact wire text. Workers stamp it on [`WorkerDone`] frames; the server
/// recomputes it from the decoded result, so a frame corrupted in flight
/// (but still parseable) is caught and the attempt re-dispatched.
#[must_use]
pub fn cell_result_hash(r: &CellResult) -> u64 {
    debug_hash(&cell_result_json(r).compact())
}

/// Failure-handling knobs for one sweep; the server falls back to
/// [`SweepPolicy::default`] when a request carries none.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPolicy {
    /// Per-dispatch deadline: a worker that neither completes its cell nor
    /// heartbeats a checkpoint within this window is declared dead.
    pub deadline_ms: u64,
    /// Attempts per cell before it is quarantined and the sweep aborts
    /// with a typed [`ServeError`].
    pub max_attempts: u32,
    /// Base re-dispatch backoff (doubles per attempt).
    pub backoff_base_ms: u64,
    /// Re-dispatch backoff cap.
    pub backoff_cap_ms: u64,
}

impl Default for SweepPolicy {
    fn default() -> Self {
        SweepPolicy {
            deadline_ms: 600_000,
            max_attempts: 4,
            backoff_base_ms: 100,
            backoff_cap_ms: 2000,
        }
    }
}

fn policy_json(p: &SweepPolicy) -> Json {
    Json::obj([
        ("deadline_ms", snapshot::u64_json(p.deadline_ms)),
        ("max_attempts", snapshot::u64_json(u64::from(p.max_attempts))),
        ("backoff_base_ms", snapshot::u64_json(p.backoff_base_ms)),
        ("backoff_cap_ms", snapshot::u64_json(p.backoff_cap_ms)),
    ])
}

fn decode_policy(j: &Json) -> Result<SweepPolicy, SnapshotError> {
    Ok(SweepPolicy {
        deadline_ms: snapshot::get_u64(j, "deadline_ms")?,
        max_attempts: snapshot::get_u32(j, "max_attempts")?,
        backoff_base_ms: snapshot::get_u64(j, "backoff_base_ms")?,
        backoff_cap_ms: snapshot::get_u64(j, "backoff_cap_ms")?,
    })
}

fn opt_wire<T: Snapshot>(v: Option<&T>) -> Json {
    v.map_or(Json::Null, Snapshot::to_wire)
}

fn decode_opt_wire<T: Snapshot>(
    data: &Json,
    key: &'static str,
) -> Result<Option<T>, SnapshotError> {
    match snapshot::field(data, key)? {
        Json::Null => Ok(None),
        j => Ok(Some(T::from_wire(j)?)),
    }
}

/// A client's sweep submission: a named cell list, optionally preempted,
/// optionally under a deterministic chaos schedule and a failure policy.
#[derive(Debug, Clone)]
pub struct SweepRequest {
    /// Sweep name (diagnostics only).
    pub name: String,
    /// Preempt every simulation at this work-unit stride (see
    /// [`run_any_cell`]); also the checkpoint-heartbeat stride under chaos.
    pub preempt_every: Option<u64>,
    /// Deterministic failure-injection schedule, forwarded to every worker.
    /// `None` (the production path) draws no randomness anywhere.
    pub chaos: Option<ChaosConfig>,
    /// Failure-handling knobs; `None` means [`SweepPolicy::default`].
    pub policy: Option<SweepPolicy>,
    /// Opt-in miss attribution: every worker additionally profiles its cell
    /// under the streaming analyzer and stamps an [`attrib_digest`] on the
    /// completion frame. Off (the default) costs nothing.
    pub attrib: bool,
    /// The cells, in the order results must stream back.
    pub cells: Vec<AnyCell>,
}

impl Snapshot for SweepRequest {
    const KIND: &'static str = "serve.sweep";
    const VERSION: u32 = 3;

    fn encode(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("preempt_every", snapshot::opt_u64_json(self.preempt_every)),
            ("chaos", opt_wire(self.chaos.as_ref())),
            ("policy", self.policy.as_ref().map_or(Json::Null, policy_json)),
            ("attrib", snapshot::u64_json(u64::from(self.attrib))),
            ("cells", Json::arr(self.cells.iter().map(any_cell_json))),
        ])
    }

    fn decode(data: &Json) -> Result<Self, SnapshotError> {
        let policy = match snapshot::field(data, "policy")? {
            Json::Null => None,
            j => Some(decode_policy(j)?),
        };
        Ok(SweepRequest {
            name: snapshot::get_str(data, "name")?.to_string(),
            preempt_every: snapshot::get_opt_u64(data, "preempt_every")?,
            chaos: decode_opt_wire(data, "chaos")?,
            policy,
            attrib: snapshot::get_u64(data, "attrib")? != 0,
            cells: snapshot::get_arr(data, "cells", decode_any_cell)?,
        })
    }
}

/// One cell dispatched to a worker.
#[derive(Debug, Clone)]
pub struct CellJob {
    /// The cell's input index (echoed back in worker frames).
    pub index: u64,
    /// Dispatch attempt, 0-based. Rerolls the cell's chaos schedule, so a
    /// re-dispatched cell does not deterministically die the same death.
    pub attempt: u64,
    /// The cell to run.
    pub cell: AnyCell,
    /// Preemption stride, if any.
    pub preempt_every: Option<u64>,
    /// The sweep's chaos schedule (workers consult it per `(index, attempt)`).
    pub chaos: Option<ChaosConfig>,
    /// Cell state from a previous attempt's last [`WorkerCkpt`]; the worker
    /// resumes from it instead of starting over.
    pub resume: Option<Json>,
    /// Whether to stamp an [`attrib_digest`] on the completion frame.
    pub attrib: bool,
}

impl Snapshot for CellJob {
    const KIND: &'static str = "serve.job";
    const VERSION: u32 = 3;

    fn encode(&self) -> Json {
        Json::obj([
            ("index", snapshot::u64_json(self.index)),
            ("attempt", snapshot::u64_json(self.attempt)),
            ("cell", any_cell_json(&self.cell)),
            ("preempt_every", snapshot::opt_u64_json(self.preempt_every)),
            ("chaos", opt_wire(self.chaos.as_ref())),
            ("resume", self.resume.clone().unwrap_or(Json::Null)),
            ("attrib", snapshot::u64_json(u64::from(self.attrib))),
        ])
    }

    fn decode(data: &Json) -> Result<Self, SnapshotError> {
        let resume = match snapshot::field(data, "resume")? {
            Json::Null => None,
            j => Some(j.clone()),
        };
        Ok(CellJob {
            index: snapshot::get_u64(data, "index")?,
            attempt: snapshot::get_u64(data, "attempt")?,
            cell: decode_any_cell(snapshot::field(data, "cell")?)?,
            preempt_every: snapshot::get_opt_u64(data, "preempt_every")?,
            chaos: decode_opt_wire(data, "chaos")?,
            resume,
            attrib: snapshot::get_u64(data, "attrib")? != 0,
        })
    }
}

/// One completed cell, server → client.
#[derive(Debug, Clone)]
pub struct CellDone {
    /// The cell's input index.
    pub index: u64,
    /// Its result.
    pub result: CellResult,
}

impl Snapshot for CellDone {
    const KIND: &'static str = "serve.done";
    const VERSION: u32 = 2;

    fn encode(&self) -> Json {
        Json::obj([
            ("index", snapshot::u64_json(self.index)),
            ("result", cell_result_json(&self.result)),
        ])
    }

    fn decode(data: &Json) -> Result<Self, SnapshotError> {
        Ok(CellDone {
            index: snapshot::get_u64(data, "index")?,
            result: decode_cell_result(snapshot::field(data, "result")?)?,
        })
    }
}

/// One completed cell, worker → server, with enough provenance for the
/// server's dedup, verification and accounting.
#[derive(Debug, Clone)]
pub struct WorkerDone {
    /// The cell's input index.
    pub index: u64,
    /// The dispatch attempt that produced this result.
    pub attempt: u64,
    /// Final cumulative progress, in cell-kind units.
    pub progress: u64,
    /// Work units this attempt simulated itself (`progress` minus the
    /// resume state's progress).
    pub worked: u64,
    /// [`cell_result_hash`] of `result`, recomputed and verified server-side.
    pub hash: u64,
    /// Duplicate `serve.wdone` frames following this one (chaos `DupDone`
    /// injection); the server reads and discards exactly this many.
    pub extra: u64,
    /// Miss-attribution digest ([`attrib_digest`]) when the job asked for
    /// one. Rides outside `hash` — the content hash covers the result only,
    /// so the digest can never fail verification of a correct result.
    pub attrib: Option<Json>,
    /// The result.
    pub result: CellResult,
}

impl Snapshot for WorkerDone {
    const KIND: &'static str = "serve.wdone";
    const VERSION: u32 = 2;

    fn encode(&self) -> Json {
        Json::obj([
            ("index", snapshot::u64_json(self.index)),
            ("attempt", snapshot::u64_json(self.attempt)),
            ("progress", snapshot::u64_json(self.progress)),
            ("worked", snapshot::u64_json(self.worked)),
            ("hash", snapshot::u64_json(self.hash)),
            ("extra", snapshot::u64_json(self.extra)),
            ("attrib", self.attrib.clone().unwrap_or(Json::Null)),
            ("result", cell_result_json(&self.result)),
        ])
    }

    fn decode(data: &Json) -> Result<Self, SnapshotError> {
        let attrib = match snapshot::field(data, "attrib")? {
            Json::Null => None,
            j => Some(j.clone()),
        };
        Ok(WorkerDone {
            index: snapshot::get_u64(data, "index")?,
            attempt: snapshot::get_u64(data, "attempt")?,
            progress: snapshot::get_u64(data, "progress")?,
            worked: snapshot::get_u64(data, "worked")?,
            hash: snapshot::get_u64(data, "hash")?,
            extra: snapshot::get_u64(data, "extra")?,
            attrib,
            result: decode_cell_result(snapshot::field(data, "result")?)?,
        })
    }
}

/// A worker's checkpoint heartbeat at a preemption boundary: proof of
/// liveness for the deadline supervisor, and the resume state a replacement
/// worker starts from if this one dies.
#[derive(Debug, Clone)]
pub struct WorkerCkpt {
    /// The cell's input index.
    pub index: u64,
    /// The dispatch attempt reporting.
    pub attempt: u64,
    /// Cumulative progress at this boundary, in cell-kind units.
    pub progress: u64,
    /// Work units this attempt simulated itself so far.
    pub worked: u64,
    /// Encoded cell state ([`run_any_cell`]'s `on_slice` payload).
    pub state: Json,
}

impl Snapshot for WorkerCkpt {
    const KIND: &'static str = "serve.ckpt";
    const VERSION: u32 = 1;

    fn encode(&self) -> Json {
        Json::obj([
            ("index", snapshot::u64_json(self.index)),
            ("attempt", snapshot::u64_json(self.attempt)),
            ("progress", snapshot::u64_json(self.progress)),
            ("worked", snapshot::u64_json(self.worked)),
            ("state", self.state.clone()),
        ])
    }

    fn decode(data: &Json) -> Result<Self, SnapshotError> {
        Ok(WorkerCkpt {
            index: snapshot::get_u64(data, "index")?,
            attempt: snapshot::get_u64(data, "attempt")?,
            progress: snapshot::get_u64(data, "progress")?,
            worked: snapshot::get_u64(data, "worked")?,
            state: snapshot::field(data, "state")?.clone(),
        })
    }
}

/// A worker announcing a chaos-scheduled graceful retirement: it finishes
/// and reports its current cell, then exits cleanly. The supervisor
/// respawns without charging a failure.
#[derive(Debug, Clone)]
pub struct WorkerBye {}

impl Snapshot for WorkerBye {
    const KIND: &'static str = "serve.bye";
    const VERSION: u32 = 1;

    fn encode(&self) -> Json {
        Json::obj::<&str>([])
    }

    fn decode(_data: &Json) -> Result<Self, SnapshotError> {
        Ok(WorkerBye {})
    }
}

/// A fatal protocol or simulation error, streamed instead of results.
#[derive(Debug, Clone)]
pub struct ServeError {
    /// Human-readable description.
    pub message: String,
}

impl Snapshot for ServeError {
    const KIND: &'static str = "serve.error";
    const VERSION: u32 = 1;

    fn encode(&self) -> Json {
        Json::obj([("message", Json::from(self.message.as_str()))])
    }

    fn decode(data: &Json) -> Result<Self, SnapshotError> {
        Ok(ServeError { message: snapshot::get_str(data, "message")?.to_string() })
    }
}

/// Runs a simulation, optionally sliced into `preempt_every`-cycle
/// checkpoints: each slice pauses at a cycle boundary, serializes the
/// [`Checkpoint`] through its JSON wire format, and resumes from the decoded
/// copy — the full preemption path a worker handoff would take. Determinism
/// makes the final result bit-identical to the uninterrupted run.
fn run_sliced(
    machine: &Machine,
    program: &Program,
    limits: RunLimits,
    preempt_every: Option<u64>,
    context: &str,
) -> RunResult {
    run_sliced_with(machine, program, limits, preempt_every, context, None, &mut |_| {})
}

/// [`run_sliced`] with a resume point and a per-slice observer: `start`
/// seeds the first slice from an existing [`Checkpoint`], and `on_pause`
/// sees every checkpoint after its wire round trip — the hook the
/// chaos-hardened worker uses to heartbeat resumable state to the server.
fn run_sliced_with(
    machine: &Machine,
    program: &Program,
    limits: RunLimits,
    preempt_every: Option<u64>,
    context: &str,
    start: Option<Checkpoint>,
    on_pause: &mut dyn FnMut(&Checkpoint),
) -> RunResult {
    let mut ckpt: Option<Checkpoint> = start;
    let Some(step) = preempt_every.filter(|s| *s > 0) else {
        let session = SimSession::new(program, machine.core_config()).limits(limits);
        let outcome = match &ckpt {
            None => session.run(),
            Some(c) => session.resume(c),
        }
        .unwrap_or_else(|e| panic!("{context}: {e}"));
        match outcome {
            Outcome::Complete { result, .. } => return result,
            Outcome::Paused(_) => unreachable!("{context}: paused without a stop_at"),
        }
    };
    let mut limits = limits;
    let mut stop = ckpt.as_ref().map_or(step, |c| c.cycle().saturating_add(step));
    loop {
        limits.stop_at = Some(stop);
        let session = SimSession::new(program, machine.core_config()).limits(limits);
        let outcome = match &ckpt {
            None => session.run(),
            Some(c) => session.resume(c),
        }
        .unwrap_or_else(|e| panic!("{context} (slice at {stop}): {e}"));
        match outcome {
            Outcome::Complete { result, .. } => return result,
            Outcome::Paused(c) => {
                let line = c.to_wire().compact();
                let parsed =
                    parse(&line).unwrap_or_else(|e| panic!("{context}: checkpoint reparse: {e}"));
                let back = Checkpoint::from_wire(&parsed)
                    .unwrap_or_else(|e| panic!("{context}: checkpoint decode: {e}"));
                on_pause(&back);
                stop = back.cycle().saturating_add(step);
                ckpt = Some(back);
            }
        }
    }
}

/// Runs one cell to its [`ExperimentResult`] — the worker-side counterpart
/// of [`CpuCell::run`], sharing its per-variant memo keys (so a persistent
/// worker dedups shared baselines, and — workers inherit the sweep store
/// read-only — serves warm cells from disk) and adding checkpoint-based
/// preemption.
///
/// # Panics
///
/// Panics if the workload is unknown or a simulation fails, like the rest of
/// the bench harness.
#[must_use]
pub fn run_cell(cell: &CpuCell, preempt_every: Option<u64>) -> ExperimentResult {
    let spec =
        by_name(cell.workload).unwrap_or_else(|| panic!("unknown workload `{}`", cell.workload));
    let limits = RunLimits::default();
    let mut program = None;
    let mut raw = Vec::with_capacity(cell.variants.len());
    for v in &cell.variants {
        let key = format!(
            "cpu-run/{}/{:?}/{:?}/{:?}/{:?}",
            cell.workload, cell.scale, cell.machine, v.scheme, limits
        );
        let result = memoized_stored(&key, result_json, decode_result, || {
            let program = program.get_or_insert_with(|| (spec.build)(cell.scale));
            let inst = instrument(program, &v.scheme).unwrap_or_else(|e| {
                panic!("instrumenting {} as {:?}: {e}", cell.workload, v.scheme)
            });
            let context = format!("{} on {}", cell.workload, cell.machine.name());
            run_sliced(&cell.machine, &inst.program, limits, preempt_every, &context)
        });
        raw.push((v.label, result));
    }
    normalize_experiment(cell.workload, cell.machine.name(), raw)
}

/// Progress recorded in an encoded cell state, in cell-kind units.
pub fn cell_state_progress(state: &Json) -> Result<u64, SnapshotError> {
    match snapshot::get_str(state, "k")? {
        "cpu" => snapshot::get_u64(state, "prog"),
        "coh" => Ok(CohCheckpoint::from_wire(snapshot::field(state, "ckpt")?)?.ops()),
        "synth" => snapshot::get_u64(state, "i"),
        _ => Err(SnapshotError::Bad("k")),
    }
}

fn cpu_state_json(
    vi: usize,
    done: &[(&'static str, RunResult)],
    ckpt: &Checkpoint,
    prog: u64,
) -> Json {
    Json::obj([
        ("k", Json::from("cpu")),
        ("vi", snapshot::u64_json(vi as u64)),
        (
            "done",
            Json::arr(done.iter().map(|(label, r)| {
                Json::obj([("label", Json::from(*label)), ("result", result_json(r))])
            })),
        ),
        ("ckpt", ckpt.to_wire()),
        ("prog", snapshot::u64_json(prog)),
    ])
}

fn run_cpu_resumable(
    cell: &CpuCell,
    preempt_every: Option<u64>,
    resume: Option<&Json>,
    on_slice: &mut dyn FnMut(u64, &Json),
) -> (CellResult, u64) {
    let spec =
        by_name(cell.workload).unwrap_or_else(|| panic!("unknown workload `{}`", cell.workload));
    let limits = RunLimits::default();
    let (vi0, mut done, mut start) = match resume {
        None => (0usize, Vec::new(), None),
        Some(state) => {
            let bad = |e: SnapshotError| -> ! { panic!("cpu resume state: {e}") };
            let vi = snapshot::get_usize(state, "vi").unwrap_or_else(|e| bad(e));
            let done = snapshot::get_arr(state, "done", |v| {
                Ok((
                    intern(snapshot::get_str(v, "label")?),
                    decode_result(snapshot::field(v, "result")?)?,
                ))
            })
            .unwrap_or_else(|e| bad(e));
            let ckpt = match snapshot::field(state, "ckpt").unwrap_or_else(|e| bad(e)) {
                Json::Null => None,
                j => Some(Checkpoint::from_wire(j).unwrap_or_else(|e| bad(e))),
            };
            (vi, done, ckpt)
        }
    };
    let mut program: Option<Program> = None;
    for (vi, v) in cell.variants.iter().enumerate().skip(vi0) {
        let program = program.get_or_insert_with(|| (spec.build)(cell.scale));
        let inst = instrument(program, &v.scheme)
            .unwrap_or_else(|e| panic!("instrumenting {} as {:?}: {e}", cell.workload, v.scheme));
        let context = format!("{} on {}", cell.workload, cell.machine.name());
        let base: u64 = done.iter().map(|(_, r)| r.cycles).sum();
        let this_start = if vi == vi0 { start.take() } else { None };
        let mut cb = |c: &Checkpoint| {
            let prog = base.saturating_add(c.cycle());
            let state = cpu_state_json(vi, &done, c, prog);
            on_slice(prog, &state);
        };
        let r = run_sliced_with(
            &cell.machine,
            &inst.program,
            limits,
            preempt_every,
            &context,
            this_start,
            &mut cb,
        );
        done.push((v.label, r));
    }
    let progress = done.iter().map(|(_, r)| r.cycles).sum();
    (CellResult::Cpu(normalize_experiment(cell.workload, cell.machine.name(), done)), progress)
}

fn coh_state_json(c: &CohCheckpoint) -> Json {
    Json::obj([("k", Json::from("coh")), ("ckpt", c.to_wire())])
}

fn run_coh_resumable(
    cell: &CohCell,
    preempt_every: Option<u64>,
    resume: Option<&Json>,
    on_slice: &mut dyn FnMut(u64, &Json),
) -> (CellResult, u64) {
    let context = || format!("coh cell {}/{:?}", cell.app, cell.scheme);
    let trace = cell.trace();
    let sess = CohSession::new(&trace, cell.scheme, MachineParams::table2());
    let step = preempt_every.filter(|s| *s > 0);
    let next_stop = |at: u64| step.map_or(u64::MAX, |s| at.saturating_add(s));
    let mut outcome = match resume {
        None => sess.stop_at(next_stop(0)).run(),
        Some(state) => {
            let bad = |e: SnapshotError| -> ! { panic!("coh resume state: {e}") };
            let ckpt = snapshot::field(state, "ckpt")
                .and_then(CohCheckpoint::from_wire)
                .unwrap_or_else(|e| bad(e));
            sess.stop_at(next_stop(ckpt.ops())).resume(&ckpt)
        }
    }
    .unwrap_or_else(|e| panic!("{}: {e}", context()));
    loop {
        match outcome {
            CohOutcome::Complete(r) => {
                let progress = r.ops;
                return (CellResult::Coh(r), progress);
            }
            CohOutcome::Paused(c) => {
                // Wire round trip, mirroring the CPU path: the state the
                // worker resumes from is the state a replacement would get.
                let line = c.to_wire().compact();
                let parsed = parse(&line)
                    .unwrap_or_else(|e| panic!("{}: checkpoint reparse: {e}", context()));
                let back = CohCheckpoint::from_wire(&parsed)
                    .unwrap_or_else(|e| panic!("{}: checkpoint decode: {e}", context()));
                on_slice(back.ops(), &coh_state_json(&back));
                outcome = sess
                    .stop_at(next_stop(back.ops()))
                    .resume(&back)
                    .unwrap_or_else(|e| panic!("{} (slice at {}): {e}", context(), back.ops()));
            }
        }
    }
}

fn synth_state_json(i: u64, h: u64) -> Json {
    Json::obj([
        ("k", Json::from("synth")),
        ("i", snapshot::u64_json(i)),
        ("h", snapshot::u64_json(h)),
    ])
}

fn run_synth_resumable(
    cell: SynthCell,
    preempt_every: Option<u64>,
    resume: Option<&Json>,
    on_slice: &mut dyn FnMut(u64, &Json),
) -> (CellResult, u64) {
    let (mut i, mut h) = match resume {
        None => (0u64, cell.seed),
        Some(state) => {
            let bad = |e: SnapshotError| -> ! { panic!("synth resume state: {e}") };
            (
                snapshot::get_u64(state, "i").unwrap_or_else(|e| bad(e)),
                snapshot::get_u64(state, "h").unwrap_or_else(|e| bad(e)),
            )
        }
    };
    let step = preempt_every.filter(|s| *s > 0);
    while i < cell.iters {
        h = mix64(h, i);
        i += 1;
        if let Some(s) = step {
            // Slice boundaries are absolute (i % s == 0), so the schedule —
            // and the final hash — is identical however often the cell is
            // preempted and resumed.
            if i % s == 0 && i < cell.iters {
                on_slice(i, &synth_state_json(i, h));
            }
        }
    }
    (CellResult::Synth(h), cell.iters)
}

/// Runs any cell kind slice by slice, resumable: `resume` is an encoded
/// cell state from a previous attempt's last checkpoint (the
/// [`WorkerCkpt`] `state` payload), and `on_slice` sees
/// `(cumulative progress, encoded state)` at every preemption boundary.
/// Returns the result and the final cumulative progress.
///
/// Determinism contract: for a given cell the result is bit-identical
/// whether the cell runs straight through, slices without interruption, or
/// is killed and resumed from any reported state.
///
/// # Panics
///
/// Panics on unknown workloads, simulation errors, or a corrupt/mismatched
/// `resume` state — in the worker process that turns into a worker death
/// the supervisor re-dispatches around.
pub fn run_any_cell(
    cell: &AnyCell,
    preempt_every: Option<u64>,
    resume: Option<&Json>,
    on_slice: &mut dyn FnMut(u64, &Json),
) -> (CellResult, u64) {
    match cell {
        AnyCell::Cpu(c) => run_cpu_resumable(c, preempt_every, resume, on_slice),
        AnyCell::Coh(c) => run_coh_resumable(c, preempt_every, resume, on_slice),
        AnyCell::Synth(c) => run_synth_resumable(*c, preempt_every, resume, on_slice),
    }
}

/// Runs any cell kind from scratch with no state reporting — the clean
/// path. CPU cells go through the memoized [`run_cell`] (bit-identical to
/// the pre-chaos worker path); the others run [`run_any_cell`] with no
/// observer.
#[must_use]
pub fn run_any_cell_plain(cell: &AnyCell, preempt_every: Option<u64>) -> CellResult {
    match cell {
        AnyCell::Cpu(c) => CellResult::Cpu(run_cell(c, preempt_every)),
        _ => run_any_cell(cell, preempt_every, None, &mut |_, _| {}).0,
    }
}

/// Profiles a cell under the miss-attribution analyzer and returns a small
/// JSON digest for the server to aggregate into its `/status` metrics:
/// demand refs/misses, the four class totals, the exact-reconciliation
/// bit, the recorder's ring-buffer drop accounting, and the hottest miss
/// PC with its detected access pattern. CPU cells profile the bare
/// (uninstrumented) workload; coherence cells profile the traced run;
/// synthetic cells have no memory system and return `None`.
///
/// This is a side-channel: the digest rides next to the [`CellResult`] on
/// the wire and never feeds into it, so the sweep's results stay
/// bit-identical whether attribution is on or off.
#[must_use]
pub fn attrib_digest(cell: &AnyCell) -> Option<Json> {
    let digest = |label: String, rec: &imo_obs::Recorder, reconciled: bool| -> Json {
        let a = rec.attribution().expect("attribution enabled");
        let profile = a.profile(&label);
        let classes = profile.classes;
        let hot = profile.pcs.first();
        Json::obj([
            ("label", Json::from(label)),
            ("demand_refs", Json::from(profile.demand_refs)),
            ("demand_misses", Json::from(profile.demand_misses)),
            ("compulsory", Json::from(classes[0])),
            ("coherence", Json::from(classes[1])),
            ("capacity", Json::from(classes[2])),
            ("conflict", Json::from(classes[3])),
            ("coh_classified", Json::from(a.coh_classified_total())),
            ("reconciled", Json::Bool(reconciled)),
            ("events_seen", Json::from(rec.total_recorded())),
            ("events_dropped", Json::from(rec.dropped())),
            ("hot_pc", Json::from(hot.map_or_else(String::new, |p| format!("{:#x}", p.pc)))),
            ("hot_pattern", Json::from(hot.map_or_else(String::new, |p| p.pattern.to_string()))),
        ])
    };
    match cell {
        AnyCell::Cpu(c) => {
            let spec =
                by_name(c.workload).unwrap_or_else(|| panic!("unknown workload `{}`", c.workload));
            let program = (spec.build)(c.scale);
            let mut rec = imo_obs::Recorder::all();
            rec.enable_attribution(c.machine.attrib_config());
            let (res, _) = c
                .machine
                .run_observed(&program, &mut rec)
                .unwrap_or_else(|e| panic!("profiling {}: {e:?}", c.workload));
            let label = format!("{}/{}", c.workload, c.machine.name());
            let a = rec.attribution().expect("attribution enabled");
            let reconciled = a.reconciles_cpu(res.mem.l1d_misses, res.mem.l2_misses);
            Some(digest(label, &rec, reconciled))
        }
        AnyCell::Coh(c) => {
            let trace = c.trace();
            let params = MachineParams::table2();
            let mut rec = imo_obs::Recorder::all();
            rec.enable_attribution(imo_obs::AttribConfig::for_l1(
                params.l1_bytes,
                1,
                params.line_bytes,
            ));
            let (res, _) = imo_coherence::simulate_observed(
                &trace,
                c.scheme,
                &params,
                &imo_faults::FaultPlan::none(),
                &mut rec,
            )
            .unwrap_or_else(|e| panic!("profiling coherence cell: {e:?}"));
            let label = format!("coh/{}/{}", c.app, c.scheme.name());
            let a = rec.attribution().expect("attribution enabled");
            let reconciled = a.reconciles_coh(res.l1_misses, res.l2_misses);
            Some(digest(label, &rec, reconciled))
        }
        AnyCell::Synth(_) => None,
    }
}

/// A typed client-side failure from [`try_run_cells_via_server`]. Every
/// variant is terminal for the sweep — the client never hangs (connects and
/// reads are timeout-bounded) and never silently falls back to in-process
/// execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Could not establish a connection within the retry budget.
    Connect {
        /// The address dialed.
        addr: String,
        /// The last attempt's error.
        detail: String,
    },
    /// An established connection failed mid-sweep (includes read timeouts).
    Io {
        /// What the client was doing.
        context: String,
        /// The I/O error.
        detail: String,
    },
    /// The server sent something the protocol does not allow.
    Protocol {
        /// What was wrong with the frame.
        context: String,
    },
    /// The server reported a [`ServeError`] (e.g. a quarantined cell).
    Server {
        /// The server's message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect { addr, detail } => {
                write!(f, "connecting to job server {addr}: {detail}")
            }
            ClientError::Io { context, detail } => write!(f, "{context}: {detail}"),
            ClientError::Protocol { context } => write!(f, "protocol violation: {context}"),
            ClientError::Server { message } => write!(f, "server error: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Connect-retry schedule: per-attempt timeout and inter-attempt sleeps.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);
const CONNECT_RETRY_SLEEPS_MS: [u64; 2] = [100, 300];

/// Default per-frame read timeout; `IMO_SERVE_CLIENT_TIMEOUT_MS` overrides.
/// Generous because one frame can take as long as the slowest cell, but
/// finite so a dead server is an error, not a hang.
const DEFAULT_READ_TIMEOUT_MS: u64 = 600_000;

fn read_timeout() -> Duration {
    let ms = std::env::var("IMO_SERVE_CLIENT_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|ms| *ms > 0)
        .unwrap_or(DEFAULT_READ_TIMEOUT_MS);
    Duration::from_millis(ms)
}

/// Dials `addr` with a bounded per-attempt timeout and a short capped retry
/// schedule (transient refusals during server startup are common in CI).
fn connect_with_retry(addr: &str) -> Result<TcpStream, ClientError> {
    let fail = |detail: String| ClientError::Connect { addr: addr.to_string(), detail };
    let mut last = String::from("no addresses resolved");
    for (attempt, sleep_ms) in
        CONNECT_RETRY_SLEEPS_MS.iter().copied().map(Some).chain([None]).enumerate()
    {
        let resolved = addr.to_socket_addrs().map_err(|e| fail(format!("resolving: {e}")))?;
        for sock in resolved {
            match TcpStream::connect_timeout(&sock, CONNECT_TIMEOUT) {
                Ok(stream) => return Ok(stream),
                Err(e) => last = format!("attempt {}: {e}", attempt + 1),
            }
        }
        match sleep_ms {
            Some(ms) => std::thread::sleep(Duration::from_millis(ms)),
            None => break,
        }
    }
    Err(fail(last))
}

/// Submits a full [`SweepRequest`] to the job server at `addr` and streams
/// the results back in input-index order. Connects with a capped retry
/// schedule and bounds every read with a timeout
/// (`IMO_SERVE_CLIENT_TIMEOUT_MS`, default 600 s), so every failure mode is
/// a typed [`ClientError`], never a hang.
pub fn try_run_cells_via_server(
    addr: &str,
    request: &SweepRequest,
) -> Result<Vec<CellResult>, ClientError> {
    let name = request.name.as_str();
    let expected = request.cells.len();
    let io_err = |context: String, e: &std::io::Error| {
        let detail =
            if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) {
                format!("timed out after {:?}: {e}", read_timeout())
            } else {
                e.to_string()
            };
        ClientError::Io { context, detail }
    };

    let stream = connect_with_retry(addr)?;
    stream
        .set_read_timeout(Some(read_timeout()))
        .map_err(|e| io_err(format!("sweep `{name}`: arming read timeout"), &e))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| io_err(format!("sweep `{name}`: cloning server stream"), &e))?;
    writeln!(writer, "{}", request.to_wire().compact())
        .and_then(|()| writer.flush())
        .map_err(|e| io_err(format!("sweep `{name}`: submitting to {addr}"), &e))?;

    let mut results = Vec::with_capacity(expected);
    let mut lines = BufReader::new(stream).lines();
    for i in 0..expected {
        let line = match lines.next() {
            Some(Ok(line)) => line,
            Some(Err(e)) => return Err(io_err(format!("sweep `{name}`: reading cell {i}"), &e)),
            None => {
                return Err(ClientError::Protocol {
                    context: format!("sweep `{name}`: server closed after {i}/{expected} cells"),
                })
            }
        };
        let frame = parse(&line).map_err(|e| ClientError::Protocol {
            context: format!("sweep `{name}`: corrupt frame {i}: {e}"),
        })?;
        if let Ok(err) = ServeError::from_wire(&frame) {
            return Err(ClientError::Server { message: err.message });
        }
        let done = CellDone::from_wire(&frame).map_err(|e| ClientError::Protocol {
            context: format!("sweep `{name}`: frame {i}: {e}"),
        })?;
        if done.index as usize != i {
            return Err(ClientError::Protocol {
                context: format!(
                    "sweep `{name}`: frame {i} carries index {} — results must stream in input order",
                    done.index
                ),
            });
        }
        results.push(done.result);
    }
    Ok(results)
}

/// Submits `cells` to the job server at `addr` and streams the results back
/// in input-index order. `IMO_SERVE_PREEMPT` (a cycle stride) turns on
/// checkpoint-based preemption server-side.
///
/// # Panics
///
/// Panics on connection, protocol, or server-reported errors — a bench cell
/// has no useful recovery, and a silent fallback to in-process execution
/// would defeat the point of routing through the server. (The panic is now
/// guaranteed to arrive: [`try_run_cells_via_server`] bounds every connect
/// and read with a timeout.)
#[must_use]
pub fn run_cells_via_server(addr: &str, name: &str, cells: Vec<CpuCell>) -> Vec<ExperimentResult> {
    let preempt_every = std::env::var("IMO_SERVE_PREEMPT")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|s| *s > 0);
    let request = SweepRequest {
        name: name.to_string(),
        preempt_every,
        chaos: None,
        policy: None,
        attrib: false,
        cells: cells.into_iter().map(AnyCell::Cpu).collect(),
    };
    let results =
        try_run_cells_via_server(addr, &request).unwrap_or_else(|e| panic!("sweep `{name}`: {e}"));
    results
        .into_iter()
        .map(|r| match r {
            CellResult::Cpu(r) => r,
            other => panic!("sweep `{name}`: CPU sweep got a non-CPU result: {other:?}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_core::experiment::figure2_variants;
    use imo_cpu::SimError;

    #[test]
    fn cell_codec_round_trips_every_body_kind() {
        let bodies = [
            HandlerBody::Generic { len: 10 },
            HandlerBody::CountInRegister,
            HandlerBody::CountPerReference { table_base: 0x7000_0000 },
            HandlerBody::PcHash { table_base: 0x7000_0000, buckets: 64 },
            HandlerBody::NextLinePrefetch { lines: 2 },
            HandlerBody::SampledGeneric { len: 100, period: 16 },
        ];
        for (i, body) in bodies.into_iter().enumerate() {
            let scheme = if i % 2 == 0 {
                Scheme::Trap { handlers: HandlerKind::Single, body }
            } else {
                Scheme::ConditionCode { handlers: HandlerKind::PerReference, body }
            };
            let cell = CpuCell {
                workload: "compress",
                scale: Scale::Test,
                machine: Machine::default_ooo(),
                variants: vec![
                    Variant { label: "N", scheme: Scheme::None },
                    Variant { label: "X", scheme },
                ],
            };
            let line = cell_json(&cell).compact();
            let back = decode_cell(&parse(&line).expect("parses")).expect("decodes");
            assert_eq!(back.workload, cell.workload);
            assert_eq!(back.scale, cell.scale);
            assert_eq!(back.machine, cell.machine);
            assert_eq!(back.variants, cell.variants);
        }
    }

    #[test]
    fn cell_decode_rejects_unknown_workload_and_tampered_machine() {
        let cell = CpuCell {
            workload: "compress",
            scale: Scale::Test,
            machine: Machine::default_ooo(),
            variants: figure2_variants(),
        };
        let mut j = cell_json(&cell);
        if let Json::Obj(pairs) = &mut j {
            pairs[0].1 = Json::from("no-such-workload");
        }
        assert_eq!(decode_cell(&j).err(), Some(SnapshotError::Bad("workload")));

        let mut j = cell_json(&cell);
        if let Json::Obj(pairs) = &mut j {
            pairs[2].1 = machine_json(&Machine::default_in_order());
            if let Json::Obj(m) = &mut pairs[2].1 {
                m[0].1 = Json::from("ooo"); // name says ooo, hash says in-order
            }
        }
        assert_eq!(decode_cell(&j).err(), Some(SnapshotError::Bad("machine")));
    }

    #[test]
    fn experiment_codec_is_bit_identical() {
        let cell = CpuCell {
            workload: "ora",
            scale: Scale::Test,
            machine: Machine::default_in_order(),
            variants: figure2_variants(),
        };
        let direct = cell.run();
        let line = experiment_json(&direct).compact();
        let back = decode_experiment(&parse(&line).expect("parses")).expect("decodes");
        assert_eq!(back, direct, "raw results and recomputed bars match bit-for-bit");
    }

    #[test]
    fn preempted_cell_matches_uninterrupted_run() {
        let cell = CpuCell {
            workload: "ora",
            scale: Scale::Test,
            machine: Machine::default_ooo(),
            variants: figure2_variants(),
        };
        let direct = cell.run();
        // Every variant's run is sliced into ~20 checkpoint wire round
        // trips. Bypass `memoized` (whose keys match `CpuCell::run`) by
        // calling run_sliced directly — the memo would otherwise serve
        // `direct`'s values and prove nothing.
        let spec = by_name(cell.workload).expect("workload exists");
        let program = (spec.build)(cell.scale);
        let mut raw = Vec::new();
        for v in &cell.variants {
            let inst = instrument(&program, &v.scheme).expect("instruments");
            let baseline = cell
                .machine
                .run_limited(&inst.program, RunLimits::default())
                .expect("baseline runs");
            let stride = (baseline.cycles / 20).max(1);
            let r = run_sliced(
                &cell.machine,
                &inst.program,
                RunLimits::default(),
                Some(stride),
                "preempt test",
            );
            raw.push((v.label, r));
        }
        let sliced = normalize_experiment(cell.workload, cell.machine.name(), raw);
        assert_eq!(sliced, direct, "preemption slicing must be invisible");
    }

    #[test]
    fn wire_structs_round_trip() {
        let cell = CpuCell {
            workload: "ora",
            scale: Scale::Test,
            machine: Machine::default_ooo(),
            variants: figure2_variants(),
        };
        let mut chaos = ChaosConfig::none(9);
        chaos.kill_rate = 0.01;
        let req = SweepRequest {
            name: "fig2".to_string(),
            preempt_every: Some(1000),
            chaos: Some(chaos),
            policy: Some(SweepPolicy { deadline_ms: 5000, ..SweepPolicy::default() }),
            attrib: true,
            cells: vec![AnyCell::Cpu(cell.clone())],
        };
        let back = SweepRequest::from_wire(&parse(&req.to_wire().compact()).expect("parses"))
            .expect("decodes");
        assert_eq!(back.name, "fig2");
        assert_eq!(back.preempt_every, Some(1000));
        assert_eq!(back.chaos, Some(chaos));
        assert_eq!(back.policy.expect("policy").deadline_ms, 5000);
        assert!(back.attrib);
        assert_eq!(back.cells.len(), 1);

        let job = CellJob {
            index: 3,
            attempt: 2,
            cell: AnyCell::Cpu(cell),
            preempt_every: None,
            chaos: Some(chaos),
            resume: Some(synth_state_json(7, 0x1234)),
            attrib: false,
        };
        let back =
            CellJob::from_wire(&parse(&job.to_wire().compact()).expect("parses")).expect("decodes");
        assert_eq!(back.index, 3);
        assert_eq!(back.attempt, 2);
        assert_eq!(back.preempt_every, None);
        assert_eq!(back.chaos, Some(chaos));
        assert_eq!(cell_state_progress(back.resume.as_ref().expect("resume")), Ok(7));

        let err = ServeError { message: "boom".to_string() };
        let back = ServeError::from_wire(&parse(&err.to_wire().compact()).expect("parses"))
            .expect("decodes");
        assert_eq!(back.message, "boom");

        let done = WorkerDone {
            index: 5,
            attempt: 1,
            progress: 600,
            worked: 400,
            hash: cell_result_hash(&CellResult::Synth(42)),
            extra: 1,
            attrib: Some(Json::obj([("demand_refs", Json::from(7u64))])),
            result: CellResult::Synth(42),
        };
        let back = WorkerDone::from_wire(&parse(&done.to_wire().compact()).expect("parses"))
            .expect("decodes");
        assert_eq!(back.index, 5);
        assert_eq!(back.worked, 400);
        assert_eq!(back.extra, 1);
        assert!(back.attrib.is_some());
        assert_eq!(back.hash, cell_result_hash(&back.result));
        assert_eq!(back.result, CellResult::Synth(42));

        let ckpt = WorkerCkpt {
            index: 5,
            attempt: 0,
            progress: 200,
            worked: 200,
            state: synth_state_json(200, 9),
        };
        let back = WorkerCkpt::from_wire(&parse(&ckpt.to_wire().compact()).expect("parses"))
            .expect("decodes");
        assert_eq!(back.progress, 200);
        assert_eq!(cell_state_progress(&back.state), Ok(200));

        let bye = WorkerBye {};
        WorkerBye::from_wire(&parse(&bye.to_wire().compact()).expect("parses")).expect("decodes");
    }

    #[test]
    fn any_cell_and_result_codecs_round_trip() {
        let coh = CohCell {
            app: "migratory",
            procs: 4,
            ops_per_proc: 300,
            seed: 11,
            scheme: imo_coherence::Scheme::Informing,
        };
        let synth = SynthCell { seed: 0xFEED, iters: 1000 };
        for cell in [AnyCell::Coh(coh.clone()), AnyCell::Synth(synth)] {
            let line = any_cell_json(&cell).compact();
            let back = decode_any_cell(&parse(&line).expect("parses")).expect("decodes");
            match (&cell, &back) {
                (AnyCell::Coh(a), AnyCell::Coh(b)) => assert_eq!(a, b),
                (AnyCell::Synth(a), AnyCell::Synth(b)) => assert_eq!(a, b),
                other => panic!("kind changed in flight: {other:?}"),
            }
        }
        // Unknown app names are rejected at decode time.
        let mut j = any_cell_json(&AnyCell::Coh(coh.clone()));
        if let Json::Obj(pairs) = &mut j {
            if let Json::Obj(cell) = &mut pairs[1].1 {
                cell[0].1 = Json::from("no-such-app");
            }
        }
        assert_eq!(decode_any_cell(&j).err(), Some(SnapshotError::Bad("app")));

        // A coherence result round-trips bit-exactly, hash included.
        let direct = run_any_cell_plain(&AnyCell::Coh(coh), None);
        let line = cell_result_json(&direct).compact();
        let back = decode_cell_result(&parse(&line).expect("parses")).expect("decodes");
        assert_eq!(back, direct);
        assert_eq!(cell_result_hash(&back), cell_result_hash(&direct));
    }

    #[test]
    fn resumable_runs_match_plain_runs_for_every_kind() {
        // Each cell kind: run plain, then run sliced with a mid-run
        // kill/resume from the last reported state. Results must be
        // bit-identical.
        let cells = [
            AnyCell::Synth(SynthCell { seed: 77, iters: 1003 }),
            AnyCell::Coh(CohCell {
                app: "producer_consumer",
                procs: 4,
                ops_per_proc: 400,
                seed: 3,
                scheme: imo_coherence::Scheme::Ecc,
            }),
            AnyCell::Cpu(CpuCell {
                workload: "ora",
                scale: Scale::Test,
                machine: Machine::default_ooo(),
                variants: figure2_variants(),
            }),
        ];
        for cell in &cells {
            let (plain, plain_prog) = run_any_cell(cell, None, None, &mut |_, _| {});
            let stride = (plain_prog / 7).max(1);

            // Straight sliced run.
            let mut slices = 0u64;
            let (sliced, sliced_prog) =
                run_any_cell(cell, Some(stride), None, &mut |_, _| slices += 1);
            assert_eq!(sliced, plain, "slicing must be invisible");
            assert_eq!(sliced_prog, plain_prog);
            assert!(slices >= 2, "stride {stride} produced only {slices} slices");

            // Kill after the second slice, resume from its state.
            let mut kept: Option<(u64, Json)> = None;
            let mut seen = 0u64;
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_any_cell(cell, Some(stride), None, &mut |prog, state| {
                    seen += 1;
                    if seen == 2 {
                        kept = Some((prog, state.clone()));
                        panic!("chaos kill");
                    }
                })
            }));
            assert!(caught.is_err(), "worker was killed mid-cell");
            let (prog, state) = kept.expect("two slices reported before the kill");
            assert_eq!(cell_state_progress(&state), Ok(prog));
            let (resumed, resumed_prog) =
                run_any_cell(cell, Some(stride), Some(&state), &mut |_, _| {});
            assert_eq!(resumed, plain, "resume from checkpoint must be invisible");
            assert_eq!(resumed_prog, plain_prog);
        }
    }

    #[test]
    fn synth_chain_is_order_sensitive() {
        let a = run_any_cell_plain(&AnyCell::Synth(SynthCell { seed: 1, iters: 100 }), None);
        let b = run_any_cell_plain(&AnyCell::Synth(SynthCell { seed: 1, iters: 101 }), None);
        let c = run_any_cell_plain(&AnyCell::Synth(SynthCell { seed: 2, iters: 100 }), None);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And deterministic.
        assert_eq!(a, run_any_cell_plain(&AnyCell::Synth(SynthCell { seed: 1, iters: 100 }), None));
    }

    #[test]
    fn client_panics_cleanly_when_no_server_listens() {
        // A connection failure must not silently fall back to in-process.
        let r = std::panic::catch_unwind(|| {
            let _ = run_cells_via_server("127.0.0.1:9", "x", Vec::new());
        });
        assert!(r.is_err());
        let _ = SimError::Paused { cycle: 0 }; // keep the import honest
    }

    #[test]
    fn typed_client_reports_connect_failure() {
        let req = SweepRequest {
            name: "x".to_string(),
            preempt_every: None,
            chaos: None,
            policy: None,
            attrib: false,
            cells: Vec::new(),
        };
        match try_run_cells_via_server("127.0.0.1:9", &req) {
            Err(ClientError::Connect { addr, .. }) => assert_eq!(addr, "127.0.0.1:9"),
            other => panic!("expected a Connect error, got {other:?}"),
        }
    }
}
