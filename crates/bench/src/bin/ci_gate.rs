//! `ci_gate` — the bench regression gate.
//!
//! Re-runs the deterministic bench matrix through the same target modules
//! the `cargo bench` entry points use, then compares every regenerated
//! payload against the committed `BENCH_*.json` baselines:
//!
//! * **simulated counters** (cycles, misses, retries, normalized times, …)
//!   must match *exactly* — the sweep engine is deterministic, so any
//!   difference is a real behaviour change someone must either fix or
//!   re-baseline deliberately;
//! * **wall-clock fields** (`median_ns`, sample arrays, overhead ratios)
//!   are host-dependent and only checked against a wide tolerance band
//!   (`IMO_GATE_WALL_TOL`, default ×10 000).
//!
//! Also validates both the committed and regenerated documents against the
//! declarative schemas in [`imo_bench::gate`] — the same table
//! `examples/bench_check.rs` runs.
//!
//! Usage: `cargo run --release -p imo-bench --bin ci_gate [--skip-wall]
//! [--serve] [--store-dir DIR] [--stats-json PATH] [--assert-warm PCT]
//! [--code-hash]`. `--skip-wall` skips the wall-clock targets
//! (`substrate`, `obs_overhead`, `simspeed`, `chaos_soak`) entirely; by
//! default they run with fast sampling knobs
//! (3 samples × 2 ms) unless the caller already set `IMO_BENCH_SAMPLES` /
//! `IMO_BENCH_SAMPLE_MS`. Exits nonzero on any drift, schema violation, or
//! missing baseline.
//!
//! `--serve` starts an `imo-serve` job server on loopback (the binary must
//! sit next to `ci_gate` in the target directory) and routes every
//! `run_cpu_cells` sweep through it via `IMO_SERVE_ADDR` — the gate then
//! asserts the server path reproduces the committed baselines
//! byte-identically, cell results streaming back over TCP from worker
//! subprocesses.
//!
//! Sweep-store flags (the cross-run incremental path, DESIGN.md §14):
//!
//! * `--code-hash` — print the code fingerprint addressing the on-disk
//!   store (the CI cache key) and exit;
//! * `--store-dir DIR` — use `DIR` instead of `<repo>/.imo-cache`
//!   (equivalent to `IMO_STORE_DIR`; `IMO_STORE=off|ro|rw` picks the mode);
//! * `--stats-json PATH` — write a machine-readable per-target stats
//!   document (wall ms, cells simulated / served from memory / served from
//!   disk) for CI artifacts and `scripts/tier2.sh`;
//! * `--assert-warm PCT` — fail unless at least `PCT`% of the distinct
//!   cells this run needed were served from the on-disk store: CI's warm
//!   job runs the gate twice and pins the second run ≥ 90%. Don't combine
//!   with `--serve`: the client ships cells to worker subprocesses, whose
//!   disk hits this process cannot count.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::Instant;

use imo_bench::gate::{self, Drift};
use imo_bench::report::repo_root;
use imo_bench::sweep::{self, MemoStats};
use imo_bench::targets;
use imo_bench::Table;
use imo_util::json::{parse, Json};

/// Outcome of gating one bench target.
struct TargetReport {
    name: &'static str,
    problems: Vec<String>,
    drifts: Vec<Drift>,
    skipped: bool,
}

impl TargetReport {
    fn ok(&self) -> bool {
        self.problems.is_empty() && self.drifts.is_empty()
    }
}

fn gate_target(t: &targets::Target, skip_wall: bool, wall_tol: f64) -> TargetReport {
    let mut rep =
        TargetReport { name: t.name, problems: Vec::new(), drifts: Vec::new(), skipped: false };
    if skip_wall && t.wall_clock {
        rep.skipped = true;
        return rep;
    }

    let schema = gate::schema_for(t.name).expect("every registered target has a schema");
    let path = repo_root().join(format!("BENCH_{}.json", t.name));
    let baseline = match std::fs::read_to_string(&path) {
        Ok(text) => match parse(&text) {
            Ok(doc) => doc,
            Err(e) => {
                rep.problems.push(format!("baseline is corrupt JSON: {e}"));
                return rep;
            }
        },
        Err(e) => {
            rep.problems.push(format!("baseline {} unreadable: {e}", path.display()));
            return rep;
        }
    };
    for e in gate::validate(&baseline, schema) {
        rep.problems.push(format!("committed baseline: {e}"));
    }

    // Regenerate through the same payload builder the bench target uses,
    // wrapped in the same envelope `write_bench_json` applies.
    let current = envelope(t.name, (t.payload)());
    for e in gate::validate(&current, schema) {
        rep.problems.push(format!("regenerated payload: {e}"));
    }

    rep.drifts = gate::diff(&baseline, &current, wall_tol);
    rep
}

/// The `write_bench_json` envelope, without touching the filesystem.
fn envelope(name: &str, payload: Json) -> Json {
    match payload {
        obj @ Json::Obj(_) if obj.get("bench").is_some() => obj,
        other => Json::obj([("bench", Json::from(name)), ("data", other)]),
    }
}

/// A spawned `imo-serve` child, killed when the gate exits.
struct ServeGuard {
    child: Child,
}

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Starts `imo-serve` (built into the same target directory as `ci_gate`)
/// on an ephemeral loopback port and points `IMO_SERVE_ADDR` at it, so every
/// `run_cpu_cells` sweep below routes through the job server.
fn start_server() -> ServeGuard {
    let exe = std::env::current_exe().expect("current_exe");
    let serve = exe.with_file_name("imo-serve");
    let mut child = Command::new(&serve)
        .args(["--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| {
            panic!(
                "ci_gate --serve: spawning {}: {e}\n(build it first: \
                 cargo build --release -p imo-serve)",
                serve.display()
            )
        });
    let stdout = child.stdout.take().expect("imo-serve stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("imo-serve banner");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected imo-serve banner: {line:?}"))
        .to_string();
    println!("ci_gate: routing cpu sweeps through job server at {addr}");
    std::env::set_var("IMO_SERVE_ADDR", addr);
    ServeGuard { child }
}

/// Parsed command line; see the module docs for flag meanings.
struct Args {
    skip_wall: bool,
    via_server: bool,
    code_hash: bool,
    stats_json: Option<String>,
    assert_warm: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        skip_wall: false,
        via_server: false,
        code_hash: false,
        stats_json: None,
        assert_warm: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--skip-wall" => args.skip_wall = true,
            "--serve" => args.via_server = true,
            "--code-hash" => args.code_hash = true,
            "--store-dir" => {
                let dir = it.next().ok_or("--store-dir needs a directory")?;
                // Equivalent to the env knob; set before the store's first
                // use so the lazily opened global picks it up.
                std::env::set_var("IMO_STORE_DIR", dir);
            }
            "--stats-json" => {
                args.stats_json = Some(it.next().ok_or("--stats-json needs a path")?);
            }
            "--assert-warm" => {
                let pct = it.next().ok_or("--assert-warm needs a percentage")?;
                args.assert_warm =
                    Some(pct.parse().map_err(|_| format!("--assert-warm {pct}: not a number"))?);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// Per-target gate accounting for `--stats-json`.
struct TargetStats {
    name: &'static str,
    wall_ms: u64,
    skipped: bool,
    /// Memo-counter deltas attributed to this target's regeneration.
    memo: MemoStats,
}

/// The effective store mode as a stats/summary token.
fn store_mode_str() -> &'static str {
    match sweep::store() {
        None => "off",
        Some(s) if s.mode() == imo_util::store::StoreMode::ReadOnly => "ro",
        Some(_) => "rw",
    }
}

fn memo_delta(before: MemoStats, after: MemoStats) -> MemoStats {
    MemoStats {
        requested: after.requested - before.requested,
        simulated: after.simulated - before.simulated,
        served_disk: after.served_disk - before.served_disk,
        disk_writes: after.disk_writes - before.disk_writes,
        disk_rejected: after.disk_rejected - before.disk_rejected,
    }
}

fn memo_json(m: &MemoStats) -> Vec<(&'static str, Json)> {
    vec![
        ("requested", Json::from(m.requested)),
        ("simulated", Json::from(m.simulated)),
        ("served_memory", Json::from(m.served_memory())),
        ("served_disk", Json::from(m.served_disk)),
    ]
}

/// The `--stats-json` document: per-target wall ms and cell provenance,
/// plus process totals and the store configuration.
fn stats_json(stats: &[TargetStats], totals: MemoStats, total_ms: u64) -> Json {
    let targets = stats.iter().map(|s| {
        let mut fields = vec![
            ("name", Json::from(s.name)),
            ("skipped", Json::Bool(s.skipped)),
            ("wall_ms", Json::from(s.wall_ms)),
        ];
        fields.extend(memo_json(&s.memo));
        Json::obj(fields)
    });
    let mut total_fields = vec![
        ("wall_ms", Json::from(total_ms)),
        ("disk_writes", Json::from(totals.disk_writes)),
        ("disk_rejected", Json::from(totals.disk_rejected)),
        ("disk_coverage_pct", Json::from(totals.disk_coverage_pct())),
    ];
    total_fields.extend(memo_json(&totals));
    Json::obj([
        ("ci_gate_stats", Json::from(1u64)),
        ("code_fingerprint", Json::Str(format!("{:016x}", sweep::code_fingerprint()))),
        ("store_mode", Json::from(store_mode_str())),
        ("targets", Json::arr(targets)),
        ("totals", Json::obj(total_fields)),
    ])
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ci_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.code_hash {
        println!("{:016x}", sweep::code_fingerprint());
        return ExitCode::SUCCESS;
    }
    let skip_wall = args.skip_wall;
    let _serve_guard = args.via_server.then(start_server);
    if !skip_wall {
        // Fast sampling for the wall-clock targets: the gate only sanity-
        // checks those numbers, so don't spend CI minutes refining medians.
        if std::env::var_os("IMO_BENCH_SAMPLES").is_none() {
            std::env::set_var("IMO_BENCH_SAMPLES", "3");
        }
        if std::env::var_os("IMO_BENCH_SAMPLE_MS").is_none() {
            std::env::set_var("IMO_BENCH_SAMPLE_MS", "2");
        }
    }
    let wall_tol = gate::wall_tolerance();

    println!(
        "ci_gate: regenerating the bench matrix ({} targets{}) and diffing against baselines",
        targets::registry().len(),
        if skip_wall { ", wall-clock targets skipped" } else { "" },
    );
    println!(
        "policy: simulated counters exact; wall-clock fields banded at x{wall_tol} \
         (IMO_GATE_WALL_TOL)\n"
    );

    let gate_start = Instant::now();
    let mut reports = Vec::new();
    let mut stats = Vec::new();
    for t in targets::registry() {
        let before = sweep::memo_stats();
        let t0 = Instant::now();
        let rep = gate_target(&t, skip_wall, wall_tol);
        let wall_ms = t0.elapsed().as_millis() as u64;
        let delta = memo_delta(before, sweep::memo_stats());
        let verdict = if rep.skipped {
            "skipped (wall-clock)"
        } else if rep.ok() {
            "clean"
        } else {
            "DRIFT"
        };
        println!("  {:<22} {verdict}", rep.name);
        stats.push(TargetStats { name: rep.name, wall_ms, skipped: rep.skipped, memo: delta });
        reports.push(rep);
    }
    let total_ms = gate_start.elapsed().as_millis() as u64;

    let memo = sweep::memo_stats();
    println!(
        "\nmemo: {} cells requested, {} simulated, {} served from memory, {} from disk \
         ({:.0}% hit rate; store {}, {} written, {} rejected)",
        memo.requested,
        memo.simulated,
        memo.served_memory(),
        memo.served_disk,
        memo.hit_rate() * 100.0,
        store_mode_str(),
        memo.disk_writes,
        memo.disk_rejected,
    );

    if let Some(path) = &args.stats_json {
        let doc = stats_json(&stats, memo, total_ms);
        if let Err(e) = std::fs::write(path, doc.pretty()) {
            eprintln!("ci_gate: writing --stats-json {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("ci_gate: wrote per-target stats to {path}");
    }

    let mut warm_failed = false;
    if let Some(floor) = args.assert_warm {
        let cov = memo.disk_coverage_pct();
        let distinct = memo.simulated + memo.served_disk;
        if cov < floor {
            eprintln!(
                "ci_gate: --assert-warm {floor}: only {} of {distinct} distinct cells came \
                 from the store ({cov:.1}% < {floor}%) — the warm path is not serving",
                memo.served_disk,
            );
            warm_failed = true;
        } else {
            println!(
                "warm store: {} of {distinct} distinct cells served from disk \
                 ({cov:.1}% ≥ {floor}% floor)",
                memo.served_disk,
            );
        }
    }

    let bad: Vec<&TargetReport> = reports.iter().filter(|r| !r.ok()).collect();
    if bad.is_empty() {
        if warm_failed {
            return ExitCode::FAILURE;
        }
        println!("\nci_gate: clean — every regenerated payload matches its committed baseline");
        return ExitCode::SUCCESS;
    }

    let mut t = Table::new(["bench", "path", "baseline", "current", "why"]);
    for rep in &bad {
        for p in &rep.problems {
            t.row([rep.name.to_string(), "-".into(), "-".into(), "-".into(), p.clone()]);
        }
        for d in &rep.drifts {
            t.row([
                rep.name.to_string(),
                d.path.clone(),
                clip(&d.baseline),
                clip(&d.current),
                d.why.clone(),
            ]);
        }
    }
    println!("\nci_gate: DRIFT in {} target(s)\n", bad.len());
    print!("{}", t.render());
    println!(
        "\nIf the change is intentional, regenerate baselines with scripts/tier2.sh \
         (or `cargo bench -p imo-bench`) and commit the updated BENCH_*.json."
    );
    ExitCode::FAILURE
}

fn clip(s: &str) -> String {
    const MAX: usize = 40;
    if s.chars().count() <= MAX {
        s.to_string()
    } else {
        let head: String = s.chars().take(MAX - 1).collect();
        format!("{head}…")
    }
}
