//! `ci_gate` — the bench regression gate.
//!
//! Re-runs the deterministic bench matrix through the same target modules
//! the `cargo bench` entry points use, then compares every regenerated
//! payload against the committed `BENCH_*.json` baselines:
//!
//! * **simulated counters** (cycles, misses, retries, normalized times, …)
//!   must match *exactly* — the sweep engine is deterministic, so any
//!   difference is a real behaviour change someone must either fix or
//!   re-baseline deliberately;
//! * **wall-clock fields** (`median_ns`, sample arrays, overhead ratios)
//!   are host-dependent and only checked against a wide tolerance band
//!   (`IMO_GATE_WALL_TOL`, default ×10 000).
//!
//! Also validates both the committed and regenerated documents against the
//! declarative schemas in [`imo_bench::gate`] — the same table
//! `examples/bench_check.rs` runs.
//!
//! Usage: `cargo run --release -p imo-bench --bin ci_gate [--skip-wall]
//! [--serve]`. `--skip-wall` skips the three wall-clock targets
//! (`substrate`, `obs_overhead`, `simspeed`) entirely; by default they run
//! with fast sampling knobs
//! (3 samples × 2 ms) unless the caller already set `IMO_BENCH_SAMPLES` /
//! `IMO_BENCH_SAMPLE_MS`. Exits nonzero on any drift, schema violation, or
//! missing baseline.
//!
//! `--serve` starts an `imo-serve` job server on loopback (the binary must
//! sit next to `ci_gate` in the target directory) and routes every
//! `run_cpu_cells` sweep through it via `IMO_SERVE_ADDR` — the gate then
//! asserts the server path reproduces the committed baselines
//! byte-identically, cell results streaming back over TCP from worker
//! subprocesses.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, ExitCode, Stdio};

use imo_bench::gate::{self, Drift};
use imo_bench::report::repo_root;
use imo_bench::targets;
use imo_bench::Table;
use imo_util::json::{parse, Json};

/// Outcome of gating one bench target.
struct TargetReport {
    name: &'static str,
    problems: Vec<String>,
    drifts: Vec<Drift>,
    skipped: bool,
}

impl TargetReport {
    fn ok(&self) -> bool {
        self.problems.is_empty() && self.drifts.is_empty()
    }
}

fn gate_target(t: &targets::Target, skip_wall: bool, wall_tol: f64) -> TargetReport {
    let mut rep =
        TargetReport { name: t.name, problems: Vec::new(), drifts: Vec::new(), skipped: false };
    if skip_wall && t.wall_clock {
        rep.skipped = true;
        return rep;
    }

    let schema = gate::schema_for(t.name).expect("every registered target has a schema");
    let path = repo_root().join(format!("BENCH_{}.json", t.name));
    let baseline = match std::fs::read_to_string(&path) {
        Ok(text) => match parse(&text) {
            Ok(doc) => doc,
            Err(e) => {
                rep.problems.push(format!("baseline is corrupt JSON: {e}"));
                return rep;
            }
        },
        Err(e) => {
            rep.problems.push(format!("baseline {} unreadable: {e}", path.display()));
            return rep;
        }
    };
    for e in gate::validate(&baseline, schema) {
        rep.problems.push(format!("committed baseline: {e}"));
    }

    // Regenerate through the same payload builder the bench target uses,
    // wrapped in the same envelope `write_bench_json` applies.
    let current = envelope(t.name, (t.payload)());
    for e in gate::validate(&current, schema) {
        rep.problems.push(format!("regenerated payload: {e}"));
    }

    rep.drifts = gate::diff(&baseline, &current, wall_tol);
    rep
}

/// The `write_bench_json` envelope, without touching the filesystem.
fn envelope(name: &str, payload: Json) -> Json {
    match payload {
        obj @ Json::Obj(_) if obj.get("bench").is_some() => obj,
        other => Json::obj([("bench", Json::from(name)), ("data", other)]),
    }
}

/// A spawned `imo-serve` child, killed when the gate exits.
struct ServeGuard {
    child: Child,
}

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Starts `imo-serve` (built into the same target directory as `ci_gate`)
/// on an ephemeral loopback port and points `IMO_SERVE_ADDR` at it, so every
/// `run_cpu_cells` sweep below routes through the job server.
fn start_server() -> ServeGuard {
    let exe = std::env::current_exe().expect("current_exe");
    let serve = exe.with_file_name("imo-serve");
    let mut child = Command::new(&serve)
        .args(["--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| {
            panic!(
                "ci_gate --serve: spawning {}: {e}\n(build it first: \
                 cargo build --release -p imo-serve)",
                serve.display()
            )
        });
    let stdout = child.stdout.take().expect("imo-serve stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("imo-serve banner");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected imo-serve banner: {line:?}"))
        .to_string();
    println!("ci_gate: routing cpu sweeps through job server at {addr}");
    std::env::set_var("IMO_SERVE_ADDR", addr);
    ServeGuard { child }
}

fn main() -> ExitCode {
    let skip_wall = std::env::args().any(|a| a == "--skip-wall");
    let via_server = std::env::args().any(|a| a == "--serve");
    let _serve_guard = via_server.then(start_server);
    if !skip_wall {
        // Fast sampling for the wall-clock targets: the gate only sanity-
        // checks those numbers, so don't spend CI minutes refining medians.
        if std::env::var_os("IMO_BENCH_SAMPLES").is_none() {
            std::env::set_var("IMO_BENCH_SAMPLES", "3");
        }
        if std::env::var_os("IMO_BENCH_SAMPLE_MS").is_none() {
            std::env::set_var("IMO_BENCH_SAMPLE_MS", "2");
        }
    }
    let wall_tol = gate::wall_tolerance();

    println!(
        "ci_gate: regenerating the bench matrix ({} targets{}) and diffing against baselines",
        targets::registry().len(),
        if skip_wall { ", wall-clock targets skipped" } else { "" },
    );
    println!(
        "policy: simulated counters exact; wall-clock fields banded at x{wall_tol} \
         (IMO_GATE_WALL_TOL)\n"
    );

    let mut reports = Vec::new();
    for t in targets::registry() {
        let rep = gate_target(&t, skip_wall, wall_tol);
        let verdict = if rep.skipped {
            "skipped (wall-clock)"
        } else if rep.ok() {
            "clean"
        } else {
            "DRIFT"
        };
        println!("  {:<22} {verdict}", rep.name);
        reports.push(rep);
    }

    let memo = imo_bench::sweep::memo_stats();
    println!(
        "\nmemo: {} cells requested, {} simulated, {} served from cache ({:.0}% hit rate)",
        memo.requested,
        memo.simulated,
        memo.deduped(),
        memo.hit_rate() * 100.0
    );

    let bad: Vec<&TargetReport> = reports.iter().filter(|r| !r.ok()).collect();
    if bad.is_empty() {
        println!("\nci_gate: clean — every regenerated payload matches its committed baseline");
        return ExitCode::SUCCESS;
    }

    let mut t = Table::new(["bench", "path", "baseline", "current", "why"]);
    for rep in &bad {
        for p in &rep.problems {
            t.row([rep.name.to_string(), "-".into(), "-".into(), "-".into(), p.clone()]);
        }
        for d in &rep.drifts {
            t.row([
                rep.name.to_string(),
                d.path.clone(),
                clip(&d.baseline),
                clip(&d.current),
                d.why.clone(),
            ]);
        }
    }
    println!("\nci_gate: DRIFT in {} target(s)\n", bad.len());
    print!("{}", t.render());
    println!(
        "\nIf the change is intentional, regenerate baselines with scripts/tier2.sh \
         (or `cargo bench -p imo-bench`) and commit the updated BENCH_*.json."
    );
    ExitCode::FAILURE
}

fn clip(s: &str) -> String {
    const MAX: usize = 40;
    if s.chars().count() <= MAX {
        s.to_string()
    } else {
        let head: String = s.chars().take(MAX - 1).collect();
        format!("{head}…")
    }
}
