//! Report formatting for the figure harnesses: aligned text tables for the
//! console, and JSON baselines (`BENCH_<name>.json` at the repo root) so
//! every future performance PR can be measured offline against a recorded
//! trajectory.

use std::fmt::Write as _;
use std::path::PathBuf;

use imo_core::experiment::ExperimentResult;
use imo_util::json::Json;
use imo_util::stats::Summarize;

use crate::runners::Fig4Row;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Table {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Table {
        let r: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(r.len(), self.headers.len(), "row width mismatch");
        self.rows.push(r);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}  ", c, w = widths[i]);
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            line(&mut out, r);
        }
        out
    }

    /// The table as JSON: an array of row objects keyed by header.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::arr(self.rows.iter().map(|r| {
            Json::Obj(
                self.headers
                    .iter()
                    .zip(r)
                    .map(|(h, c)| (h.clone(), Json::from(c.as_str())))
                    .collect(),
            )
        }))
    }
}

/// Formats one experiment's normalized stacked bars the way Figure 2 draws
/// them: per variant, the total height relative to N and the busy /
/// cache-stall / other-stall split.
pub fn fmt_bars(res: &ExperimentResult) -> String {
    let mut t =
        Table::new(["variant", "norm time", "busy", "cache stall", "other stall", "instr ratio"]);
    for b in &res.bars {
        t.row([
            b.label.to_string(),
            format!("{:.3}", b.total),
            format!("{:.3}", b.busy),
            format!("{:.3}", b.cache_stall),
            format!("{:.3}", b.other_stall),
            format!("{:.3}", b.instr_ratio),
        ]);
    }
    format!("{} [{}]\n{}", res.workload, res.machine, t.render())
}

/// One experiment as JSON: the raw per-variant run reports (including the
/// graduation-slot breakdown) plus the normalized Figure 2 bars.
pub fn experiment_to_json(res: &ExperimentResult) -> Json {
    let variants = res.raw.iter().zip(&res.bars).map(|((label, run), bar)| {
        let mut pairs = vec![
            ("variant".to_string(), Json::from(*label)),
            ("slots".to_string(), run.slots.to_json()),
        ];
        if let Json::Obj(metrics) = run.report().to_json() {
            pairs.extend(metrics);
        }
        pairs.extend([
            ("norm_time".to_string(), Json::from(bar.total)),
            ("norm_busy".to_string(), Json::from(bar.busy)),
            ("norm_cache_stall".to_string(), Json::from(bar.cache_stall)),
            ("norm_other_stall".to_string(), Json::from(bar.other_stall)),
            ("instr_ratio".to_string(), Json::from(bar.instr_ratio)),
        ]);
        Json::Obj(pairs)
    });
    Json::obj([
        ("workload", Json::from(res.workload.as_str())),
        ("machine", Json::from(res.machine)),
        ("variants", Json::arr(variants)),
    ])
}

/// A whole Figure 2/3-style run as JSON.
pub fn experiments_to_json(results: &[ExperimentResult]) -> Json {
    Json::arr(results.iter().map(experiment_to_json))
}

/// Figure 4 as JSON: per application, the three schemes' full counter
/// reports plus their normalized execution times.
pub fn fig4_to_json(rows: &[Fig4Row]) -> Json {
    Json::arr(rows.iter().map(|r| {
        let schemes = r.results.iter().zip(r.normalized).map(|(res, norm)| {
            let mut pairs = Vec::new();
            if let Json::Obj(metrics) = res.report().to_json() {
                pairs.extend(metrics);
            }
            pairs.push(("norm_time".to_string(), Json::from(norm)));
            Json::Obj(pairs)
        });
        Json::obj([("app", Json::from(r.app)), ("schemes", Json::arr(schemes))])
    }))
}

/// The repository root (two levels above this crate's manifest).
#[must_use]
pub fn repo_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

/// Wraps `payload` with the bench name and writes it to
/// `BENCH_<name>.json` at the repository root, returning the path.
///
/// # Errors
///
/// Returns any filesystem error from writing the file.
pub fn write_bench_json(name: &str, payload: Json) -> std::io::Result<PathBuf> {
    let doc = match payload {
        // Bench-runner output already carries its own envelope.
        obj @ Json::Obj(_) if obj.get("bench").is_some() => obj,
        other => Json::obj([("bench", Json::from(name)), ("data", other)]),
    };
    let path = repo_root().join(format!("BENCH_{name}.json"));
    std::fs::write(&path, doc.pretty())?;
    Ok(path)
}

/// [`write_bench_json`] plus a console confirmation line — what every bench
/// target calls last.
///
/// # Panics
///
/// Panics if the file cannot be written; baselines silently missing would
/// defeat the point of recording them.
pub fn emit(name: &str, payload: Json) {
    let path = write_bench_json(name, payload).expect("baseline JSON must be writable");
    println!("\nwrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["a", "long header"]);
        t.row(["xxxxx", "1"]);
        t.row(["y", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long header"));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn table_json_keys_rows_by_header() {
        let mut t = Table::new(["name", "value"]);
        t.row(["cycles", "100"]);
        let j = t.to_json();
        let rows = j.as_arr().unwrap();
        assert_eq!(rows[0].get("name").unwrap().as_str(), Some("cycles"));
        assert_eq!(rows[0].get("value").unwrap().as_str(), Some("100"));
    }

    #[test]
    fn repo_root_holds_workspace_manifest() {
        assert!(repo_root().join("Cargo.toml").exists());
    }

    #[test]
    fn write_bench_json_round_trips() {
        let name = "report_selftest";
        let path = write_bench_json(name, Json::obj([("k", Json::from(1u64))])).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = imo_util::json::parse(&text).unwrap();
        assert_eq!(parsed.get("bench").unwrap().as_str(), Some(name));
        assert_eq!(parsed.get("data").unwrap().get("k").unwrap().as_f64(), Some(1.0));
        std::fs::remove_file(path).unwrap();
    }
}
