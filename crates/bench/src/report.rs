//! Report formatting for the figure harnesses: aligned text tables for the
//! console, and JSON baselines (`BENCH_<name>.json` at the repo root) so
//! every future performance PR can be measured offline against a recorded
//! trajectory.

use std::path::PathBuf;

use imo_core::experiment::ExperimentResult;
use imo_util::json::Json;
use imo_util::stats::Summarize;

use crate::runners::Fig4Row;

// The table renderer moved into the shared substrate (`imo_util::table`)
// so the pipeline trace and coherence example use the same one; existing
// `imo_bench::Table` importers keep working through this re-export.
pub use imo_util::table::Table;

/// Formats one experiment's normalized stacked bars the way Figure 2 draws
/// them: per variant, the total height relative to N and the busy /
/// cache-stall / other-stall split.
pub fn fmt_bars(res: &ExperimentResult) -> String {
    let mut t =
        Table::new(["variant", "norm time", "busy", "cache stall", "other stall", "instr ratio"]);
    for b in &res.bars {
        t.row([
            b.label.to_string(),
            format!("{:.3}", b.total),
            format!("{:.3}", b.busy),
            format!("{:.3}", b.cache_stall),
            format!("{:.3}", b.other_stall),
            format!("{:.3}", b.instr_ratio),
        ]);
    }
    format!("{} [{}]\n{}", res.workload, res.machine, t.render())
}

/// One experiment as JSON: the raw per-variant run reports (including the
/// graduation-slot breakdown) plus the normalized Figure 2 bars.
pub fn experiment_to_json(res: &ExperimentResult) -> Json {
    let variants = res.raw.iter().zip(&res.bars).map(|((label, run), bar)| {
        let mut pairs = vec![
            ("variant".to_string(), Json::from(*label)),
            ("slots".to_string(), run.slots.to_json()),
        ];
        if let Json::Obj(metrics) = run.report().to_json() {
            pairs.extend(metrics);
        }
        pairs.extend([
            ("norm_time".to_string(), Json::from(bar.total)),
            ("norm_busy".to_string(), Json::from(bar.busy)),
            ("norm_cache_stall".to_string(), Json::from(bar.cache_stall)),
            ("norm_other_stall".to_string(), Json::from(bar.other_stall)),
            ("instr_ratio".to_string(), Json::from(bar.instr_ratio)),
        ]);
        Json::Obj(pairs)
    });
    Json::obj([
        ("workload", Json::from(res.workload.as_str())),
        ("machine", Json::from(res.machine)),
        ("variants", Json::arr(variants)),
    ])
}

/// A whole Figure 2/3-style run as JSON.
pub fn experiments_to_json(results: &[ExperimentResult]) -> Json {
    Json::arr(results.iter().map(experiment_to_json))
}

/// Figure 4 as JSON: per application, the three schemes' full counter
/// reports plus their normalized execution times.
pub fn fig4_to_json(rows: &[Fig4Row]) -> Json {
    Json::arr(rows.iter().map(|r| {
        let schemes = r.results.iter().zip(r.normalized).map(|(res, norm)| {
            let mut pairs = Vec::new();
            if let Json::Obj(metrics) = res.report().to_json() {
                pairs.extend(metrics);
            }
            pairs.push(("norm_time".to_string(), Json::from(norm)));
            Json::Obj(pairs)
        });
        Json::obj([("app", Json::from(r.app)), ("schemes", Json::arr(schemes))])
    }))
}

/// The repository root (two levels above this crate's manifest).
#[must_use]
pub fn repo_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

/// Wraps `payload` with the bench name and writes it to
/// `BENCH_<name>.json` at the repository root, returning the path.
///
/// # Errors
///
/// Returns any filesystem error from writing the file.
pub fn write_bench_json(name: &str, payload: Json) -> std::io::Result<PathBuf> {
    let doc = match payload {
        // Bench-runner output already carries its own envelope.
        obj @ Json::Obj(_) if obj.get("bench").is_some() => obj,
        other => Json::obj([("bench", Json::from(name)), ("data", other)]),
    };
    let path = repo_root().join(format!("BENCH_{name}.json"));
    std::fs::write(&path, doc.pretty())?;
    Ok(path)
}

/// [`write_bench_json`] plus a console confirmation line — what every bench
/// target calls last.
///
/// # Panics
///
/// Panics if the file cannot be written; baselines silently missing would
/// defeat the point of recording them.
pub fn emit(name: &str, payload: Json) {
    let path = write_bench_json(name, payload).expect("baseline JSON must be writable");
    println!("\nwrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_reexport_still_works() {
        let mut t = Table::new(["name", "value"]);
        t.row(["cycles", "100"]);
        assert!(t.render().contains("cycles"));
    }

    #[test]
    fn repo_root_holds_workspace_manifest() {
        assert!(repo_root().join("Cargo.toml").exists());
    }

    #[test]
    fn write_bench_json_round_trips() {
        let name = "report_selftest";
        let path = write_bench_json(name, Json::obj([("k", Json::from(1u64))])).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = imo_util::json::parse(&text).unwrap();
        assert_eq!(parsed.get("bench").unwrap().as_str(), Some(name));
        assert_eq!(parsed.get("data").unwrap().get("k").unwrap().as_f64(), Some(1.0));
        std::fs::remove_file(path).unwrap();
    }
}
