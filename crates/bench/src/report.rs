//! Plain-text report formatting for the figure harnesses.

use std::fmt::Write as _;

use imo_core::experiment::ExperimentResult;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Table {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Table {
        let r: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(r.len(), self.headers.len(), "row width mismatch");
        self.rows.push(r);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}  ", c, w = widths[i]);
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            line(&mut out, r);
        }
        out
    }
}

/// Formats one experiment's normalized stacked bars the way Figure 2 draws
/// them: per variant, the total height relative to N and the busy /
/// cache-stall / other-stall split.
pub fn fmt_bars(res: &ExperimentResult) -> String {
    let mut t = Table::new([
        "variant",
        "norm time",
        "busy",
        "cache stall",
        "other stall",
        "instr ratio",
    ]);
    for b in &res.bars {
        t.row([
            b.label.to_string(),
            format!("{:.3}", b.total),
            format!("{:.3}", b.busy),
            format!("{:.3}", b.cache_stall),
            format!("{:.3}", b.other_stall),
            format!("{:.3}", b.instr_ratio),
        ]);
    }
    format!("{} [{}]\n{}", res.workload, res.machine, t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["a", "long header"]);
        t.row(["xxxxx", "1"]);
        t.row(["y", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long header"));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }
}
