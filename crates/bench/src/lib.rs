//! # Benchmark harnesses for every table and figure
//!
//! Each `cargo bench` target in this crate regenerates one table or figure
//! of *Informing Memory Operations* (ISCA 1996):
//!
//! | target | reproduces |
//! |---|---|
//! | `table1` | Table 1 — processor simulation parameters (+ Figure 1 pipeline notes) |
//! | `fig2` | Figure 2 — 1- and 10-instruction generic handlers, 13 benchmarks × 2 machines |
//! | `fig3` | Figure 3 — the same for `su2cor` (the conflict pathology) |
//! | `handler100` | §4.2.2 — 100-instruction handlers (compress ~6×, su2cor ~7×, ora ~2 %) |
//! | `branch_vs_exception` | §4.2.2 — informing trap as branch vs exception on compress |
//! | `table2` | Table 2 — access-control machine and cost parameters |
//! | `fig4` | Figure 4 — three access-control schemes on five parallel apps |
//! | `fig4_sensitivity` | §4.3.2 — network-latency and L1-size sensitivity |
//! | `ablation_mshr` | §3.3 — MSHR lifetime extension (squash-invalidate) |
//! | `ablation_checkpoints` | §3.2 — shadow-checkpoint pressure under informing-as-branch |
//! | `fault_resilience` | fault-rate × backoff sweep of the resilient coherence protocol |
//! | `substrate` | wall-clock microbenches of the simulator substrate itself |
//! | `obs_overhead` | recorder identity proofs + observation wall-clock cost |
//!
//! Each target is a thin `benches/<name>.rs` main over a module in
//! [`targets`], which exposes `compute()`/`payload()`/`print()` separately
//! so the `ci_gate` binary can regenerate payloads without re-printing.
//! Deterministic targets declare their work as [`sweep`] matrices and fan
//! out across [`imo_util::pool`]; output is byte-identical at any thread
//! count.
//!
//! The expected shapes (who wins, by what factor) are recorded in
//! `EXPERIMENTS.md` alongside the paper's numbers. Every target also writes
//! a machine-readable baseline, `BENCH_<name>.json`, at the repository root
//! (see [`report::write_bench_json`]); [`gate`] holds the declarative
//! schemas and the drift-diff engine `ci_gate` checks them with.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod gate;
pub mod report;
pub mod runners;
pub mod serve;
pub mod sweep;
pub mod targets;

pub use report::{emit, experiments_to_json, fig4_to_json, fmt_bars, write_bench_json, Table};
pub use runners::{fig2_for, fig4_rows, Fig4Row};
pub use sweep::{cross2, cross3, CpuCell, Matrix, SweepSpec};
