//! The baseline regression gate: declarative schemas for every
//! `BENCH_*.json` baseline, plus the exact/tolerance diff engine `ci_gate`
//! runs against a freshly regenerated matrix.
//!
//! Two layers:
//!
//! * **Schema validation** ([`SCHEMAS`], [`validate`]) — one declarative
//!   rule table per bench target, replacing per-bench ad-hoc checks. Rules
//!   are `(path, expectation)` pairs; paths are dot-separated with `[*]`
//!   fanning out over every array element. `examples/bench_check.rs` and
//!   `ci_gate` both run these.
//! * **Drift diffing** ([`diff`]) — compares a committed baseline document
//!   against a regenerated one. Simulated counters (cycles, misses, retry
//!   counts, …) must match **exactly**: the sweep engine is deterministic,
//!   so any difference is a real behaviour change. Host wall-clock fields
//!   (`median_ns`, sample arrays, calibration, overhead ratios) are
//!   machine-dependent and are checked against a wide tolerance band
//!   instead (`IMO_GATE_WALL_TOL`, default ×10 000 — catches corrupt or
//!   non-finite values, not host speed).

use imo_util::json::Json;

/// What a schema rule expects at its path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Expect {
    /// A boolean `true` (proof obligations like `zero_fault_identical`).
    True,
    /// Any finite number.
    Num,
    /// A finite number `> 0`.
    NumPos,
    /// A non-empty string.
    Str,
    /// An array of exactly this length.
    ArrLen(usize),
    /// An array of at least this length.
    ArrMin(usize),
}

/// One declarative check: every node selected by `path` must satisfy
/// `expect`.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Dot-separated path from the document root; `key[*]` fans out over
    /// every element of the array at `key`.
    pub path: &'static str,
    /// The expectation at that path.
    pub expect: Expect,
}

/// The schema of one baseline file.
#[derive(Debug, Clone, Copy)]
pub struct BenchSchema {
    /// Baseline name (`BENCH_<name>.json`).
    pub name: &'static str,
    /// All rules; every one must hold.
    pub rules: &'static [Rule],
}

const fn r(path: &'static str, expect: Expect) -> Rule {
    Rule { path, expect }
}

/// The declarative schema table for all 16 baselines.
pub const SCHEMAS: &[BenchSchema] = &[
    BenchSchema {
        name: "table1",
        rules: &[
            r("data.pipeline", Expect::ArrMin(9)),
            r("data.memory", Expect::ArrMin(8)),
            r("data.pipeline[*].Out-Of-Order", Expect::Str),
            r("data.memory[*].In-Order", Expect::Str),
        ],
    },
    BenchSchema {
        name: "fig2",
        rules: &[
            r("data", Expect::ArrLen(26)), // 13 workloads x 2 machines
            r("data[*].workload", Expect::Str),
            r("data[*].machine", Expect::Str),
            r("data[*].variants", Expect::ArrLen(5)), // N, 1S, 1U, 10S, 10U
            r("data[*].variants[*].variant", Expect::Str),
            r("data[*].variants[*].cycles", Expect::NumPos),
            r("data[*].variants[*].norm_time", Expect::NumPos),
            r("data[*].variants[*].instr_ratio", Expect::NumPos),
        ],
    },
    BenchSchema {
        name: "fig3",
        rules: &[
            r("data", Expect::ArrLen(2)), // su2cor x 2 machines
            r("data[*].workload", Expect::Str),
            r("data[*].variants", Expect::ArrLen(5)),
            r("data[*].variants[*].cycles", Expect::NumPos),
            r("data[*].variants[*].norm_time", Expect::NumPos),
        ],
    },
    BenchSchema {
        name: "handler100",
        rules: &[
            r("data", Expect::ArrLen(6)),             // 3 workloads x 2 machines
            r("data[*].variants", Expect::ArrLen(3)), // N, 100S, 100/16
            r("data[*].variants[*].cycles", Expect::NumPos),
            r("data[*].variants[*].norm_time", Expect::NumPos),
        ],
    },
    BenchSchema {
        name: "branch_vs_exception",
        rules: &[
            r("data", Expect::ArrLen(4)), // 2 handler lengths x 2 trap models
            r("data[*].handler_len", Expect::NumPos),
            r("data[*].trap_model", Expect::Str),
            r("data[*].cycles", Expect::NumPos),
            r("data[*].norm_time", Expect::NumPos),
        ],
    },
    BenchSchema {
        name: "table2",
        rules: &[
            r("data.machine", Expect::ArrMin(5)),
            r("data.approaches", Expect::ArrLen(3)),
            r("data.approaches[*].Costs", Expect::Str),
        ],
    },
    BenchSchema {
        name: "fig4",
        rules: &[
            r("data", Expect::ArrLen(5)), // 5 parallel apps
            r("data[*].app", Expect::Str),
            r("data[*].schemes", Expect::ArrLen(3)),
            r("data[*].schemes[*].total_cycles", Expect::NumPos),
            r("data[*].schemes[*].norm_time", Expect::NumPos),
        ],
    },
    BenchSchema {
        name: "fig4_sensitivity",
        rules: &[
            r("data.msg_latency_sweep", Expect::ArrLen(3)),
            r("data.l1_size_sweep", Expect::ArrLen(3)),
            r("data.msg_latency_sweep[*].refcheck_over_informing", Expect::NumPos),
            r("data.msg_latency_sweep[*].ecc_over_informing", Expect::NumPos),
            r("data.l1_size_sweep[*].refcheck_over_informing", Expect::NumPos),
            r("data.l1_size_sweep[*].ecc_over_informing", Expect::NumPos),
        ],
    },
    BenchSchema {
        name: "ablation_mshr",
        rules: &[
            r("data", Expect::ArrLen(2)), // standard, extended-lifetime
            r("data[*].mode", Expect::Str),
            r("data[*].squashed_loads", Expect::NumPos),
            r("data[*].silent_l1_installs", Expect::Num),
            r("data[*].squash_invalidations", Expect::Num),
            r("data[*].l2_prefetches", Expect::Num),
        ],
    },
    BenchSchema {
        name: "ablation_checkpoints",
        rules: &[
            r("data", Expect::ArrLen(5)), // checkpoint budgets 1, 2, 3, 6, 12
            r("data[*].checkpoints", Expect::NumPos),
            r("data[*].cycles", Expect::NumPos),
            r("data[*].slowdown_vs_12", Expect::NumPos),
        ],
    },
    BenchSchema {
        name: "fault_resilience",
        rules: &[
            r("data.zero_fault_identical", Expect::True),
            r("data.baseline_cycles", Expect::NumPos),
            r("data.sweep", Expect::ArrLen(15)), // 3 policies x 5 drop rates
            r("data.sweep[*].policy", Expect::Str),
            r("data.sweep[*].total_cycles", Expect::NumPos),
            r("data.sweep[*].slowdown", Expect::NumPos),
            r("data.sweep[*].retries", Expect::Num),
            r("data.sweep[*].timeouts", Expect::Num),
        ],
    },
    BenchSchema {
        name: "attrib",
        rules: &[
            r("data.cpu", Expect::ArrLen(28)), // 14 workloads x 2 machines
            r("data.cpu[*].workload", Expect::Str),
            r("data.cpu[*].machine", Expect::Str),
            r("data.cpu[*].demand_refs", Expect::NumPos),
            r("data.cpu[*].demand_misses", Expect::Num),
            r("data.cpu[*].compulsory", Expect::Num),
            r("data.cpu[*].coherence", Expect::Num),
            r("data.cpu[*].capacity", Expect::Num),
            r("data.cpu[*].conflict", Expect::Num),
            r("data.cpu[*].reconciled", Expect::True),
            r("data.cpu[*].passive", Expect::True),
            r("data.cpu[*].hot_pattern", Expect::Str),
            r("data.coherence", Expect::ArrLen(3)), // 3 schemes
            r("data.coherence[*].scheme", Expect::Str),
            r("data.coherence[*].classified", Expect::NumPos),
            r("data.coherence[*].coherence", Expect::NumPos),
            r("data.coherence[*].reconciled", Expect::True),
        ],
    },
    BenchSchema {
        name: "substrate",
        rules: &[
            r("unit", Expect::Str),
            r("results", Expect::ArrLen(7)),
            r("results[*].id", Expect::Str),
            r("results[*].median_ns", Expect::NumPos),
            r("results[*].samples", Expect::ArrMin(1)),
        ],
    },
    BenchSchema {
        name: "obs_overhead",
        rules: &[
            r("data.disabled_identical", Expect::True),
            r("data.full_identical", Expect::True),
            r("data.attrib_identical", Expect::True),
            r("data.coherence_identical", Expect::True),
            r("data.attrib_within_ceiling", Expect::True),
            r("data.attrib_ceiling", Expect::NumPos),
            r("data.overheads", Expect::ArrLen(2)), // ooo, inorder
            r("data.overheads[*].machine", Expect::Str),
            r("data.overheads[*].disabled_over_plain", Expect::NumPos),
            r("data.overheads[*].full_over_plain", Expect::NumPos),
            r("data.overheads[*].attrib_over_plain", Expect::NumPos),
            r("data.timings.results", Expect::ArrLen(8)),
            r("data.timings.results[*].median_ns", Expect::NumPos),
        ],
    },
    BenchSchema {
        name: "simspeed",
        rules: &[
            r("data.workload", Expect::Str),
            r("data.rows", Expect::ArrLen(6)), // 2 machines x 3 schemes
            r("data.rows[*].machine", Expect::Str),
            r("data.rows[*].scheme", Expect::Str),
            r("data.rows[*].sim_cycles", Expect::NumPos),
            r("data.rows[*].instructions", Expect::NumPos),
            r("data.rows[*].identical_to_tick_accurate", Expect::True),
            r("data.rows[*].wall_ns", Expect::NumPos),
            r("data.rows[*].tick_wall_ns", Expect::NumPos),
            r("data.rows[*].cycles_per_sec", Expect::NumPos),
            r("data.rows[*].speedup_vs_tick", Expect::NumPos),
            // Exact fast-path coverage counters (compared bit-for-bit, not
            // wall-banded): every row must actually engage the block cache.
            r("data.rows[*].block_hit_rate", Expect::NumPos),
            r("data.rows[*].batched_instr_pct", Expect::NumPos),
            r("data.dedup.requested", Expect::NumPos),
            r("data.dedup.simulated", Expect::NumPos),
            r("data.dedup.deduped", Expect::NumPos),
            r("data.dedup.hit_rate", Expect::NumPos),
        ],
    },
    BenchSchema {
        name: "chaos_soak",
        rules: &[
            r("data.cells", Expect::NumPos),
            r("data.sweeps", Expect::ArrLen(4)), // synth, coh, cpu, clean
            r("data.sweeps[*].name", Expect::Str),
            r("data.sweeps[*].cells", Expect::NumPos),
            r("data.sweeps[*].byte_identical", Expect::True),
            r("data.sweeps[*].wall_ms", Expect::NumPos),
            r("data.clean_identical", Expect::True),
            r("data.coh_recovered", Expect::True),
            r("data.no_quarantine", Expect::True),
            r("data.counters.cells_completed", Expect::NumPos),
            r("data.counters.redispatches", Expect::NumPos),
            r("data.counters.recovered_from_checkpoint", Expect::NumPos),
            r("data.counters.recovered_ckpt_coh", Expect::NumPos),
            r("data.counters.worker_failures", Expect::NumPos),
            r("data.counters.quarantined_cells", Expect::Num),
            r("data.wall_ms", Expect::NumPos),
        ],
    },
];

/// Looks a schema up by bench name.
#[must_use]
pub fn schema_for(name: &str) -> Option<&'static BenchSchema> {
    SCHEMAS.iter().find(|s| s.name == name)
}

/// Selects every node matching a `a.b[*].c` path. Errors name the missing
/// segment.
fn select<'a>(doc: &'a Json, path: &str) -> Result<Vec<&'a Json>, String> {
    let mut nodes = vec![doc];
    for seg in path.split('.') {
        let (key, fan_out) = match seg.strip_suffix("[*]") {
            Some(k) => (k, true),
            None => (seg, false),
        };
        let mut next = Vec::new();
        for n in nodes {
            let v = n.get(key).ok_or_else(|| format!("missing `{key}` (path `{path}`)"))?;
            if fan_out {
                let items =
                    v.as_arr().ok_or_else(|| format!("`{key}` is not an array (path `{path}`)"))?;
                next.extend(items);
            } else {
                next.push(v);
            }
        }
        nodes = next;
    }
    Ok(nodes)
}

fn check_node(node: &Json, expect: Expect) -> Result<(), String> {
    match expect {
        Expect::True => match node {
            Json::Bool(true) => Ok(()),
            Json::Bool(false) => Err("is false (a proof obligation failed)".to_string()),
            _ => Err("expected boolean true".to_string()),
        },
        Expect::Num => match node {
            Json::Num(n) if n.is_finite() => Ok(()),
            _ => Err("expected a finite number".to_string()),
        },
        Expect::NumPos => match node {
            Json::Num(n) if n.is_finite() && *n > 0.0 => Ok(()),
            _ => Err("expected a finite number > 0".to_string()),
        },
        Expect::Str => match node {
            Json::Str(s) if !s.is_empty() => Ok(()),
            _ => Err("expected a non-empty string".to_string()),
        },
        Expect::ArrLen(want) => match node {
            Json::Arr(items) if items.len() == want => Ok(()),
            Json::Arr(items) => Err(format!("expected {want} elements, found {}", items.len())),
            _ => Err("expected an array".to_string()),
        },
        Expect::ArrMin(want) => match node {
            Json::Arr(items) if items.len() >= want => Ok(()),
            Json::Arr(items) => Err(format!("expected >= {want} elements, found {}", items.len())),
            _ => Err("expected an array".to_string()),
        },
    }
}

/// Validates a parsed baseline document against its schema. Returns every
/// violation (empty = valid). The `bench` envelope name must also match.
#[must_use]
pub fn validate(doc: &Json, schema: &BenchSchema) -> Vec<String> {
    let mut errs = Vec::new();
    match doc.get("bench").and_then(Json::as_str) {
        Some(n) if n == schema.name => {}
        Some(n) => errs.push(format!("envelope names `{n}`, expected `{}`", schema.name)),
        None => errs.push("missing the `bench` envelope".to_string()),
    }
    for rule in schema.rules {
        match select(doc, rule.path) {
            Err(e) => errs.push(e),
            Ok(nodes) => {
                for node in nodes {
                    if let Err(e) = check_node(node, rule.expect) {
                        errs.push(format!("`{}`: {e}", rule.path));
                    }
                }
            }
        }
    }
    errs
}

/// Keys holding host wall-clock measurements: machine-dependent, compared
/// with a tolerance band instead of exactly.
pub const WALL_KEYS: &[&str] = &[
    "median_ns",
    "min_ns",
    "max_ns",
    "samples",
    "iters_per_sample",
    "disabled_over_plain",
    "full_over_plain",
    "attrib_over_plain",
    "wall_ns",
    "tick_wall_ns",
    "cycles_per_sec",
    "speedup_vs_tick",
    "wall_ms",
];

/// The wall-clock tolerance factor: `IMO_GATE_WALL_TOL` or a wide default.
/// A wall field drifts only if `max/min > tol` (or a value is non-finite
/// or non-positive) — CI hosts differ from the recording host, so the
/// default band catches corruption, not speed.
#[must_use]
pub fn wall_tolerance() -> f64 {
    std::env::var("IMO_GATE_WALL_TOL")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t >= 1.0)
        .unwrap_or(10_000.0)
}

/// One drift between the committed baseline and the regenerated matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// Path of the differing node.
    pub path: String,
    /// Committed value (rendered).
    pub baseline: String,
    /// Regenerated value (rendered).
    pub current: String,
    /// What rule failed.
    pub why: String,
}

fn drift(path: &str, base: &Json, cur: &Json, why: impl Into<String>) -> Drift {
    Drift {
        path: path.to_string(),
        baseline: base.to_string(),
        current: cur.to_string(),
        why: why.into(),
    }
}

fn wall_number_ok(n: f64) -> bool {
    n.is_finite() && n >= 0.0
}

fn diff_wall(path: &str, base: &Json, cur: &Json, tol: f64, out: &mut Vec<Drift>) {
    match (base, cur) {
        (Json::Num(b), Json::Num(c)) => {
            if !wall_number_ok(*b) || !wall_number_ok(*c) {
                out.push(drift(path, base, cur, "wall-clock value must be finite and >= 0"));
            } else if *b > 0.0 && *c > 0.0 {
                let ratio = if b > c { b / c } else { c / b };
                if ratio > tol {
                    out.push(drift(
                        path,
                        base,
                        cur,
                        format!("wall-clock ratio {ratio:.1} exceeds tolerance {tol}"),
                    ));
                }
            }
        }
        // Sample arrays: length depends on IMO_BENCH_SAMPLES; only sanity-
        // check the regenerated values.
        (Json::Arr(_), Json::Arr(c)) => {
            for (i, v) in c.iter().enumerate() {
                match v {
                    Json::Num(n) if wall_number_ok(*n) => {}
                    _ => out.push(drift(
                        &format!("{path}[{i}]"),
                        base,
                        v,
                        "wall-clock sample must be a finite number",
                    )),
                }
            }
        }
        _ => out.push(drift(path, base, cur, "wall-clock field changed shape")),
    }
}

fn diff_walk(
    path: &str,
    key: Option<&str>,
    base: &Json,
    cur: &Json,
    tol: f64,
    out: &mut Vec<Drift>,
) {
    if let Some(k) = key {
        if WALL_KEYS.contains(&k) {
            diff_wall(path, base, cur, tol, out);
            return;
        }
    }
    match (base, cur) {
        (Json::Obj(b), Json::Obj(c)) => {
            for (k, bv) in b {
                match c.iter().find(|(ck, _)| ck == k) {
                    Some((_, cv)) => {
                        diff_walk(&format!("{path}.{k}"), Some(k), bv, cv, tol, out);
                    }
                    None => out.push(drift(&format!("{path}.{k}"), bv, &Json::Null, "key removed")),
                }
            }
            for (k, cv) in c {
                if !b.iter().any(|(bk, _)| bk == k) {
                    out.push(drift(&format!("{path}.{k}"), &Json::Null, cv, "key added"));
                }
            }
        }
        (Json::Arr(b), Json::Arr(c)) => {
            if b.len() != c.len() {
                out.push(drift(
                    path,
                    &Json::from(b.len()),
                    &Json::from(c.len()),
                    "array length changed",
                ));
                return;
            }
            for (i, (bv, cv)) in b.iter().zip(c).enumerate() {
                diff_walk(&format!("{path}[{i}]"), None, bv, cv, tol, out);
            }
        }
        (Json::Num(b), Json::Num(c)) => {
            let same = b == c || (b.is_nan() && c.is_nan());
            if !same {
                out.push(drift(path, base, cur, "simulated counter must match exactly"));
            }
        }
        _ => {
            if base != cur {
                out.push(drift(path, base, cur, "value changed"));
            }
        }
    }
}

/// Diffs a committed baseline against a regenerated document. Simulated
/// counters compare exactly; [`WALL_KEYS`] fields use the tolerance band.
/// Returns every drift (empty = the tree is clean).
#[must_use]
pub fn diff(baseline: &Json, current: &Json, wall_tol: f64) -> Vec<Drift> {
    let mut out = Vec::new();
    diff_walk("$", None, baseline, current, wall_tol, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_util::json::parse;

    fn fig4ish(cycles: u64) -> Json {
        parse(&format!(
            r#"{{"bench": "x", "data": [{{"app": "lu", "total_cycles": {cycles},
                "median_ns": 10.0, "samples": [1.0, 2.0]}}]}}"#
        ))
        .expect("parses")
    }

    #[test]
    fn schema_table_covers_all_16_targets() {
        assert_eq!(SCHEMAS.len(), 16);
        let mut names: Vec<_> = SCHEMAS.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn select_fans_out_over_arrays() {
        let doc = parse(r#"{"data": [{"v": 1}, {"v": 2}]}"#).expect("parses");
        let nodes = select(&doc, "data[*].v").expect("selects");
        assert_eq!(nodes.len(), 2);
        assert!(select(&doc, "data[*].missing").is_err());
        assert!(select(&doc, "nope").is_err());
    }

    #[test]
    fn validate_flags_wrong_shapes() {
        const RULES: &[Rule] = &[r("data", Expect::ArrLen(2)), r("data[*].v", Expect::NumPos)];
        let schema = BenchSchema { name: "x", rules: RULES };
        let good = parse(r#"{"bench": "x", "data": [{"v": 1}, {"v": 2}]}"#).expect("parses");
        assert!(validate(&good, &schema).is_empty());
        let bad = parse(r#"{"bench": "x", "data": [{"v": 0}]}"#).expect("parses");
        let errs = validate(&bad, &schema);
        assert_eq!(errs.len(), 2, "length and positivity both fail: {errs:?}");
        let unnamed = parse(r#"{"data": [{"v": 1}, {"v": 2}]}"#).expect("parses");
        assert_eq!(validate(&unnamed, &schema).len(), 1);
    }

    #[test]
    fn exact_fields_must_match_exactly() {
        let drifts = diff(&fig4ish(100), &fig4ish(101), 10_000.0);
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].path.contains("total_cycles"), "{drifts:?}");
        assert!(diff(&fig4ish(100), &fig4ish(100), 10_000.0).is_empty());
    }

    #[test]
    fn wall_fields_use_the_band() {
        let base = parse(r#"{"median_ns": 10.0}"#).expect("parses");
        let near = parse(r#"{"median_ns": 25.0}"#).expect("parses");
        let far = parse(r#"{"median_ns": 2000000.0}"#).expect("parses");
        assert!(diff(&base, &near, 100.0).is_empty());
        assert_eq!(diff(&base, &far, 100.0).len(), 1);
        // Sample arrays may change length freely.
        let s1 = parse(r#"{"samples": [1.0, 2.0, 3.0]}"#).expect("parses");
        let s2 = parse(r#"{"samples": [4.0]}"#).expect("parses");
        assert!(diff(&s1, &s2, 100.0).is_empty());
    }

    #[test]
    fn structural_drift_is_reported() {
        let a = parse(r#"{"k": 1, "gone": 2}"#).expect("parses");
        let b = parse(r#"{"k": 1, "new": 3}"#).expect("parses");
        let drifts = diff(&a, &b, 100.0);
        assert_eq!(drifts.len(), 2);
        let a = parse(r#"{"rows": [1, 2]}"#).expect("parses");
        let b = parse(r#"{"rows": [1]}"#).expect("parses");
        assert_eq!(diff(&a, &b, 100.0).len(), 1);
    }

    #[test]
    fn committed_baselines_satisfy_their_schemas() {
        let root = crate::report::repo_root();
        for schema in SCHEMAS {
            let path = root.join(format!("BENCH_{}.json", schema.name));
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{} unreadable: {e}", path.display()));
            let doc = parse(&text).unwrap_or_else(|e| panic!("{} corrupt: {e}", path.display()));
            let errs = validate(&doc, schema);
            assert!(errs.is_empty(), "{}: {errs:?}", schema.name);
        }
    }
}
