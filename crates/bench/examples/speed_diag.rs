//! Quick fast-path diagnostic: per-machine wall time and block-batch
//! engagement on the simspeed workload. Not a published benchmark.

use std::time::Instant;

use imo_core::Machine;
use imo_cpu::{speed, RunLimits};
use imo_workloads::{by_name, Scale};

fn main() {
    let spec = by_name("mdljsp2").expect("workload exists");
    let p = (spec.build)(Scale::Small);
    for m in [Machine::default_in_order(), Machine::default_ooo()] {
        let before = speed::speed_stats();
        let t0 = Instant::now();
        let ev = m.run_limited(&p, RunLimits::default()).expect("event");
        let ev_wall = t0.elapsed();
        let after = speed::speed_stats();
        let t0 = Instant::now();
        let tk = m.run_limited(&p, RunLimits::tick_accurate()).expect("tick");
        let tk_wall = t0.elapsed();
        assert_eq!(ev, tk, "bit identity");
        let d = speed::SpeedStats {
            groups: after.groups - before.groups,
            block_groups: after.block_groups - before.block_groups,
            plain_instrs: after.plain_instrs - before.plain_instrs,
            instrs: after.instrs - before.instrs,
        };
        println!(
            "{:9} cycles {:8} event {:>9.1?} tick {:>9.1?} speedup {:.2}x  groups {} block_hit {:.1}% batched {:.1}%",
            m.name(),
            ev.cycles,
            ev_wall,
            tk_wall,
            tk_wall.as_secs_f64() / ev_wall.as_secs_f64(),
            d.groups,
            100.0 * d.block_hit_rate(),
            d.batched_instr_pct(),
        );
    }
}
