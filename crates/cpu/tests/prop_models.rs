//! Property-based tests: both cycle-level models must be *functionally
//! transparent* — for any program, the architectural results equal the
//! functional executor's (run against identical cache state), and basic
//! timing invariants hold. Runs on the in-tree `imo_util::check` harness
//! (64 seeded cases per property, as under proptest).

use imo_util::check::{Checker, Gen};
use imo_util::{ensure, ensure_eq};

use imo_cpu::{inorder, ooo, InOrderConfig, OooConfig, RunLimits};
use imo_isa::exec::{Executor, MissOracle, NeverMiss};
use imo_isa::{Asm, Cond, Instr, Program, Reg};

fn arb_op(g: &mut Gen) -> Instr {
    match g.int(0u32..7) {
        0 => Instr::Add {
            rd: Reg::int(g.int(1u8..8)),
            rs: Reg::int(g.int(1u8..8)),
            rt: Reg::int(g.int(1u8..8)),
        },
        1 => Instr::Addi {
            rd: Reg::int(g.int(1u8..8)),
            rs: Reg::int(g.int(1u8..8)),
            imm: g.int(-64i64..64),
        },
        2 => Instr::Srl {
            rd: Reg::int(g.int(1u8..8)),
            rs: Reg::int(g.int(1u8..8)),
            sh: g.int(0u8..5),
        },
        3 => Instr::Mul {
            rd: Reg::int(g.int(1u8..8)),
            rs: Reg::int(g.int(1u8..8)),
            rt: Reg::int(g.int(1u8..8)),
        },
        4 => Instr::Load {
            rd: Reg::int(g.int(1u8..8)),
            base: Reg::int(15),
            offset: (g.int(0u64..32) * 8) as i64,
            kind: imo_isa::MemKind::Normal,
        },
        5 => Instr::Store {
            rs: Reg::int(g.int(1u8..8)),
            base: Reg::int(15),
            offset: (g.int(0u64..32) * 8) as i64,
            kind: imo_isa::MemKind::Normal,
        },
        _ => Instr::Fadd {
            fd: Reg::fp(g.int(1u8..4)),
            fs: Reg::fp(g.int(1u8..4)),
            ft: Reg::fp(g.int(1u8..4)),
        },
    }
}

/// A structured random program: straight-line ALU/memory blocks with a
/// bounded counted loop, always terminating in `halt`.
fn arb_program(g: &mut Gen) -> Program {
    let pro = g.vec(0..12, arb_op);
    let body = g.vec(1..10, arb_op);
    let trips = g.int(1u64..8);
    let mut a = Asm::new();
    a.li(Reg::int(15), 0x10_0000); // memory base
    for i in &pro {
        a.emit(*i);
    }
    let (ctr, lim) = (Reg::int(14), Reg::int(13));
    a.li(ctr, 0);
    a.li(lim, trips as i64);
    let top = a.here("top");
    for i in &body {
        a.emit(*i);
    }
    a.addi(ctr, ctr, 1);
    a.branch(Cond::Lt, ctr, lim, top);
    a.halt();
    a.assemble().expect("generated program assembles")
}

/// Oracle reproducing the hierarchy's probe outcomes deterministically.
struct HierOracle(imo_mem::MemoryHierarchy);

impl MissOracle for HierOracle {
    fn probe(&mut self, addr: u64, is_store: bool) -> imo_isa::exec::MissDepth {
        match self.0.probe_data(addr, is_store).level {
            imo_mem::HitLevel::L1 => imo_isa::exec::MissDepth::Hit,
            imo_mem::HitLevel::L2 => imo_isa::exec::MissDepth::L1Miss,
            imo_mem::HitLevel::Memory => imo_isa::exec::MissDepth::MemMiss,
        }
    }
}

/// The out-of-order model, the in-order model and the plain functional
/// executor agree on every architectural register.
#[test]
fn models_are_functionally_transparent() {
    Checker::new("models_are_functionally_transparent").cases(64).run(|g| {
        let p = arb_program(g);
        let limits = RunLimits {
            max_instructions: 1_000_000,
            max_cycles: 10_000_000,
            ..RunLimits::default()
        };
        let (ro, so) = ooo::simulate_full(&p, &OooConfig::paper(), limits).expect("ooo runs");
        let (ri, si) =
            inorder::simulate_full(&p, &InOrderConfig::paper(), limits).expect("inorder runs");
        let mut fe = Executor::new(&p);
        fe.run(&mut NeverMiss, 1_000_000).expect("functional runs");
        for r in 1..16u8 {
            let reg = Reg::int(r);
            ensure_eq!(so.int(reg), fe.state().int(reg), "ooo r{}", r);
            ensure_eq!(si.int(reg), fe.state().int(reg), "inorder r{}", r);
        }
        for r in 1..4u8 {
            let reg = Reg::fp(r);
            ensure_eq!(so.fp(reg).to_bits(), fe.state().fp(reg).to_bits());
            ensure_eq!(si.fp(reg).to_bits(), fe.state().fp(reg).to_bits());
        }
        ensure_eq!(ro.instructions, fe.instret());
        ensure_eq!(ri.instructions, fe.instret());
        Ok(())
    });
}

/// Timing sanity: slot accounting is exhaustive, cycles bound the
/// instruction count from below (width 4), and simulation is
/// deterministic.
#[test]
fn timing_invariants() {
    Checker::new("timing_invariants").cases(64).run(|g| {
        let p = arb_program(g);
        let limits = RunLimits::default();
        let a = ooo::simulate(&p, &OooConfig::paper(), limits).expect("runs");
        let b = ooo::simulate(&p, &OooConfig::paper(), limits).expect("runs");
        ensure_eq!(a, b, "determinism");
        ensure_eq!(a.slots.total(), a.cycles * 4);
        ensure!(a.cycles * 4 >= a.instructions, "cannot graduate more than 4/cycle");
        ensure!(a.cycles >= 1);

        let i = inorder::simulate(&p, &InOrderConfig::paper(), limits).expect("runs");
        ensure_eq!(i.slots.total(), i.cycles * 4);
        ensure!(i.cycles * 4 >= i.instructions);
        Ok(())
    });
}

/// The functional executor driven by a fresh hierarchy oracle reproduces
/// exactly the informing behaviour the timing model saw: probe outcomes
/// depend only on program order, not on timing.
#[test]
fn probe_outcomes_are_timing_independent() {
    Checker::new("probe_outcomes_are_timing_independent").cases(64).run(|g| {
        let p = arb_program(g);
        let limits = RunLimits::default();
        let r = ooo::simulate(&p, &OooConfig::paper(), limits).expect("runs");
        let mut oracle =
            HierOracle(imo_mem::MemoryHierarchy::new(imo_mem::HierarchyConfig::out_of_order()));
        let mut fe = Executor::new(&p);
        fe.run(&mut oracle, 1_000_000).expect("functional runs");
        ensure_eq!(
            r.mem.l1d_misses,
            oracle.0.stats().l1d_misses_to_l2 + oracle.0.stats().l1d_misses_to_mem
        );
        ensure_eq!(r.mem.l1d_accesses, oracle.0.stats().data_refs);
        Ok(())
    });
}
