//! Property-based tests: both cycle-level models must be *functionally
//! transparent* — for any program, the architectural results equal the
//! functional executor's (run against identical cache state), and basic
//! timing invariants hold.

use proptest::prelude::*;

use imo_cpu::{inorder, ooo, InOrderConfig, OooConfig, RunLimits};
use imo_isa::exec::{Executor, MissOracle, NeverMiss};
use imo_isa::{Asm, Cond, Instr, Program, Reg};

/// A structured random program: straight-line ALU/memory blocks with a
/// bounded counted loop, always terminating in `halt`.
fn arb_program() -> impl Strategy<Value = Program> {
    let op = prop_oneof![
        (1u8..8, 1u8..8, 1u8..8).prop_map(|(d, s, t)| Instr::Add {
            rd: Reg::int(d),
            rs: Reg::int(s),
            rt: Reg::int(t)
        }),
        (1u8..8, 1u8..8, -64i64..64).prop_map(|(d, s, imm)| Instr::Addi {
            rd: Reg::int(d),
            rs: Reg::int(s),
            imm
        }),
        (1u8..8, 1u8..8, 0u8..5).prop_map(|(d, s, sh)| Instr::Srl {
            rd: Reg::int(d),
            rs: Reg::int(s),
            sh
        }),
        (1u8..8, 1u8..8, 1u8..8).prop_map(|(d, s, t)| Instr::Mul {
            rd: Reg::int(d),
            rs: Reg::int(s),
            rt: Reg::int(t)
        }),
        (1u8..8, 0u64..32).prop_map(|(d, o)| Instr::Load {
            rd: Reg::int(d),
            base: Reg::int(15),
            offset: (o * 8) as i64,
            kind: imo_isa::MemKind::Normal
        }),
        (1u8..8, 0u64..32).prop_map(|(s, o)| Instr::Store {
            rs: Reg::int(s),
            base: Reg::int(15),
            offset: (o * 8) as i64,
            kind: imo_isa::MemKind::Normal
        }),
        (1u8..4, 1u8..4, 1u8..4).prop_map(|(d, s, t)| Instr::Fadd {
            fd: Reg::fp(d),
            fs: Reg::fp(s),
            ft: Reg::fp(t)
        }),
    ];
    (
        proptest::collection::vec(op.clone(), 0..12), // prologue
        proptest::collection::vec(op, 1..10),         // loop body
        1u64..8,                                      // trip count
    )
        .prop_map(|(pro, body, trips)| {
            let mut a = Asm::new();
            a.li(Reg::int(15), 0x10_0000); // memory base
            for i in &pro {
                a.emit(*i);
            }
            let (ctr, lim) = (Reg::int(14), Reg::int(13));
            a.li(ctr, 0);
            a.li(lim, trips as i64);
            let top = a.here("top");
            for i in &body {
                a.emit(*i);
            }
            a.addi(ctr, ctr, 1);
            a.branch(Cond::Lt, ctr, lim, top);
            a.halt();
            a.assemble().expect("generated program assembles")
        })
}

/// Oracle reproducing the hierarchy's probe outcomes deterministically.
struct HierOracle(imo_mem::MemoryHierarchy);

impl MissOracle for HierOracle {
    fn probe(&mut self, addr: u64, is_store: bool) -> imo_isa::exec::MissDepth {
        match self.0.probe_data(addr, is_store).level {
            imo_mem::HitLevel::L1 => imo_isa::exec::MissDepth::Hit,
            imo_mem::HitLevel::L2 => imo_isa::exec::MissDepth::L1Miss,
            imo_mem::HitLevel::Memory => imo_isa::exec::MissDepth::MemMiss,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The out-of-order model, the in-order model and the plain functional
    /// executor agree on every architectural register.
    #[test]
    fn models_are_functionally_transparent(p in arb_program()) {
        let limits = RunLimits { max_instructions: 1_000_000, max_cycles: 10_000_000 };
        let (ro, so) = ooo::simulate_full(&p, &OooConfig::paper(), limits).expect("ooo runs");
        let (ri, si) = inorder::simulate_full(&p, &InOrderConfig::paper(), limits)
            .expect("inorder runs");
        let mut fe = Executor::new(&p);
        fe.run(&mut NeverMiss, 1_000_000).expect("functional runs");
        for r in 1..16u8 {
            let reg = Reg::int(r);
            prop_assert_eq!(so.int(reg), fe.state().int(reg), "ooo r{}", r);
            prop_assert_eq!(si.int(reg), fe.state().int(reg), "inorder r{}", r);
        }
        for r in 1..4u8 {
            let reg = Reg::fp(r);
            prop_assert_eq!(so.fp(reg).to_bits(), fe.state().fp(reg).to_bits());
            prop_assert_eq!(si.fp(reg).to_bits(), fe.state().fp(reg).to_bits());
        }
        prop_assert_eq!(ro.instructions, fe.instret());
        prop_assert_eq!(ri.instructions, fe.instret());
    }

    /// Timing sanity: slot accounting is exhaustive, cycles bound the
    /// instruction count from below (width 4), and simulation is
    /// deterministic.
    #[test]
    fn timing_invariants(p in arb_program()) {
        let limits = RunLimits::default();
        let a = ooo::simulate(&p, &OooConfig::paper(), limits).expect("runs");
        let b = ooo::simulate(&p, &OooConfig::paper(), limits).expect("runs");
        prop_assert_eq!(a, b, "determinism");
        prop_assert_eq!(a.slots.total(), a.cycles * 4);
        prop_assert!(a.cycles * 4 >= a.instructions, "cannot graduate more than 4/cycle");
        prop_assert!(a.cycles >= 1);

        let i = inorder::simulate(&p, &InOrderConfig::paper(), limits).expect("runs");
        prop_assert_eq!(i.slots.total(), i.cycles * 4);
        prop_assert!(i.cycles * 4 >= i.instructions);
    }

    /// The functional executor driven by a fresh hierarchy oracle reproduces
    /// exactly the informing behaviour the timing model saw: probe outcomes
    /// depend only on program order, not on timing.
    #[test]
    fn probe_outcomes_are_timing_independent(p in arb_program()) {
        let limits = RunLimits::default();
        let r = ooo::simulate(&p, &OooConfig::paper(), limits).expect("runs");
        let mut oracle =
            HierOracle(imo_mem::MemoryHierarchy::new(imo_mem::HierarchyConfig::out_of_order()));
        let mut fe = Executor::new(&p);
        fe.run(&mut oracle, 1_000_000).expect("functional runs");
        prop_assert_eq!(
            r.mem.l1d_misses,
            oracle.0.stats().l1d_misses_to_l2 + oracle.0.stats().l1d_misses_to_mem
        );
        prop_assert_eq!(r.mem.l1d_accesses, oracle.0.stats().data_refs);
    }
}
