//! # Cycle-level superscalar processor models with informing memory operations
//!
//! Two 4-issue processor models reproduce the simulation infrastructure of
//! *Informing Memory Operations* (ISCA 1996, §4.2.1, Table 1):
//!
//! * [`inorder`] — an in-order-issue machine modelled on the Alpha 21164:
//!   presence-bit (scoreboard) stall model, hit-speculative issue of load
//!   consumers with a replay trap on misses, and memory operations sharing
//!   the integer pipes.
//! * [`ooo`] — an out-of-order-issue machine modelled on the MIPS R10000:
//!   register renaming with a bounded number of branch shadow checkpoints, a
//!   32-entry reorder buffer, per-class functional units, in-order
//!   graduation, and the §3.3 MSHR-lifetime extension for speculative
//!   informing loads.
//!
//! Both models share a front end ([`frontend`]) with a 2-bit-counter branch
//! predictor, instruction-cache modelling, and the *correct-path-with-
//! bubbles* fetch discipline: instructions are executed functionally in
//! program order (so informing hit/miss outcomes are deterministic and the
//! architectural path — including miss-handler invocations — is exact),
//! while control-flow surprises (branch mispredictions, informing traps)
//! insert fetch bubbles until the surprising instruction resolves in the
//! timing model. Wrong-path instructions consume front-end time but no
//! functional units; the paper's wrong-path cache pollution concern (§3.3)
//! is modelled by the MSHR machinery in `imo-mem` and exercised by the
//! `ablation_mshr` bench.
//!
//! The informing trap can be handled like a mispredicted **branch** (the
//! handler starts as soon as the miss is detected) or like an **exception**
//! (the handler starts when the missing operation reaches the head of the
//! reorder buffer); see [`TrapModel`]. The paper measured the exception
//! treatment 7–9 % slower on `compress`.
//!
//! ## Example
//!
//! ```
//! use imo_isa::{Asm, Reg};
//! use imo_cpu::{ooo, OooConfig, RunLimits};
//!
//! let mut a = Asm::new();
//! let r1 = Reg::int(1);
//! a.li(r1, 0x4000);
//! a.load(Reg::int(2), r1, 0);
//! a.halt();
//! let p = a.assemble().expect("assembles");
//!
//! let result = ooo::simulate(&p, &OooConfig::default(), RunLimits::default())
//!     .expect("simulation completes");
//! assert!(result.cycles > 0);
//! assert_eq!(result.mem.l1d_misses, 1); // the cold miss
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod ckpt;
pub mod config;
pub mod frontend;
pub mod inorder;
pub mod ooo;
pub mod predictor;
pub mod result;
pub mod sched;
pub mod session;
pub mod speed;
pub mod trace;

pub use config::{InOrderConfig, OooConfig, TrapModel};
pub use result::{RunLimits, RunResult, SimError, SlotBreakdown};
pub use session::{Checkpoint, CoreConfig, Outcome, SimSession};
