//! Simulation results and limits.

use std::error::Error;
use std::fmt;

use imo_isa::exec::ExecError;
use imo_util::stats::{Report, Summarize};

// The slot-accounting struct lives in the shared stats layer so the bench
// reporting code can consume it without depending on the CPU models.
pub use imo_util::stats::SlotBreakdown;

/// Memory-system counters captured at the end of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemCounters {
    /// Demand data references.
    pub l1d_accesses: u64,
    /// Primary data-cache misses.
    pub l1d_misses: u64,
    /// Primary misses served by main memory (missed in L2 too).
    pub l2_misses: u64,
    /// Primary instruction-cache line misses.
    pub inst_misses: u64,
}

impl MemCounters {
    /// Primary data-cache miss rate.
    pub fn l1d_miss_rate(&self) -> f64 {
        if self.l1d_accesses == 0 {
            0.0
        } else {
            self.l1d_misses as f64 / self.l1d_accesses as f64
        }
    }

    /// Fraction of primary misses that also missed in the secondary cache
    /// (`0.0` when there were no primary misses — never `NaN`).
    pub fn l2_miss_rate(&self) -> f64 {
        if self.l1d_misses == 0 {
            0.0
        } else {
            self.l2_misses as f64 / self.l1d_misses as f64
        }
    }
}

/// The outcome of simulating a program to completion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Total cycles.
    pub cycles: u64,
    /// Instructions graduated (includes miss-handler and instrumentation
    /// instructions).
    pub instructions: u64,
    /// Graduation-slot breakdown.
    pub slots: SlotBreakdown,
    /// Informing traps taken (low-overhead traps plus taken `bmiss`es).
    pub informing_traps: u64,
    /// Branch mispredictions suffered.
    pub mispredictions: u64,
    /// Branch-prediction accuracy over conditional branches.
    pub branch_accuracy: f64,
    /// Injected miss-handler faults suffered (handler overruns, stale-MHAR
    /// reloads); zero unless the run was driven by a fault plan.
    pub handler_faults: u64,
    /// The machine gave up on informing traps: after `degrade_after`
    /// consecutive handler faults it suppressed further informing traps and
    /// finished the run without them (graceful degradation).
    pub degraded: bool,
    /// Memory-system counters.
    pub mem: MemCounters,
}

impl RunResult {
    /// Graduated instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

impl Summarize for RunResult {
    fn report(&self) -> Report {
        let mut r = Report::new();
        r.push("cycles", self.cycles)
            .push("instructions", self.instructions)
            .push("ipc", self.ipc())
            .push("slots_busy", self.slots.busy)
            .push("slots_cache_stall", self.slots.cache_stall)
            .push("slots_other_stall", self.slots.other_stall)
            .push("informing_traps", self.informing_traps)
            .push("mispredictions", self.mispredictions)
            .push("branch_accuracy", self.branch_accuracy)
            .push("handler_faults", self.handler_faults)
            .push("degraded", self.degraded as u64)
            .push("l1d_accesses", self.mem.l1d_accesses)
            .push("l1d_misses", self.mem.l1d_misses)
            .push("l1d_miss_rate", self.mem.l1d_miss_rate())
            .push("l2_misses", self.mem.l2_misses)
            .push("l2_miss_rate", self.mem.l2_miss_rate())
            .push("inst_misses", self.mem.inst_misses);
        r
    }
}

/// Bounds on a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLimits {
    /// Maximum instructions to graduate before giving up.
    pub max_instructions: u64,
    /// Maximum cycles to simulate before giving up.
    pub max_cycles: u64,
    /// Disable no-progress fast-forwarding: tick `now += 1` through idle
    /// windows instead of jumping to the next pending event. Slow; exists as
    /// the bit-identity reference for `tests/fastforward_identity.rs`.
    pub force_tick_accurate: bool,
    /// Pause the run at the first cycle boundary at or after this cycle and
    /// emit a checkpoint instead of a result. Only the [`crate::SimSession`]
    /// API can surface the checkpoint; the plain `simulate*` entry points
    /// report [`SimError::Paused`] when the boundary is reached.
    pub stop_at: Option<u64>,
}

impl RunLimits {
    /// Default limits with fast-forwarding disabled.
    #[must_use]
    pub fn tick_accurate() -> RunLimits {
        RunLimits { force_tick_accurate: true, ..RunLimits::default() }
    }

    /// Default limits that pause at the first cycle boundary at or after
    /// `cycle`, for checkpoint/resume through [`crate::SimSession`].
    #[must_use]
    pub fn stop_at(cycle: u64) -> RunLimits {
        RunLimits { stop_at: Some(cycle), ..RunLimits::default() }
    }
}

impl Default for RunLimits {
    fn default() -> RunLimits {
        RunLimits {
            max_instructions: 50_000_000,
            max_cycles: 500_000_000,
            force_tick_accurate: false,
            stop_at: None,
        }
    }
}

/// Internal outcome of a core `run` loop: either the program completed, or
/// the loop hit [`RunLimits::stop_at`] and encoded its state for resumption.
// One value exists per completed run; the variant size gap is irrelevant.
#[allow(clippy::large_enum_variant)]
pub(crate) enum RunOutcome {
    /// The program ran to completion.
    Done(RunResult, imo_isa::exec::ArchState),
    /// The run paused at a cycle boundary with an encoded checkpoint body.
    Paused {
        /// Cycle boundary at which the loop paused.
        cycle: u64,
        /// The core's encoded loop state (wrapped by `SimSession`).
        body: imo_util::json::Json,
    },
}

impl RunOutcome {
    /// Unwraps a completed run, mapping a pause — which only the
    /// checkpoint-aware `SimSession` caller can handle — to
    /// [`SimError::Paused`].
    pub(crate) fn expect_done(self) -> Result<(RunResult, imo_isa::exec::ArchState), SimError> {
        match self {
            RunOutcome::Done(r, s) => Ok((r, s)),
            RunOutcome::Paused { cycle, .. } => Err(SimError::Paused { cycle }),
        }
    }
}

/// Errors from the cycle-level simulators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The functional executor faulted (PC left the text segment).
    Exec(ExecError),
    /// The instruction limit was reached before the program halted.
    InstructionLimit(u64),
    /// The cycle limit was reached before the program halted.
    CycleLimit(u64),
    /// The machine deadlocked (no forward progress; indicates a model bug or
    /// an impossible configuration such as zero functional units).
    Deadlock {
        /// Cycle at which progress stopped.
        cycle: u64,
    },
    /// The run reached [`RunLimits::stop_at`] through an entry point that
    /// cannot return a checkpoint — use [`crate::SimSession`] to pause.
    Paused {
        /// Cycle boundary at which the run paused.
        cycle: u64,
    },
    /// A checkpoint could not be decoded or does not match this session's
    /// program/configuration.
    Checkpoint(imo_util::snapshot::SnapshotError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Exec(e) => write!(f, "functional execution failed: {e}"),
            SimError::InstructionLimit(n) => write!(f, "instruction limit {n} reached"),
            SimError::CycleLimit(n) => write!(f, "cycle limit {n} reached"),
            SimError::Deadlock { cycle } => write!(f, "no forward progress at cycle {cycle}"),
            SimError::Paused { cycle } => {
                write!(f, "run paused at cycle {cycle}; use SimSession to capture the checkpoint")
            }
            SimError::Checkpoint(e) => write!(f, "checkpoint rejected: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Exec(e) => Some(e),
            SimError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<imo_util::snapshot::SnapshotError> for SimError {
    fn from(e: imo_util::snapshot::SnapshotError) -> SimError {
        SimError::Checkpoint(e)
    }
}

impl From<ExecError> for SimError {
    fn from(e: ExecError) -> SimError {
        SimError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc() {
        let r = RunResult {
            cycles: 100,
            instructions: 250,
            slots: SlotBreakdown::default(),
            informing_traps: 0,
            mispredictions: 0,
            branch_accuracy: 1.0,
            handler_faults: 0,
            degraded: false,
            mem: MemCounters::default(),
        };
        assert_eq!(r.ipc(), 2.5);
    }

    #[test]
    fn miss_rate() {
        let m = MemCounters { l1d_accesses: 200, l1d_misses: 20, l2_misses: 2, inst_misses: 0 };
        assert_eq!(m.l1d_miss_rate(), 0.1);
        assert_eq!(m.l2_miss_rate(), 0.1);
    }

    #[test]
    fn rates_of_an_empty_run_are_zero_not_nan() {
        let r = RunResult {
            cycles: 0,
            instructions: 0,
            slots: SlotBreakdown::default(),
            informing_traps: 0,
            mispredictions: 0,
            branch_accuracy: 1.0,
            handler_faults: 0,
            degraded: false,
            mem: MemCounters::default(),
        };
        for v in [r.ipc(), r.mem.l1d_miss_rate(), r.mem.l2_miss_rate()] {
            assert_eq!(v, 0.0);
            assert!(!v.is_nan());
        }
        // The report must also carry finite values for every rate.
        let rep = r.report();
        assert_eq!(rep.get("ipc"), Some(&imo_util::stats::Metric::F64(0.0)));
        assert_eq!(rep.get("l1d_miss_rate"), Some(&imo_util::stats::Metric::F64(0.0)));
        assert_eq!(rep.get("l2_miss_rate"), Some(&imo_util::stats::Metric::F64(0.0)));
    }

    #[test]
    fn report_carries_slot_breakdown_and_rates() {
        let r = RunResult {
            cycles: 100,
            instructions: 250,
            slots: SlotBreakdown { busy: 250, cache_stall: 100, other_stall: 50 },
            informing_traps: 3,
            mispredictions: 1,
            branch_accuracy: 0.9,
            handler_faults: 0,
            degraded: false,
            mem: MemCounters { l1d_accesses: 200, l1d_misses: 20, l2_misses: 2, inst_misses: 0 },
        };
        let rep = r.report();
        assert_eq!(rep.get("slots_cache_stall"), Some(&imo_util::stats::Metric::U64(100)));
        assert_eq!(rep.get("ipc"), Some(&imo_util::stats::Metric::F64(2.5)));
        assert_eq!(rep.get("l1d_miss_rate"), Some(&imo_util::stats::Metric::F64(0.1)));
    }

    #[test]
    fn error_display() {
        assert!(SimError::Deadlock { cycle: 7 }.to_string().contains("cycle 7"));
        assert!(SimError::InstructionLimit(5).to_string().contains('5'));
    }
}
