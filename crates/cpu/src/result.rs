//! Simulation results and limits.

use std::error::Error;
use std::fmt;

use imo_isa::exec::ExecError;

/// Graduation-slot accounting, following the paper's Figure 2 methodology.
///
/// The machine offers `issue_width × cycles` graduation slots. Each cycle,
/// slots that do not graduate an instruction are attributed to **cache
/// stall** if the oldest in-flight instruction is blocked on a primary
/// data-cache miss, otherwise to **other stall** (data dependences, fetch
/// bubbles from mispredictions and informing traps, structural hazards,
/// …). As the paper notes, the cache-stall section is a first-order
/// approximation: miss delays also exacerbate subsequent dependence stalls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotBreakdown {
    /// Slots in which an instruction graduated ("busy").
    pub busy: u64,
    /// Lost slots immediately caused by the oldest instruction suffering a
    /// data-cache miss.
    pub cache_stall: u64,
    /// All other lost slots.
    pub other_stall: u64,
}

impl SlotBreakdown {
    /// Total slots.
    pub fn total(&self) -> u64 {
        self.busy + self.cache_stall + self.other_stall
    }

    /// Fractions `(busy, cache, other)` of the total.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total() as f64;
        if t == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.busy as f64 / t,
            self.cache_stall as f64 / t,
            self.other_stall as f64 / t,
        )
    }
}

/// Memory-system counters captured at the end of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemCounters {
    /// Demand data references.
    pub l1d_accesses: u64,
    /// Primary data-cache misses.
    pub l1d_misses: u64,
    /// Primary misses served by main memory (missed in L2 too).
    pub l2_misses: u64,
    /// Primary instruction-cache line misses.
    pub inst_misses: u64,
}

impl MemCounters {
    /// Primary data-cache miss rate.
    pub fn l1d_miss_rate(&self) -> f64 {
        if self.l1d_accesses == 0 {
            0.0
        } else {
            self.l1d_misses as f64 / self.l1d_accesses as f64
        }
    }
}

/// The outcome of simulating a program to completion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Total cycles.
    pub cycles: u64,
    /// Instructions graduated (includes miss-handler and instrumentation
    /// instructions).
    pub instructions: u64,
    /// Graduation-slot breakdown.
    pub slots: SlotBreakdown,
    /// Informing traps taken (low-overhead traps plus taken `bmiss`es).
    pub informing_traps: u64,
    /// Branch mispredictions suffered.
    pub mispredictions: u64,
    /// Branch-prediction accuracy over conditional branches.
    pub branch_accuracy: f64,
    /// Memory-system counters.
    pub mem: MemCounters,
}

impl RunResult {
    /// Graduated instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// Bounds on a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLimits {
    /// Maximum instructions to graduate before giving up.
    pub max_instructions: u64,
    /// Maximum cycles to simulate before giving up.
    pub max_cycles: u64,
}

impl Default for RunLimits {
    fn default() -> RunLimits {
        RunLimits { max_instructions: 50_000_000, max_cycles: 500_000_000 }
    }
}

/// Errors from the cycle-level simulators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The functional executor faulted (PC left the text segment).
    Exec(ExecError),
    /// The instruction limit was reached before the program halted.
    InstructionLimit(u64),
    /// The cycle limit was reached before the program halted.
    CycleLimit(u64),
    /// The machine deadlocked (no forward progress; indicates a model bug or
    /// an impossible configuration such as zero functional units).
    Deadlock {
        /// Cycle at which progress stopped.
        cycle: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Exec(e) => write!(f, "functional execution failed: {e}"),
            SimError::InstructionLimit(n) => write!(f, "instruction limit {n} reached"),
            SimError::CycleLimit(n) => write!(f, "cycle limit {n} reached"),
            SimError::Deadlock { cycle } => write!(f, "no forward progress at cycle {cycle}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExecError> for SimError {
    fn from(e: ExecError) -> SimError {
        SimError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_fractions_sum_to_one() {
        let s = SlotBreakdown { busy: 50, cache_stall: 30, other_stall: 20 };
        let (b, c, o) = s.fractions();
        assert!((b + c + o - 1.0).abs() < 1e-12);
        assert_eq!(s.total(), 100);
    }

    #[test]
    fn empty_breakdown() {
        let s = SlotBreakdown::default();
        assert_eq!(s.fractions(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn ipc() {
        let r = RunResult {
            cycles: 100,
            instructions: 250,
            slots: SlotBreakdown::default(),
            informing_traps: 0,
            mispredictions: 0,
            branch_accuracy: 1.0,
            mem: MemCounters::default(),
        };
        assert_eq!(r.ipc(), 2.5);
    }

    #[test]
    fn miss_rate() {
        let m = MemCounters { l1d_accesses: 200, l1d_misses: 20, l2_misses: 2, inst_misses: 0 };
        assert_eq!(m.l1d_miss_rate(), 0.1);
    }

    #[test]
    fn error_display() {
        assert!(SimError::Deadlock { cycle: 7 }.to_string().contains("cycle 7"));
        assert!(SimError::InstructionLimit(5).to_string().contains('5'));
    }
}
