//! Per-instruction pipeline traces (observability for the out-of-order
//! model).
//!
//! Tracing records, for every graduated instruction, the cycle it passed
//! each pipeline stage. [`render`] draws a compact text pipeline diagram —
//! the standard way to see *why* a schedule looks the way it does (where a
//! load's miss latency went, how far the informing trap redirect pushed the
//! handler, which instructions overlapped it).

use std::fmt::Write as _;

use imo_isa::Instr;

/// One graduated instruction's trip through the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct InstrTrace {
    /// Dynamic sequence number (program order).
    pub seq: u64,
    /// Instruction address.
    pub pc: u64,
    /// The instruction.
    pub instr: Instr,
    /// Cycle fetched.
    pub fetch: u64,
    /// Cycle dispatched into the reorder buffer.
    pub dispatch: u64,
    /// Cycle issued to a functional unit.
    pub issue: u64,
    /// Cycle the result became available.
    pub complete: u64,
    /// Cycle graduated (committed).
    pub graduate: u64,
}

impl InstrTrace {
    /// Total cycles from fetch to graduation.
    pub fn latency(&self) -> u64 {
        self.graduate.saturating_sub(self.fetch)
    }
}

/// Renders traces as a text pipeline diagram:
///
/// ```text
/// seq pc       F        D        I        C        G        instr
///   0 0x10000  0        0        3        4        5        li r1, 7
/// ```
pub fn render(traces: &[InstrTrace]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>5} {:<10} {:>8} {:>8} {:>8} {:>8} {:>8}  instr",
        "seq", "pc", "F", "D", "I", "C", "G"
    );
    for t in traces {
        let _ = writeln!(
            out,
            "{:>5} {:<#10x} {:>8} {:>8} {:>8} {:>8} {:>8}  {}",
            t.seq, t.pc, t.fetch, t.dispatch, t.issue, t.complete, t.graduate, t.instr
        );
    }
    out
}

/// Checks the stage-ordering invariants every trace must satisfy; returns
/// the first violation as a message. Used by the test suite and handy when
/// developing new pipeline features.
pub fn validate(traces: &[InstrTrace]) -> Result<(), String> {
    let mut last_graduate = 0u64;
    let mut last_seq = None;
    for t in traces {
        if !(t.fetch <= t.dispatch && t.dispatch <= t.issue && t.issue < t.complete) {
            return Err(format!("seq {}: stage order violated: {t:?}", t.seq));
        }
        if t.graduate < t.complete {
            return Err(format!("seq {}: graduated before completing: {t:?}", t.seq));
        }
        if let Some(prev) = last_seq {
            if t.seq != prev + 1 {
                return Err(format!("seq {} follows {prev}: graduation must be in order", t.seq));
            }
        }
        if t.graduate < last_graduate {
            return Err(format!("seq {}: graduation time went backwards", t.seq));
        }
        last_seq = Some(t.seq);
        last_graduate = t.graduate;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ooo::simulate_traced;
    use crate::{OooConfig, RunLimits};
    use imo_isa::{Asm, Cond, Reg};

    fn r(i: u8) -> Reg {
        Reg::int(i)
    }

    #[test]
    fn traces_cover_every_graduated_instruction_and_validate() {
        let mut a = Asm::new();
        let (i, n) = (r(1), r(2));
        a.li(i, 0);
        a.li(n, 50);
        let top = a.here("top");
        a.load(r(3), i, 0x40_0000);
        a.addi(i, i, 64);
        a.branch(Cond::Lt, i, n, top);
        a.halt();
        let p = a.assemble().unwrap();
        let (res, traces) = simulate_traced(&p, &OooConfig::paper(), RunLimits::default()).unwrap();
        assert_eq!(traces.len() as u64, res.instructions);
        validate(&traces).unwrap();
    }

    #[test]
    fn load_use_latency_is_visible_in_the_trace() {
        let mut a = Asm::new();
        a.li(r(1), 0x40_0000);
        a.load(r(2), r(1), 0); // cold miss to memory
        a.addi(r(3), r(2), 1); // consumer
        a.halt();
        let p = a.assemble().unwrap();
        let (_, traces) = simulate_traced(&p, &OooConfig::paper(), RunLimits::default()).unwrap();
        let load = &traces[1];
        let consumer = &traces[2];
        assert!(matches!(load.instr, Instr::Load { .. }));
        assert!(
            load.complete - load.issue >= 75,
            "memory latency visible: {}",
            load.complete - load.issue
        );
        assert!(consumer.issue >= load.complete, "consumer waits for the load");
    }

    #[test]
    fn render_produces_one_line_per_instruction() {
        let mut a = Asm::new();
        a.li(r(1), 1);
        a.halt();
        let p = a.assemble().unwrap();
        let (_, traces) = simulate_traced(&p, &OooConfig::paper(), RunLimits::default()).unwrap();
        let s = render(&traces);
        assert_eq!(s.lines().count(), traces.len() + 1, "{s}");
        assert!(s.contains("li r1, 1"));
    }

    #[test]
    fn validate_rejects_out_of_order_graduation() {
        let t = |seq, g| InstrTrace {
            seq,
            pc: 0x1_0000,
            instr: Instr::Nop,
            fetch: 0,
            dispatch: 0,
            issue: 1,
            complete: 2,
            graduate: g,
        };
        assert!(validate(&[t(0, 5), t(1, 4)]).is_err());
        assert!(validate(&[t(0, 4), t(1, 5)]).is_ok());
    }
}
