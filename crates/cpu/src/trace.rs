//! Per-instruction pipeline traces (observability for the out-of-order
//! model).
//!
//! Tracing records, for every graduated instruction, the cycle it passed
//! each pipeline stage. [`render`] draws a compact text pipeline diagram —
//! the standard way to see *why* a schedule looks the way it does (where a
//! load's miss latency went, how far the informing trap redirect pushed the
//! handler, which instructions overlapped it).

use imo_isa::Instr;
use imo_util::table::Table;

/// One graduated instruction's trip through the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct InstrTrace {
    /// Dynamic sequence number (program order).
    pub seq: u64,
    /// Instruction address.
    pub pc: u64,
    /// The instruction.
    pub instr: Instr,
    /// Cycle fetched.
    pub fetch: u64,
    /// Cycle dispatched into the reorder buffer.
    pub dispatch: u64,
    /// Cycle issued to a functional unit.
    pub issue: u64,
    /// Cycle the result became available.
    pub complete: u64,
    /// Cycle graduated (committed).
    pub graduate: u64,
}

impl InstrTrace {
    /// Total cycles from fetch to graduation.
    pub fn latency(&self) -> u64 {
        self.graduate.saturating_sub(self.fetch)
    }

    /// Cycles spent waiting between dispatch and issue (operand/FU wait).
    pub fn issue_wait(&self) -> u64 {
        self.issue.saturating_sub(self.dispatch)
    }

    /// Cycles from issue to result availability (execution latency).
    pub fn exec_latency(&self) -> u64 {
        self.complete.saturating_sub(self.issue)
    }
}

/// Mean fetch-to-graduate latency over `traces`; `0.0` for an empty slice
/// (never `NaN`).
pub fn mean_latency(traces: &[InstrTrace]) -> f64 {
    if traces.is_empty() {
        0.0
    } else {
        traces.iter().map(InstrTrace::latency).sum::<u64>() as f64 / traces.len() as f64
    }
}

/// Renders traces as a text pipeline diagram (via the shared
/// [`imo_util::table::Table`] renderer):
///
/// ```text
/// seq  pc        F  D  I  C  G  instr
/// -------------------------------------
/// 0    0x10000   0  0  3  4  5  li r1, 7
/// ```
pub fn render(traces: &[InstrTrace]) -> String {
    let mut t = Table::new(["seq", "pc", "F", "D", "I", "C", "G", "instr"]);
    for tr in traces {
        t.row([
            tr.seq.to_string(),
            format!("{:#x}", tr.pc),
            tr.fetch.to_string(),
            tr.dispatch.to_string(),
            tr.issue.to_string(),
            tr.complete.to_string(),
            tr.graduate.to_string(),
            tr.instr.to_string(),
        ]);
    }
    t.render()
}

/// Checks the stage-ordering invariants every trace must satisfy; returns
/// the first violation as a message. Used by the test suite and handy when
/// developing new pipeline features.
pub fn validate(traces: &[InstrTrace]) -> Result<(), String> {
    let mut last_graduate = 0u64;
    let mut last_seq = None;
    for t in traces {
        if !(t.fetch <= t.dispatch && t.dispatch <= t.issue && t.issue < t.complete) {
            return Err(format!("seq {}: stage order violated: {t:?}", t.seq));
        }
        if t.graduate < t.complete {
            return Err(format!("seq {}: graduated before completing: {t:?}", t.seq));
        }
        if let Some(prev) = last_seq {
            if t.seq != prev + 1 {
                return Err(format!("seq {} follows {prev}: graduation must be in order", t.seq));
            }
        }
        if t.graduate < last_graduate {
            return Err(format!("seq {}: graduation time went backwards", t.seq));
        }
        last_seq = Some(t.seq);
        last_graduate = t.graduate;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ooo::simulate_traced;
    use crate::{OooConfig, RunLimits};
    use imo_isa::{Asm, Cond, Reg};

    fn r(i: u8) -> Reg {
        Reg::int(i)
    }

    #[test]
    fn traces_cover_every_graduated_instruction_and_validate() {
        let mut a = Asm::new();
        let (i, n) = (r(1), r(2));
        a.li(i, 0);
        a.li(n, 50);
        let top = a.here("top");
        a.load(r(3), i, 0x40_0000);
        a.addi(i, i, 64);
        a.branch(Cond::Lt, i, n, top);
        a.halt();
        let p = a.assemble().unwrap();
        let (res, traces) = simulate_traced(&p, &OooConfig::paper(), RunLimits::default()).unwrap();
        assert_eq!(traces.len() as u64, res.instructions);
        validate(&traces).unwrap();
    }

    #[test]
    fn load_use_latency_is_visible_in_the_trace() {
        let mut a = Asm::new();
        a.li(r(1), 0x40_0000);
        a.load(r(2), r(1), 0); // cold miss to memory
        a.addi(r(3), r(2), 1); // consumer
        a.halt();
        let p = a.assemble().unwrap();
        let (_, traces) = simulate_traced(&p, &OooConfig::paper(), RunLimits::default()).unwrap();
        let load = &traces[1];
        let consumer = &traces[2];
        assert!(matches!(load.instr, Instr::Load { .. }));
        assert!(
            load.complete - load.issue >= 75,
            "memory latency visible: {}",
            load.complete - load.issue
        );
        assert!(consumer.issue >= load.complete, "consumer waits for the load");
    }

    #[test]
    fn render_produces_one_line_per_instruction() {
        let mut a = Asm::new();
        a.li(r(1), 1);
        a.halt();
        let p = a.assemble().unwrap();
        let (_, traces) = simulate_traced(&p, &OooConfig::paper(), RunLimits::default()).unwrap();
        let s = render(&traces);
        // Header + dashed rule + one row per trace.
        assert_eq!(s.lines().count(), traces.len() + 2, "{s}");
        assert!(s.contains("li r1, 1"));
    }

    #[test]
    fn mean_latency_of_no_traces_is_zero_not_nan() {
        let m = mean_latency(&[]);
        assert_eq!(m, 0.0);
        assert!(!m.is_nan());
    }

    #[test]
    fn stage_durations_saturate_never_underflow() {
        let t = InstrTrace {
            seq: 0,
            pc: 0x1_0000,
            instr: Instr::Nop,
            fetch: 10,
            dispatch: 5, // malformed on purpose: earlier than fetch
            issue: 3,
            complete: 2,
            graduate: 1,
        };
        assert_eq!(t.latency(), 0);
        assert_eq!(t.issue_wait(), 0);
        assert_eq!(t.exec_latency(), 0);
    }

    #[test]
    fn validate_rejects_out_of_order_graduation() {
        let t = |seq, g| InstrTrace {
            seq,
            pc: 0x1_0000,
            instr: Instr::Nop,
            fetch: 0,
            dispatch: 0,
            issue: 1,
            complete: 2,
            graduate: g,
        };
        assert!(validate(&[t(0, 5), t(1, 4)]).is_err());
        assert!(validate(&[t(0, 4), t(1, 5)]).is_ok());
    }
}
