//! The in-order-issue processor model (Alpha-21164-like, §3.1).
//!
//! A 4-issue machine with the 21164's stall discipline: register dependences
//! are enforced *before* issue (presence bits), instructions cannot stall
//! once issued, and consumers of loads are issued speculatively at cache-hit
//! timing. When the load actually missed, the machine takes a **replay
//! trap**: the pipeline is flushed and the consumer re-enters issue, timed so
//! that it restarts roughly when the data arrives from the secondary cache —
//! modelled here by delaying the consumer's issue to
//! `max(data_ready, miss_detect + replay_trap_penalty)`.
//!
//! Informing traps reuse the same replay mechanism (the paper's §3.1
//! implementation): the trap redirects fetch as soon as the miss is detected,
//! paying a pipeline-refill penalty like a mispredicted branch.
//!
//! Per Table 1 the machine has 2 INT units (which also execute loads and
//! stores, as on the real 21164), 2 FP units and 1 branch unit, and issue is
//! strictly in order: the window stalls at the first instruction that cannot
//! issue.

use std::collections::VecDeque;

use imo_isa::{BlockCache, FuClass, Instr, InstrMeta, Program, NO_REG};
use imo_mem::{HitLevel, MemoryHierarchy};
use imo_obs::{CpiCategory, CpiStack, EventKind, Recorder};
use imo_util::json::Json;
use imo_util::snapshot::{self, Snapshot as _, SnapshotError};

use crate::ckpt;
use crate::config::InOrderConfig;
use crate::config::TrapModel;
use crate::frontend::{FetchSink, Fetched, FrontEnd, PlainRun, Resolve};
use crate::result::{MemCounters, RunLimits, RunOutcome, RunResult, SimError, SlotBreakdown};
use crate::sched::{Horizon, WakeupQueue};

/// Per-logical-register scoreboard state.
#[derive(Debug, Clone, Copy, Default)]
struct RegState {
    /// Cycle at which the value is available to consumers.
    ready: u64,
    /// Earliest cycle a consumer may (re-)issue if the producing load missed
    /// (replay-trap restart floor); 0 when the producer hit or was not a
    /// load.
    replay_floor: u64,
    /// The producer was a load that missed in the primary data cache and the
    /// data has not yet arrived (used for stall attribution).
    miss_pending: bool,
    /// The pending miss goes all the way to main memory (CPI-stack depth).
    miss_to_mem: bool,
}

/// Classifies a zero-issue cycle for the CPI stack. The trap check precedes
/// the miss check so handler-redirect bubbles land in `Handler` even when a
/// missed load is also blocking issue.
fn stall_category(on_trap: bool, on_miss: bool, miss_to_mem: bool) -> CpiCategory {
    if on_trap {
        CpiCategory::Handler
    } else if on_miss {
        if miss_to_mem {
            CpiCategory::L2Miss
        } else {
            CpiCategory::L1Miss
        }
    } else {
        CpiCategory::IssueStall
    }
}

/// Simulates `program` to completion on the in-order model.
///
/// # Errors
///
/// Returns [`SimError`] if the program faults, exceeds `limits`, or the
/// model detects a deadlock.
///
/// # Example
///
/// ```
/// use imo_isa::{Asm, Reg};
/// use imo_cpu::{inorder, InOrderConfig, RunLimits};
///
/// let mut a = Asm::new();
/// a.li(Reg::int(1), 7);
/// a.halt();
/// let p = a.assemble().expect("assembles");
/// let r = inorder::simulate(&p, &InOrderConfig::default(), RunLimits::default())
///     .expect("simulates");
/// assert_eq!(r.instructions, 2);
/// ```
pub fn simulate(
    program: &Program,
    cfg: &InOrderConfig,
    limits: RunLimits,
) -> Result<RunResult, SimError> {
    simulate_full(program, cfg, limits).map(|(r, _)| r)
}

/// Like [`simulate`], but also returns the final architectural state
/// (registers and data memory).
///
/// # Errors
///
/// As for [`simulate`].
pub fn simulate_full(
    program: &Program,
    cfg: &InOrderConfig,
    limits: RunLimits,
) -> Result<(RunResult, imo_isa::exec::ArchState), SimError> {
    run(program, cfg, limits, None, None, None)?.expect_done()
}

/// Like [`simulate_full`], but streams typed events into `rec` (gated by its
/// category mask), accumulates the run's named counters and latency
/// histograms into `rec.metrics`, and attributes every cycle into
/// `rec.cpi` — whose total is guaranteed to equal `RunResult::cycles`
/// exactly.
///
/// The recorder is strictly passive: the returned `RunResult` is
/// bit-identical to [`simulate`]'s, whatever the mask.
///
/// # Errors
///
/// As for [`simulate`].
pub fn simulate_observed(
    program: &Program,
    cfg: &InOrderConfig,
    limits: RunLimits,
    rec: &mut Recorder,
) -> Result<(RunResult, imo_isa::exec::ArchState), SimError> {
    run(program, cfg, limits, None, Some(rec), None)?.expect_done()
}

/// Like [`simulate`], but drives the run under a [`imo_faults::FaultPlan`]:
/// informing-trap dispatches draw handler faults (overrun / stale MHAR) from
/// the plan's handler stream, paying their penalty on the trap redirect, and
/// after `degrade_after` consecutive faulty dispatches the machine suppresses
/// informing traps for the rest of the run (`RunResult::degraded`).
///
/// A plan with all-zero handler rates is cycle-identical to [`simulate`].
///
/// # Errors
///
/// As for [`simulate`].
pub fn simulate_faulty(
    program: &Program,
    cfg: &InOrderConfig,
    limits: RunLimits,
    plan: &imo_faults::FaultPlan,
) -> Result<RunResult, SimError> {
    run(program, cfg, limits, Some(plan), None, None)?.expect_done().map(|(r, _)| r)
}

/// The fast path's split fetch queue: batch-fetched plain instructions stay
/// as compact [`PlainRun`] descriptors while batch-breaking instructions
/// (memory ops, control transfers, informing traps) are materialized in
/// full. Both deques are individually sequence-ordered, so the true queue
/// head is whichever front carries the lower sequence number. `total`
/// tracks the summed pending-instruction count so the fetch gate sees the
/// same queue depth as the generic path.
struct FastQueue {
    runs: VecDeque<PlainRun>,
    full: VecDeque<Fetched>,
    total: usize,
}

impl FastQueue {
    fn from_restored(full: VecDeque<Fetched>) -> FastQueue {
        let total = full.len();
        FastQueue { runs: VecDeque::with_capacity(8), full, total }
    }

    /// Re-materializes the interleaved `VecDeque<Fetched>` the generic loop
    /// would hold at this boundary, for checkpoint encoding. Plain entries
    /// are fully derivable from their run descriptor plus the program text
    /// (no probe, no resolve, no trap, no condition-code dependence).
    fn materialize(&self, instrs: &[Instr]) -> VecDeque<Fetched> {
        let mut out = VecDeque::with_capacity(self.total);
        let mut runs = self.runs.iter().peekable();
        let mut full = self.full.iter().peekable();
        loop {
            let take_run = match (runs.peek(), full.peek()) {
                (Some(r), Some(f)) => r.seq < f.seq,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_run {
                let r = runs.next().expect("peeked");
                out.push_plain(instrs, r.idx as usize, r.pc, r.seq, r.len, r.fetch_cycle);
            } else {
                out.push_back(*full.next().expect("peeked"));
            }
        }
        out
    }
}

impl FetchSink for FastQueue {
    fn push_plain(
        &mut self,
        _instrs: &[Instr],
        idx: usize,
        pc: u64,
        seq0: u64,
        k: u32,
        cycle: u64,
    ) {
        self.runs.push_back(PlainRun {
            seq: seq0,
            pc,
            fetch_cycle: cycle,
            idx: idx as u32,
            len: k,
        });
        self.total += k as usize;
    }

    fn push_full(&mut self, f: Fetched) {
        self.full.push_back(f);
        self.total += 1;
    }
}

/// Encodes every `run`-loop local at a cycle boundary (the checkpoint body).
#[allow(clippy::too_many_arguments)]
fn encode_loop(
    hier: &MemoryHierarchy,
    fe: &FrontEnd,
    regs: &[RegState; 64],
    queue: &VecDeque<Fetched>,
    resolve_q: &WakeupQueue<u64>,
    last_mem_outcome: u64,
    now: u64,
    issued_total: u64,
    slots: SlotBreakdown,
    cpi: &CpiStack,
) -> Json {
    let ready: Vec<u64> = regs.iter().map(|r| r.ready).collect();
    let floor: Vec<u64> = regs.iter().map(|r| r.replay_floor).collect();
    let mut pending: u64 = 0;
    let mut to_mem: u64 = 0;
    for (i, r) in regs.iter().enumerate() {
        if r.miss_pending {
            pending |= 1 << i;
        }
        if r.miss_to_mem {
            to_mem |= 1 << i;
        }
    }
    Json::obj([
        ("hier", hier.to_wire()),
        ("fe", fe.encode()),
        ("reg_ready", snapshot::u64s_json(&ready)),
        ("reg_floor", snapshot::u64s_json(&floor)),
        ("reg_pending", snapshot::u64_json(pending)),
        ("reg_to_mem", snapshot::u64_json(to_mem)),
        ("queue", Json::arr(queue.iter().map(ckpt::fetched_json))),
        ("resolve_q", ckpt::wakeup_json(resolve_q, |&s| s)),
        ("last_mem_outcome", snapshot::u64_json(last_mem_outcome)),
        ("now", snapshot::u64_json(now)),
        ("issued_total", snapshot::u64_json(issued_total)),
        ("slots", ckpt::slots_json(slots)),
        ("cpi", ckpt::cpi_json(cpi)),
    ])
}

fn decode_regs(body: &Json) -> Result<[RegState; 64], SnapshotError> {
    let ready = snapshot::get_u64s(body, "reg_ready")?;
    let floor = snapshot::get_u64s(body, "reg_floor")?;
    if ready.len() != 64 || floor.len() != 64 {
        return Err(SnapshotError::Bad("reg_ready"));
    }
    let pending = snapshot::get_u64(body, "reg_pending")?;
    let to_mem = snapshot::get_u64(body, "reg_to_mem")?;
    let mut regs = [RegState::default(); 64];
    for (i, r) in regs.iter_mut().enumerate() {
        *r = RegState {
            ready: ready[i],
            replay_floor: floor[i],
            miss_pending: pending >> i & 1 == 1,
            miss_to_mem: to_mem >> i & 1 == 1,
        };
    }
    Ok(regs)
}

#[allow(clippy::too_many_lines)]
pub(crate) fn run(
    program: &Program,
    cfg: &InOrderConfig,
    limits: RunLimits,
    faults: Option<&imo_faults::FaultPlan>,
    mut obs: Option<&mut Recorder>,
    resume: Option<&Json>,
) -> Result<RunOutcome, SimError> {
    // The in-order machine's informing traps always redirect at miss
    // detection (replay-trap style); the trap model distinction is an
    // out-of-order concern, so fix `Branch` here.
    let handler_stream = faults
        .filter(|plan| plan.config().has_handler())
        .map(|plan| (plan.handlers(), plan.config().degrade_after));

    let mut hier;
    let mut fe;
    let mut regs;
    let mut queue: VecDeque<Fetched>;
    let mut resolve_q: WakeupQueue<u64>; // seq due at cycle
                                         // Outcome (hit/miss known) cycle of the most recent issued data
                                         // reference, consumed by `bmiss`.
    let mut last_mem_outcome: u64;
    let mut now: u64;
    let mut issued_total: u64;
    let mut slots;
    let mut cpi;
    if let Some(body) = resume {
        hier = MemoryHierarchy::from_wire(snapshot::field(body, "hier")?)?;
        fe = FrontEnd::restore(
            program,
            cfg.predictor_entries,
            TrapModel::Branch,
            cfg.hier.l1i.line_bytes,
            handler_stream,
            snapshot::field(body, "fe")?,
        )?;
        regs = decode_regs(body)?;
        queue = snapshot::field(body, "queue")?
            .as_arr()
            .ok_or(SnapshotError::Bad("queue"))?
            .iter()
            .map(|j| ckpt::decode_fetched(program, j))
            .collect::<Result<_, _>>()?;
        resolve_q = ckpt::decode_wakeup(snapshot::field(body, "resolve_q")?, "resolve_q", Ok)?;
        last_mem_outcome = snapshot::get_u64(body, "last_mem_outcome")?;
        now = snapshot::get_u64(body, "now")?;
        issued_total = snapshot::get_u64(body, "issued_total")?;
        slots = ckpt::decode_slots(snapshot::field(body, "slots")?)?;
        cpi = ckpt::decode_cpi(snapshot::field(body, "cpi")?)?;
    } else {
        hier = MemoryHierarchy::new(cfg.hier);
        fe = FrontEnd::new(
            program,
            cfg.predictor_entries,
            TrapModel::Branch,
            cfg.hier.l1i.line_bytes,
        );
        if let Some((stream, degrade)) = handler_stream {
            fe.set_handler_faults(stream, degrade);
        }
        regs = [RegState::default(); 64];
        queue = VecDeque::with_capacity(2 * cfg.issue_width as usize);
        // At most one pending redirect resolution per queued instruction.
        resolve_q = WakeupQueue::with_capacity(2 * cfg.issue_width as usize);
        last_mem_outcome = 0;
        now = 0;
        issued_total = 0;
        slots = SlotBreakdown::default();
        cpi = CpiStack::default();
    }
    let mut fetch_buf: Vec<Fetched> = Vec::with_capacity(cfg.issue_width as usize);

    let width = cfg.issue_width as u64;
    let mut done = false;

    // Fast path: unobserved, event-driven runs take a specialized loop body
    // driven by the pre-decoded block cache — batched straight-line fetch,
    // table-driven issue, and a pending-miss bitmask in place of the
    // per-cycle register scan. Observed and tick-accurate runs keep the
    // generic body below untouched as the bit-identity reference
    // (`tests/fastforward_identity.rs` compares the two).
    let fast = obs.is_none() && !limits.force_tick_accurate;
    let cache = fast.then(|| BlockCache::build(program, |i| cfg.latency(i)));
    if let Some(cache) = &cache {
        fe.attach_blocks(cache);
        // Invariant: bit i set ⇔ regs[i].miss_pending (rebuilt on resume).
        let mut pending_mask: u64 = 0;
        for (i, r) in regs.iter().enumerate() {
            if r.miss_pending {
                pending_mask |= 1 << i;
            }
        }
        // Restored entries (if any) enter fully materialized; new fetches
        // keep plain runs compact. The generic loop below never runs once
        // the fast loop is engaged (its only normal exit sets `done`), so
        // taking `queue` is safe.
        let mut fq = FastQueue::from_restored(std::mem::take(&mut queue));
        // Memoized head-entry metadata: the issue loop polls the same queue
        // head ~2× on average before it issues (stall cycles re-poll it), so
        // the pc→meta table lookup is cached keyed by sequence number.
        let mut head_meta: (u64, InstrMeta) = (
            u64::MAX,
            InstrMeta {
                src1: NO_REG,
                src2: NO_REG,
                dest: NO_REG,
                fu: 0,
                kind: 0,
                flags: 0,
                lat: 0,
            },
        );
        // Parked head: `(seq, wake)` of the head whose last readiness poll
        // failed, and the cycle its sources become ready. Sequence numbers
        // never repeat, so a stale entry can never match a later head.
        let mut pending_issue: (u64, u64) = (u64::MAX, 0);
        let stop_gate = limits.stop_at.unwrap_or(u64::MAX);
        // Resolutions popped by the preamble count as progress for the
        // iteration that follows (carried across the preamble/body split).
        let mut resolved = false;
        while !done {
            if now >= stop_gate {
                crate::speed::flush(fe.stats());
                let q = fq.materialize(program.instrs());
                return Ok(RunOutcome::Paused {
                    cycle: now,
                    body: encode_loop(
                        &hier,
                        &fe,
                        &regs,
                        &q,
                        &resolve_q,
                        last_mem_outcome,
                        now,
                        issued_total,
                        slots,
                        &cpi,
                    ),
                });
            }
            // ---- Front-end resolutions due ----
            while let Some((t, seq)) = resolve_q.pop_due(now) {
                fe.resolve(seq, t, cfg.redirect_penalty);
                resolved = true;
            }

            // Hot inner loop: an iteration that parks on a definite
            // next-cycle wake-up with no resolution or pause boundary due
            // re-enters here directly, skipping the preamble above.
            'hot: loop {
                let mut progress = resolved;
                resolved = false;

                // ---- In-order issue (meta-table-driven) ----
                let mut int_used = 0u32;
                let mut fp_used = 0u32;
                let mut br_used = 0u32;
                let mut issued: u64 = 0;
                // blocked_miss_to_mem is not tracked here: it only feeds the CPI
                // stack, and the fast path never runs observed.
                let mut blocked_on_miss = false;
                let mut next_wakeup: u64 = u64::MAX;
                // Sources of the head entry whose failed readiness poll parked
                // the issue loop; used to re-derive the stall classification as
                // of `now + 1` when folding from a progress iteration.
                let mut stall_srcs: [u8; 2] = [NO_REG, NO_REG];

                while issued < width {
                    // The true head is whichever queue front has the lower
                    // sequence number (both deques are seq-ordered).
                    let plain_head = match (fq.runs.front(), fq.full.front()) {
                        (Some(r), Some(f)) if r.seq > f.seq => None,
                        (Some(r), _) => Some(*r),
                        (None, Some(_)) => None,
                        (None, None) => break,
                    };
                    if let Some(r) = plain_head {
                        // Plain head: never a memory op, branch, informing op
                        // or halt — no probe, no resolve, no `bmiss` wait.
                        //
                        // If this head's previous poll parked the issue loop at
                        // cycle `T` with wake-up `R` (recorded in
                        // `pending_issue`), nothing can have changed while it
                        // was parked: issue is strictly in order, so no
                        // register was written and no memory op issued. A
                        // first-slot re-poll at `now >= R` therefore passes the
                        // depth, unit (all counters zero) and readiness checks
                        // by construction and goes straight to the issue arm.
                        let skip =
                            issued == 0 && r.seq == pending_issue.0 && now >= pending_issue.1;
                        if !skip && r.fetch_cycle + cfg.frontend_depth > now {
                            next_wakeup = next_wakeup.min(r.fetch_cycle + cfg.frontend_depth);
                            break;
                        }
                        let m = cache.meta_idx(r.idx as usize);
                        debug_assert!(m.is_plain());
                        if !skip {
                            let fu_ok = match m.fu {
                                0 | 3 => int_used < cfg.int_units,
                                1 => fp_used < cfg.fp_units,
                                _ => br_used < cfg.branch_units,
                            };
                            if !fu_ok {
                                break;
                            }
                            let mut ready_at: u64 = 0;
                            for s in [m.src1, m.src2] {
                                if s == NO_REG {
                                    continue;
                                }
                                let rs = &regs[s as usize];
                                ready_at = ready_at.max(rs.ready).max(rs.replay_floor);
                                if rs.ready > now && rs.miss_pending {
                                    blocked_on_miss = true;
                                }
                            }
                            if ready_at > now {
                                next_wakeup = next_wakeup.min(ready_at);
                                stall_srcs = [m.src1, m.src2];
                                pending_issue = (r.seq, ready_at);
                                break;
                            }
                            blocked_on_miss = false; // it issued after all
                        }
                        match m.fu {
                            0 | 3 => int_used += 1,
                            1 => fp_used += 1,
                            _ => br_used += 1,
                        }
                        if m.dest != NO_REG {
                            regs[m.dest as usize] = RegState {
                                ready: now + u64::from(m.lat),
                                replay_floor: 0,
                                miss_pending: false,
                                miss_to_mem: false,
                            };
                            pending_mask &= !(1 << m.dest);
                        }
                        // Advance the run in place; drop it once drained.
                        let head = fq.runs.front_mut().expect("plain head exists");
                        head.seq += 1;
                        head.pc += 4;
                        head.idx += 1;
                        head.len -= 1;
                        if head.len == 0 {
                            fq.runs.pop_front();
                        }
                        fq.total -= 1;
                        issued += 1;
                        issued_total += 1;
                        progress = true;
                        continue;
                    }
                    let f = fq.full.front().expect("full head exists");
                    // Same parked-head shortcut as the plain path above.
                    let skip = issued == 0 && f.seq == pending_issue.0 && now >= pending_issue.1;
                    if !skip && f.fetch_cycle + cfg.frontend_depth > now {
                        next_wakeup = next_wakeup.min(f.fetch_cycle + cfg.frontend_depth);
                        break;
                    }
                    let m = if head_meta.0 == f.seq {
                        head_meta.1
                    } else {
                        let m = *cache.meta_at(f.pc).expect("queued pc is in text");
                        head_meta = (f.seq, m);
                        m
                    };
                    if !skip {
                        let fu_ok = match m.fu {
                            0 | 3 => int_used < cfg.int_units,
                            1 => fp_used < cfg.fp_units,
                            _ => br_used < cfg.branch_units,
                        };
                        if !fu_ok {
                            break;
                        }
                        let mut ready_at: u64 = 0;
                        for s in [m.src1, m.src2] {
                            if s == NO_REG {
                                continue;
                            }
                            let r = &regs[s as usize];
                            ready_at = ready_at.max(r.ready).max(r.replay_floor);
                            if r.ready > now && r.miss_pending {
                                blocked_on_miss = true;
                            }
                        }
                        if m.flags & InstrMeta::BMISS != 0 {
                            ready_at = ready_at.max(last_mem_outcome);
                        }
                        if ready_at > now {
                            next_wakeup = next_wakeup.min(ready_at);
                            stall_srcs = [m.src1, m.src2];
                            pending_issue = (f.seq, ready_at);
                            break;
                        }
                        blocked_on_miss = false; // it issued after all
                    }

                    // Copy out the three fields the issue arms need, then drop
                    // the entry in place — popping the full ~96-byte `Fetched`
                    // by value would memcpy it for nothing.
                    let (seq, probe, resolve) = (f.seq, f.probe, f.resolve);
                    let _ = fq.full.pop_front();
                    fq.total -= 1;
                    match m.fu {
                        0 | 3 => int_used += 1,
                        1 => fp_used += 1,
                        _ => br_used += 1,
                    }

                    let mut outcome_cycle = now + 1;
                    match m.kind {
                        InstrMeta::KIND_LOAD => {
                            let probe = probe.expect("loads probe");
                            let t = hier.schedule_data(probe, now);
                            outcome_cycle = t.start + cfg.hier.l1_latency;
                            last_mem_outcome = outcome_cycle;
                            if m.dest != NO_REG {
                                let miss = probe.level.is_l1_miss();
                                regs[m.dest as usize] = RegState {
                                    ready: t.complete,
                                    replay_floor: if miss {
                                        outcome_cycle + cfg.replay_trap_penalty
                                    } else {
                                        0
                                    },
                                    miss_pending: miss,
                                    miss_to_mem: miss && probe.level == HitLevel::Memory,
                                };
                                if miss {
                                    pending_mask |= 1 << m.dest;
                                } else {
                                    pending_mask &= !(1 << m.dest);
                                }
                            }
                        }
                        InstrMeta::KIND_STORE => {
                            let probe = probe.expect("stores probe");
                            let t = hier.schedule_data(probe, now);
                            outcome_cycle = t.start + cfg.hier.l1_latency;
                            last_mem_outcome = outcome_cycle;
                        }
                        InstrMeta::KIND_PREFETCH => {
                            if let Some(probe) = probe {
                                let _ = hier.schedule_data(probe, now);
                            }
                        }
                        InstrMeta::KIND_HALT => {
                            done = true;
                        }
                        _ => {
                            if m.dest != NO_REG {
                                regs[m.dest as usize] = RegState {
                                    ready: now + u64::from(m.lat),
                                    replay_floor: 0,
                                    miss_pending: false,
                                    miss_to_mem: false,
                                };
                                pending_mask &= !(1 << m.dest);
                            }
                        }
                    }

                    match resolve {
                        Resolve::None => {}
                        Resolve::AtExecute | Resolve::AtGraduate => {
                            let due = if m.flags & InstrMeta::DATA_REF != 0 {
                                outcome_cycle
                            } else {
                                now
                            };
                            if due <= now {
                                fe.resolve(seq, now, cfg.redirect_penalty);
                            } else {
                                resolve_q.push_keyed(due, seq, seq);
                            }
                        }
                    }

                    issued += 1;
                    issued_total += 1;
                    progress = true;
                    if done {
                        break;
                    }
                }

                // Clear stale miss_pending flags, visiting only set mask bits.
                let mut mbits = pending_mask;
                while mbits != 0 {
                    let i = mbits.trailing_zeros() as usize;
                    mbits &= mbits - 1;
                    if regs[i].ready <= now {
                        regs[i].miss_pending = false;
                        pending_mask &= !(1u64 << i);
                    }
                }

                slots.busy += issued;
                if issued < width && !done {
                    let lost = width - issued;
                    if blocked_on_miss {
                        slots.cache_stall += lost;
                    } else {
                        slots.other_stall += lost;
                    }
                }
                if done {
                    break;
                }

                // ---- Fetch (block-batched) ----
                if fq.total < 2 * cfg.issue_width as usize && fe.fetch_ready(now) {
                    let before = fq.total;
                    fe.fetch_fast(now, cfg.issue_width, &mut hier, &mut fq)?;
                    if fq.total > before {
                        progress = true;
                    }
                }

                // ---- Limits ----
                if issued_total >= limits.max_instructions {
                    return Err(SimError::InstructionLimit(limits.max_instructions));
                }
                if now >= limits.max_cycles {
                    return Err(SimError::CycleLimit(limits.max_cycles));
                }

                // ---- Advance time (with fast-forward over quiet cycles) ----
                if progress {
                    if next_wakeup == now + 1 {
                        // Parked exactly one cycle out (dependence chains in
                        // dense code). The general fold below would pick
                        // `next = now + 1` with zero skipped cycles, so only
                        // the advance remains — and if no resolution or pause
                        // boundary lands on that cycle, the next iteration's
                        // preamble would be a no-op: skip it.
                        now += 1;
                        if now < stop_gate && resolve_q.next_due().is_none_or(|d| d > now) {
                            continue 'hot;
                        }
                        break 'hot;
                    }
                    if next_wakeup != u64::MAX {
                        // The issue loop parked on a definite head stall, so the
                        // following cycle's iteration would poll, fail, and fold.
                        // Fold now instead, reproducing that iteration exactly:
                        // its wake-up candidates are the same (the head's
                        // `ready_at` and the queues are unchanged by idle
                        // cycles; the front end gets a floor of `now + 1`, the
                        // earliest it could act again), and its stall
                        // classification re-tests the parked head's sources
                        // against `now + 1`.
                        let mut h = Horizon::new(now);
                        h.consider(next_wakeup);
                        h.consider_opt(resolve_q.next_due());
                        if !fe.halted() && fe.blocked_on().is_none() {
                            h.consider(fe.resume_at().max(now + 1));
                        }
                        let next = h.earliest().expect("next_wakeup is a candidate");
                        let skipped = next - now - 1;
                        if skipped > 0 {
                            let mut blocked_next = false;
                            for s in stall_srcs {
                                if s != NO_REG {
                                    let r = &regs[s as usize];
                                    if r.ready > now + 1 && r.miss_pending {
                                        blocked_next = true;
                                    }
                                }
                            }
                            let lost = skipped * width;
                            if blocked_next {
                                slots.cache_stall += lost;
                            } else {
                                slots.other_stall += lost;
                            }
                        }
                        now = next;
                    } else {
                        now += 1;
                    }
                } else {
                    let mut h = Horizon::new(now);
                    if next_wakeup != u64::MAX {
                        h.consider(next_wakeup);
                    }
                    h.consider_opt(resolve_q.next_due());
                    if !fe.halted() && fe.blocked_on().is_none() {
                        h.consider(fe.resume_at());
                    }
                    let Some(next) = h.earliest() else {
                        return Err(SimError::Deadlock { cycle: now });
                    };
                    let skipped = next - now - 1;
                    if skipped > 0 {
                        let lost = skipped * width;
                        if blocked_on_miss {
                            slots.cache_stall += lost;
                        } else {
                            slots.other_stall += lost;
                        }
                    }
                    now = next;
                }
                break 'hot;
            }
        }
    }

    while !done {
        // Checkpoint boundary: pause before this cycle mutates anything, so
        // a resumed run re-enters the loop with bit-identical state.
        if limits.stop_at.is_some_and(|stop| now >= stop) {
            return Ok(RunOutcome::Paused {
                cycle: now,
                body: encode_loop(
                    &hier,
                    &fe,
                    &regs,
                    &queue,
                    &resolve_q,
                    last_mem_outcome,
                    now,
                    issued_total,
                    slots,
                    &cpi,
                ),
            });
        }
        let mut progress = false;

        // ---- Front-end resolutions due ----
        while let Some((t, seq)) = resolve_q.pop_due(now) {
            fe.resolve(seq, t, cfg.redirect_penalty);
            progress = true;
        }

        // ---- In-order issue ----
        let mut int_used = 0u32;
        let mut fp_used = 0u32;
        let mut br_used = 0u32;
        let mut issued: u64 = 0;
        // Why issue stopped, for slot attribution.
        let mut blocked_on_miss = false;
        let mut blocked_miss_to_mem = false;
        let mut next_wakeup: u64 = u64::MAX;

        while issued < width {
            let Some(f) = queue.front() else { break };
            if f.fetch_cycle + cfg.frontend_depth > now {
                next_wakeup = next_wakeup.min(f.fetch_cycle + cfg.frontend_depth);
                break;
            }
            // Structural: FU availability (loads/stores share INT pipes).
            let fu_ok = match f.instr.fu_class() {
                FuClass::Int | FuClass::Mem => int_used < cfg.int_units,
                FuClass::Fp => fp_used < cfg.fp_units,
                FuClass::Branch => br_used < cfg.branch_units,
            };
            if !fu_ok {
                break;
            }
            // Presence bits: all sources ready; missed-load producers impose
            // the replay-trap restart floor.
            let mut ready_at: u64 = 0;
            for src in f.instr.sources() {
                let r = &regs[src.logical()];
                ready_at = ready_at.max(r.ready).max(r.replay_floor);
                if r.ready > now && r.miss_pending {
                    blocked_on_miss = true;
                    blocked_miss_to_mem = r.miss_to_mem;
                }
            }
            if matches!(f.instr, Instr::BranchOnMiss { .. }) {
                ready_at = ready_at.max(last_mem_outcome);
            }
            if ready_at > now {
                next_wakeup = next_wakeup.min(ready_at);
                break;
            }
            blocked_on_miss = false; // it issued after all
            blocked_miss_to_mem = false;

            let f = queue.pop_front().expect("front exists");
            imo_obs::record(&mut obs, now, EventKind::Issue { seq: f.seq });
            if matches!(f.instr, Instr::JumpMhrr) {
                imo_obs::record(&mut obs, now, EventKind::TrapReturn { seq: f.seq });
            }
            match f.instr.fu_class() {
                FuClass::Int | FuClass::Mem => int_used += 1,
                FuClass::Fp => fp_used += 1,
                FuClass::Branch => br_used += 1,
            }

            // Execute in the timing model.
            let mut outcome_cycle = now + 1;
            match f.instr {
                Instr::Load { .. } => {
                    let probe = f.probe.expect("loads probe");
                    let t = hier.schedule_data(probe, now);
                    outcome_cycle = t.start + cfg.hier.l1_latency;
                    last_mem_outcome = outcome_cycle;
                    if let Some(rec) = obs.as_deref_mut() {
                        rec.metrics.observe("cpu.load_to_use", t.complete.saturating_sub(now));
                    }
                    if let Some(dst) = f.instr.dest() {
                        let miss = probe.level.is_l1_miss();
                        regs[dst.logical()] = RegState {
                            ready: t.complete,
                            replay_floor: if miss {
                                outcome_cycle + cfg.replay_trap_penalty
                            } else {
                                0
                            },
                            miss_pending: miss,
                            miss_to_mem: miss && probe.level == HitLevel::Memory,
                        };
                    }
                }
                Instr::Store { .. } => {
                    let probe = f.probe.expect("stores probe");
                    let t = hier.schedule_data(probe, now);
                    outcome_cycle = t.start + cfg.hier.l1_latency;
                    last_mem_outcome = outcome_cycle;
                }
                Instr::Prefetch { .. } => {
                    if let Some(probe) = f.probe {
                        let _ = hier.schedule_data(probe, now);
                    }
                }
                Instr::Halt => {
                    done = true;
                }
                ref other => {
                    let lat = cfg.latency(other);
                    if let Some(dst) = f.instr.dest() {
                        regs[dst.logical()] = RegState {
                            ready: now + lat,
                            replay_floor: 0,
                            miss_pending: false,
                            miss_to_mem: false,
                        };
                    }
                }
            }

            // Front-end unblocking: branches resolve at issue; informing
            // traps resolve when the miss is detected.
            match f.resolve {
                Resolve::None => {}
                Resolve::AtExecute | Resolve::AtGraduate => {
                    let due = if f.instr.is_data_ref() { outcome_cycle } else { now };
                    if f.informing_trap {
                        if let Some(rec) = obs.as_deref_mut() {
                            rec.metrics.observe(
                                "cpu.trap_redirect",
                                due.max(now).saturating_sub(f.fetch_cycle),
                            );
                        }
                    }
                    if due <= now {
                        fe.resolve(f.seq, now, cfg.redirect_penalty);
                    } else {
                        resolve_q.push_keyed(due, f.seq, f.seq);
                    }
                }
            }

            issued += 1;
            issued_total += 1;
            progress = true;
            if done {
                break;
            }
        }

        // Clear stale miss_pending flags (data has arrived).
        for r in regs.iter_mut() {
            if r.miss_pending && r.ready <= now {
                r.miss_pending = false;
            }
        }

        slots.busy += issued;
        if issued < width && !done {
            let lost = width - issued;
            if blocked_on_miss {
                slots.cache_stall += lost;
            } else {
                slots.other_stall += lost;
            }
        }
        // Exactly one CPI-stack cycle per loop iteration: this point runs
        // before every `break`, and the fast-forward path below attributes
        // the cycles it skips, so the stack total always equals `cycles`.
        if obs.is_some() {
            if issued > 0 {
                cpi.add(CpiCategory::Base, 1);
            } else {
                cpi.add(
                    stall_category(fe.blocked_on_trap(), blocked_on_miss, blocked_miss_to_mem),
                    1,
                );
            }
        }
        if done {
            break;
        }

        // ---- Fetch ----
        if queue.len() < 2 * cfg.issue_width as usize {
            let before = queue.len();
            fetch_buf.clear();
            fe.fetch(now, cfg.issue_width, &mut hier, &mut fetch_buf, obs.as_deref_mut())?;
            queue.extend(fetch_buf.drain(..));
            if queue.len() > before {
                progress = true;
            }
        }

        // ---- Limits ----
        if issued_total >= limits.max_instructions {
            return Err(SimError::InstructionLimit(limits.max_instructions));
        }
        if now >= limits.max_cycles {
            return Err(SimError::CycleLimit(limits.max_cycles));
        }

        // ---- Advance time (with fast-forward over quiet cycles) ----
        if progress {
            now += 1;
        } else {
            let mut h = Horizon::new(now);
            if next_wakeup != u64::MAX {
                h.consider(next_wakeup);
            }
            h.consider_opt(resolve_q.next_due());
            if !fe.halted() && fe.blocked_on().is_none() {
                h.consider(fe.resume_at());
            }
            let Some(next) = h.earliest() else {
                return Err(SimError::Deadlock { cycle: now });
            };
            if limits.force_tick_accurate {
                // Reference mode: the horizon was still computed (so deadlock
                // detection is identical), but time advances one cycle.
                now += 1;
                continue;
            }
            let skipped = next - now - 1;
            if skipped > 0 {
                let lost = skipped * width;
                if blocked_on_miss {
                    slots.cache_stall += lost;
                } else {
                    slots.other_stall += lost;
                }
                if obs.is_some() {
                    // The skipped cycles would each have issued nothing with
                    // this exact (frozen) machine state.
                    cpi.add(
                        stall_category(fe.blocked_on_trap(), blocked_on_miss, blocked_miss_to_mem),
                        skipped,
                    );
                }
            }
            now = next;
        }
    }

    let cycles = now + 1;
    let total = cycles * width;
    let accounted = slots.total();
    if total > accounted {
        slots.other_stall += total - accounted;
    }
    crate::speed::flush(fe.stats());

    let result = RunResult {
        cycles,
        instructions: issued_total,
        slots,
        informing_traps: fe.informing_traps(),
        mispredictions: fe.mispredictions(),
        branch_accuracy: fe.branch_accuracy(),
        handler_faults: fe.handler_faults(),
        degraded: fe.degraded(),
        mem: MemCounters {
            l1d_accesses: hier.stats().data_refs,
            l1d_misses: hier.stats().l1d_misses_to_l2 + hier.stats().l1d_misses_to_mem,
            l2_misses: hier.stats().l1d_misses_to_mem,
            inst_misses: hier.stats().inst_misses,
        },
    };
    if let Some(rec) = obs {
        rec.cpi.merge(&cpi);
        rec.metrics.set("cpu.cycles", result.cycles);
        rec.metrics.set("cpu.instructions", result.instructions);
        rec.metrics.set("cpu.informing_traps", result.informing_traps);
        rec.metrics.set("cpu.mispredictions", result.mispredictions);
        rec.metrics.set("cpu.handler_faults", result.handler_faults);
        let (seen, dropped) = (rec.total_recorded(), rec.dropped());
        rec.metrics.set("obs.events_seen", seen);
        rec.metrics.set("obs.events_dropped", dropped);
        hier.stats().record_metrics(&mut rec.metrics);
        if let Some(plan) = faults {
            plan.config().record_metrics(&mut rec.metrics);
        }
    }
    Ok(RunOutcome::Done(result, fe.into_state()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::{Asm, Cond, Reg};

    fn run(p: &Program) -> RunResult {
        simulate(p, &InOrderConfig::paper(), RunLimits::default()).expect("simulates")
    }

    fn r(i: u8) -> Reg {
        Reg::int(i)
    }

    #[test]
    fn straight_line_completes() {
        let mut a = Asm::new();
        for i in 0..20 {
            a.li(r(1 + (i % 8) as u8), i);
        }
        a.halt();
        let p = a.assemble().unwrap();
        let res = run(&p);
        assert_eq!(res.instructions, 21);
        assert_eq!(res.slots.total(), res.cycles * 4);
    }

    #[test]
    fn issue_is_strictly_in_order() {
        // A long-latency divide followed by an independent add: in-order
        // issue lets the add go (it is later in program order but the divide
        // has no unready sources)... but a *consumer* of the divide blocks
        // everything behind it.
        let mut a = Asm::new();
        a.li(r(1), 100);
        a.li(r(2), 5);
        a.div(r(3), r(1), r(2));
        a.addi(r(4), r(3), 1); // consumer: stalls ~76 cycles
        a.li(r(5), 1); // behind the stall
        a.halt();
        let p = a.assemble().unwrap();
        let res = run(&p);
        assert!(res.cycles > 76, "divide latency exposed: {}", res.cycles);
    }

    #[test]
    fn load_miss_consumer_pays_replay_and_latency() {
        let mut a = Asm::new();
        a.li(r(1), 0x40_0000);
        a.load(r(2), r(1), 0); // cold miss to memory (50 cycles)
        a.addi(r(3), r(2), 1);
        a.halt();
        let p = a.assemble().unwrap();
        let res = run(&p);
        assert!(res.cycles >= 50, "miss latency dominates: {}", res.cycles);
        assert!(res.slots.cache_stall > 0, "stall attributed to cache: {:?}", res.slots);
    }

    #[test]
    fn hit_load_use_is_short() {
        let mut a = Asm::new();
        a.li(r(1), 0x40_0000);
        a.load(r(2), r(1), 0); // warm the line
        a.load(r(2), r(1), 8); // hit
        a.addi(r(3), r(2), 1);
        a.halt();
        let p = a.assemble().unwrap();
        let res = run(&p);
        assert!(res.cycles < 120, "{}", res.cycles);
    }

    #[test]
    fn informing_trap_redirects_to_handler() {
        let mut a = Asm::new();
        let hdl = a.label("h");
        a.set_mhar(hdl);
        a.li(r(1), 0x40_0000);
        a.load_inf(r(2), r(1), 0);
        a.halt();
        a.bind(hdl).unwrap();
        for _ in 0..10 {
            a.addi(r(20), r(20), 1);
        }
        a.jump_mhrr();
        let p = a.assemble().unwrap();
        let res = run(&p);
        assert_eq!(res.informing_traps, 1);
        assert_eq!(res.instructions, 4 + 11);
    }

    #[test]
    fn ten_instruction_handler_costs_more_than_one() {
        let build = |len: usize| {
            let mut a = Asm::new();
            let hdl = a.label("h");
            a.set_mhar(hdl);
            a.li(r(1), 0x40_0000);
            let top = a.label("top");
            a.li(r(2), 0);
            a.li(r(3), 100);
            a.bind(top).unwrap();
            a.load_inf(r(4), r(1), 0);
            a.addi(r(1), r(1), 4096);
            a.addi(r(2), r(2), 1);
            a.branch(Cond::Lt, r(2), r(3), top);
            a.halt();
            a.bind(hdl).unwrap();
            for _ in 0..len {
                a.addi(r(20), r(20), 1); // dependent chain
            }
            a.jump_mhrr();
            a.assemble().unwrap()
        };
        let one = run(&build(1));
        let ten = run(&build(10));
        assert_eq!(one.informing_traps, 100);
        assert!(
            ten.cycles > one.cycles,
            "10-instruction handler ({}) slower than 1 ({})",
            ten.cycles,
            one.cycles
        );
    }

    #[test]
    fn in_order_hides_less_than_out_of_order() {
        // The same miss-heavy kernel with 10-instruction handlers: the
        // in-order machine should lose more relative to its no-handler run
        // than the out-of-order machine (the paper's key Figure 2 contrast).
        let build = |informing: bool| {
            let mut a = Asm::new();
            let hdl = a.label("h");
            if informing {
                a.set_mhar(hdl);
            }
            a.li(r(1), 0x40_0000);
            let top = a.label("top");
            a.li(r(2), 0);
            a.li(r(3), 200);
            a.bind(top).unwrap();
            if informing {
                a.load_inf(r(4), r(1), 0);
            } else {
                a.load(r(4), r(1), 0);
            }
            a.fadd(Reg::fp(1), Reg::fp(2), Reg::fp(3));
            a.fadd(Reg::fp(4), Reg::fp(5), Reg::fp(6));
            a.addi(r(1), r(1), 4096);
            a.addi(r(2), r(2), 1);
            a.branch(Cond::Lt, r(2), r(3), top);
            a.halt();
            a.bind(hdl).unwrap();
            for _ in 0..10 {
                a.addi(r(20), r(20), 1);
            }
            a.jump_mhrr();
            a.assemble().unwrap()
        };
        let ino_n = run(&build(false));
        let ino_s = run(&build(true));
        let ooo_n =
            crate::ooo::simulate(&build(false), &crate::OooConfig::paper(), RunLimits::default())
                .unwrap();
        let ooo_s =
            crate::ooo::simulate(&build(true), &crate::OooConfig::paper(), RunLimits::default())
                .unwrap();
        let ino_overhead = ino_s.cycles as f64 / ino_n.cycles as f64;
        let ooo_overhead = ooo_s.cycles as f64 / ooo_n.cycles as f64;
        assert!(
            ino_overhead > ooo_overhead,
            "in-order overhead {ino_overhead:.3} should exceed out-of-order {ooo_overhead:.3}"
        );
    }

    #[test]
    fn branch_mispredicts_cost_cycles() {
        // Data-dependent unpredictable branch pattern.
        let mut a = Asm::new();
        let (i, n) = (r(1), r(2));
        a.li(i, 0);
        a.li(n, 200);
        let top = a.here("top");
        let skip = a.label("skip");
        a.andi(r(3), i, 1);
        a.branch(Cond::Eq, r(3), Reg::ZERO, skip); // alternates every iteration
        a.addi(r(4), r(4), 1);
        a.bind(skip).unwrap();
        a.addi(i, i, 1);
        a.branch(Cond::Lt, i, n, top);
        a.halt();
        let p = a.assemble().unwrap();
        let res = run(&p);
        // The 2-bit counter cannot learn an alternating pattern well.
        assert!(res.mispredictions > 50, "mispredictions {}", res.mispredictions);
    }

    #[test]
    fn slot_accounting_exhaustive() {
        let mut a = Asm::new();
        a.li(r(1), 0x40_0000);
        for i in 0..50 {
            a.load(r(2), r(1), (i * 4096) as i64);
        }
        a.halt();
        let p = a.assemble().unwrap();
        let res = run(&p);
        assert_eq!(res.slots.total(), res.cycles * 4);
    }

    #[test]
    fn deadlock_reported_for_impossible_config() {
        let mut a = Asm::new();
        a.fadd(Reg::fp(1), Reg::fp(2), Reg::fp(3));
        a.halt();
        let p = a.assemble().unwrap();
        let mut cfg = InOrderConfig::paper();
        cfg.fp_units = 0;
        let err = simulate(&p, &cfg, RunLimits::default()).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }
}
