//! Unified event-driven scheduling primitives shared by both timing cores.
//!
//! Before this module the cores tracked future work with ad-hoc containers —
//! a `Vec<(cycle, mshr)>` scanned with `iter().any` + `retain` every cycle
//! for cache fills, a `Vec<u64>` scanned with `iter().position` for
//! write-buffer slots — each an O(n) walk per simulated cycle even when the
//! earliest event was far in the future. The three types here replace those
//! scans with O(log n) heap operations and give the no-progress fast-forward
//! a single place to ask "when is the next event?":
//!
//! * [`WakeupQueue`] — a deterministic min-heap of `(due, key, item)` events.
//!   Ties on `due` break on `key` (insertion order by default, or an explicit
//!   key such as the instruction sequence number), never on the payload, so
//!   pop order is a pure function of push history.
//! * [`ReleasePool`] — `k` interchangeable resource slots (write-buffer
//!   entries) as a min-heap of release times. Acquiring takes the *earliest*
//!   released slot; since every slot with `release <= now` is equivalently
//!   free and `now` is monotonic, this is observationally identical to the
//!   old first-by-index scan.
//! * [`Horizon`] — the fold over "earliest pending event" candidates that
//!   decides how far a no-progress iteration may fast-forward `now`.
//!
//! The fast-forward invariant these support: a core may jump `now` from `t`
//! to `t' > t` only if no event is due in `(t, t')` — i.e. `t'` is the
//! minimum over every wakeup source. Skipped cycles are attributed to the
//! CPI stack in bulk under the stall classification frozen at `t`, which is
//! sound precisely because nothing changes state in the skipped window.
//! `RunLimits::force_tick_accurate` disables the jump (the horizon is still
//! computed for deadlock detection), giving the bit-identity reference used
//! by `tests/fastforward_identity.rs`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled event: a payload due at `due`, ordered by `(due, key)`.
struct Ev<T> {
    due: u64,
    key: u64,
    item: T,
}

impl<T> PartialEq for Ev<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.key == other.key
    }
}
impl<T> Eq for Ev<T> {}

impl<T> PartialOrd for Ev<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Ev<T> {
    /// Reversed so `BinaryHeap` (a max-heap) pops the smallest `(due, key)`.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.due, other.key).cmp(&(self.due, self.key))
    }
}

/// A deterministic min-heap wakeup queue.
///
/// Events pop in `(due, key)` order. [`WakeupQueue::push`] assigns keys from
/// an internal counter (FIFO among same-cycle events); [`WakeupQueue::push_keyed`]
/// takes an explicit key when the core needs a semantic tie-break (e.g.
/// branch resolutions in instruction-sequence order).
pub struct WakeupQueue<T> {
    heap: BinaryHeap<Ev<T>>,
    next_key: u64,
}

impl<T> WakeupQueue<T> {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), next_key: 0 }
    }

    /// An empty queue with room for `cap` events before reallocating. The
    /// cores size their queues to the structural bound (ROB depth, MSHR
    /// count) so the steady state never grows the heap.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self { heap: BinaryHeap::with_capacity(cap), next_key: 0 }
    }

    /// Schedules `item` at `due`, tie-breaking by insertion order.
    pub fn push(&mut self, due: u64, item: T) {
        let key = self.next_key;
        self.next_key += 1;
        self.heap.push(Ev { due, key, item });
    }

    /// Schedules `item` at `due` with an explicit tie-break key.
    pub fn push_keyed(&mut self, due: u64, key: u64, item: T) {
        self.heap.push(Ev { due, key, item });
    }

    /// The earliest due time, if any event is pending.
    #[must_use]
    #[inline]
    pub fn next_due(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.due)
    }

    /// Pops the earliest event if it is due at or before `now`.
    #[inline]
    pub fn pop_due(&mut self, now: u64) -> Option<(u64, T)> {
        if self.heap.peek().is_some_and(|e| e.due <= now) {
            self.heap.pop().map(|e| (e.due, e.item))
        } else {
            None
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The value the internal key counter would assign next (checkpoint
    /// encoding; restored through [`WakeupQueue::restore`]).
    #[must_use]
    pub fn next_key(&self) -> u64 {
        self.next_key
    }

    /// Every pending event as `(due, key, item)`, sorted by `(due, key)` —
    /// the exact pop order, so a checkpoint encodes the queue's observable
    /// state regardless of the heap's internal layout.
    #[must_use]
    pub fn entries(&self) -> Vec<(u64, u64, T)>
    where
        T: Clone,
    {
        let mut v: Vec<(u64, u64, T)> =
            self.heap.iter().map(|e| (e.due, e.key, e.item.clone())).collect();
        v.sort_by_key(|&(due, key, _)| (due, key));
        v
    }

    /// Rebuilds a queue from [`WakeupQueue::entries`] and
    /// [`WakeupQueue::next_key`].
    #[must_use]
    pub fn restore(next_key: u64, entries: Vec<(u64, u64, T)>) -> Self {
        Self {
            heap: entries.into_iter().map(|(due, key, item)| Ev { due, key, item }).collect(),
            next_key,
        }
    }
}

impl<T> Default for WakeupQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// `k` interchangeable resource slots tracked as a min-heap of release times.
///
/// Models the write buffer: a slot is free at `now` iff its release time is
/// `<= now`. All free slots are indistinguishable, so acquiring always takes
/// the heap minimum; with monotonic `now` this yields the same availability
/// answers as any other choice among free slots.
pub struct ReleasePool {
    heap: BinaryHeap<std::cmp::Reverse<u64>>,
}

impl ReleasePool {
    /// A pool of `slots` entries, all free at cycle 0.
    #[must_use]
    pub fn new(slots: usize) -> Self {
        Self { heap: (0..slots).map(|_| std::cmp::Reverse(0)).collect() }
    }

    /// Whether at least one slot is free at `now`.
    #[must_use]
    pub fn has_free(&self, now: u64) -> bool {
        self.heap.peek().is_some_and(|r| r.0 <= now)
    }

    /// Takes a slot free at `now` and rebooks it until `release`.
    ///
    /// Returns `false` (no state change) if nothing is free.
    pub fn acquire_until(&mut self, now: u64, release: u64) -> bool {
        if self.has_free(now) {
            self.heap.pop();
            self.heap.push(std::cmp::Reverse(release));
            true
        } else {
            false
        }
    }

    /// The earliest release time, if the pool has any slots.
    #[must_use]
    pub fn next_release(&self) -> Option<u64> {
        self.heap.peek().map(|r| r.0)
    }

    /// Every slot's release time, sorted ascending. Slots are
    /// interchangeable, so the sorted multiset is the pool's entire
    /// observable state (checkpoint encoding; see [`ReleasePool::restore`]).
    #[must_use]
    pub fn releases(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.heap.iter().map(|r| r.0).collect();
        v.sort_unstable();
        v
    }

    /// Rebuilds a pool from [`ReleasePool::releases`].
    #[must_use]
    pub fn restore(releases: Vec<u64>) -> Self {
        Self { heap: releases.into_iter().map(std::cmp::Reverse).collect() }
    }
}

/// Folds wakeup-source candidates into the earliest pending event time.
pub struct Horizon {
    now: u64,
    earliest: u64,
}

impl Horizon {
    /// A horizon with no candidates yet, anchored at `now`.
    #[must_use]
    pub fn new(now: u64) -> Self {
        Self { now, earliest: u64::MAX }
    }

    /// Offers a candidate wakeup time. Candidates at or before `now` are
    /// ignored: they were already actionable this iteration, and the fact
    /// that the iteration made no progress proves they are not what the
    /// machine is waiting for (e.g. a dispatch-ready instruction blocked on
    /// a dependence whose producer contributes its own, later, candidate).
    #[inline]
    pub fn consider(&mut self, t: u64) {
        if t > self.now {
            self.earliest = self.earliest.min(t);
        }
    }

    /// [`Horizon::consider`] for optional sources.
    #[inline]
    pub fn consider_opt(&mut self, t: Option<u64>) {
        if let Some(t) = t {
            self.consider(t);
        }
    }

    /// The earliest *future* candidate, or `None` if no source offered one
    /// (the machine is deadlocked: no progress and no pending event).
    #[must_use]
    #[inline]
    pub fn earliest(&self) -> Option<u64> {
        (self.earliest != u64::MAX).then_some(self.earliest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wakeup_pops_in_due_then_insertion_order() {
        let mut q = WakeupQueue::new();
        q.push(5, "a");
        q.push(3, "b");
        q.push(5, "c");
        q.push(3, "d");
        assert_eq!(q.next_due(), Some(3));
        assert_eq!(q.pop_due(10), Some((3, "b")));
        assert_eq!(q.pop_due(10), Some((3, "d")));
        assert_eq!(q.pop_due(10), Some((5, "a")));
        assert_eq!(q.pop_due(10), Some((5, "c")));
        assert_eq!(q.pop_due(10), None);
        assert!(q.is_empty());
    }

    #[test]
    fn wakeup_respects_now() {
        let mut q = WakeupQueue::new();
        q.push(7, 1u64);
        assert_eq!(q.pop_due(6), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(7), Some((7, 1)));
    }

    #[test]
    fn wakeup_explicit_keys_break_ties() {
        let mut q = WakeupQueue::new();
        q.push_keyed(4, 20, "late");
        q.push_keyed(4, 10, "early");
        assert_eq!(q.pop_due(4), Some((4, "early")));
        assert_eq!(q.pop_due(4), Some((4, "late")));
    }

    #[test]
    fn release_pool_counts_free_slots() {
        let mut p = ReleasePool::new(2);
        assert!(p.has_free(0));
        assert!(p.acquire_until(0, 10));
        assert!(p.acquire_until(0, 5));
        assert!(!p.has_free(4));
        assert!(!p.acquire_until(4, 99));
        assert_eq!(p.next_release(), Some(5));
        assert!(p.has_free(5));
        assert!(p.acquire_until(5, 20));
        assert_eq!(p.next_release(), Some(10));
    }

    #[test]
    fn release_pool_zero_slots_never_free() {
        let mut p = ReleasePool::new(0);
        assert!(!p.has_free(u64::MAX));
        assert!(!p.acquire_until(0, 0));
        assert_eq!(p.next_release(), None);
    }

    #[test]
    fn wakeup_entries_round_trip_preserves_pop_order() {
        let mut q = WakeupQueue::new();
        q.push(5, "a");
        q.push(3, "b");
        q.push_keyed(3, 99, "z");
        q.push(5, "c");
        let entries = q.entries();
        assert_eq!(entries, vec![(3, 1, "b"), (3, 99, "z"), (5, 0, "a"), (5, 2, "c")]);
        let mut r = WakeupQueue::restore(q.next_key(), entries);
        // Pop order matches the original exactly...
        for _ in 0..4 {
            assert_eq!(r.pop_due(10), q.pop_due(10));
        }
        // ...and pushes after restore continue the same key sequence.
        r.push(3, "next");
        assert_eq!(r.pop_due(10), Some((3, "next")));
        assert_eq!(r.entries(), vec![]);
    }

    #[test]
    fn release_pool_round_trip_preserves_availability() {
        let mut p = ReleasePool::new(3);
        assert!(p.acquire_until(0, 10));
        assert!(p.acquire_until(0, 5));
        let r = ReleasePool::restore(p.releases());
        assert_eq!(r.releases(), vec![0, 5, 10]);
        assert!(r.has_free(0));
        assert_eq!(r.next_release(), Some(0));
    }

    #[test]
    fn horizon_takes_min_of_future_candidates() {
        let mut h = Horizon::new(10);
        assert_eq!(h.earliest(), None);
        h.consider(25);
        h.consider(15);
        h.consider_opt(None);
        h.consider_opt(Some(40));
        assert_eq!(h.earliest(), Some(15));
        // Candidates at/before now are not wakeup sources.
        h.consider(3);
        h.consider(10);
        assert_eq!(h.earliest(), Some(15));
    }

    #[test]
    fn horizon_with_only_stale_candidates_is_deadlock() {
        let mut h = Horizon::new(10);
        h.consider(10);
        h.consider(0);
        assert_eq!(h.earliest(), None);
    }
}
