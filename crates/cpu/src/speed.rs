//! Process-global simulation-speed counters.
//!
//! The fast paths in [`crate::inorder`] and [`crate::ooo`] batch straight-line
//! instruction runs through the pre-decoded [`imo_isa::BlockCache`]. These
//! counters report how much of the work those batches actually covered, so
//! the `simspeed` benchmark can publish `block_hit_rate` and
//! `batched_instr_pct` next to its wall-clock numbers.
//!
//! The counters deliberately live *outside* [`crate::RunResult`] and every
//! serialized checkpoint: they describe the simulator, not the simulated
//! machine, and must never perturb bit-identity with the tick-accurate
//! reference. Relaxed atomics are sufficient — readers only ever want a
//! snapshot taken while no simulation is running.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::frontend::FetchStats;

static GROUPS: AtomicU64 = AtomicU64::new(0);
static BLOCK_GROUPS: AtomicU64 = AtomicU64::new(0);
static PLAIN_INSTRS: AtomicU64 = AtomicU64::new(0);
static INSTRS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-global fast-path counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpeedStats {
    /// Fetch groups issued by fast-path front ends.
    pub groups: u64,
    /// Fetch groups served entirely from a single basic block.
    pub block_groups: u64,
    /// Instructions retired through batched `step_block` runs.
    pub plain_instrs: u64,
    /// Instructions fetched by fast-path front ends in total.
    pub instrs: u64,
}

impl SpeedStats {
    /// Fraction of fetch groups served from a single block (0.0 when no
    /// groups have been issued).
    pub fn block_hit_rate(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.block_groups as f64 / self.groups as f64
        }
    }

    /// Percentage of fetched instructions that went through a batched
    /// `step_block` run (0.0 when nothing has been fetched).
    pub fn batched_instr_pct(&self) -> f64 {
        if self.instrs == 0 {
            0.0
        } else {
            100.0 * self.plain_instrs as f64 / self.instrs as f64
        }
    }
}

/// Folds one run's [`FetchStats`] into the process-global counters. Called
/// by the cores at the end of a fast-path run.
pub fn flush(stats: FetchStats) {
    GROUPS.fetch_add(stats.groups, Ordering::Relaxed);
    BLOCK_GROUPS.fetch_add(stats.block_groups, Ordering::Relaxed);
    PLAIN_INSTRS.fetch_add(stats.plain_instrs, Ordering::Relaxed);
    INSTRS.fetch_add(stats.instrs, Ordering::Relaxed);
}

/// Reads the current counter values.
pub fn speed_stats() -> SpeedStats {
    SpeedStats {
        groups: GROUPS.load(Ordering::Relaxed),
        block_groups: BLOCK_GROUPS.load(Ordering::Relaxed),
        plain_instrs: PLAIN_INSTRS.load(Ordering::Relaxed),
        instrs: INSTRS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_accumulates_and_ratios_are_exact() {
        let before = speed_stats();
        flush(FetchStats { groups: 8, block_groups: 6, plain_instrs: 20, instrs: 25 });
        let after = speed_stats();
        assert_eq!(after.groups - before.groups, 8);
        assert_eq!(after.block_groups - before.block_groups, 6);
        assert_eq!(after.plain_instrs - before.plain_instrs, 20);
        assert_eq!(after.instrs - before.instrs, 25);

        let s = SpeedStats { groups: 8, block_groups: 6, plain_instrs: 20, instrs: 25 };
        assert!((s.block_hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.batched_instr_pct() - 80.0).abs() < 1e-12);
        assert_eq!(SpeedStats::default().block_hit_rate(), 0.0);
        assert_eq!(SpeedStats::default().batched_instr_pct(), 0.0);
    }
}
