//! Branch prediction (2-bit saturating counters, per Table 1).

/// A table of 2-bit saturating counters indexed by branch PC.
///
/// Counters start weakly-not-taken. `bmiss` (branch-on-miss) instructions and
/// implicit informing traps are *not* predicted through this table — the
/// paper specifies they are statically predicted not-taken/no-trap, so the
/// common hit case costs nothing.
///
/// # Example
///
/// ```
/// use imo_cpu::predictor::TwoBitPredictor;
///
/// let mut p = TwoBitPredictor::new(1024);
/// assert!(!p.predict(0x100)); // cold: weakly not-taken
/// p.update(0x100, true);
/// p.update(0x100, true);
/// assert!(p.predict(0x100)); // trained taken
/// ```
#[derive(Debug, Clone)]
pub struct TwoBitPredictor {
    counters: Vec<u8>,
    hits: u64,
    lookups: u64,
}

impl TwoBitPredictor {
    /// Creates a predictor with `entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive power of two.
    pub fn new(entries: usize) -> TwoBitPredictor {
        assert!(entries.is_power_of_two() && entries > 0, "entries must be a power of two");
        TwoBitPredictor { counters: vec![1; entries], hits: 0, lookups: 0 }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.counters.len() - 1)
    }

    /// Predicted direction for the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Predicts and trains in one step, returning the prediction made before
    /// training. Tracks accuracy statistics.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let predicted = self.predict(pc);
        self.lookups += 1;
        if predicted == taken {
            self.hits += 1;
        }
        self.update(pc, taken);
        predicted
    }

    /// Trains the counter for `pc` with the actual outcome.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Fraction of predictions that were correct (1.0 when none were made).
    pub fn accuracy(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Number of predictions made through [`TwoBitPredictor::predict_and_update`].
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Correct predictions made so far (checkpoint encoding).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// The raw counter table (checkpoint encoding; each value is 0..=3).
    pub fn counters(&self) -> &[u8] {
        &self.counters
    }

    /// Rebuilds a predictor from [`TwoBitPredictor::counters`] and the
    /// accuracy statistics. Returns `None` if the table size is not a
    /// positive power of two or any counter exceeds 3.
    pub fn restore(counters: Vec<u8>, hits: u64, lookups: u64) -> Option<TwoBitPredictor> {
        if !counters.len().is_power_of_two() || counters.iter().any(|&c| c > 3) {
            return None;
        }
        Some(TwoBitPredictor { counters, hits, lookups })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_both_directions() {
        let mut p = TwoBitPredictor::new(16);
        for _ in 0..10 {
            p.update(0, true);
        }
        assert!(p.predict(0));
        p.update(0, false);
        assert!(p.predict(0), "strongly taken needs two not-takens");
        p.update(0, false);
        assert!(!p.predict(0));
    }

    #[test]
    fn accuracy_tracking() {
        let mut p = TwoBitPredictor::new(16);
        // Always-taken branch: first two predictions wrong (cold counter at 1).
        for _ in 0..10 {
            p.predict_and_update(0x40, true);
        }
        assert_eq!(p.lookups(), 10);
        assert!(p.accuracy() >= 0.8, "accuracy {}", p.accuracy());
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut p = TwoBitPredictor::new(16);
        p.update(0x0, true);
        p.update(0x0, true);
        assert!(p.predict(0x0));
        assert!(!p.predict(0x4), "neighbouring pc unaffected");
    }

    #[test]
    fn aliasing_wraps() {
        let mut p = TwoBitPredictor::new(4);
        p.update(0x0, true);
        p.update(0x0, true);
        assert!(p.predict(16 * 4), "pc aliases onto the same counter");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = TwoBitPredictor::new(3);
    }

    #[test]
    fn restore_round_trip_continues_identically() {
        let mut p = TwoBitPredictor::new(16);
        for i in 0..20 {
            p.predict_and_update(i * 4, i % 3 != 0);
        }
        let mut q = TwoBitPredictor::restore(p.counters().to_vec(), p.hits(), p.lookups())
            .expect("valid state");
        assert_eq!(q.accuracy(), p.accuracy());
        for i in 0..20 {
            assert_eq!(
                q.predict_and_update(i * 4, i % 2 == 0),
                p.predict_and_update(i * 4, i % 2 == 0)
            );
        }
    }

    #[test]
    fn restore_rejects_bad_state() {
        assert!(TwoBitPredictor::restore(vec![1; 3], 0, 0).is_none(), "non power of two");
        assert!(TwoBitPredictor::restore(vec![4; 4], 0, 0).is_none(), "counter out of range");
    }
}
