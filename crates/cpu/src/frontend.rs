//! Shared instruction-fetch front end.
//!
//! Both processor models fetch along the **architecturally correct path**:
//! instructions are executed functionally (through [`imo_isa::exec`]) in
//! program order at fetch time, with the timing model's cache hierarchy
//! acting as the [`MissOracle`]. Control-flow surprises — mispredicted
//! branches, taken `bmiss` instructions, and informing traps — do not fetch
//! wrong-path instructions; instead fetch *blocks* until the surprising
//! instruction resolves in the timing model, which reproduces the
//! misprediction/trap penalty. This "correct-path-with-bubbles" discipline is
//! what keeps informing-memory outcomes (which are architecturally visible)
//! deterministic.

use std::collections::VecDeque;

use imo_faults::HandlerFaults;
use imo_isa::exec::{ArchState, ControlFlow, ExecError, Executor, MissDepth, MissOracle};
use imo_isa::{BlockCache, Instr, Program};
use imo_mem::{HitLevel, MemoryHierarchy, ProbeResult};
use imo_obs::{EventKind, Recorder};
use imo_util::json::Json;
use imo_util::snapshot::{self, Snapshot, SnapshotError};

use crate::config::TrapModel;
use crate::predictor::TwoBitPredictor;

/// What (if anything) the front end is waiting on for this instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Resolve {
    /// Fetch continued past this instruction.
    #[default]
    None,
    /// Fetch blocks until this instruction's outcome is known at execute
    /// (mispredicted branch; taken `bmiss`; informing load trap under
    /// [`TrapModel::Branch`]).
    AtExecute,
    /// Fetch blocks until this instruction graduates (informing trap under
    /// [`TrapModel::Exception`]; informing store traps, which probe at
    /// commit).
    AtGraduate,
}

/// A fetched, functionally-executed instruction handed to a timing engine.
#[derive(Debug, Clone, Copy)]
pub struct Fetched {
    /// Dynamic sequence number (program order).
    pub seq: u64,
    /// Instruction address.
    pub pc: u64,
    /// The instruction.
    pub instr: Instr,
    /// Cycle the instruction was fetched.
    pub fetch_cycle: u64,
    /// Data-cache probe outcome for loads/stores/prefetches.
    pub probe: Option<ProbeResult>,
    /// This informing operation missed and trapped to its handler.
    pub informing_trap: bool,
    /// What the front end is blocked on.
    pub resolve: Resolve,
    /// Sequence number of the most recent earlier data reference — the
    /// producer of the cache-outcome condition code (set for `bmiss`).
    pub cc_dep: Option<u64>,
    /// Whether this is a conditional branch that consumed a predictor slot.
    pub is_cond_branch: bool,
}

/// A batch of consecutive *plain* instructions (no memory access, no
/// control transfer) fetched in one cycle: `len` instructions starting at
/// sequence number `seq`, address `pc`, and block-cache index `idx`. Every
/// [`Fetched`] field a plain instruction would carry is derivable from
/// these five words (`probe: None`, `resolve: None`, no trap, no
/// condition-code dependence), so hot consumers can keep runs compact and
/// re-materialize full entries only at checkpoint boundaries.
#[derive(Debug, Clone, Copy)]
pub struct PlainRun {
    /// Sequence number of the first instruction in the run.
    pub seq: u64,
    /// Address of the first instruction.
    pub pc: u64,
    /// Cycle the whole run was fetched.
    pub fetch_cycle: u64,
    /// Block-cache (= text) index of the first instruction.
    pub idx: u32,
    /// Number of instructions remaining in the run.
    pub len: u32,
}

/// Destination of [`FrontEnd::fetch_fast`]: either a flat
/// `VecDeque<Fetched>` (every instruction materialized, as the generic
/// `fetch` produces) or a split structure that keeps plain runs compact.
/// Monomorphized, so the flat impl compiles to exactly the previous code.
pub trait FetchSink {
    /// `k` plain instructions at `instrs[idx..idx + k]`, sequence numbers
    /// `seq0..seq0 + k`, first address `pc`, all fetched at `cycle`.
    fn push_plain(&mut self, instrs: &[Instr], idx: usize, pc: u64, seq0: u64, k: u32, cycle: u64);
    /// One fully-materialized entry (memory op, control transfer, or any
    /// other batch-breaking instruction).
    fn push_full(&mut self, f: Fetched);
}

impl FetchSink for VecDeque<Fetched> {
    fn push_plain(&mut self, instrs: &[Instr], idx: usize, pc: u64, seq0: u64, k: u32, cycle: u64) {
        for i in 0..k as usize {
            self.push_back(Fetched {
                seq: seq0 + i as u64,
                pc: pc + 4 * i as u64,
                instr: instrs[idx + i],
                fetch_cycle: cycle,
                probe: None,
                informing_trap: false,
                resolve: Resolve::None,
                cc_dep: None,
                is_cond_branch: false,
            });
        }
    }

    fn push_full(&mut self, f: Fetched) {
        self.push_back(f);
    }
}

/// Adapter presenting the timing hierarchy as the executor's miss oracle.
/// Alongside the probe outcome it captures the effective address and
/// whether the probe was a software prefetch, for the attribution events.
struct HierOracle<'a> {
    hier: &'a mut MemoryHierarchy,
    last: Option<ProbeResult>,
    last_addr: u64,
    last_prefetch: bool,
}

impl MissOracle for HierOracle<'_> {
    fn probe(&mut self, addr: u64, is_store: bool) -> MissDepth {
        let r = self.hier.probe_data(addr, is_store);
        self.last = Some(r);
        self.last_addr = addr;
        self.last_prefetch = false;
        match r.level {
            HitLevel::L1 => MissDepth::Hit,
            HitLevel::L2 => MissDepth::L1Miss,
            HitLevel::Memory => MissDepth::MemMiss,
        }
    }

    fn prefetch(&mut self, addr: u64) {
        let r = self.hier.probe_prefetch(addr);
        self.last = Some(r);
        self.last_addr = addr;
        self.last_prefetch = true;
    }
}

/// The provenance bit tracked for a register in the pointer-chase mask.
fn reg_bit(r: imo_isa::Reg) -> u64 {
    1u64 << r.logical()
}

/// The shared fetch engine.
#[derive(Debug)]
pub struct FrontEnd<'p> {
    exec: Executor<'p>,
    pred: TwoBitPredictor,
    trap_model: TrapModel,
    /// Earliest cycle fetch may proceed (taken-branch redirects, I-misses).
    resume_at: u64,
    /// Sequence number whose resolution fetch is blocked on.
    blocked_on: Option<u64>,
    /// The current block is an informing-trap redirect (handler dispatch),
    /// not a branch mispredict — drives CPI handler-cycle attribution.
    blocked_trap: bool,
    halted: bool,
    next_seq: u64,
    /// Line currently in the fetch buffer (avoids re-probing the I-cache).
    cur_line: Option<u64>,
    last_mem_seq: Option<u64>,
    mispredictions: u64,
    informing_traps: u64,
    line_bytes: u64,
    /// Fault schedule for informing-trap dispatches (None = perfect machine).
    handler_faults: Option<HandlerFaults>,
    /// Consecutive faulty dispatches before informing traps are disabled
    /// (0 = never degrade).
    degrade_after: u32,
    consecutive_faults: u32,
    handler_fault_count: u64,
    degraded: bool,
    /// Extra redirect penalty charged when the given sequence number
    /// resolves (the timing cost of the most recent handler fault).
    pending_penalty: Option<(u64, u64)>,
    /// Pointer-chase provenance: bit `Reg::logical()` is set while the
    /// register's most recent writer was a load. Purely observational —
    /// only feeds `ptr_base` on recorded data-access events.
    reg_from_load: u64,
    /// Pre-decoded block table for the fast fetch path (None = per-
    /// instruction fetch only). Pure acceleration state — never
    /// snapshotted.
    blocks: Option<&'p BlockCache>,
    /// Speed counters for the fast path (never snapshotted; flushed to the
    /// process-global [`crate::speed`] counters at run end).
    stats: FetchStats,
}

/// Fast-path fetch counters, accumulated per run and flushed to
/// [`crate::speed`] by the cores. Excluded from checkpoints: they describe
/// how the simulator ran, not what it simulated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Fetch-group formations through the fast path.
    pub groups: u64,
    /// Groups fully served from within a single cached basic block.
    pub block_groups: u64,
    /// Instructions streamed through the plain-run batch path
    /// (`Executor::step_block`).
    pub plain_instrs: u64,
    /// Total instructions fetched through the fast path.
    pub instrs: u64,
}

impl<'p> FrontEnd<'p> {
    /// Creates a front end positioned at the program's entry.
    pub fn new(
        program: &'p Program,
        predictor_entries: usize,
        trap_model: TrapModel,
        line_bytes: u64,
    ) -> FrontEnd<'p> {
        FrontEnd {
            exec: Executor::new(program),
            pred: TwoBitPredictor::new(predictor_entries),
            trap_model,
            resume_at: 0,
            blocked_on: None,
            blocked_trap: false,
            halted: false,
            next_seq: 0,
            cur_line: None,
            last_mem_seq: None,
            mispredictions: 0,
            informing_traps: 0,
            line_bytes,
            handler_faults: None,
            degrade_after: 0,
            consecutive_faults: 0,
            handler_fault_count: 0,
            degraded: false,
            pending_penalty: None,
            reg_from_load: 0,
            blocks: None,
            stats: FetchStats::default(),
        }
    }

    /// Attaches a pre-decoded block table, enabling [`FrontEnd::fetch_fast`]
    /// to batch straight-line hit runs. The cache must have been built from
    /// the same program this front end executes.
    pub fn attach_blocks(&mut self, cache: &'p BlockCache) {
        debug_assert_eq!(cache.len(), self.exec.program().len());
        self.blocks = Some(cache);
    }

    /// Fast-path fetch counters accumulated so far this run.
    pub fn stats(&self) -> FetchStats {
        self.stats
    }

    /// Arms miss-handler fault injection: each informing-trap dispatch draws
    /// from `faults`, and after `degrade_after` consecutive faulty dispatches
    /// the machine suppresses further informing traps (graceful degradation).
    /// Pass `degrade_after == 0` to never degrade.
    pub fn set_handler_faults(&mut self, faults: HandlerFaults, degrade_after: u32) {
        self.handler_faults = Some(faults);
        self.degrade_after = degrade_after;
    }

    /// Injected handler faults suffered so far.
    pub fn handler_faults(&self) -> u64 {
        self.handler_fault_count
    }

    /// Whether the machine has degraded (informing traps suppressed).
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Whether `halt` has been fetched (the pipeline may still be draining).
    #[inline]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Consumes the front end, yielding the final architectural state
    /// (registers and data memory after the run).
    pub fn into_state(self) -> imo_isa::exec::ArchState {
        self.exec.into_state()
    }

    /// Mispredicted conditional branches so far.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Informing traps (including taken `bmiss`) so far.
    pub fn informing_traps(&self) -> u64 {
        self.informing_traps
    }

    /// Conditional-branch prediction accuracy so far.
    pub fn branch_accuracy(&self) -> f64 {
        self.pred.accuracy()
    }

    /// The sequence number fetch is currently blocked on, if any.
    #[inline]
    pub fn blocked_on(&self) -> Option<u64> {
        self.blocked_on
    }

    /// Whether fetch is blocked on an informing-trap resolution (handler
    /// dispatch in flight) rather than a branch mispredict.
    #[inline]
    pub fn blocked_on_trap(&self) -> bool {
        self.blocked_on.is_some() && self.blocked_trap
    }

    /// Earliest cycle at which fetch can proceed (meaningful when not
    /// blocked on a sequence number).
    #[inline]
    pub fn resume_at(&self) -> u64 {
        self.resume_at
    }

    /// Whether a fetch call at `cycle` could deliver anything — the same
    /// guard [`FrontEnd::fetch`] and [`FrontEnd::fetch_fast`] apply on
    /// entry, exposed so hot core loops can skip the call entirely.
    #[inline]
    pub fn fetch_ready(&self, cycle: u64) -> bool {
        !self.halted && self.blocked_on.is_none() && cycle >= self.resume_at
    }

    /// Unblocks fetch: the instruction `seq` resolved at `cycle`. Fetch
    /// restarts `1 + redirect_penalty` cycles later.
    pub fn resolve(&mut self, seq: u64, cycle: u64, redirect_penalty: u64) {
        if self.blocked_on == Some(seq) {
            self.blocked_on = None;
            self.blocked_trap = false;
            // An injected handler fault on this dispatch stretches the
            // redirect by its penalty (overrun bubbles / MHAR reload stall).
            let extra = match self.pending_penalty.take() {
                Some((s, extra)) if s == seq => extra,
                other => {
                    self.pending_penalty = other;
                    0
                }
            };
            self.resume_at = self.resume_at.max(cycle + 1 + redirect_penalty + extra);
        }
    }

    /// Encodes the front end's entire mutable state (architectural state,
    /// predictor table, fetch-blocking bookkeeping, fault-stream position) as
    /// a checkpoint body fragment for [`FrontEnd::restore`].
    pub(crate) fn encode(&self) -> Json {
        let pred: String = self.pred.counters().iter().map(|&c| char::from(b'0' + c)).collect();
        let (pending_seq, pending_extra) = match self.pending_penalty {
            Some((s, e)) => (Some(s), Some(e)),
            None => (None, None),
        };
        Json::obj([
            ("arch", self.exec.state().encode()),
            ("instret", snapshot::u64_json(self.exec.instret())),
            ("pred", Json::Str(pred)),
            ("pred_hits", snapshot::u64_json(self.pred.hits())),
            ("pred_lookups", snapshot::u64_json(self.pred.lookups())),
            ("resume_at", snapshot::u64_json(self.resume_at)),
            ("blocked_on", snapshot::opt_u64_json(self.blocked_on)),
            ("blocked_trap", Json::Bool(self.blocked_trap)),
            ("halted", Json::Bool(self.halted)),
            ("next_seq", snapshot::u64_json(self.next_seq)),
            ("cur_line", snapshot::opt_u64_json(self.cur_line)),
            ("last_mem_seq", snapshot::opt_u64_json(self.last_mem_seq)),
            ("mispredictions", snapshot::u64_json(self.mispredictions)),
            ("informing_traps", snapshot::u64_json(self.informing_traps)),
            (
                "faults_pos",
                snapshot::opt_u64_json(self.handler_faults.as_ref().map(HandlerFaults::position)),
            ),
            ("consecutive_faults", snapshot::u64_json(u64::from(self.consecutive_faults))),
            ("handler_fault_count", snapshot::u64_json(self.handler_fault_count)),
            ("degraded", Json::Bool(self.degraded)),
            ("pending_seq", snapshot::opt_u64_json(pending_seq)),
            ("pending_extra", snapshot::opt_u64_json(pending_extra)),
            ("reg_from_load", snapshot::u64_json(self.reg_from_load)),
        ])
    }

    /// Rebuilds a front end from a [`FrontEnd::encode`] fragment. The
    /// configuration-derived arguments (`predictor_entries`, `trap_model`,
    /// `line_bytes`, the fault stream) must come from the same session
    /// configuration the checkpoint was taken under; mismatches surface as
    /// [`SnapshotError::Bad`].
    pub(crate) fn restore(
        program: &'p Program,
        predictor_entries: usize,
        trap_model: TrapModel,
        line_bytes: u64,
        faults: Option<(HandlerFaults, u32)>,
        data: &Json,
    ) -> Result<FrontEnd<'p>, SnapshotError> {
        let state = ArchState::decode(snapshot::field(data, "arch")?)?;
        let instret = snapshot::get_u64(data, "instret")?;
        let pred_str = snapshot::get_str(data, "pred")?;
        if pred_str.len() != predictor_entries || !pred_str.is_ascii() {
            return Err(SnapshotError::Bad("pred"));
        }
        let counters: Vec<u8> = pred_str.bytes().map(|b| b.wrapping_sub(b'0')).collect();
        let pred = TwoBitPredictor::restore(
            counters,
            snapshot::get_u64(data, "pred_hits")?,
            snapshot::get_u64(data, "pred_lookups")?,
        )
        .ok_or(SnapshotError::Bad("pred"))?;
        let faults_pos = snapshot::get_opt_u64(data, "faults_pos")?;
        let (handler_faults, degrade_after) = match (faults, faults_pos) {
            (Some((mut stream, degrade)), Some(pos)) => {
                stream.seek(pos);
                (Some(stream), degrade)
            }
            (None, None) => (None, 0),
            // A checkpoint taken under fault injection cannot resume without
            // the same fault plan (and vice versa).
            _ => return Err(SnapshotError::Bad("faults_pos")),
        };
        let pending_penalty = match (
            snapshot::get_opt_u64(data, "pending_seq")?,
            snapshot::get_opt_u64(data, "pending_extra")?,
        ) {
            (Some(s), Some(e)) => Some((s, e)),
            (None, None) => None,
            _ => return Err(SnapshotError::Bad("pending_seq")),
        };
        Ok(FrontEnd {
            exec: Executor::restore(program, state, instret),
            pred,
            trap_model,
            resume_at: snapshot::get_u64(data, "resume_at")?,
            blocked_on: snapshot::get_opt_u64(data, "blocked_on")?,
            blocked_trap: snapshot::get_bool(data, "blocked_trap")?,
            halted: snapshot::get_bool(data, "halted")?,
            next_seq: snapshot::get_u64(data, "next_seq")?,
            cur_line: snapshot::get_opt_u64(data, "cur_line")?,
            last_mem_seq: snapshot::get_opt_u64(data, "last_mem_seq")?,
            mispredictions: snapshot::get_u64(data, "mispredictions")?,
            informing_traps: snapshot::get_u64(data, "informing_traps")?,
            line_bytes,
            handler_faults,
            degrade_after,
            consecutive_faults: snapshot::get_u32(data, "consecutive_faults")?,
            handler_fault_count: snapshot::get_u64(data, "handler_fault_count")?,
            degraded: snapshot::get_bool(data, "degraded")?,
            pending_penalty,
            reg_from_load: snapshot::get_u64(data, "reg_from_load")?,
            blocks: None,
            stats: FetchStats::default(),
        })
    }

    /// Fetches up to `width` instructions at `cycle`, appending to `out`.
    ///
    /// Pass an event recorder through `obs` to stream fetch, cache-outcome,
    /// trap-entry and handler-fault events; `None` records nothing and is
    /// bit-identical to an unobserved run.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError`] if the architectural path leaves the text
    /// segment (a malformed program).
    pub fn fetch(
        &mut self,
        cycle: u64,
        width: u32,
        hier: &mut MemoryHierarchy,
        out: &mut Vec<Fetched>,
        mut obs: Option<&mut Recorder>,
    ) -> Result<(), ExecError> {
        if self.halted || self.blocked_on.is_some() || cycle < self.resume_at {
            return Ok(());
        }
        self.resume_at = cycle; // any older redirect target is now stale
        for _ in 0..width {
            let pc = self.exec.state().pc();

            // Instruction-cache line crossing (with next-line stream
            // prefetch, so straight-line code misses once per redirect, not
            // once per line).
            let line = pc & !(self.line_bytes - 1);
            if self.cur_line != Some(line) {
                let lvl = hier.probe_inst(pc);
                hier.prefetch_inst(line + self.line_bytes);
                self.cur_line = Some(line);
                if lvl != HitLevel::L1 {
                    imo_obs::record(&mut obs, cycle, EventKind::InstMiss { pc });
                    let ready = hier.schedule_inst(lvl, cycle);
                    if ready > cycle {
                        self.resume_at = ready;
                        break;
                    }
                }
            }

            let mut oracle = HierOracle { hier, last: None, last_addr: 0, last_prefetch: false };
            let info = self.exec.step(&mut oracle)?;
            let probe = oracle.last;
            let (probe_addr, probe_prefetch) = (oracle.last_addr, oracle.last_prefetch);

            // Pointer-chase provenance: a data reference whose base register
            // was last written by a load is chasing a pointer. Loads taint
            // their destination; any other writer cleans it.
            let ptr_base = match info.instr {
                Instr::Load { base, .. }
                | Instr::Store { base, .. }
                | Instr::Prefetch { base, .. } => self.reg_from_load & reg_bit(base) != 0,
                _ => false,
            };
            if let Some(rd) = info.instr.dest() {
                if !rd.is_zero() {
                    if matches!(info.instr, Instr::Load { .. }) {
                        self.reg_from_load |= reg_bit(rd);
                    } else {
                        self.reg_from_load &= !reg_bit(rd);
                    }
                }
            }

            let seq = self.next_seq;
            self.next_seq += 1;
            let mut f = Fetched {
                seq,
                pc,
                instr: info.instr,
                fetch_cycle: cycle,
                probe,
                informing_trap: false,
                resolve: Resolve::None,
                cc_dep: None,
                is_cond_branch: matches!(info.instr, Instr::Branch { .. }),
            };
            if matches!(info.instr, Instr::BranchOnMiss { .. } | Instr::BranchOnMemMiss { .. }) {
                f.cc_dep = self.last_mem_seq;
            }
            if info.instr.is_data_ref() {
                self.last_mem_seq = Some(seq);
            }
            imo_obs::record(&mut obs, cycle, EventKind::Fetch { seq, pc });
            if let Some(p) = probe {
                imo_obs::record(
                    &mut obs,
                    cycle,
                    EventKind::DataAccess {
                        served: p.served_by(),
                        pc,
                        addr: probe_addr,
                        line: p.line,
                        store: p.is_store,
                        prefetch: probe_prefetch,
                        ptr_base,
                    },
                );
            }

            match info.control {
                ControlFlow::Halt => {
                    self.halted = true;
                    out.push(f);
                    break;
                }
                ControlFlow::Sequential => {
                    out.push(f);
                }
                ControlFlow::NotTaken => {
                    if f.is_cond_branch {
                        let predicted = self.pred.predict_and_update(pc, false);
                        if predicted {
                            // Predicted taken, actually fell through.
                            self.mispredictions += 1;
                            f.resolve = Resolve::AtExecute;
                            self.blocked_on = Some(seq);
                            out.push(f);
                            break;
                        }
                        out.push(f);
                    } else {
                        // bmiss on a hit: statically predicted not-taken, correct.
                        out.push(f);
                    }
                }
                ControlFlow::Taken(_) => match info.instr {
                    Instr::Branch { .. } => {
                        let predicted = self.pred.predict_and_update(pc, true);
                        if predicted {
                            // Correctly-predicted taken branch: redirect costs
                            // the rest of this fetch cycle only (BTB assumed).
                            out.push(f);
                            self.resume_at = cycle + 1;
                            break;
                        }
                        self.mispredictions += 1;
                        f.resolve = Resolve::AtExecute;
                        self.blocked_on = Some(seq);
                        out.push(f);
                        break;
                    }
                    Instr::BranchOnMiss { .. } | Instr::BranchOnMemMiss { .. } => {
                        // Taken bmiss: statically predicted not-taken, so this
                        // is always a mispredict-style redirect (the paper's
                        // "normal branch mispredict penalty only applies to
                        // the cache miss case").
                        self.informing_traps += 1;
                        imo_obs::record(&mut obs, cycle, EventKind::TrapEnter { seq, pc });
                        f.resolve = Resolve::AtExecute;
                        self.blocked_on = Some(seq);
                        self.blocked_trap = true;
                        out.push(f);
                        break;
                    }
                    // Direct jumps, returns and handler returns are predicted
                    // (BTB / return-address stack): one-cycle fetch redirect.
                    _ => {
                        out.push(f);
                        self.resume_at = cycle + 1;
                        break;
                    }
                },
                ControlFlow::InformingTrap { .. } => {
                    self.informing_traps += 1;
                    f.informing_trap = true;
                    imo_obs::record(&mut obs, cycle, EventKind::TrapEnter { seq, pc });
                    if let Some(stream) = self.handler_faults.as_mut() {
                        match stream.draw() {
                            Some(fault) => {
                                self.handler_fault_count += 1;
                                self.consecutive_faults += 1;
                                self.pending_penalty = Some((seq, fault.penalty_cycles()));
                                imo_obs::record(
                                    &mut obs,
                                    cycle,
                                    EventKind::HandlerFault {
                                        seq,
                                        penalty: fault.penalty_cycles(),
                                    },
                                );
                                if self.degrade_after != 0
                                    && self.consecutive_faults >= self.degrade_after
                                    && !self.degraded
                                {
                                    // Enough consecutive faulty dispatches:
                                    // give up on informing traps for the rest
                                    // of the run. This trap still pays its
                                    // penalty; later informing ops behave
                                    // like normal ones.
                                    self.degraded = true;
                                    self.exec.state_mut().set_informing_suppressed(true);
                                }
                            }
                            None => self.consecutive_faults = 0,
                        }
                    }
                    let is_store = matches!(info.instr, Instr::Store { .. });
                    f.resolve = if self.trap_model == TrapModel::Branch && !is_store {
                        Resolve::AtExecute
                    } else {
                        Resolve::AtGraduate
                    };
                    self.blocked_on = Some(seq);
                    self.blocked_trap = true;
                    out.push(f);
                    break;
                }
            }
        }
        Ok(())
    }

    /// The unobserved fast twin of [`FrontEnd::fetch`]: consumes the
    /// pre-decoded block table to stream runs of *plain* instructions (no
    /// memory access, no control transfer) through
    /// [`Executor::step_block`] in one batch, falling back to the exact
    /// per-instruction path at every batch-breaking instruction.
    ///
    /// Bit-identical to `fetch(cycle, width, hier, out, None)` by
    /// construction: the batch path only covers instructions for which the
    /// generic path performs no probe, no predictor access, no trap or
    /// fault-plan interaction, and no fetch break — everything else takes
    /// the same per-instruction arms as `fetch` (minus event recording,
    /// which is the caller's signal to use `fetch` instead).
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError`] if the architectural path leaves the text
    /// segment (a malformed program).
    pub fn fetch_fast<S: FetchSink>(
        &mut self,
        cycle: u64,
        width: u32,
        hier: &mut MemoryHierarchy,
        out: &mut S,
    ) -> Result<(), ExecError> {
        let Some(cache) = self.blocks else {
            // No block cache attached: take the generic path (cold).
            let mut buf = Vec::with_capacity(width as usize);
            self.fetch(cycle, width, hier, &mut buf, None)?;
            for f in buf {
                out.push_full(f);
            }
            return Ok(());
        };
        if self.halted || self.blocked_on.is_some() || cycle < self.resume_at {
            return Ok(());
        }
        self.resume_at = cycle; // any older redirect target is now stale
        self.stats.groups += 1;
        let start_block = cache.index_of(self.exec.state().pc()).map(|i| cache.block_index(i));
        let mut same_block = true;
        let mut fetched = 0u32;
        while fetched < width {
            let pc = self.exec.state().pc();

            // Instruction-cache line crossing — identical to `fetch`.
            let line = pc & !(self.line_bytes - 1);
            if self.cur_line != Some(line) {
                let lvl = hier.probe_inst(pc);
                hier.prefetch_inst(line + self.line_bytes);
                self.cur_line = Some(line);
                if lvl != HitLevel::L1 {
                    let ready = hier.schedule_inst(lvl, cycle);
                    if ready > cycle {
                        self.resume_at = ready;
                        break;
                    }
                }
            }

            let Some(idx) = cache.index_of(pc) else {
                return Err(ExecError::InvalidPc(pc));
            };
            same_block &= Some(cache.block_index(idx)) == start_block;

            let run_len = cache.plain_run_len(idx);
            if run_len != 0 {
                // Plain run: batch up to the group limit, the end of the
                // I-cache line (the generic path re-probes at each line
                // crossing), and the end of the plain run (pre-sized at
                // block-cache build — no per-instruction meta scan).
                let line_limit = ((line + self.line_bytes - pc) / 4) as u32;
                let k = (width - fetched).min(line_limit).min(run_len);
                // Plain instructions never consult the oracle, never touch
                // control, and never miss — the batch runs to completion.
                self.exec.step_plain_run(k)?;
                // Plain writers are never loads: clean their pointer-chase
                // taint bits in one or-fold over the pre-built dest table.
                let mut written = 0u64;
                for b in cache.dest_bits(idx, k as usize) {
                    written |= b;
                }
                self.reg_from_load &= !written;
                let seq0 = self.next_seq;
                self.next_seq += u64::from(k);
                out.push_plain(self.exec.program().instrs(), idx, pc, seq0, k, cycle);
                same_block &= Some(cache.block_index(idx + k as usize - 1)) == start_block;
                self.stats.plain_instrs += u64::from(k);
                fetched += k;
                continue;
            }

            // Batch-breaking instruction: take the generic path's arms,
            // minus event recording.
            let mut oracle = HierOracle { hier, last: None, last_addr: 0, last_prefetch: false };
            let info = self.exec.step(&mut oracle)?;
            let probe = oracle.last;

            if let Some(rd) = info.instr.dest() {
                if !rd.is_zero() {
                    if matches!(info.instr, Instr::Load { .. }) {
                        self.reg_from_load |= reg_bit(rd);
                    } else {
                        self.reg_from_load &= !reg_bit(rd);
                    }
                }
            }

            let seq = self.next_seq;
            self.next_seq += 1;
            let mut f = Fetched {
                seq,
                pc,
                instr: info.instr,
                fetch_cycle: cycle,
                probe,
                informing_trap: false,
                resolve: Resolve::None,
                cc_dep: None,
                is_cond_branch: matches!(info.instr, Instr::Branch { .. }),
            };
            if matches!(info.instr, Instr::BranchOnMiss { .. } | Instr::BranchOnMemMiss { .. }) {
                f.cc_dep = self.last_mem_seq;
            }
            if info.instr.is_data_ref() {
                self.last_mem_seq = Some(seq);
            }
            fetched += 1;

            match info.control {
                ControlFlow::Halt => {
                    self.halted = true;
                    out.push_full(f);
                    break;
                }
                ControlFlow::Sequential => {
                    out.push_full(f);
                }
                ControlFlow::NotTaken => {
                    if f.is_cond_branch {
                        let predicted = self.pred.predict_and_update(pc, false);
                        if predicted {
                            self.mispredictions += 1;
                            f.resolve = Resolve::AtExecute;
                            self.blocked_on = Some(seq);
                            out.push_full(f);
                            break;
                        }
                        out.push_full(f);
                    } else {
                        out.push_full(f);
                    }
                }
                ControlFlow::Taken(_) => match info.instr {
                    Instr::Branch { .. } => {
                        let predicted = self.pred.predict_and_update(pc, true);
                        if predicted {
                            out.push_full(f);
                            self.resume_at = cycle + 1;
                            break;
                        }
                        self.mispredictions += 1;
                        f.resolve = Resolve::AtExecute;
                        self.blocked_on = Some(seq);
                        out.push_full(f);
                        break;
                    }
                    Instr::BranchOnMiss { .. } | Instr::BranchOnMemMiss { .. } => {
                        self.informing_traps += 1;
                        f.resolve = Resolve::AtExecute;
                        self.blocked_on = Some(seq);
                        self.blocked_trap = true;
                        out.push_full(f);
                        break;
                    }
                    _ => {
                        out.push_full(f);
                        self.resume_at = cycle + 1;
                        break;
                    }
                },
                ControlFlow::InformingTrap { .. } => {
                    self.informing_traps += 1;
                    f.informing_trap = true;
                    if let Some(stream) = self.handler_faults.as_mut() {
                        match stream.draw() {
                            Some(fault) => {
                                self.handler_fault_count += 1;
                                self.consecutive_faults += 1;
                                self.pending_penalty = Some((seq, fault.penalty_cycles()));
                                if self.degrade_after != 0
                                    && self.consecutive_faults >= self.degrade_after
                                    && !self.degraded
                                {
                                    self.degraded = true;
                                    self.exec.state_mut().set_informing_suppressed(true);
                                }
                            }
                            None => self.consecutive_faults = 0,
                        }
                    }
                    let is_store = matches!(info.instr, Instr::Store { .. });
                    f.resolve = if self.trap_model == TrapModel::Branch && !is_store {
                        Resolve::AtExecute
                    } else {
                        Resolve::AtGraduate
                    };
                    self.blocked_on = Some(seq);
                    self.blocked_trap = true;
                    out.push_full(f);
                    break;
                }
            }
        }
        self.stats.instrs += u64::from(fetched);
        if fetched > 0 && same_block {
            self.stats.block_groups += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::{Asm, Cond, Reg};
    use imo_mem::HierarchyConfig;

    fn hier() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::out_of_order())
    }

    fn fe(p: &Program) -> FrontEnd<'_> {
        FrontEnd::new(p, 256, TrapModel::Branch, 32)
    }

    fn straight_line() -> Program {
        let mut a = Asm::new();
        for _ in 0..6 {
            a.nop();
        }
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn fetches_up_to_width() {
        let p = straight_line();
        let mut f = fe(&p);
        let mut h = hier();
        let mut out = Vec::new();
        // Cycle 0: the first line misses in the I-cache -> nothing fetched.
        f.fetch(0, 4, &mut h, &mut out, None).unwrap();
        assert!(out.is_empty(), "cold I-miss blocks fetch");
        let resume = f.resume_at();
        assert!(resume > 0);
        f.fetch(resume, 4, &mut h, &mut out, None).unwrap();
        assert_eq!(out.len(), 4, "full width once the line arrives");
        out.clear();
        f.fetch(resume + 1, 4, &mut h, &mut out, None).unwrap();
        assert_eq!(out.len(), 3, "remaining nops + halt");
        assert!(f.halted());
    }

    #[test]
    fn straight_line_code_pays_one_i_miss_not_one_per_line() {
        // The next-line stream prefetcher must keep sequential fetch from
        // stalling a full memory latency on every 32-byte line.
        let mut a = Asm::new();
        for _ in 0..64 {
            a.nop(); // 8 lines of text
        }
        a.halt();
        let p = a.assemble().unwrap();
        let mut f = fe(&p);
        let mut h = hier();
        let mut out = Vec::new();
        let mut cycle = 0;
        let mut stall_events = 0;
        while !f.halted() && cycle < 10_000 {
            let before = out.len();
            f.fetch(cycle, 4, &mut h, &mut out, None).unwrap();
            if out.len() == before && f.blocked_on().is_none() {
                stall_events += 1;
                cycle = f.resume_at().max(cycle + 1);
            } else {
                cycle += 1;
            }
        }
        assert!(f.halted());
        assert_eq!(out.len(), 65);
        assert!(stall_events <= 2, "only the initial I-miss stalls: {stall_events}");
    }

    #[test]
    fn taken_branch_splits_fetch_groups() {
        let mut a = Asm::new();
        let t = a.label("t");
        a.jump(t);
        a.nop(); // skipped
        a.bind(t).unwrap();
        a.halt();
        let p = a.assemble().unwrap();
        let mut f = fe(&p);
        let mut h = hier();
        let mut out = Vec::new();
        f.fetch(0, 4, &mut h, &mut out, None).unwrap();
        let resume = f.resume_at();
        f.fetch(resume, 4, &mut h, &mut out, None).unwrap();
        assert_eq!(out.len(), 1, "jump ends its fetch group");
        out.clear();
        f.fetch(resume + 1, 4, &mut h, &mut out, None).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].instr, Instr::Halt);
    }

    #[test]
    fn mispredicted_branch_blocks_until_resolved() {
        // A branch that is taken on first encounter (cold predictor says
        // not-taken) -> mispredict.
        let mut a = Asm::new();
        let t = a.label("t");
        a.li(Reg::int(1), 1);
        a.branch(Cond::Eq, Reg::int(1), Reg::int(1), t);
        a.nop();
        a.bind(t).unwrap();
        a.halt();
        let p = a.assemble().unwrap();
        let mut f = fe(&p);
        let mut h = hier();
        let mut out = Vec::new();
        f.fetch(0, 4, &mut h, &mut out, None).unwrap();
        let resume = f.resume_at();
        f.fetch(resume, 4, &mut h, &mut out, None).unwrap();
        assert_eq!(out.len(), 2, "li + branch; blocked after mispredict");
        let bseq = out[1].seq;
        assert_eq!(out[1].resolve, Resolve::AtExecute);
        assert_eq!(f.blocked_on(), Some(bseq));
        assert_eq!(f.mispredictions(), 1);

        // Nothing fetched while blocked.
        out.clear();
        f.fetch(resume + 5, 4, &mut h, &mut out, None).unwrap();
        assert!(out.is_empty());

        // Resolve at resume+20 with 1-cycle redirect: fetch resumes 2 later.
        f.resolve(bseq, resume + 20, 1);
        f.fetch(resume + 21, 4, &mut h, &mut out, None).unwrap();
        assert!(out.is_empty());
        f.fetch(resume + 22, 4, &mut h, &mut out, None).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].instr, Instr::Halt);
    }

    #[test]
    fn informing_trap_blocks_and_reports() {
        let mut a = Asm::new();
        let hdl = a.label("h");
        a.set_mhar(hdl);
        a.li(Reg::int(1), 0x4000);
        a.load_inf(Reg::int(2), Reg::int(1), 0);
        a.halt();
        a.bind(hdl).unwrap();
        a.addi(Reg::int(10), Reg::int(10), 1);
        a.jump_mhrr();
        let p = a.assemble().unwrap();
        let mut f = fe(&p);
        let mut h = hier();
        let mut out = Vec::new();
        f.fetch(0, 4, &mut h, &mut out, None).unwrap();
        let resume = f.resume_at();
        f.fetch(resume, 4, &mut h, &mut out, None).unwrap();
        let trap = out.iter().find(|x| x.informing_trap).expect("trap fetched");
        assert_eq!(trap.resolve, Resolve::AtExecute, "branch trap model");
        assert_eq!(f.informing_traps(), 1);
        let tseq = trap.seq;

        f.resolve(tseq, resume + 30, 1);
        out.clear();
        f.fetch(resume + 32, 4, &mut h, &mut out, None).unwrap();
        // Handler instructions are the correct path after the trap.
        assert!(matches!(out[0].instr, Instr::Addi { .. }), "handler fetched: {:?}", out[0].instr);
    }

    #[test]
    fn exception_trap_model_resolves_at_graduate() {
        let mut a = Asm::new();
        let hdl = a.label("h");
        a.set_mhar(hdl);
        a.li(Reg::int(1), 0x4000);
        a.load_inf(Reg::int(2), Reg::int(1), 0);
        a.halt();
        a.bind(hdl).unwrap();
        a.jump_mhrr();
        let p = a.assemble().unwrap();
        let mut f = FrontEnd::new(&p, 256, TrapModel::Exception, 32);
        let mut h = hier();
        let mut out = Vec::new();
        f.fetch(0, 4, &mut h, &mut out, None).unwrap();
        let resume = f.resume_at();
        f.fetch(resume, 4, &mut h, &mut out, None).unwrap();
        let trap = out.iter().find(|x| x.informing_trap).expect("trap fetched");
        assert_eq!(trap.resolve, Resolve::AtGraduate);
    }

    #[test]
    fn bmiss_records_cc_dependence() {
        let mut a = Asm::new();
        let hdl = a.label("h");
        a.li(Reg::int(1), 0x4000);
        a.load(Reg::int(2), Reg::int(1), 0);
        a.branch_on_miss(hdl);
        a.halt();
        a.bind(hdl).unwrap();
        a.jump_mhrr();
        let p = a.assemble().unwrap();
        let mut f = fe(&p);
        let mut h = hier();
        let mut out = Vec::new();
        f.fetch(0, 4, &mut h, &mut out, None).unwrap();
        let resume = f.resume_at();
        f.fetch(resume, 4, &mut h, &mut out, None).unwrap();
        let bm = out
            .iter()
            .find(|x| matches!(x.instr, Instr::BranchOnMiss { .. }))
            .expect("bmiss fetched");
        let ld = out.iter().find(|x| matches!(x.instr, Instr::Load { .. })).expect("load fetched");
        assert_eq!(bm.cc_dep, Some(ld.seq));
        // The load cold-missed, so the bmiss is taken -> trap counted, blocked.
        assert_eq!(f.informing_traps(), 1);
        assert_eq!(bm.resolve, Resolve::AtExecute);
    }

    #[test]
    fn encode_restore_mid_block_continues_identically() {
        // Checkpoint while fetch is blocked on a mispredicted branch, restore
        // into a fresh front end, and drive both to completion in lockstep.
        let mut a = Asm::new();
        let t = a.label("t");
        a.li(Reg::int(1), 1);
        a.branch(Cond::Eq, Reg::int(1), Reg::int(1), t);
        a.nop();
        a.bind(t).unwrap();
        a.li(Reg::int(2), 0x4000);
        a.load(Reg::int(3), Reg::int(2), 0);
        a.halt();
        let p = a.assemble().unwrap();
        let mut f = fe(&p);
        let mut h = hier();
        let mut out = Vec::new();
        f.fetch(0, 4, &mut h, &mut out, None).unwrap();
        let resume = f.resume_at();
        f.fetch(resume, 4, &mut h, &mut out, None).unwrap();
        let bseq = f.blocked_on().expect("blocked on mispredict");

        let frag = f.encode();
        let text = frag.pretty();
        let parsed = imo_util::json::parse(&text).expect("parses");
        let mut g =
            FrontEnd::restore(&p, 256, TrapModel::Branch, 32, None, &parsed).expect("restores");
        assert_eq!(g.blocked_on(), Some(bseq));
        assert_eq!(g.mispredictions(), f.mispredictions());
        assert_eq!(g.encode().pretty(), text, "re-encode is byte-stable");

        let mut h2 = MemoryHierarchy::from_wire(&h.to_wire()).expect("hier restores");
        let (mut out_f, mut out_g) = (Vec::new(), Vec::new());
        f.resolve(bseq, resume + 10, 1);
        g.resolve(bseq, resume + 10, 1);
        for cycle in resume + 11..resume + 40 {
            f.fetch(cycle, 4, &mut h, &mut out_f, None).unwrap();
            g.fetch(cycle, 4, &mut h2, &mut out_g, None).unwrap();
        }
        assert!(f.halted() && g.halted());
        assert_eq!(out_f.len(), out_g.len());
        for (x, y) in out_f.iter().zip(&out_g) {
            assert_eq!(
                (x.seq, x.pc, x.fetch_cycle, x.resolve),
                (y.seq, y.pc, y.fetch_cycle, y.resolve)
            );
        }
    }

    #[test]
    fn restore_rejects_fault_plan_mismatch() {
        let p = straight_line();
        let f = fe(&p);
        let frag = f.encode();
        // Checkpoint taken without faults cannot resume with a fault stream.
        let faults = imo_faults::FaultPlan::new(imo_faults::FaultConfig {
            handler_overrun_rate: 0.5,
            ..imo_faults::FaultConfig::default()
        })
        .handlers();
        let r = FrontEnd::restore(&p, 256, TrapModel::Branch, 32, Some((faults, 0)), &frag);
        assert_eq!(r.err(), Some(SnapshotError::Bad("faults_pos")));
    }

    #[test]
    fn loads_carry_probe_results() {
        let mut a = Asm::new();
        a.li(Reg::int(1), 0x4000);
        a.load(Reg::int(2), Reg::int(1), 0);
        a.halt();
        let p = a.assemble().unwrap();
        let mut f = fe(&p);
        let mut h = hier();
        let mut out = Vec::new();
        f.fetch(0, 4, &mut h, &mut out, None).unwrap();
        let resume = f.resume_at();
        f.fetch(resume, 4, &mut h, &mut out, None).unwrap();
        let ld = out.iter().find(|x| x.instr.is_data_ref()).unwrap();
        let probe = ld.probe.expect("probe recorded");
        assert!(probe.level.is_l1_miss());
        assert!(!ld.informing_trap, "normal load never traps");
    }
}
