//! Processor model configuration (Table 1 of the paper).

use imo_isa::Instr;
use imo_mem::{HierarchyConfig, MshrMode};

/// How the out-of-order machine realises the low-overhead cache-miss trap
/// (§3.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrapModel {
    /// Treat the trap like a mispredicted branch: the handler is fetched as
    /// soon as the miss is detected at execute time. Costs shadow-checkpoint
    /// capacity (every informing memory operation holds a checkpoint while in
    /// flight).
    #[default]
    Branch,
    /// Treat the trap like an exception: the handler is fetched only when the
    /// informing operation reaches the head of the reorder buffer. Cheaper
    /// hardware, slower (the paper measured +7–9 % on `compress`).
    Exception,
}

/// Configuration of the out-of-order model (MIPS-R10000-like).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OooConfig {
    /// Instructions fetched, renamed and graduated per cycle.
    pub issue_width: u32,
    /// Reorder buffer entries.
    pub rob_entries: u32,
    /// Integer ALUs.
    pub int_units: u32,
    /// Floating-point units.
    pub fp_units: u32,
    /// Branch units.
    pub branch_units: u32,
    /// Memory (load/store) units.
    pub mem_units: u32,
    /// Maximum simultaneously-unresolved control speculations (the R10000's
    /// shadow-state limit of 3 predicted branches). With
    /// [`TrapModel::Branch`], informing memory operations also consume
    /// checkpoints (the §3.2 "3× shadow state" discussion).
    pub max_checkpoints: u32,
    /// Cycles between fetch and earliest issue (decode/rename depth).
    pub frontend_depth: u64,
    /// Extra cycles to restart fetch after a resolved misprediction or trap.
    pub redirect_penalty: u64,
    /// How informing traps are realised.
    pub trap_model: TrapModel,
    /// MSHR deallocation policy (§3.3).
    pub mshr_mode: MshrMode,
    /// Branch-predictor table entries (2-bit counters).
    pub predictor_entries: usize,
    /// Retired-store write-buffer entries.
    pub write_buffer: u32,
    /// Memory hierarchy parameters.
    pub hier: HierarchyConfig,
}

impl OooConfig {
    /// The paper's out-of-order configuration (Table 1).
    ///
    /// `max_checkpoints` is 12: the paper's §3.2 notes that treating every
    /// informing reference as a potential branch "will need about 3 times as
    /// much shadow state" as the R10000's 3 predicted branches, and its
    /// evaluation assumes that hardware is provided. Set it back to 3 (or 1)
    /// to measure the shadow-state pressure — the `ablation_checkpoints`
    /// bench does exactly that.
    pub fn paper() -> OooConfig {
        OooConfig {
            issue_width: 4,
            rob_entries: 32,
            int_units: 2,
            fp_units: 2,
            branch_units: 1,
            mem_units: 1,
            max_checkpoints: 12,
            frontend_depth: 3,
            redirect_penalty: 1,
            trap_model: TrapModel::Branch,
            mshr_mode: MshrMode::ExtendedLifetime,
            predictor_entries: 2048,
            write_buffer: 8,
            hier: HierarchyConfig::out_of_order(),
        }
    }

    /// Latency in cycles of `instr` on this machine (memory excluded).
    pub fn latency(&self, instr: &Instr) -> u64 {
        latency(instr, Model::OutOfOrder)
    }
}

impl Default for OooConfig {
    fn default() -> OooConfig {
        OooConfig::paper()
    }
}

/// Configuration of the in-order model (Alpha-21164-like).
///
/// Per Table 1, the in-order machine has no dedicated memory unit: loads and
/// stores issue down the integer pipes, as on the real 21164.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InOrderConfig {
    /// Instructions issued per cycle.
    pub issue_width: u32,
    /// Integer ALUs (also serve loads/stores).
    pub int_units: u32,
    /// Floating-point units.
    pub fp_units: u32,
    /// Branch units.
    pub branch_units: u32,
    /// Cycles between fetch and earliest issue.
    pub frontend_depth: u64,
    /// Extra cycles to restart fetch after a resolved misprediction or
    /// informing trap (the §3.1 replay-trap path).
    pub redirect_penalty: u64,
    /// Cycles lost to the replay trap when a consumer was issued at hit
    /// timing but the load missed (§3.1). The restarted instruction still
    /// waits for the data; this penalty only matters when it exceeds the
    /// remaining miss latency.
    pub replay_trap_penalty: u64,
    /// Branch-predictor table entries (2-bit counters).
    pub predictor_entries: usize,
    /// Memory hierarchy parameters.
    pub hier: HierarchyConfig,
}

impl InOrderConfig {
    /// The paper's in-order configuration (Table 1).
    pub fn paper() -> InOrderConfig {
        InOrderConfig {
            issue_width: 4,
            int_units: 2,
            fp_units: 2,
            branch_units: 1,
            frontend_depth: 3,
            redirect_penalty: 1,
            replay_trap_penalty: 6,
            predictor_entries: 2048,
            hier: HierarchyConfig::in_order(),
        }
    }

    /// Latency in cycles of `instr` on this machine (memory excluded).
    pub fn latency(&self, instr: &Instr) -> u64 {
        latency(instr, Model::InOrder)
    }
}

impl Default for InOrderConfig {
    fn default() -> InOrderConfig {
        InOrderConfig::paper()
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Model {
    OutOfOrder,
    InOrder,
}

/// Table 1 functional-unit latencies. All units are fully pipelined (as the
/// paper assumes).
fn latency(instr: &Instr, model: Model) -> u64 {
    use Instr::*;
    match instr {
        Mul { .. } => 12,
        Div { .. } => 76,
        Fdiv { .. } => {
            if model == Model::OutOfOrder {
                15
            } else {
                17
            }
        }
        Fsqrt { .. } => 20,
        Fadd { .. }
        | Fsub { .. }
        | Fmul { .. }
        | Fmov { .. }
        | Fli { .. }
        | Cvtif { .. }
        | Cvtfi { .. }
        | Fcmplt { .. } => {
            if model == Model::OutOfOrder {
                2
            } else {
                4
            }
        }
        // Integer ALU, control, informing-control: single cycle.
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::Reg;

    #[test]
    fn table1_latencies() {
        let cfg = OooConfig::paper();
        let ino = InOrderConfig::paper();
        let f = |i: &Instr| (cfg.latency(i), ino.latency(i));
        let r = Reg::int(1);
        let fp = Reg::fp(1);
        assert_eq!(f(&Instr::Mul { rd: r, rs: r, rt: r }), (12, 12));
        assert_eq!(f(&Instr::Div { rd: r, rs: r, rt: r }), (76, 76));
        assert_eq!(f(&Instr::Fdiv { fd: fp, fs: fp, ft: fp }), (15, 17));
        assert_eq!(f(&Instr::Fsqrt { fd: fp, fs: fp }), (20, 20));
        assert_eq!(f(&Instr::Fadd { fd: fp, fs: fp, ft: fp }), (2, 4));
        assert_eq!(f(&Instr::Add { rd: r, rs: r, rt: r }), (1, 1));
    }

    #[test]
    fn paper_configs_match_table1() {
        let o = OooConfig::paper();
        assert_eq!(o.issue_width, 4);
        assert_eq!(o.rob_entries, 32);
        assert_eq!((o.int_units, o.fp_units, o.branch_units, o.mem_units), (2, 2, 1, 1));
        assert_eq!(o.max_checkpoints, 12, "3x the R10000's 3 predicted branches, per §3.2");
        let i = InOrderConfig::paper();
        assert_eq!(i.issue_width, 4);
        assert_eq!((i.int_units, i.fp_units, i.branch_units), (2, 2, 1));
    }
}
