//! The out-of-order-issue processor model (MIPS-R10000-like, §3.2).
//!
//! A renaming, reorder-buffer machine:
//!
//! * **Dispatch** — up to `issue_width` instructions per cycle enter the
//!   32-entry reorder buffer. Conditional branches (and, under
//!   [`TrapModel::Branch`], informing memory operations) each hold one of the
//!   `max_checkpoints` rename shadow checkpoints while unresolved; dispatch
//!   stalls when checkpoints are exhausted — this is the §3.2 "3× shadow
//!   state" pressure, measurable by varying
//!   [`OooConfig::max_checkpoints`].
//! * **Issue** — oldest-ready-first within per-class functional-unit limits
//!   (2 INT, 2 FP, 1 branch, 1 memory). True (RAW) dependences only, as
//!   renaming removes the false ones. Memory operations contend for cache
//!   banks, MSHRs and main-memory bandwidth in `imo-mem`.
//! * **Graduate** — up to `issue_width` completed instructions per cycle, in
//!   order. Stores probe/write at graduation through a finite write buffer.
//!   Graduation-slot accounting follows the paper's Figure 2 methodology.
//! * **Informing traps** — under [`TrapModel::Branch`] the handler is
//!   fetched as soon as the load's miss is detected at execute; under
//!   [`TrapModel::Exception`] fetch waits until the informing operation
//!   reaches the head of the reorder buffer.

use std::collections::VecDeque;

use imo_isa::{BlockCache, FuClass, Instr, MemKind, Program};
use imo_mem::{HitLevel, MemoryHierarchy, MshrFile, MshrId};
use imo_obs::{CpiCategory, CpiStack, EventKind, Recorder};
use imo_util::json::Json;
use imo_util::snapshot::{self, Snapshot as _, SnapshotError};

use crate::ckpt;
use crate::config::{OooConfig, TrapModel};
use crate::frontend::{Fetched, FrontEnd, Resolve};
use crate::result::{MemCounters, RunLimits, RunOutcome, RunResult, SimError, SlotBreakdown};
use crate::sched::{Horizon, ReleasePool, WakeupQueue};
use crate::trace::InstrTrace;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EState {
    Waiting,
    Issued,
    Complete,
}

#[derive(Debug, Clone, Copy)]
enum Dep {
    /// Satisfied when the producer's result is available.
    Value(u64),
    /// Satisfied when the producer's cache outcome is known (condition-code
    /// consumers).
    Outcome(u64),
}

#[derive(Debug)]
struct Entry {
    f: Fetched,
    state: EState,
    deps: [Option<Dep>; 3],
    complete_cycle: u64,
    /// Cycle the hit/miss outcome (memory) or direction (branch) is known.
    outcome_cycle: u64,
    uses_checkpoint: bool,
    mshr: Option<MshrId>,
    dispatch_cycle: u64,
    issue_cycle: u64,
}

fn uses_checkpoint(f: &Fetched, trap_model: TrapModel) -> bool {
    match f.instr {
        Instr::Branch { .. } | Instr::BranchOnMiss { .. } | Instr::BranchOnMemMiss { .. } => true,
        Instr::Load { kind, .. } | Instr::Store { kind, .. } => {
            trap_model == TrapModel::Branch && kind == MemKind::Informing
        }
        _ => false,
    }
}

fn entry_json(e: &Entry) -> Json {
    let deps = e.deps.iter().flatten().map(|d| {
        let (kind, seq) = match *d {
            Dep::Value(s) => (0, s),
            Dep::Outcome(s) => (1, s),
        };
        Json::obj([("kind", snapshot::u64_json(kind)), ("seq", snapshot::u64_json(seq))])
    });
    Json::obj([
        ("f", ckpt::fetched_json(&e.f)),
        (
            "state",
            snapshot::u64_json(match e.state {
                EState::Waiting => 0,
                EState::Issued => 1,
                EState::Complete => 2,
            }),
        ),
        ("deps", Json::arr(deps)),
        ("complete", snapshot::u64_json(e.complete_cycle)),
        ("outcome", snapshot::u64_json(e.outcome_cycle)),
        ("ckpt", Json::Bool(e.uses_checkpoint)),
        ("mshr", snapshot::opt_u64_json(e.mshr.map(|id| id.raw() as u64))),
        ("dispatch", snapshot::u64_json(e.dispatch_cycle)),
        ("issue", snapshot::u64_json(e.issue_cycle)),
    ])
}

fn decode_entry(program: &Program, cfg: &OooConfig, j: &Json) -> Result<Entry, SnapshotError> {
    let deps_wire = snapshot::field(j, "deps")?.as_arr().ok_or(SnapshotError::Bad("deps"))?;
    if deps_wire.len() > 3 {
        return Err(SnapshotError::Bad("deps"));
    }
    let mut deps: [Option<Dep>; 3] = [None; 3];
    for (slot, d) in deps.iter_mut().zip(deps_wire) {
        let seq = snapshot::get_u64(d, "seq")?;
        *slot = Some(match snapshot::get_u64(d, "kind")? {
            0 => Dep::Value(seq),
            1 => Dep::Outcome(seq),
            _ => return Err(SnapshotError::Bad("deps")),
        });
    }
    let mshr = match snapshot::get_opt_u64(j, "mshr")? {
        Some(raw) if raw < u64::from(cfg.hier.mshrs) => Some(MshrId::from_raw(raw as usize)),
        Some(_) => return Err(SnapshotError::Bad("mshr")),
        None => None,
    };
    Ok(Entry {
        f: ckpt::decode_fetched(program, snapshot::field(j, "f")?)?,
        state: match snapshot::get_u64(j, "state")? {
            0 => EState::Waiting,
            1 => EState::Issued,
            2 => EState::Complete,
            _ => return Err(SnapshotError::Bad("state")),
        },
        deps,
        complete_cycle: snapshot::get_u64(j, "complete")?,
        outcome_cycle: snapshot::get_u64(j, "outcome")?,
        uses_checkpoint: match snapshot::field(j, "ckpt")? {
            Json::Bool(b) => *b,
            _ => return Err(SnapshotError::Bad("ckpt")),
        },
        mshr,
        dispatch_cycle: snapshot::get_u64(j, "dispatch")?,
        issue_cycle: snapshot::get_u64(j, "issue")?,
    })
}

/// Simulates `program` to completion on the out-of-order model.
///
/// # Errors
///
/// Returns [`SimError`] if the program faults, exceeds `limits`, or the
/// model detects a deadlock (which indicates a configuration with zero units
/// or a model bug).
///
/// # Example
///
/// See the crate-level example.
pub fn simulate(
    program: &Program,
    cfg: &OooConfig,
    limits: RunLimits,
) -> Result<RunResult, SimError> {
    simulate_full(program, cfg, limits).map(|(r, _)| r)
}

/// Like [`simulate`], but also returns the final architectural state
/// (registers and data memory) so that tools — e.g. miss-count profilers
/// whose handlers accumulate into memory — can read their results.
///
/// # Errors
///
/// As for [`simulate`].
pub fn simulate_full(
    program: &Program,
    cfg: &OooConfig,
    limits: RunLimits,
) -> Result<(RunResult, imo_isa::exec::ArchState), SimError> {
    run(program, cfg, limits, None, None, None, None)?.expect_done()
}

/// Like [`simulate_full`], but streams typed events into `rec` (gated by its
/// category mask), accumulates the run's named counters and latency
/// histograms into `rec.metrics`, and attributes every cycle into
/// `rec.cpi` — whose total is guaranteed to equal `RunResult::cycles`
/// exactly.
///
/// The recorder is strictly passive: the returned `RunResult` is
/// bit-identical to [`simulate`]'s, whatever the mask.
///
/// # Errors
///
/// As for [`simulate`].
pub fn simulate_observed(
    program: &Program,
    cfg: &OooConfig,
    limits: RunLimits,
    rec: &mut Recorder,
) -> Result<(RunResult, imo_isa::exec::ArchState), SimError> {
    run(program, cfg, limits, None, None, Some(rec), None)?.expect_done()
}

/// Like [`simulate`], but drives the run under a [`imo_faults::FaultPlan`]:
/// informing-trap dispatches draw handler faults (overrun / stale MHAR) from
/// the plan's handler stream, paying their penalty on the trap redirect, and
/// after `degrade_after` consecutive faulty dispatches the machine suppresses
/// informing traps for the rest of the run (`RunResult::degraded`).
///
/// A plan with all-zero handler rates is cycle-identical to [`simulate`].
///
/// # Errors
///
/// As for [`simulate`].
pub fn simulate_faulty(
    program: &Program,
    cfg: &OooConfig,
    limits: RunLimits,
    plan: &imo_faults::FaultPlan,
) -> Result<RunResult, SimError> {
    run(program, cfg, limits, None, Some(plan), None, None)?.expect_done().map(|(r, _)| r)
}

/// Like [`simulate`], but records a per-instruction pipeline trace
/// ([`InstrTrace`]) for every graduated instruction — see
/// [`crate::trace`] for rendering and invariant checking.
///
/// # Errors
///
/// As for [`simulate`].
pub fn simulate_traced(
    program: &Program,
    cfg: &OooConfig,
    limits: RunLimits,
) -> Result<(RunResult, Vec<InstrTrace>), SimError> {
    let mut traces = Vec::new();
    let (result, _) =
        run(program, cfg, limits, Some(&mut traces), None, None, None)?.expect_done()?;
    Ok((result, traces))
}

/// Encodes every `run`-loop local at a cycle boundary (the checkpoint body).
#[allow(clippy::too_many_arguments)]
fn encode_loop(
    hier: &MemoryHierarchy,
    fe: &FrontEnd,
    mshrs: &MshrFile,
    rob: &VecDeque<Entry>,
    rob_base: u64,
    fetch_q: &VecDeque<Fetched>,
    last_writer: &[Option<u64>; 64],
    resolve_q: &WakeupQueue<u64>,
    ckpt_release_q: &WakeupQueue<()>,
    fills: &WakeupQueue<MshrId>,
    checkpoints_in_use: u32,
    wb_release: &ReleasePool,
    now: u64,
    graduated_total: u64,
    slots: SlotBreakdown,
    cpi: &CpiStack,
) -> Json {
    Json::obj([
        ("hier", hier.to_wire()),
        ("fe", fe.encode()),
        ("mshrs", mshrs.to_wire()),
        ("rob", Json::arr(rob.iter().map(entry_json))),
        ("rob_base", snapshot::u64_json(rob_base)),
        ("fetch_q", Json::arr(fetch_q.iter().map(ckpt::fetched_json))),
        ("last_writer", Json::arr(last_writer.iter().map(|w| snapshot::opt_u64_json(*w)))),
        ("resolve_q", ckpt::wakeup_json(resolve_q, |&s| s)),
        ("ckpt_release_q", ckpt::wakeup_json(ckpt_release_q, |()| 0)),
        ("fills", ckpt::wakeup_json(fills, |id| id.raw() as u64)),
        ("checkpoints_in_use", snapshot::u64_json(u64::from(checkpoints_in_use))),
        ("wb_release", snapshot::u64s_json(&wb_release.releases())),
        ("now", snapshot::u64_json(now)),
        ("graduated_total", snapshot::u64_json(graduated_total)),
        ("slots", ckpt::slots_json(slots)),
        ("cpi", ckpt::cpi_json(cpi)),
    ])
}

#[allow(clippy::too_many_lines)]
pub(crate) fn run(
    program: &Program,
    cfg: &OooConfig,
    limits: RunLimits,
    mut trace: Option<&mut Vec<InstrTrace>>,
    faults: Option<&imo_faults::FaultPlan>,
    mut obs: Option<&mut Recorder>,
    resume: Option<&Json>,
) -> Result<RunOutcome, SimError> {
    let handler_stream = faults
        .filter(|plan| plan.config().has_handler())
        .map(|plan| (plan.handlers(), plan.config().degrade_after));

    let mut hier;
    let mut fe;
    let mut mshrs;
    let mut rob: VecDeque<Entry>;
    let mut rob_base: u64; // seq of rob.front()
    let mut fetch_q: VecDeque<Fetched>;
    let mut last_writer: [Option<u64>; 64];
    // Future-event queues (deterministic min-heaps; see `crate::sched`).
    let mut resolve_q: WakeupQueue<u64>; // seq due at cycle
    let mut ckpt_release_q: WakeupQueue<()>;
    let mut fills: WakeupQueue<MshrId>;
    let mut checkpoints_in_use: u32;
    let mut wb_release;
    let mut now: u64;
    let mut graduated_total: u64;
    let mut slots;
    let mut cpi;
    if let Some(body) = resume {
        hier = MemoryHierarchy::from_wire(snapshot::field(body, "hier")?)?;
        fe = FrontEnd::restore(
            program,
            cfg.predictor_entries,
            cfg.trap_model,
            cfg.hier.l1i.line_bytes,
            handler_stream,
            snapshot::field(body, "fe")?,
        )?;
        mshrs = MshrFile::from_wire(snapshot::field(body, "mshrs")?)?;
        rob = snapshot::field(body, "rob")?
            .as_arr()
            .ok_or(SnapshotError::Bad("rob"))?
            .iter()
            .map(|j| decode_entry(program, cfg, j))
            .collect::<Result<_, _>>()?;
        rob_base = snapshot::get_u64(body, "rob_base")?;
        fetch_q = snapshot::field(body, "fetch_q")?
            .as_arr()
            .ok_or(SnapshotError::Bad("fetch_q"))?
            .iter()
            .map(|j| ckpt::decode_fetched(program, j))
            .collect::<Result<_, _>>()?;
        let lw = snapshot::get_arr(body, "last_writer", |j| match j {
            Json::Null => Ok(None),
            Json::Str(s) => {
                u64::from_str_radix(s, 16).map(Some).map_err(|_| SnapshotError::Bad("last_writer"))
            }
            _ => Err(SnapshotError::Bad("last_writer")),
        })?;
        if lw.len() != 64 {
            return Err(SnapshotError::Bad("last_writer").into());
        }
        last_writer = [None; 64];
        for (slot, w) in last_writer.iter_mut().zip(lw) {
            *slot = w;
        }
        resolve_q = ckpt::decode_wakeup(snapshot::field(body, "resolve_q")?, "resolve_q", Ok)?;
        ckpt_release_q = ckpt::decode_wakeup(
            snapshot::field(body, "ckpt_release_q")?,
            "ckpt_release_q",
            |_| Ok(()),
        )?;
        fills = ckpt::decode_wakeup(snapshot::field(body, "fills")?, "fills", |raw| {
            if raw < u64::from(cfg.hier.mshrs) {
                Ok(MshrId::from_raw(raw as usize))
            } else {
                Err(SnapshotError::Bad("fills"))
            }
        })?;
        checkpoints_in_use = snapshot::get_u32(body, "checkpoints_in_use")?;
        let releases = snapshot::get_u64s(body, "wb_release")?;
        if releases.len() != cfg.write_buffer as usize {
            return Err(SnapshotError::Bad("wb_release").into());
        }
        wb_release = ReleasePool::restore(releases);
        now = snapshot::get_u64(body, "now")?;
        graduated_total = snapshot::get_u64(body, "graduated_total")?;
        slots = ckpt::decode_slots(snapshot::field(body, "slots")?)?;
        cpi = ckpt::decode_cpi(snapshot::field(body, "cpi")?)?;
    } else {
        hier = MemoryHierarchy::new(cfg.hier);
        fe = FrontEnd::new(program, cfg.predictor_entries, cfg.trap_model, cfg.hier.l1i.line_bytes);
        if let Some((stream, degrade)) = handler_stream {
            fe.set_handler_faults(stream, degrade);
        }
        mshrs = MshrFile::new(cfg.hier.mshrs, cfg.mshr_mode);
        rob = VecDeque::with_capacity(cfg.rob_entries as usize);
        rob_base = 0;
        fetch_q = VecDeque::with_capacity(2 * cfg.issue_width as usize);
        last_writer = [None; 64];
        // Structural bounds: at most one pending resolution / shadow
        // checkpoint per ROB entry, one fill per MSHR.
        resolve_q = WakeupQueue::with_capacity(cfg.rob_entries as usize);
        ckpt_release_q = WakeupQueue::with_capacity(cfg.rob_entries as usize);
        fills = WakeupQueue::with_capacity(cfg.hier.mshrs as usize);
        checkpoints_in_use = 0;
        wb_release = ReleasePool::new(cfg.write_buffer as usize);
        now = 0;
        graduated_total = 0;
        slots = SlotBreakdown::default();
        cpi = CpiStack::default();
    }
    let mut fetch_buf: Vec<Fetched> = Vec::with_capacity(cfg.issue_width as usize);

    // Programs without condition-code branches never create `Dep::Outcome`
    // edges, so their wakeup horizon can skip the per-entry outcome-cycle
    // candidates (the common case on the figure 2/3 trap schemes).
    let has_cc_consumers = program
        .instrs()
        .iter()
        .any(|i| matches!(i, Instr::BranchOnMiss { .. } | Instr::BranchOnMemMiss { .. }));

    let width = cfg.issue_width as u64;
    let mut done = false;

    // Fast mode: unobserved, untraced, event-driven runs consume pre-decoded
    // blocks in the front end and may use the dense-streak liveness shortcut
    // in the advance phase. Observed, traced and tick-accurate runs are the
    // unchanged bit-identity reference.
    let fast = obs.is_none() && trace.is_none() && !limits.force_tick_accurate;
    let cache = fast.then(|| BlockCache::build(program, |i| cfg.latency(i)));
    if let Some(cache) = &cache {
        fe.attach_blocks(cache);
    }
    // Dense-streak shortcut state: after `DENSE_STREAK` consecutive
    // no-progress horizon folds that each landed on the very next cycle, the
    // fold is provably wasted work while the machine stays dense — skip it
    // and tick, re-validating with a full fold every `DENSE_WINDOW` ticks.
    const DENSE_STREAK: u32 = 4;
    const DENSE_WINDOW: u32 = 32;
    let mut dense_streak: u32 = 0;
    let mut dense_ticks: u32 = 0;

    // ROB occupancy masks (fast mode, ROBs that fit a word): bit `i` of
    // `waiting_mask`/`issued_mask` set ⇔ `rob[i]` is Waiting/Issued. The
    // complete and issue stages then visit only the entries that can act,
    // instead of scanning the whole ROB every cycle. Masks shift with
    // `pop_front` and are rebuilt from the decoded ROB on resume.
    let masks_on = fast && cfg.rob_entries as usize <= 64;
    let mut waiting_mask: u64 = 0;
    let mut issued_mask: u64 = 0;
    if masks_on {
        for (i, e) in rob.iter().enumerate() {
            match e.state {
                EState::Waiting => waiting_mask |= 1 << i,
                EState::Issued => issued_mask |= 1 << i,
                EState::Complete => {}
            }
        }
    }
    // Issue-stall hints (fast mode): slot `seq & 63` holds a provable lower
    // bound on the cycle at which that entry could first pass the issue
    // checks, so the issue stage skips its dependency walk until then. Seqs
    // are contiguous and the ROB holds at most 64 entries, so live seqs never
    // collide; dispatch resets the slot. All-zero (recheck immediately) is
    // always safe, which is why the hints live outside the checkpoint.
    let mut issue_hints = [0u64; 64];

    let fu_cap = |c: FuClass| -> u32 {
        match c {
            FuClass::Int => cfg.int_units,
            FuClass::Fp => cfg.fp_units,
            FuClass::Branch => cfg.branch_units,
            FuClass::Mem => cfg.mem_units,
        }
    };

    // Earliest cycle at which `dep` can possibly become ready: 0 when it is
    // ready now, a provable future lower bound otherwise. Readiness means the
    // producer has graduated (left the ROB), or — for value deps — completed
    // by `now`, or — for outcome deps — left `Waiting` with its
    // `outcome_cycle` due. `bound <= now` is exactly that predicate, and a
    // future bound is a pure filter for the issue stage: re-evaluating at or
    // after it gives the truth, so skipping the dep walk before it is exact.
    //
    // * A `Waiting` producer cannot ready a consumer this cycle (issuing now
    //   yields completion/outcome cycles strictly in the future, and
    //   graduation requires completion first), hence `now + 1`.
    // * An `Issued` producer's `complete_cycle`/`outcome_cycle` are fixed at
    //   issue; during the issue stage they are strictly future (stage 3
    //   already retired anything due). Graduation — which also readies
    //   outcome consumers — cannot precede `complete_cycle + 1`.
    // * A `Complete` producer may still leave the ROB next cycle, readying
    //   an outcome consumer before `outcome_cycle`, so only `now + 1` is
    //   provable there.
    let dep_bound = |rob: &VecDeque<Entry>, rob_base: u64, dep: Dep, now: u64| -> u64 {
        let (seq, outcome) = match dep {
            Dep::Value(s) => (s, false),
            Dep::Outcome(s) => (s, true),
        };
        if seq < rob_base {
            return 0;
        }
        match rob.get((seq - rob_base) as usize) {
            None => 0,
            Some(p) => match p.state {
                EState::Waiting => now + 1,
                EState::Issued => {
                    if outcome {
                        p.outcome_cycle.min(p.complete_cycle + 1)
                    } else {
                        p.complete_cycle
                    }
                }
                EState::Complete => {
                    if outcome && p.outcome_cycle > now {
                        p.outcome_cycle.min(now + 1)
                    } else {
                        0
                    }
                }
            },
        }
    };

    // CPI-stack classification for a cycle that graduates nothing. The trap
    // check precedes the memory checks so the handler-redirect bubbles land
    // in `Handler` (the paper's informing overhead) even when the trapping
    // load is also the miss-blocked ROB head.
    let classify = |rob: &VecDeque<Entry>, fe: &FrontEnd| -> CpiCategory {
        if fe.blocked_on_trap() {
            return CpiCategory::Handler;
        }
        if let Some(h) = rob.front() {
            if h.state != EState::Complete && h.f.instr.is_data_ref() {
                if let Some(p) = h.f.probe {
                    match p.level {
                        HitLevel::L2 => return CpiCategory::L1Miss,
                        HitLevel::Memory => return CpiCategory::L2Miss,
                        HitLevel::L1 => {}
                    }
                }
            }
        }
        CpiCategory::IssueStall
    };

    while !done {
        // Checkpoint boundary: pause before this cycle mutates anything, so
        // a resumed run re-enters the loop with bit-identical state.
        if limits.stop_at.is_some_and(|stop| now >= stop) {
            crate::speed::flush(fe.stats());
            return Ok(RunOutcome::Paused {
                cycle: now,
                body: encode_loop(
                    &hier,
                    &fe,
                    &mshrs,
                    &rob,
                    rob_base,
                    &fetch_q,
                    &last_writer,
                    &resolve_q,
                    &ckpt_release_q,
                    &fills,
                    checkpoints_in_use,
                    &wb_release,
                    now,
                    graduated_total,
                    slots,
                    &cpi,
                ),
            });
        }

        let mut progress = false;

        // ---- 1. MSHR fills due this cycle ----
        if fills.next_due().is_some_and(|t| t <= now) {
            while let Some((_, id)) = fills.pop_due(now) {
                mshrs.note_fill(id);
            }
            mshrs.reap();
            progress = true;
        }

        // ---- 2. Graduate ----
        let mut g: u64 = 0;
        while g < width {
            let Some(head) = rob.front() else { break };
            if head.state != EState::Complete {
                break;
            }
            // Stores drain through the write buffer at graduation. Any free
            // slot is as good as any other, so the pool hands out the
            // earliest-released one (see `ReleasePool`).
            if matches!(head.f.instr, Instr::Store { .. }) {
                if !wb_release.has_free(now) {
                    break; // write buffer full: stall graduation
                }
                let probe = head.f.probe.expect("stores probe the cache");
                let t = hier.schedule_data(probe, now);
                wb_release.acquire_until(now, t.complete);
            }
            let e = rob.pop_front().expect("front exists");
            rob_base = e.f.seq + 1;
            // A graduating head is Complete, so its mask bits are clear and
            // the shift drops exactly its slot.
            waiting_mask >>= 1;
            issued_mask >>= 1;
            if let Some(tr) = trace.as_deref_mut() {
                tr.push(InstrTrace {
                    seq: e.f.seq,
                    pc: e.f.pc,
                    instr: e.f.instr,
                    fetch: e.f.fetch_cycle,
                    dispatch: e.dispatch_cycle,
                    issue: e.issue_cycle,
                    complete: e.complete_cycle,
                    graduate: now,
                });
            }
            if let Some(id) = e.mshr {
                mshrs.graduate(id);
            }
            if let Some(rec) = obs.as_deref_mut() {
                rec.record(now, EventKind::Graduate { seq: e.f.seq });
                if matches!(e.f.instr, Instr::JumpMhrr) {
                    rec.record(now, EventKind::TrapReturn { seq: e.f.seq });
                }
                if matches!(e.f.instr, Instr::Load { .. }) && e.issue_cycle != u64::MAX {
                    rec.metrics
                        .observe("cpu.load_to_use", e.complete_cycle.saturating_sub(e.issue_cycle));
                }
                if e.f.informing_trap {
                    let resolved =
                        if e.f.resolve == Resolve::AtGraduate { now } else { e.outcome_cycle };
                    rec.metrics
                        .observe("cpu.trap_redirect", resolved.saturating_sub(e.f.fetch_cycle));
                }
            }
            if e.f.resolve == Resolve::AtGraduate {
                fe.resolve(e.f.seq, now, cfg.redirect_penalty);
            }
            if matches!(e.f.instr, Instr::Halt) {
                done = true;
            }
            graduated_total += 1;
            g += 1;
            progress = true;
            if done {
                break;
            }
        }
        slots.busy += g;
        if g < width && !done {
            let lost = width - g;
            let head_is_miss_stall = rob.front().is_some_and(|h| {
                h.state != EState::Complete
                    && h.f.instr.is_data_ref()
                    && h.f.probe.is_some_and(|p| p.level.is_l1_miss())
            });
            if head_is_miss_stall {
                slots.cache_stall += lost;
            } else {
                slots.other_stall += lost;
            }
        }
        // Exactly one CPI-stack cycle per loop iteration: this point runs
        // before every `break`, and the fast-forward path below attributes
        // the cycles it skips, so the stack total always equals `cycles`.
        if obs.is_some() {
            if g > 0 {
                cpi.add(CpiCategory::Base, 1);
            } else {
                cpi.add(classify(&rob, &fe), 1);
            }
        }

        if done {
            break;
        }

        // ---- 3. Complete ----
        if masks_on {
            let mut m = issued_mask;
            while m != 0 {
                let i = m.trailing_zeros() as usize;
                m &= m - 1;
                let e = &mut rob[i];
                if e.complete_cycle <= now {
                    e.state = EState::Complete;
                    issued_mask &= !(1u64 << i);
                    progress = true;
                }
            }
        } else {
            for e in rob.iter_mut() {
                if e.state == EState::Issued && e.complete_cycle <= now {
                    e.state = EState::Complete;
                    progress = true;
                }
            }
        }

        // ---- 4. Checkpoint releases ----
        while ckpt_release_q.pop_due(now).is_some() {
            checkpoints_in_use = checkpoints_in_use.saturating_sub(1);
            progress = true;
        }

        // ---- 5. Front-end resolutions due ----
        while let Some((t, seq)) = resolve_q.pop_due(now) {
            fe.resolve(seq, t, cfg.redirect_penalty);
            progress = true;
        }

        // ---- 6. Issue (oldest-ready-first within FU limits) ----
        let mut fu_used = [0u32; 4];
        let fu_idx = |c: FuClass| -> usize {
            match c {
                FuClass::Int => 0,
                FuClass::Fp => 1,
                FuClass::Branch => 2,
                FuClass::Mem => 3,
            }
        };
        // With masks on, visit only Waiting entries (ascending index, same
        // order as the full scan); otherwise walk the whole ROB.
        let mut wscan = waiting_mask;
        let mut iscan = 0usize;
        loop {
            let i = if masks_on {
                if wscan == 0 {
                    break;
                }
                let i = wscan.trailing_zeros() as usize;
                wscan &= wscan - 1;
                if issue_hints[((rob_base + i as u64) & 63) as usize] > now {
                    continue; // provably cannot issue yet: skip the dep walk
                }
                i
            } else {
                if iscan >= rob.len() {
                    break;
                }
                iscan += 1;
                iscan - 1
            };
            // Evaluate the issue conditions; when a timing condition fails,
            // record the provable lower bound so later cycles skip the walk.
            let (can, stall_until) = {
                let e = &rob[i];
                if e.state != EState::Waiting {
                    (false, 0)
                } else {
                    let mut bound = e.f.fetch_cycle + cfg.frontend_depth;
                    for &d in e.deps.iter().flatten() {
                        bound = bound.max(dep_bound(&rob, rob_base, d, now));
                    }
                    if bound > now {
                        (false, bound)
                    } else {
                        let fu = e.f.instr.fu_class();
                        // Structural hazards clear next cycle: no useful bound.
                        (fu_used[fu_idx(fu)] < fu_cap(fu), 0)
                    }
                }
            };
            if !can {
                if masks_on && stall_until > now {
                    issue_hints[((rob_base + i as u64) & 63) as usize] = stall_until;
                }
                continue;
            }
            let fu = rob[i].f.instr.fu_class();
            fu_used[fu_idx(fu)] += 1;
            progress = true;
            if masks_on {
                waiting_mask &= !(1u64 << i);
                issued_mask |= 1u64 << i;
            }

            // Compute timing (separate scope to appease the borrow checker).
            let (complete, outcome, alloc_mshr) = {
                let e = &rob[i];
                match e.f.instr {
                    Instr::Load { .. } => {
                        let probe = e.f.probe.expect("loads probe");
                        let t = hier.schedule_data(probe, now);
                        let outcome = t.start + cfg.hier.l1_latency;
                        (
                            t.complete,
                            outcome,
                            probe.level.is_l1_miss().then_some((probe.line, t.complete)),
                        )
                    }
                    Instr::Prefetch { .. } => {
                        if let Some(probe) = e.f.probe {
                            let _ = hier.schedule_data(probe, now);
                        }
                        (now + 1, now + 1, None)
                    }
                    Instr::Store { .. } => {
                        // Address generation now; the cache is probed at
                        // graduation. The outcome (for the condition code) is
                        // known after an early tag probe.
                        (now + 1, now + cfg.hier.l1_latency, None)
                    }
                    ref other => {
                        let lat = cfg.latency(other);
                        (now + lat, now + lat, None)
                    }
                }
            };
            let e = &mut rob[i];
            e.state = EState::Issued;
            e.issue_cycle = now;
            e.complete_cycle = complete;
            e.outcome_cycle = outcome;
            imo_obs::record(&mut obs, now, EventKind::Issue { seq: e.f.seq });
            if let Some((line, fill)) = alloc_mshr {
                let fresh = mshrs.find(line).is_none();
                if let Some(id) = mshrs.allocate(line) {
                    e.mshr = Some(id);
                    if fresh {
                        fills.push(fill, id);
                        imo_obs::record(&mut obs, now, EventKind::MshrAllocate { line });
                    } else {
                        imo_obs::record(&mut obs, now, EventKind::MshrMerge { line });
                    }
                }
            }
            if e.uses_checkpoint {
                ckpt_release_q.push(e.outcome_cycle, ());
            }
            if e.f.resolve == Resolve::AtExecute {
                resolve_q.push_keyed(e.outcome_cycle, e.f.seq, e.f.seq);
            }
        }

        // ---- 7. Dispatch ----
        let mut d = 0;
        while d < cfg.issue_width {
            if rob.len() >= cfg.rob_entries as usize {
                break;
            }
            let Some(f) = fetch_q.front() else { break };
            let needs_ckpt = uses_checkpoint(f, cfg.trap_model);
            if needs_ckpt && checkpoints_in_use >= cfg.max_checkpoints {
                break;
            }
            let f = fetch_q.pop_front().expect("front exists");
            if needs_ckpt {
                checkpoints_in_use += 1;
            }
            let mut deps: [Option<Dep>; 3] = [None; 3];
            let mut n = 0;
            for src in f.instr.sources() {
                if let Some(seq) = last_writer[src.logical()] {
                    deps[n] = Some(Dep::Value(seq));
                    n += 1;
                }
            }
            if let Some(cc) = f.cc_dep {
                deps[n] = Some(Dep::Outcome(cc));
            }
            if let Some(dst) = f.instr.dest() {
                last_writer[dst.logical()] = Some(f.seq);
            }
            debug_assert_eq!(f.seq, rob_base + rob.len() as u64, "seq contiguity");
            if masks_on {
                waiting_mask |= 1u64 << rob.len();
                issue_hints[(f.seq & 63) as usize] = 0;
            }
            rob.push_back(Entry {
                f,
                state: EState::Waiting,
                deps,
                complete_cycle: u64::MAX,
                outcome_cycle: u64::MAX,
                uses_checkpoint: needs_ckpt,
                mshr: None,
                dispatch_cycle: now,
                issue_cycle: u64::MAX,
            });
            d += 1;
            progress = true;
        }

        // ---- 8. Fetch ----
        if fetch_q.len() < 2 * cfg.issue_width as usize {
            let before = fetch_q.len();
            if fast {
                if fe.fetch_ready(now) {
                    fe.fetch_fast(now, cfg.issue_width, &mut hier, &mut fetch_q)?;
                }
            } else {
                fetch_buf.clear();
                fe.fetch(now, cfg.issue_width, &mut hier, &mut fetch_buf, obs.as_deref_mut())?;
                fetch_q.extend(fetch_buf.drain(..));
            }
            if fetch_q.len() > before {
                progress = true;
            }
        }

        // ---- 9. Termination / limits ----
        if fe.halted() && rob.is_empty() && fetch_q.is_empty() {
            // Halt graduated in a previous iteration (done flag), or the
            // program ended in an unusual state; either way we are finished.
            break;
        }
        if graduated_total >= limits.max_instructions {
            return Err(SimError::InstructionLimit(limits.max_instructions));
        }
        if now >= limits.max_cycles {
            return Err(SimError::CycleLimit(limits.max_cycles));
        }

        // ---- 10. Advance time (with fast-forward over quiet cycles) ----
        if progress {
            now += 1;
            dense_streak = 0;
            dense_ticks = 0;
        } else {
            // Dense-streak shortcut (fast mode only): the horizon fold below
            // is O(ROB), and in wakeup-dense regions it keeps answering
            // "the very next cycle". Once `DENSE_STREAK` consecutive folds
            // have done so, skip the fold and tick — bit-identical, because
            // advancing one cycle is exactly what `now = next` would have
            // done. Safe, because the O(1) liveness probe proves a future
            // event exists: a set `issued_mask` bit is an entry stage 3 did
            // not retire this iteration (its `complete_cycle` is strictly
            // future), and each queue was fully drained of entries ≤ `now`,
            // so any remaining head is strictly in the future. Hence the
            // fold could not have reported a deadlock.
            // A full fold re-validates the streak every `DENSE_WINDOW` ticks.
            if fast
                && dense_streak >= DENSE_STREAK
                && dense_ticks < DENSE_WINDOW
                && ((masks_on && issued_mask != 0)
                    || fills.next_due().is_some()
                    || resolve_q.next_due().is_some()
                    || ckpt_release_q.next_due().is_some())
            {
                dense_ticks += 1;
                now += 1;
                continue;
            }
            dense_ticks = 0;
            // Fold every wakeup source into the earliest *future* event;
            // anything at or before `now` is not a wake-up source (it
            // already had its chance this cycle).
            let mut h = Horizon::new(now);
            for e in rob.iter() {
                match e.state {
                    // `outcome_cycle` can precede completion (a miss's early
                    // tag probe) or follow it (a store's tag probe after its
                    // 1-cycle address generation); either way it readies
                    // `Dep::Outcome` consumers, so when the program has
                    // condition-code branches it is a wake-up source of its
                    // own.
                    EState::Issued => {
                        h.consider(e.complete_cycle);
                        if has_cc_consumers {
                            h.consider(e.outcome_cycle);
                        }
                    }
                    EState::Waiting => h.consider(e.f.fetch_cycle + cfg.frontend_depth),
                    EState::Complete => {
                        if has_cc_consumers {
                            h.consider(e.outcome_cycle);
                        }
                    }
                }
            }
            h.consider_opt(resolve_q.next_due());
            h.consider_opt(ckpt_release_q.next_due());
            h.consider_opt(fills.next_due());
            if !fe.halted() && fe.blocked_on().is_none() {
                h.consider(fe.resume_at());
            }
            if rob.front().is_some_and(|hd| {
                hd.state == EState::Complete && matches!(hd.f.instr, Instr::Store { .. })
            }) {
                // Graduation blocked on the write buffer.
                h.consider_opt(wb_release.next_release());
            }
            let Some(next) = h.earliest() else {
                return Err(SimError::Deadlock { cycle: now });
            };
            if limits.force_tick_accurate {
                // Reference mode: the horizon was still computed (so deadlock
                // detection is identical), but time advances one cycle.
                now += 1;
                continue;
            }
            let skipped = next - now - 1;
            if skipped == 0 {
                dense_streak += 1;
            } else {
                dense_streak = 0;
            }
            if skipped > 0 {
                // Attribute the skipped slots exactly as the per-cycle
                // accounting would have.
                let lost = skipped * width;
                let head_is_miss_stall = rob.front().is_some_and(|hd| {
                    hd.state != EState::Complete
                        && hd.f.instr.is_data_ref()
                        && hd.f.probe.is_some_and(|p| p.level.is_l1_miss())
                });
                if head_is_miss_stall {
                    slots.cache_stall += lost;
                } else {
                    slots.other_stall += lost;
                }
                if obs.is_some() {
                    // The skipped cycles would each have graduated nothing
                    // with this exact (frozen) machine state.
                    cpi.add(classify(&rob, &fe), skipped);
                }
            }
            now = next;
        }
    }

    let cycles = now + 1;
    let total = cycles * width;
    let accounted = slots.total();
    if total > accounted {
        slots.other_stall += total - accounted;
    }
    crate::speed::flush(fe.stats());

    let result = RunResult {
        cycles,
        instructions: graduated_total,
        slots,
        informing_traps: fe.informing_traps(),
        mispredictions: fe.mispredictions(),
        branch_accuracy: fe.branch_accuracy(),
        handler_faults: fe.handler_faults(),
        degraded: fe.degraded(),
        mem: MemCounters {
            l1d_accesses: hier.stats().data_refs,
            l1d_misses: hier.stats().l1d_misses_to_l2 + hier.stats().l1d_misses_to_mem,
            l2_misses: hier.stats().l1d_misses_to_mem,
            inst_misses: hier.stats().inst_misses,
        },
    };
    if let Some(rec) = obs {
        rec.cpi.merge(&cpi);
        rec.metrics.set("cpu.cycles", result.cycles);
        rec.metrics.set("cpu.instructions", result.instructions);
        rec.metrics.set("cpu.informing_traps", result.informing_traps);
        rec.metrics.set("cpu.mispredictions", result.mispredictions);
        rec.metrics.set("cpu.handler_faults", result.handler_faults);
        let (seen, dropped) = (rec.total_recorded(), rec.dropped());
        rec.metrics.set("obs.events_seen", seen);
        rec.metrics.set("obs.events_dropped", dropped);
        hier.stats().record_metrics(&mut rec.metrics);
        if let Some(plan) = faults {
            plan.config().record_metrics(&mut rec.metrics);
        }
    }
    Ok(RunOutcome::Done(result, fe.into_state()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::{Asm, Cond, Reg};

    fn run(p: &Program) -> RunResult {
        simulate(p, &OooConfig::paper(), RunLimits::default()).expect("simulates")
    }

    fn r(i: u8) -> Reg {
        Reg::int(i)
    }

    #[test]
    fn straight_line_completes() {
        let mut a = Asm::new();
        for i in 0..20 {
            a.li(r(1 + (i % 8) as u8), i);
        }
        a.halt();
        let p = a.assemble().unwrap();
        let res = run(&p);
        assert_eq!(res.instructions, 21);
        assert!(res.cycles > 5, "I-miss + frontend depth cost cycles");
        assert!(res.cycles < 200);
        assert_eq!(res.slots.total(), res.cycles * 4);
    }

    #[test]
    fn independent_instructions_reach_high_ipc() {
        // Long run of independent int ops: IPC should approach 2 (2 INT units).
        let mut a = Asm::new();
        for i in 0..4000 {
            a.addi(r(1 + (i % 8) as u8), Reg::ZERO, i);
        }
        a.halt();
        let p = a.assemble().unwrap();
        let res = run(&p);
        assert!(res.ipc() > 1.5, "ipc = {}", res.ipc());
    }

    #[test]
    fn dependent_chain_limits_ipc() {
        let mut a = Asm::new();
        for _ in 0..2000 {
            a.addi(r(1), r(1), 1);
        }
        a.halt();
        let p = a.assemble().unwrap();
        let res = run(&p);
        assert!(res.ipc() < 1.2, "serial chain ipc = {}", res.ipc());
        assert!(res.ipc() > 0.8, "but still ~1/cycle: {}", res.ipc());
    }

    #[test]
    fn load_miss_stalls_are_attributed_to_cache() {
        // Pointer-chase across many lines: every load misses and the next
        // load depends on it.
        let mut a = Asm::new();
        // Build a chain in memory: mem[i*4096 + 0x10_0000] = (i+1)*4096 + 0x10_0000
        for i in 0..64u64 {
            a.word(0x10_0000 + i * 4096, 0x10_0000 + (i + 1) * 4096);
        }
        a.li(r(1), 0x10_0000);
        for _ in 0..64 {
            a.load(r(1), r(1), 0);
        }
        a.halt();
        let p = a.assemble().unwrap();
        let res = run(&p);
        assert!(res.mem.l1d_misses >= 64);
        assert!(
            res.slots.cache_stall > res.slots.busy,
            "memory-bound chain dominated by cache stalls: {:?}",
            res.slots
        );
    }

    #[test]
    fn branchy_loop_trains_predictor() {
        let mut a = Asm::new();
        let (i, n) = (r(1), r(2));
        a.li(i, 0);
        a.li(n, 500);
        let top = a.here("top");
        a.addi(i, i, 1);
        a.branch(Cond::Lt, i, n, top);
        a.halt();
        let p = a.assemble().unwrap();
        let res = run(&p);
        assert_eq!(res.instructions, 3 + 500 * 2);
        assert!(res.branch_accuracy > 0.95, "accuracy {}", res.branch_accuracy);
        assert!(res.mispredictions <= 5);
    }

    #[test]
    fn informing_trap_executes_handler_with_overlap() {
        // One informing load that misses; handler of 10 dependent adds.
        let mut a = Asm::new();
        let hdl = a.label("h");
        a.set_mhar(hdl);
        a.li(r(1), 0x40_0000);
        a.load_inf(r(2), r(1), 0);
        a.addi(r(3), r(2), 1); // consumer of the load
        a.halt();
        a.bind(hdl).unwrap();
        for _ in 0..10 {
            a.addi(r(20), r(20), 1);
        }
        a.jump_mhrr();
        let p = a.assemble().unwrap();
        let res = run(&p);
        assert_eq!(res.informing_traps, 1);
        // 4 main instrs + 1 halt? main: set_mhar, li, load, addi, halt = 5; handler 11.
        assert_eq!(res.instructions, 5 + 11);
    }

    #[test]
    fn trap_as_exception_is_slower_than_branch() {
        // Many informing misses: the exception model waits for graduation
        // before fetching the handler; the branch model does not.
        let mut a = Asm::new();
        let hdl = a.label("h");
        a.set_mhar(hdl);
        a.li(r(1), 0x40_0000);
        let top = a.label("top");
        a.li(r(2), 0);
        a.li(r(3), 200);
        a.bind(top).unwrap();
        a.load_inf(r(4), r(1), 0);
        a.addi(r(1), r(1), 4096); // new line/page every time -> always miss
        a.addi(r(2), r(2), 1);
        a.branch(Cond::Lt, r(2), r(3), top);
        a.halt();
        a.bind(hdl).unwrap();
        for _ in 0..10 {
            a.addi(r(20), r(20), 1);
        }
        a.jump_mhrr();
        let p = a.assemble().unwrap();

        let mut cfg = OooConfig::paper();
        cfg.trap_model = TrapModel::Branch;
        let branch = simulate(&p, &cfg, RunLimits::default()).unwrap();
        cfg.trap_model = TrapModel::Exception;
        let exception = simulate(&p, &cfg, RunLimits::default()).unwrap();

        assert_eq!(branch.informing_traps, 200);
        assert_eq!(exception.informing_traps, 200);
        assert!(
            exception.cycles > branch.cycles,
            "exception {} should exceed branch {}",
            exception.cycles,
            branch.cycles
        );
    }

    #[test]
    fn checkpoint_pressure_slows_dispatch() {
        // Dense informing loads (all hitting after warmup) with the branch
        // trap model consume checkpoints; a machine with 1 checkpoint must be
        // slower than one with 8.
        let mut a = Asm::new();
        let hdl = a.label("h");
        a.set_mhar(hdl);
        a.li(r(1), 0x40_0000);
        for _ in 0..50 {
            for o in 0..4 {
                a.load_inf(r(2 + o as u8), r(1), o * 8);
            }
        }
        a.halt();
        a.bind(hdl).unwrap();
        a.jump_mhrr();
        let p = a.assemble().unwrap();

        let mut cfg = OooConfig::paper();
        cfg.max_checkpoints = 1;
        let tight = simulate(&p, &cfg, RunLimits::default()).unwrap();
        cfg.max_checkpoints = 8;
        let loose = simulate(&p, &cfg, RunLimits::default()).unwrap();
        assert!(
            tight.cycles > loose.cycles,
            "1 checkpoint ({}) should be slower than 8 ({})",
            tight.cycles,
            loose.cycles
        );
    }

    #[test]
    fn bmiss_scheme_invokes_handler_only_on_miss() {
        let mut a = Asm::new();
        let hdl = a.label("h");
        a.li(r(1), 0x40_0000);
        // First load misses (cold), second hits (same line).
        a.load(r(2), r(1), 0);
        a.branch_on_miss(hdl);
        a.load(r(3), r(1), 8);
        a.branch_on_miss(hdl);
        a.halt();
        a.bind(hdl).unwrap();
        a.addi(r(20), r(20), 1);
        a.jump_mhrr();
        let p = a.assemble().unwrap();
        let res = run(&p);
        assert_eq!(res.informing_traps, 1, "only the cold miss dispatches");
        assert_eq!(res.instructions, 6 + 2);
    }

    #[test]
    fn store_heavy_code_respects_write_buffer() {
        let mut a = Asm::new();
        a.li(r(1), 0x40_0000);
        for i in 0..200 {
            a.store(r(1), r(1), (i * 4096) as i64); // every store misses
        }
        a.halt();
        let p = a.assemble().unwrap();
        let res = run(&p);
        assert_eq!(res.instructions, 202);
        assert!(res.mem.l1d_misses >= 200);
    }

    #[test]
    fn result_slot_accounting_is_exhaustive() {
        let mut a = Asm::new();
        let (i, n) = (r(1), r(2));
        a.li(i, 0);
        a.li(n, 100);
        let top = a.here("top");
        a.load(r(3), i, 0x40_0000);
        a.addi(i, i, 64);
        a.branch(Cond::Lt, i, n, top);
        a.halt();
        let p = a.assemble().unwrap();
        let res = run(&p);
        assert_eq!(res.slots.total(), res.cycles * 4);
    }

    #[test]
    fn deadlock_reported_for_impossible_config() {
        let mut a = Asm::new();
        a.fadd(Reg::fp(1), Reg::fp(2), Reg::fp(3));
        a.halt();
        let p = a.assemble().unwrap();
        let mut cfg = OooConfig::paper();
        cfg.fp_units = 0;
        let err = simulate(&p, &cfg, RunLimits::default()).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }), "{err}");
    }

    #[test]
    fn cycle_limit_enforced() {
        let mut a = Asm::new();
        let top = a.here("top");
        a.addi(r(1), r(1), 1);
        a.jump(top);
        let p = a.assemble().unwrap();
        let err = simulate(
            &p,
            &OooConfig::paper(),
            RunLimits { max_instructions: u64::MAX, max_cycles: 1000, ..RunLimits::default() },
        )
        .unwrap_err();
        assert!(matches!(err, SimError::CycleLimit(1000)));
    }
}
