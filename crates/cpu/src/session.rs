//! One builder-style entry point over both core models, with checkpoint
//! pause/resume.
//!
//! [`SimSession`] subsumes the `simulate` / `simulate_observed` /
//! `simulate_faulty` twin entry points of [`crate::inorder`] and
//! [`crate::ooo`]: the recorder and the fault plan are optional builder
//! fields, and both cores run — and resume — through a single path.
//!
//! A session whose [`RunLimits::stop_at`] boundary is reached returns
//! [`Outcome::Paused`] with a [`Checkpoint`]: a versioned wire object (see
//! [`Snapshot`]) carrying the core's entire loop state at that cycle
//! boundary. Resuming the checkpoint — in the same process or from JSON in a
//! fresh one — produces a [`RunResult`] bit-identical to an uninterrupted
//! run, because the pause happens before the boundary cycle mutates anything
//! and resumption re-enters the scheduling loop with the same locals.
//!
//! ```
//! use imo_cpu::{CoreConfig, Outcome, OooConfig, RunLimits, SimSession};
//! use imo_isa::{Asm, Reg};
//!
//! let mut a = Asm::new();
//! a.li(Reg::int(1), 0x4000);
//! a.load(Reg::int(2), Reg::int(1), 0);
//! a.halt();
//! let p = a.assemble().expect("assembles");
//!
//! let core = CoreConfig::Ooo(OooConfig::default());
//! let paused = SimSession::new(&p, core)
//!     .limits(RunLimits::stop_at(10))
//!     .run()
//!     .expect("runs");
//! let Outcome::Paused(ckpt) = paused else { panic!("stops at cycle 10") };
//!
//! let core = CoreConfig::Ooo(OooConfig::default());
//! let resumed = SimSession::new(&p, core).resume(&ckpt).expect("resumes");
//! let Outcome::Complete { result, .. } = resumed else { panic!("completes") };
//! assert!(result.cycles > 10);
//! ```

use imo_faults::FaultPlan;
use imo_isa::exec::ArchState;
use imo_isa::Program;
use imo_obs::Recorder;
use imo_util::json::Json;
use imo_util::rng::mix64;
use imo_util::snapshot::{self, Snapshot, SnapshotError};

use crate::config::{InOrderConfig, OooConfig};
use crate::result::{RunLimits, RunOutcome, RunResult, SimError};
use crate::{inorder, ooo};

/// Which core model a [`SimSession`] drives.
#[derive(Debug, Clone, Copy)]
pub enum CoreConfig {
    /// The in-order-issue (Alpha-21164-like) model.
    InOrder(InOrderConfig),
    /// The out-of-order-issue (MIPS-R10000-like) model.
    Ooo(OooConfig),
}

impl CoreConfig {
    /// Stable core tag recorded in checkpoints (matches
    /// `imo_bench::Machine::name`).
    fn tag(&self) -> &'static str {
        match self {
            CoreConfig::InOrder(_) => "in-order",
            CoreConfig::Ooo(_) => "ooo",
        }
    }
}

/// A paused simulation: the core's entire loop state at a cycle boundary.
///
/// Produced by [`Outcome::Paused`]; consumed by [`SimSession::resume`]. The
/// [`Snapshot`] impl gives it a versioned JSON wire format, so a checkpoint
/// can cross a process boundary (`to_wire` → text → `from_wire`) and still
/// resume bit-identically. The embedded configuration hash lets
/// [`SimSession::resume`] reject a checkpoint taken under a different
/// program, core configuration, or fault plan.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    core: String,
    cycle: u64,
    cfg_hash: u64,
    body: Json,
}

impl Checkpoint {
    /// The cycle boundary at which the run paused.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }
}

impl Snapshot for Checkpoint {
    const KIND: &'static str = "cpu.checkpoint";
    const VERSION: u32 = 1;

    fn encode(&self) -> Json {
        Json::obj([
            ("core", Json::from(self.core.as_str())),
            ("cycle", snapshot::u64_json(self.cycle)),
            ("cfg_hash", snapshot::u64_json(self.cfg_hash)),
            ("body", self.body.clone()),
        ])
    }

    fn decode(data: &Json) -> Result<Self, SnapshotError> {
        Ok(Checkpoint {
            core: snapshot::get_str(data, "core")?.to_string(),
            cycle: snapshot::get_u64(data, "cycle")?,
            cfg_hash: snapshot::get_u64(data, "cfg_hash")?,
            body: snapshot::field(data, "body")?.clone(),
        })
    }
}

/// How a [`SimSession`] run ended.
// One value exists per completed run; the variant size gap is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Outcome {
    /// The program ran to completion.
    Complete {
        /// The run's results.
        result: RunResult,
        /// Final architectural state (registers and data memory).
        state: ArchState,
    },
    /// The run hit [`RunLimits::stop_at`] and checkpointed.
    Paused(Checkpoint),
}

/// A configured simulation run over either core model.
///
/// Consuming builder: construct with [`SimSession::new`], optionally attach
/// [`SimSession::limits`], [`SimSession::faults`] and
/// [`SimSession::recorder`], then [`SimSession::run`] or
/// [`SimSession::resume`].
pub struct SimSession<'p, 'r> {
    program: &'p Program,
    core: CoreConfig,
    limits: RunLimits,
    faults: Option<FaultPlan>,
    recorder: Option<&'r mut Recorder>,
}

impl<'p, 'r> SimSession<'p, 'r> {
    /// A session over `program` on the given core, with default limits, no
    /// fault plan, and no recorder.
    #[must_use]
    pub fn new(program: &'p Program, core: CoreConfig) -> SimSession<'p, 'r> {
        SimSession { program, core, limits: RunLimits::default(), faults: None, recorder: None }
    }

    /// Sets the run limits (including the [`RunLimits::stop_at`] checkpoint
    /// boundary).
    #[must_use]
    pub fn limits(mut self, limits: RunLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Drives the run under a fault plan (informing-trap handler faults).
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Streams events, metrics and the exact CPI stack into `rec`. The
    /// recorder is strictly passive: results are bit-identical with or
    /// without it.
    #[must_use]
    pub fn recorder(mut self, rec: &'r mut Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Hash binding a checkpoint to this exact (program, core configuration,
    /// fault plan) triple. `Debug`-based, like the sweep memo keys: two
    /// sessions hash equal iff their configurations render identically.
    fn cfg_hash(&self) -> u64 {
        let core = imo_util::debug_hash(&self.core);
        let prog = imo_util::debug_hash(self.program);
        let faults = self.faults.as_ref().map_or(0, |p| 1 ^ imo_util::debug_hash(p.config()));
        mix64(mix64(core, prog), faults)
    }

    /// Runs the session from the program's entry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the program faults, exceeds the limits, or
    /// the model deadlocks.
    pub fn run(self) -> Result<Outcome, SimError> {
        self.go(None)
    }

    /// Resumes the session from a checkpoint taken by an earlier run with
    /// the same program, core configuration and fault plan.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] if the checkpoint was taken on a
    /// different core or under a different configuration, or if its body
    /// fails to decode; otherwise as for [`SimSession::run`].
    pub fn resume(self, ckpt: &Checkpoint) -> Result<Outcome, SimError> {
        if ckpt.core != self.core.tag() {
            return Err(SimError::Checkpoint(SnapshotError::Kind {
                expected: self.core.tag(),
                found: ckpt.core.clone(),
            }));
        }
        if ckpt.cfg_hash != self.cfg_hash() {
            return Err(SimError::Checkpoint(SnapshotError::Bad("cfg_hash")));
        }
        self.go(Some(&ckpt.body))
    }

    fn go(self, resume: Option<&Json>) -> Result<Outcome, SimError> {
        let cfg_hash = self.cfg_hash();
        let SimSession { program, core, limits, faults, recorder } = self;
        let outcome = match &core {
            CoreConfig::InOrder(cfg) => {
                inorder::run(program, cfg, limits, faults.as_ref(), recorder, resume)?
            }
            CoreConfig::Ooo(cfg) => {
                ooo::run(program, cfg, limits, None, faults.as_ref(), recorder, resume)?
            }
        };
        Ok(match outcome {
            RunOutcome::Done(result, state) => Outcome::Complete { result, state },
            RunOutcome::Paused { cycle, body } => {
                Outcome::Paused(Checkpoint { core: core.tag().to_string(), cycle, cfg_hash, body })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::{Asm, Cond, Reg};

    fn kernel() -> Program {
        let mut a = Asm::new();
        let hdl = a.label("h");
        a.set_mhar(hdl);
        let (i, n) = (Reg::int(1), Reg::int(2));
        a.li(i, 0);
        a.li(n, 40);
        a.li(Reg::int(3), 0x40_0000);
        let top = a.here("top");
        a.load_inf(Reg::int(4), Reg::int(3), 0);
        a.addi(Reg::int(3), Reg::int(3), 4096);
        a.addi(i, i, 1);
        a.branch(Cond::Lt, i, n, top);
        a.halt();
        a.bind(hdl).unwrap();
        a.addi(Reg::int(20), Reg::int(20), 1);
        a.jump_mhrr();
        a.assemble().unwrap()
    }

    fn complete(o: Outcome) -> RunResult {
        match o {
            Outcome::Complete { result, .. } => result,
            Outcome::Paused(c) => panic!("unexpected pause at {}", c.cycle()),
        }
    }

    #[test]
    fn session_matches_plain_simulate_on_both_cores() {
        let p = kernel();
        let ino = complete(
            SimSession::new(&p, CoreConfig::InOrder(InOrderConfig::paper())).run().unwrap(),
        );
        assert_eq!(
            ino,
            crate::inorder::simulate(&p, &InOrderConfig::paper(), RunLimits::default()).unwrap()
        );
        let ooo = complete(SimSession::new(&p, CoreConfig::Ooo(OooConfig::paper())).run().unwrap());
        assert_eq!(
            ooo,
            crate::ooo::simulate(&p, &OooConfig::paper(), RunLimits::default()).unwrap()
        );
    }

    #[test]
    fn pause_resume_is_bit_identical() {
        let p = kernel();
        for stop in [1, 17, 100, 300] {
            let core = CoreConfig::Ooo(OooConfig::paper());
            let baseline =
                crate::ooo::simulate(&p, &OooConfig::paper(), RunLimits::default()).unwrap();
            match SimSession::new(&p, core).limits(RunLimits::stop_at(stop)).run().unwrap() {
                Outcome::Paused(ckpt) => {
                    assert!(ckpt.cycle() >= stop);
                    let resumed = complete(SimSession::new(&p, core).resume(&ckpt).unwrap());
                    assert_eq!(resumed, baseline, "stop_at {stop}");
                }
                Outcome::Complete { result, .. } => {
                    // The run finished before the boundary.
                    assert_eq!(result, baseline);
                    assert!(result.cycles <= stop);
                }
            }
        }
    }

    #[test]
    fn plain_entry_points_report_paused() {
        let p = kernel();
        let err = crate::ooo::simulate(&p, &OooConfig::paper(), RunLimits::stop_at(5)).unwrap_err();
        // Fast-forwarding may jump past the requested boundary; the pause
        // lands at the first loop iteration at or after it.
        assert!(matches!(err, SimError::Paused { cycle } if cycle >= 5), "{err}");
    }

    #[test]
    fn resume_rejects_core_and_config_mismatches() {
        let p = kernel();
        let Outcome::Paused(ckpt) = SimSession::new(&p, CoreConfig::Ooo(OooConfig::paper()))
            .limits(RunLimits::stop_at(10))
            .run()
            .unwrap()
        else {
            panic!("pauses")
        };
        // Wrong core.
        let err = SimSession::new(&p, CoreConfig::InOrder(InOrderConfig::paper()))
            .resume(&ckpt)
            .unwrap_err();
        assert!(matches!(err, SimError::Checkpoint(SnapshotError::Kind { .. })), "{err}");
        // Wrong configuration.
        let mut cfg = OooConfig::paper();
        cfg.rob_entries += 1;
        let err = SimSession::new(&p, CoreConfig::Ooo(cfg)).resume(&ckpt).unwrap_err();
        assert!(matches!(err, SimError::Checkpoint(SnapshotError::Bad("cfg_hash"))), "{err}");
        // Wrong fault plan.
        let plan = FaultPlan::new(imo_faults::FaultConfig::uniform(1, 0.1));
        let err = SimSession::new(&p, CoreConfig::Ooo(OooConfig::paper()))
            .faults(plan)
            .resume(&ckpt)
            .unwrap_err();
        assert!(matches!(err, SimError::Checkpoint(SnapshotError::Bad("cfg_hash"))), "{err}");
    }

    #[test]
    fn checkpoint_wire_round_trip_resumes() {
        let p = kernel();
        let core = CoreConfig::InOrder(InOrderConfig::paper());
        let baseline =
            crate::inorder::simulate(&p, &InOrderConfig::paper(), RunLimits::default()).unwrap();
        let Outcome::Paused(ckpt) =
            SimSession::new(&p, core).limits(RunLimits::stop_at(40)).run().unwrap()
        else {
            panic!("pauses")
        };
        let text = ckpt.to_wire().pretty();
        let back = Checkpoint::from_wire(&imo_util::json::parse(&text).unwrap()).expect("decodes");
        assert_eq!(back.to_wire().pretty(), text, "re-encode is byte-stable");
        let resumed = complete(SimSession::new(&p, core).resume(&back).unwrap());
        assert_eq!(resumed, baseline);
    }

    #[test]
    fn faulty_session_resumes_mid_fault_stream() {
        let p = kernel();
        let mut fc = imo_faults::FaultConfig::none(3);
        fc.handler_overrun_rate = 0.5;
        fc.handler_overrun_cycles = 25;
        let plan = FaultPlan::new(fc);
        let core = CoreConfig::Ooo(OooConfig::paper());
        let baseline =
            crate::ooo::simulate_faulty(&p, &OooConfig::paper(), RunLimits::default(), &plan)
                .unwrap();
        assert!(baseline.handler_faults > 0, "fault pressure reaches the handler stream");
        let Outcome::Paused(ckpt) = SimSession::new(&p, core)
            .faults(plan)
            .limits(RunLimits::stop_at(baseline.cycles / 2))
            .run()
            .unwrap()
        else {
            panic!("pauses")
        };
        let resumed = complete(SimSession::new(&p, core).faults(plan).resume(&ckpt).unwrap());
        assert_eq!(resumed, baseline);
    }
}
