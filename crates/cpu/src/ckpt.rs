//! Shared checkpoint codec helpers for the two core models.
//!
//! The cores' `run` loops checkpoint by encoding every loop local at a cycle
//! boundary (see [`crate::SimSession`]). The pieces shared between the two
//! models — fetched-instruction records, wakeup queues, slot and CPI-stack
//! accumulators — are encoded here under the `imo_util::snapshot` wire
//! discipline so both bodies render identically-shaped, byte-stable JSON.

use imo_mem::{HitLevel, ProbeResult};
use imo_obs::CpiStack;
use imo_util::json::Json;
use imo_util::snapshot::{self, SnapshotError};

use crate::frontend::{Fetched, Resolve};
use crate::result::SlotBreakdown;
use crate::sched::WakeupQueue;

/// Encodes a fetched instruction. The wire carries only dynamic state; the
/// decoded `Instr` is re-derived from the program text via the pc.
pub(crate) fn fetched_json(f: &Fetched) -> Json {
    let (probe_level, probe_line, probe_store) = match f.probe {
        Some(p) => {
            let lvl = match p.level {
                HitLevel::L1 => 0,
                HitLevel::L2 => 1,
                HitLevel::Memory => 2,
            };
            (Some(lvl), Some(p.line), p.is_store)
        }
        None => (None, None, false),
    };
    Json::obj([
        ("seq", snapshot::u64_json(f.seq)),
        ("pc", snapshot::u64_json(f.pc)),
        ("fetch_cycle", snapshot::u64_json(f.fetch_cycle)),
        ("probe_level", snapshot::opt_u64_json(probe_level)),
        ("probe_line", snapshot::opt_u64_json(probe_line)),
        ("probe_store", Json::Bool(probe_store)),
        ("informing_trap", Json::Bool(f.informing_trap)),
        (
            "resolve",
            snapshot::u64_json(match f.resolve {
                Resolve::None => 0,
                Resolve::AtExecute => 1,
                Resolve::AtGraduate => 2,
            }),
        ),
        ("cc_dep", snapshot::opt_u64_json(f.cc_dep)),
        ("is_cond_branch", Json::Bool(f.is_cond_branch)),
    ])
}

/// Decodes a [`fetched_json`] record against the program being resumed.
pub(crate) fn decode_fetched(
    program: &imo_isa::Program,
    j: &Json,
) -> Result<Fetched, SnapshotError> {
    let pc = snapshot::get_u64(j, "pc")?;
    let instr = program.fetch(pc).ok_or(SnapshotError::Bad("pc"))?;
    let probe =
        match (snapshot::get_opt_u64(j, "probe_level")?, snapshot::get_opt_u64(j, "probe_line")?) {
            (Some(lvl), Some(line)) => Some(ProbeResult {
                level: match lvl {
                    0 => HitLevel::L1,
                    1 => HitLevel::L2,
                    2 => HitLevel::Memory,
                    _ => return Err(SnapshotError::Bad("probe_level")),
                },
                line,
                is_store: snapshot::get_bool(j, "probe_store")?,
            }),
            (None, None) => None,
            _ => return Err(SnapshotError::Bad("probe_level")),
        };
    Ok(Fetched {
        seq: snapshot::get_u64(j, "seq")?,
        pc,
        instr,
        fetch_cycle: snapshot::get_u64(j, "fetch_cycle")?,
        probe,
        informing_trap: snapshot::get_bool(j, "informing_trap")?,
        resolve: match snapshot::get_u64(j, "resolve")? {
            0 => Resolve::None,
            1 => Resolve::AtExecute,
            2 => Resolve::AtGraduate,
            _ => return Err(SnapshotError::Bad("resolve")),
        },
        cc_dep: snapshot::get_opt_u64(j, "cc_dep")?,
        is_cond_branch: snapshot::get_bool(j, "is_cond_branch")?,
    })
}

/// Encodes a wakeup queue as three parallel `(due, key, item)` columns in
/// pop order plus the key counter; `item` maps the payload to a `u64`.
pub(crate) fn wakeup_json<T: Clone>(q: &WakeupQueue<T>, item: impl Fn(&T) -> u64) -> Json {
    let entries = q.entries();
    let due: Vec<u64> = entries.iter().map(|e| e.0).collect();
    let key: Vec<u64> = entries.iter().map(|e| e.1).collect();
    let items: Vec<u64> = entries.iter().map(|e| item(&e.2)).collect();
    Json::obj([
        ("next_key", snapshot::u64_json(q.next_key())),
        ("due", snapshot::u64s_json(&due)),
        ("key", snapshot::u64s_json(&key)),
        ("item", snapshot::u64s_json(&items)),
    ])
}

/// Decodes a [`wakeup_json`] queue; `item` rebuilds (and validates) each
/// payload from its `u64` encoding. `name` labels decode errors.
pub(crate) fn decode_wakeup<T>(
    j: &Json,
    name: &'static str,
    item: impl Fn(u64) -> Result<T, SnapshotError>,
) -> Result<WakeupQueue<T>, SnapshotError> {
    let next_key = snapshot::get_u64(j, "next_key")?;
    let due = snapshot::get_u64s(j, "due")?;
    let keys = snapshot::get_u64s(j, "key")?;
    let items = snapshot::get_u64s(j, "item")?;
    if keys.len() != due.len() || items.len() != due.len() {
        return Err(SnapshotError::Bad(name));
    }
    let mut entries = Vec::with_capacity(due.len());
    for ((d, k), it) in due.into_iter().zip(keys).zip(items) {
        entries.push((d, k, item(it)?));
    }
    Ok(WakeupQueue::restore(next_key, entries))
}

/// Encodes the graduation-slot accumulator.
pub(crate) fn slots_json(s: SlotBreakdown) -> Json {
    Json::obj([
        ("busy", snapshot::u64_json(s.busy)),
        ("cache_stall", snapshot::u64_json(s.cache_stall)),
        ("other_stall", snapshot::u64_json(s.other_stall)),
    ])
}

/// Decodes a [`slots_json`] accumulator.
pub(crate) fn decode_slots(j: &Json) -> Result<SlotBreakdown, SnapshotError> {
    Ok(SlotBreakdown {
        busy: snapshot::get_u64(j, "busy")?,
        cache_stall: snapshot::get_u64(j, "cache_stall")?,
        other_stall: snapshot::get_u64(j, "other_stall")?,
    })
}

/// Encodes the CPI-stack accumulator.
pub(crate) fn cpi_json(c: &CpiStack) -> Json {
    Json::obj([
        ("base", snapshot::u64_json(c.base)),
        ("issue_stall", snapshot::u64_json(c.issue_stall)),
        ("l1_miss", snapshot::u64_json(c.l1_miss)),
        ("l2_miss", snapshot::u64_json(c.l2_miss)),
        ("handler", snapshot::u64_json(c.handler)),
        ("coherence_wait", snapshot::u64_json(c.coherence_wait)),
    ])
}

/// Decodes a [`cpi_json`] accumulator.
pub(crate) fn decode_cpi(j: &Json) -> Result<CpiStack, SnapshotError> {
    Ok(CpiStack {
        base: snapshot::get_u64(j, "base")?,
        issue_stall: snapshot::get_u64(j, "issue_stall")?,
        l1_miss: snapshot::get_u64(j, "l1_miss")?,
        l2_miss: snapshot::get_u64(j, "l2_miss")?,
        handler: snapshot::get_u64(j, "handler")?,
        coherence_wait: snapshot::get_u64(j, "coherence_wait")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::{Asm, Reg};

    #[test]
    fn fetched_round_trip_rederives_instr() {
        let mut a = Asm::new();
        a.li(Reg::int(1), 0x4000);
        a.load(Reg::int(2), Reg::int(1), 0);
        a.halt();
        let p = a.assemble().unwrap();
        let f = Fetched {
            seq: 7,
            pc: imo_isa::Program::addr_of(1),
            instr: p.fetch(imo_isa::Program::addr_of(1)).unwrap(),
            fetch_cycle: 42,
            probe: Some(ProbeResult { level: HitLevel::Memory, line: 0x4000, is_store: false }),
            informing_trap: true,
            resolve: Resolve::AtGraduate,
            cc_dep: Some(6),
            is_cond_branch: false,
        };
        let back = decode_fetched(&p, &fetched_json(&f)).unwrap();
        assert_eq!(back.instr, f.instr);
        assert_eq!(back.seq, f.seq);
        assert_eq!(back.probe.unwrap().level, HitLevel::Memory);
        assert_eq!(back.resolve, Resolve::AtGraduate);
        assert_eq!(back.cc_dep, Some(6));
    }

    #[test]
    fn fetched_decode_rejects_pc_outside_text() {
        let mut a = Asm::new();
        a.halt();
        let p = a.assemble().unwrap();
        let mut f = Fetched {
            seq: 0,
            pc: imo_isa::Program::addr_of(0),
            instr: p.fetch(imo_isa::Program::addr_of(0)).unwrap(),
            fetch_cycle: 0,
            probe: None,
            informing_trap: false,
            resolve: Resolve::None,
            cc_dep: None,
            is_cond_branch: false,
        };
        f.pc = 0xdead_0000;
        let j = fetched_json(&f);
        assert_eq!(decode_fetched(&p, &j).err(), Some(SnapshotError::Bad("pc")));
    }

    #[test]
    fn wakeup_codec_round_trip() {
        let mut q: WakeupQueue<u64> = WakeupQueue::new();
        q.push(9, 100);
        q.push(3, 200);
        q.push_keyed(3, 77, 300);
        let j = wakeup_json(&q, |&v| v);
        let mut r = decode_wakeup(&j, "q", Ok).unwrap();
        assert_eq!(r.pop_due(10), q.pop_due(10));
        assert_eq!(r.pop_due(10), q.pop_due(10));
        assert_eq!(r.pop_due(10), q.pop_due(10));
        assert_eq!(r.next_key(), q.next_key());
    }

    #[test]
    fn slots_and_cpi_round_trip() {
        let s = SlotBreakdown { busy: 1, cache_stall: 2, other_stall: 3 };
        assert_eq!(decode_slots(&slots_json(s)).unwrap(), s);
        let c = CpiStack {
            base: 1,
            issue_stall: 2,
            l1_miss: 3,
            l2_miss: 4,
            handler: 5,
            coherence_wait: 6,
        };
        assert_eq!(decode_cpi(&cpi_json(&c)).unwrap(), c);
    }
}
