//! Property-based tests for the cache and MSHR models, on the in-tree
//! `imo_util::check` harness (256 seeded cases per property; a failure
//! prints its reproducing `IMO_CHECK_SEED`).

use imo_util::check::{Checker, Gen};
use imo_util::{ensure, ensure_eq};

use imo_mem::{Cache, CacheConfig, MshrFile, MshrMode, Probe};

fn small_config(g: &mut Gen) -> CacheConfig {
    // Sizes/assocs kept tiny so evictions happen constantly.
    let size = 256u64 << g.int(0u32..3);
    let assoc = 1u32 << g.int(0u32..3);
    CacheConfig::new(size, assoc, 32)
}

fn addr(g: &mut Gen) -> u64 {
    // A handful of lines spanning several sets, with heavy collisions.
    g.int(0u64..64) * 32 + 4
}

/// After any access, the line is present; capacity is never exceeded.
#[test]
fn accessed_line_is_present_and_capacity_respected() {
    Checker::new("accessed_line_is_present_and_capacity_respected").run(|g| {
        let cfg = small_config(g);
        let ops = g.vec(1..200, |g| (addr(g), g.bool()));
        let capacity = (cfg.num_sets() * cfg.assoc as u64) as usize;
        let mut c = Cache::new(cfg);
        for (a, w) in ops {
            c.access(a, w);
            ensure!(c.contains(a));
            ensure!(c.valid_lines() <= capacity);
        }
        Ok(())
    });
}

/// Misses + hits == accesses, and evictions only report lines that were
/// resident.
#[test]
fn bookkeeping_is_consistent() {
    Checker::new("bookkeeping_is_consistent").run(|g| {
        let cfg = small_config(g);
        let ops = g.vec(1..200, |g| (addr(g), g.bool()));
        let mut c = Cache::new(cfg);
        let mut resident = std::collections::HashSet::new();
        for (a, w) in ops {
            let line = cfg.line_of(a);
            let was_resident = resident.contains(&line);
            match c.access(a, w) {
                Probe::Hit => ensure!(was_resident, "hit on non-resident {line:#x}"),
                Probe::Miss { evicted } => {
                    ensure!(!was_resident, "miss on resident {line:#x}");
                    if let Some(e) = evicted {
                        ensure!(resident.remove(&e.line), "evicted ghost {e:?}");
                    }
                    resident.insert(line);
                }
            }
        }
        ensure_eq!(c.valid_lines(), resident.len());
        ensure!(c.stats().misses <= c.stats().accesses);
        Ok(())
    });
}

/// A fully-associative cache of N lines behaves like true LRU over a
/// reference model.
#[test]
fn fully_associative_matches_reference_lru() {
    Checker::new("fully_associative_matches_reference_lru").run(|g| {
        let ops = g.vec(1..300, |g| g.int(0u64..16));
        let lines = 4usize;
        let mut c = Cache::new(CacheConfig::new(32 * lines as u64, lines as u32, 32));
        let mut lru: Vec<u64> = Vec::new(); // front = most recent
        for a in ops {
            let addr = a * 32;
            let hit = matches!(c.access(addr, false), Probe::Hit);
            let model_hit = lru.contains(&addr);
            ensure_eq!(hit, model_hit, "divergence at {:#x}", addr);
            lru.retain(|&x| x != addr);
            lru.insert(0, addr);
            lru.truncate(lines);
        }
        Ok(())
    });
}

/// Invalidation removes exactly the target line and nothing else.
#[test]
fn invalidate_is_precise() {
    Checker::new("invalidate_is_precise").run(|g| {
        let cfg = small_config(g);
        let warm = g.vec(1..50, addr);
        let victim = addr(g);
        let mut c = Cache::new(cfg);
        for a in &warm {
            c.access(*a, false);
        }
        let before = c.valid_lines();
        let had = c.contains(victim);
        let removed = c.invalidate(victim).is_some();
        ensure_eq!(had, removed);
        ensure_eq!(c.valid_lines(), before - usize::from(removed));
        ensure!(!c.contains(victim));
        Ok(())
    });
}

/// MSHR conservation: allocations never exceed capacity; every squash of
/// a never-graduated miss invalidates in extended mode and never does in
/// standard mode.
#[test]
fn mshr_capacity_and_squash_policy() {
    Checker::new("mshr_capacity_and_squash_policy").run(|g| {
        let lines = g.vec(1..64, |g| g.int(0u64..8));
        let standard = g.bool();
        let mode = if standard { MshrMode::Standard } else { MshrMode::ExtendedLifetime };
        let mut l1 = Cache::new(CacheConfig::new(1024, 2, 32));
        let mut m = MshrFile::new(4, mode);
        for l in lines {
            let line = l * 32;
            l1.access(line, false);
            if let Some(id) = m.allocate(line) {
                m.note_fill(id);
                let inv = m.squash(id, &mut l1);
                if standard {
                    ensure_eq!(inv, None);
                } else {
                    // Sole reference, never graduated: must invalidate.
                    ensure!(
                        inv.is_some() || m.find(line).is_some(),
                        "squash must invalidate or the entry was merged"
                    );
                }
            }
            ensure!(m.in_use() <= 4);
            m.reap();
        }
        Ok(())
    });
}
