//! Property-based tests for the cache and MSHR models.

use proptest::prelude::*;

use imo_mem::{Cache, CacheConfig, MshrFile, MshrMode, Probe};

fn small_config() -> impl Strategy<Value = CacheConfig> {
    // Sizes/assocs kept tiny so evictions happen constantly.
    (0u32..3, 0u32..3).prop_map(|(size_exp, assoc_exp)| {
        let assoc = 1 << assoc_exp;
        let size = 256u64 << size_exp;
        CacheConfig::new(size, assoc, 32)
    })
}

fn addr() -> impl Strategy<Value = u64> {
    // A handful of lines spanning several sets, with heavy collisions.
    (0u64..64).prop_map(|l| l * 32 + 4)
}

proptest! {
    /// After any access, the line is present; capacity is never exceeded.
    #[test]
    fn accessed_line_is_present_and_capacity_respected(
        cfg in small_config(),
        ops in proptest::collection::vec((addr(), any::<bool>()), 1..200),
    ) {
        let capacity = (cfg.num_sets() * cfg.assoc as u64) as usize;
        let mut c = Cache::new(cfg);
        for (a, w) in ops {
            c.access(a, w);
            prop_assert!(c.contains(a));
            prop_assert!(c.valid_lines() <= capacity);
        }
    }

    /// Misses + hits == accesses, and evictions only report lines that were
    /// resident.
    #[test]
    fn bookkeeping_is_consistent(
        cfg in small_config(),
        ops in proptest::collection::vec((addr(), any::<bool>()), 1..200),
    ) {
        let mut c = Cache::new(cfg);
        let mut resident = std::collections::HashSet::new();
        for (a, w) in ops {
            let line = cfg.line_of(a);
            let was_resident = resident.contains(&line);
            match c.access(a, w) {
                Probe::Hit => prop_assert!(was_resident, "hit on non-resident {line:#x}"),
                Probe::Miss { evicted } => {
                    prop_assert!(!was_resident, "miss on resident {line:#x}");
                    if let Some(e) = evicted {
                        prop_assert!(resident.remove(&e.line), "evicted ghost {e:?}");
                    }
                    resident.insert(line);
                }
            }
        }
        prop_assert_eq!(c.valid_lines(), resident.len());
        prop_assert!(c.stats().misses <= c.stats().accesses);
    }

    /// A fully-associative cache of N lines behaves like true LRU over a
    /// reference model.
    #[test]
    fn fully_associative_matches_reference_lru(
        ops in proptest::collection::vec(0u64..16, 1..300),
    ) {
        let lines = 4usize;
        let mut c = Cache::new(CacheConfig::new(32 * lines as u64, lines as u32, 32));
        let mut lru: Vec<u64> = Vec::new(); // front = most recent
        for a in ops {
            let addr = a * 32;
            let hit = matches!(c.access(addr, false), Probe::Hit);
            let model_hit = lru.contains(&addr);
            prop_assert_eq!(hit, model_hit, "divergence at {:#x}", addr);
            lru.retain(|&x| x != addr);
            lru.insert(0, addr);
            lru.truncate(lines);
        }
    }

    /// Invalidation removes exactly the target line and nothing else.
    #[test]
    fn invalidate_is_precise(
        cfg in small_config(),
        warm in proptest::collection::vec(addr(), 1..50),
        victim in addr(),
    ) {
        let mut c = Cache::new(cfg);
        for a in &warm {
            c.access(*a, false);
        }
        let before = c.valid_lines();
        let had = c.contains(victim);
        let removed = c.invalidate(victim).is_some();
        prop_assert_eq!(had, removed);
        prop_assert_eq!(c.valid_lines(), before - usize::from(removed));
        prop_assert!(!c.contains(victim));
    }

    /// MSHR conservation: allocations never exceed capacity; every squash of
    /// a never-graduated miss invalidates in extended mode and never does in
    /// standard mode.
    #[test]
    fn mshr_capacity_and_squash_policy(
        lines in proptest::collection::vec(0u64..8, 1..64),
        standard in any::<bool>(),
    ) {
        let mode = if standard { MshrMode::Standard } else { MshrMode::ExtendedLifetime };
        let mut l1 = Cache::new(CacheConfig::new(1024, 2, 32));
        let mut m = MshrFile::new(4, mode);
        for l in lines {
            let line = l * 32;
            l1.access(line, false);
            if let Some(id) = m.allocate(line) {
                m.note_fill(id);
                let inv = m.squash(id, &mut l1);
                if standard {
                    prop_assert_eq!(inv, None);
                } else {
                    // Sole reference, never graduated: must invalidate.
                    prop_assert!(inv.is_some() || m.find(line).is_some(),
                        "squash must invalidate or the entry was merged");
                }
            }
            prop_assert!(m.in_use() <= 4);
            m.reap();
        }
    }
}
