//! Configuration for caches and the two-level hierarchy.

use std::fmt;

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (1 = direct mapped).
    pub assoc: u32,
    /// Line size in bytes (32 in both paper configurations).
    pub line_bytes: u64,
}

impl CacheConfig {
    /// Creates a config after validating that all parameters are coherent
    /// powers of two and the geometry divides evenly.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` or `size_bytes` is not a power of two, if
    /// `assoc` is zero, or if the capacity is not a multiple of
    /// `assoc * line_bytes`.
    pub fn new(size_bytes: u64, assoc: u32, line_bytes: u64) -> CacheConfig {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(size_bytes.is_power_of_two(), "cache size must be a power of two");
        assert!(assoc > 0, "associativity must be positive");
        assert_eq!(
            size_bytes % (assoc as u64 * line_bytes),
            0,
            "capacity must divide evenly into sets"
        );
        let c = CacheConfig { size_bytes, assoc, line_bytes };
        assert!(c.num_sets() >= 1);
        c
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.assoc as u64 * self.line_bytes)
    }

    /// The line-aligned address containing `addr`.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes - 1)
    }

    /// The set index for `addr`.
    pub fn set_of(&self, addr: u64) -> u64 {
        (addr / self.line_bytes) % self.num_sets()
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kb = self.size_bytes / 1024;
        if self.assoc == 1 {
            write!(f, "{kb}KB direct-mapped, {}B lines", self.line_bytes)
        } else {
            write!(f, "{kb}KB {}-way, {}B lines", self.assoc, self.line_bytes)
        }
    }
}

/// Which level of the hierarchy served a reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HitLevel {
    /// Served by the primary cache.
    L1,
    /// Missed in L1, served by the unified secondary cache.
    L2,
    /// Missed in both caches, served by main memory.
    Memory,
}

impl HitLevel {
    /// Whether this outcome is a primary-cache miss (the event that triggers
    /// informing memory operations).
    pub fn is_l1_miss(self) -> bool {
        self != HitLevel::L1
    }
}

impl fmt::Display for HitLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HitLevel::L1 => f.write_str("L1"),
            HitLevel::L2 => f.write_str("L2"),
            HitLevel::Memory => f.write_str("memory"),
        }
    }
}

/// Full two-level hierarchy parameters (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Primary data cache geometry.
    pub l1d: CacheConfig,
    /// Primary instruction cache geometry.
    pub l1i: CacheConfig,
    /// Unified secondary cache geometry.
    pub l2: CacheConfig,
    /// Primary-cache hit latency in cycles (load-to-use).
    pub l1_latency: u64,
    /// Added latency of a primary miss served by the secondary cache.
    pub l2_latency: u64,
    /// Added latency of a primary miss served by main memory.
    pub mem_latency: u64,
    /// Number of Miss Status Handling Registers (outstanding primary misses).
    pub mshrs: u32,
    /// Number of primary data-cache banks.
    pub banks: u32,
    /// Cycles a returning line occupies its bank while filling.
    pub fill_cycles: u64,
    /// Minimum spacing between main-memory accesses (1 access per N cycles).
    pub mem_cycles_per_access: u64,
}

impl HierarchyConfig {
    /// The out-of-order model's hierarchy (MIPS-R10000-like; Table 1).
    ///
    /// 32 KB 2-way L1 caches, 2 MB 2-way unified L2, 12-cycle L1→L2 miss
    /// latency, 75-cycle L1→memory latency, 8 MSHRs, 2 banks, 4-cycle fill,
    /// one memory access per 20 cycles.
    pub fn out_of_order() -> HierarchyConfig {
        HierarchyConfig {
            l1d: CacheConfig::new(32 * 1024, 2, 32),
            l1i: CacheConfig::new(32 * 1024, 2, 32),
            l2: CacheConfig::new(2 * 1024 * 1024, 2, 32),
            l1_latency: 2,
            l2_latency: 12,
            mem_latency: 75,
            mshrs: 8,
            banks: 2,
            fill_cycles: 4,
            mem_cycles_per_access: 20,
        }
    }

    /// The in-order model's hierarchy (Alpha-21164-like; Table 1).
    ///
    /// 8 KB direct-mapped L1 caches, 2 MB 4-way unified L2, 11-cycle L1→L2
    /// miss latency, 50-cycle L1→memory latency, 8 MSHRs, 2 banks, 4-cycle
    /// fill, one memory access per 20 cycles.
    pub fn in_order() -> HierarchyConfig {
        HierarchyConfig {
            l1d: CacheConfig::new(8 * 1024, 1, 32),
            l1i: CacheConfig::new(8 * 1024, 1, 32),
            l2: CacheConfig::new(2 * 1024 * 1024, 4, 32),
            l1_latency: 2,
            l2_latency: 11,
            mem_latency: 50,
            mshrs: 8,
            banks: 2,
            fill_cycles: 4,
            mem_cycles_per_access: 20,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let c = CacheConfig::new(32 * 1024, 2, 32);
        assert_eq!(c.num_sets(), 512);
        assert_eq!(c.line_of(0x1234), 0x1220);
        assert_eq!(c.set_of(0x20), 1);
        assert_eq!(c.set_of(0x20 + 512 * 32), 1, "wraps by set count");
    }

    #[test]
    fn direct_mapped_sets() {
        let c = CacheConfig::new(8 * 1024, 1, 32);
        assert_eq!(c.num_sets(), 256);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = CacheConfig::new(3000, 2, 32);
    }

    #[test]
    fn display_shapes() {
        assert_eq!(CacheConfig::new(8192, 1, 32).to_string(), "8KB direct-mapped, 32B lines");
        assert_eq!(CacheConfig::new(2 * 1024 * 1024, 4, 32).to_string(), "2048KB 4-way, 32B lines");
    }

    #[test]
    fn paper_configs() {
        let ooo = HierarchyConfig::out_of_order();
        assert_eq!(ooo.l1d.size_bytes, 32 * 1024);
        assert_eq!(ooo.mem_latency, 75);
        let ino = HierarchyConfig::in_order();
        assert_eq!(ino.l1d.assoc, 1);
        assert_eq!(ino.l2_latency, 11);
        assert_eq!(ino.mem_latency, 50);
    }

    #[test]
    fn hit_level_miss_flag() {
        assert!(!HitLevel::L1.is_l1_miss());
        assert!(HitLevel::L2.is_l1_miss());
        assert!(HitLevel::Memory.is_l1_miss());
    }
}
