//! Miss Status Handling Registers with the paper's §3.3 lifetime extension.
//!
//! A lockup-free cache tracks each outstanding miss in an MSHR \[FJ94\]. The
//! paper extends the MSHR's lifetime so that an entry is freed only when its
//! memory operation either **graduates** or is **squashed** — not when the
//! fill returns. On a squash with no surviving references, the (possibly
//! already-filled) line is invalidated in the primary cache so that a
//! squashed speculative informing load can never silently install
//! primary-cache state (which would let a coherence access-check be
//! bypassed). The data generally still resides in L2, so the squashed load
//! acted as an L2 prefetch.

use crate::cache::Cache;
use imo_util::json::Json;
use imo_util::snapshot::{self, Snapshot, SnapshotError};

/// Identifies an allocated MSHR entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MshrId(usize);

impl MshrId {
    /// The raw register index (for checkpoint encoding).
    pub fn raw(self) -> usize {
        self.0
    }

    /// Rebuilds an id from [`MshrId::raw`] (checkpoint decoding). The caller
    /// is responsible for the index referring to the same [`MshrFile`] the
    /// raw value was taken from.
    pub fn from_raw(index: usize) -> MshrId {
        MshrId(index)
    }
}

/// MSHR deallocation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MshrMode {
    /// Conventional: the entry is freed as soon as the fill returns
    /// ([`MshrFile::note_fill`]). Squashes never invalidate — speculative
    /// fills silently update the primary cache.
    Standard,
    /// §3.3: the entry is freed only when every attached memory operation has
    /// graduated or been squashed; if none graduated, the line is invalidated
    /// on release.
    #[default]
    ExtendedLifetime,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    Free,
    Pending,
    Filled,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    state: EntryState,
    line: u64,
    /// Memory operations attached to this miss (primary + merged).
    refs: u32,
    /// Whether any attached operation has graduated.
    any_graduated: bool,
}

impl Entry {
    const FREE: Entry = Entry { state: EntryState::Free, line: 0, refs: 0, any_graduated: false };
}

/// Statistics for the MSHR file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MshrStats {
    /// Primary allocations (new outstanding lines).
    pub allocations: u64,
    /// Secondary references merged into an existing entry.
    pub merges: u64,
    /// Allocation attempts rejected because the file was full.
    pub full_rejections: u64,
    /// Lines invalidated because every attached operation was squashed.
    pub squash_invalidations: u64,
    /// High-water mark of simultaneously busy entries.
    pub peak_in_use: u32,
}

/// A file of Miss Status Handling Registers.
///
/// The out-of-order processor model drives this protocol:
///
/// 1. [`MshrFile::allocate`] when an informing (or ordinary) reference misses
///    — merging with an existing entry for the same line;
/// 2. [`MshrFile::note_fill`] when the line returns from L2/memory;
/// 3. [`MshrFile::graduate`] or [`MshrFile::squash`] for each attached
///    operation; `squash` is handed the primary data cache so it can
///    invalidate a speculatively-installed line.
///
/// # Example
///
/// ```
/// use imo_mem::{Cache, CacheConfig, MshrFile, MshrMode};
///
/// let mut l1 = Cache::new(CacheConfig::new(1024, 2, 32));
/// let mut mshrs = MshrFile::new(8, MshrMode::ExtendedLifetime);
///
/// // A speculative informing load misses and installs line 0x40.
/// l1.access(0x40, false);
/// let id = mshrs.allocate(0x40).unwrap();
/// mshrs.note_fill(id);
///
/// // The load turns out to be on a mispredicted path: squash it.
/// mshrs.squash(id, &mut l1);
/// assert!(!l1.contains(0x40), "squashed load leaves no L1 state behind");
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<Entry>,
    mode: MshrMode,
    stats: MshrStats,
}

impl MshrFile {
    /// Creates a file of `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u32, mode: MshrMode) -> MshrFile {
        assert!(capacity > 0, "MSHR capacity must be positive");
        MshrFile {
            entries: vec![Entry::FREE; capacity as usize],
            mode,
            stats: MshrStats::default(),
        }
    }

    /// The deallocation policy.
    pub fn mode(&self) -> MshrMode {
        self.mode
    }

    /// Statistics since construction.
    pub fn stats(&self) -> &MshrStats {
        &self.stats
    }

    /// Number of busy entries.
    pub fn in_use(&self) -> u32 {
        self.entries.iter().filter(|e| e.state != EntryState::Free).count() as u32
    }

    /// Whether a new (non-merging) allocation would succeed.
    pub fn has_free(&self) -> bool {
        self.entries.iter().any(|e| e.state == EntryState::Free)
    }

    /// The entry currently tracking `line`, if any.
    pub fn find(&self, line: u64) -> Option<MshrId> {
        self.entries.iter().position(|e| e.state != EntryState::Free && e.line == line).map(MshrId)
    }

    /// Attaches a missing reference to `line`: merges with an existing entry
    /// for the same line, otherwise claims a free register.
    ///
    /// Returns `None` (and counts a rejection) if the file is full — the
    /// processor must stall the reference and retry.
    pub fn allocate(&mut self, line: u64) -> Option<MshrId> {
        if let Some(id) = self.find(line) {
            self.entries[id.0].refs += 1;
            self.stats.merges += 1;
            return Some(id);
        }
        match self.entries.iter().position(|e| e.state == EntryState::Free) {
            Some(i) => {
                self.entries[i] =
                    Entry { state: EntryState::Pending, line, refs: 1, any_graduated: false };
                self.stats.allocations += 1;
                self.stats.peak_in_use = self.stats.peak_in_use.max(self.in_use());
                Some(MshrId(i))
            }
            None => {
                self.stats.full_rejections += 1;
                None
            }
        }
    }

    /// Records that the fill for `id` has returned. In [`MshrMode::Standard`]
    /// this frees the entry immediately.
    ///
    /// # Panics
    ///
    /// Panics if `id` is free.
    pub fn note_fill(&mut self, id: MshrId) {
        let e = &mut self.entries[id.0];
        assert_ne!(e.state, EntryState::Free, "fill for a free MSHR");
        e.state = EntryState::Filled;
        if self.mode == MshrMode::Standard {
            *e = Entry::FREE;
        }
    }

    /// Detaches one graduated operation from `id`. The entry is freed when
    /// the last operation detaches; a graduated operation legitimises the
    /// installed line, so no invalidation ever results.
    ///
    /// No-op in [`MshrMode::Standard`] if the entry was already freed by the
    /// fill.
    pub fn graduate(&mut self, id: MshrId) {
        let e = &mut self.entries[id.0];
        if e.state == EntryState::Free {
            return;
        }
        e.any_graduated = true;
        e.refs = e.refs.saturating_sub(1);
        if e.refs == 0 && e.state == EntryState::Filled {
            *e = Entry::FREE;
        }
    }

    /// Detaches one squashed operation from `id`. If this was the last
    /// attached operation and no operation graduated, the line is invalidated
    /// in `l1d` (the §3.3 guarantee) and its address is returned.
    ///
    /// No-op in [`MshrMode::Standard`] if the entry was already freed.
    pub fn squash(&mut self, id: MshrId, l1d: &mut Cache) -> Option<u64> {
        let e = &mut self.entries[id.0];
        if e.state == EntryState::Free {
            return None;
        }
        e.refs = e.refs.saturating_sub(1);
        if e.refs > 0 {
            return None;
        }
        // Last reference gone.
        let line = e.line;
        let any_graduated = e.any_graduated;
        let filled = e.state == EntryState::Filled;
        if filled {
            *e = Entry::FREE;
        } else {
            // Fill still outstanding: mark so that note_fill's arrival frees
            // it; the installed tag must still be removed now.
            e.refs = 0;
        }
        if !any_graduated && self.mode == MshrMode::ExtendedLifetime {
            self.stats.squash_invalidations += 1;
            l1d.invalidate(line);
            return Some(line);
        }
        None
    }

    /// Releases any zero-reference pending entries whose fill has since
    /// returned (called by the processor when fills complete for entries that
    /// were fully squashed while pending).
    pub fn reap(&mut self) {
        for e in &mut self.entries {
            if e.state == EntryState::Filled && e.refs == 0 {
                *e = Entry::FREE;
            }
        }
    }
}

impl Snapshot for MshrFile {
    const KIND: &'static str = "mem.mshr_file";
    const VERSION: u32 = 1;

    fn encode(&self) -> Json {
        let states: Vec<u64> = self
            .entries
            .iter()
            .map(|e| match e.state {
                EntryState::Free => 0,
                EntryState::Pending => 1,
                EntryState::Filled => 2,
            })
            .collect();
        let lines: Vec<u64> = self.entries.iter().map(|e| e.line).collect();
        let refs: Vec<u64> = self.entries.iter().map(|e| e.refs as u64).collect();
        let graduated: Vec<u64> = self.entries.iter().map(|e| e.any_graduated as u64).collect();
        Json::obj([
            (
                "mode",
                snapshot::u64_json(match self.mode {
                    MshrMode::Standard => 0,
                    MshrMode::ExtendedLifetime => 1,
                }),
            ),
            ("states", snapshot::u64s_json(&states)),
            ("lines", snapshot::u64s_json(&lines)),
            ("refs", snapshot::u64s_json(&refs)),
            ("graduated", snapshot::u64s_json(&graduated)),
            (
                "stats",
                Json::obj([
                    ("allocations", snapshot::u64_json(self.stats.allocations)),
                    ("merges", snapshot::u64_json(self.stats.merges)),
                    ("full_rejections", snapshot::u64_json(self.stats.full_rejections)),
                    ("squash_invalidations", snapshot::u64_json(self.stats.squash_invalidations)),
                    ("peak_in_use", snapshot::u64_json(self.stats.peak_in_use as u64)),
                ]),
            ),
        ])
    }

    fn decode(data: &Json) -> Result<Self, SnapshotError> {
        let mode = match snapshot::get_u64(data, "mode")? {
            0 => MshrMode::Standard,
            1 => MshrMode::ExtendedLifetime,
            _ => return Err(SnapshotError::Bad("mode")),
        };
        let states = snapshot::get_u64s(data, "states")?;
        let lines = snapshot::get_u64s(data, "lines")?;
        let refs = snapshot::get_u64s(data, "refs")?;
        let graduated = snapshot::get_u64s(data, "graduated")?;
        let n = states.len();
        if n == 0 || lines.len() != n || refs.len() != n || graduated.len() != n {
            return Err(SnapshotError::Bad("entry columns"));
        }
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            entries.push(Entry {
                state: match states[i] {
                    0 => EntryState::Free,
                    1 => EntryState::Pending,
                    2 => EntryState::Filled,
                    _ => return Err(SnapshotError::Bad("states")),
                },
                line: lines[i],
                refs: u32::try_from(refs[i]).map_err(|_| SnapshotError::Bad("refs"))?,
                any_graduated: graduated[i] != 0,
            });
        }
        let stats = snapshot::field(data, "stats")?;
        Ok(MshrFile {
            entries,
            mode,
            stats: MshrStats {
                allocations: snapshot::get_u64(stats, "allocations")?,
                merges: snapshot::get_u64(stats, "merges")?,
                full_rejections: snapshot::get_u64(stats, "full_rejections")?,
                squash_invalidations: snapshot::get_u64(stats, "squash_invalidations")?,
                peak_in_use: snapshot::get_u32(stats, "peak_in_use")?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn l1() -> Cache {
        Cache::new(CacheConfig::new(1024, 2, 32))
    }

    #[test]
    fn allocate_and_merge() {
        let mut m = MshrFile::new(2, MshrMode::ExtendedLifetime);
        let a = m.allocate(0x40).unwrap();
        let b = m.allocate(0x40).unwrap();
        assert_eq!(a, b, "same line merges");
        assert_eq!(m.stats().merges, 1);
        let c = m.allocate(0x80).unwrap();
        assert_ne!(a, c);
        assert!(m.allocate(0xc0).is_none(), "file full");
        assert_eq!(m.stats().full_rejections, 1);
    }

    #[test]
    fn standard_mode_frees_on_fill() {
        let mut m = MshrFile::new(1, MshrMode::Standard);
        let id = m.allocate(0x40).unwrap();
        assert!(!m.has_free());
        m.note_fill(id);
        assert!(m.has_free());
    }

    #[test]
    fn extended_mode_holds_until_graduate() {
        let mut m = MshrFile::new(1, MshrMode::ExtendedLifetime);
        let id = m.allocate(0x40).unwrap();
        m.note_fill(id);
        assert!(!m.has_free(), "entry survives the fill");
        m.graduate(id);
        assert!(m.has_free());
    }

    #[test]
    fn squash_after_fill_invalidates_line() {
        let mut c = l1();
        c.access(0x40, false); // speculative install
        let mut m = MshrFile::new(1, MshrMode::ExtendedLifetime);
        let id = m.allocate(0x40).unwrap();
        m.note_fill(id);
        assert_eq!(m.squash(id, &mut c), Some(0x40));
        assert!(!c.contains(0x40));
        assert_eq!(m.stats().squash_invalidations, 1);
        assert!(m.has_free());
    }

    #[test]
    fn squash_before_fill_invalidates_and_reaps() {
        let mut c = l1();
        c.access(0x40, false);
        let mut m = MshrFile::new(1, MshrMode::ExtendedLifetime);
        let id = m.allocate(0x40).unwrap();
        assert_eq!(m.squash(id, &mut c), Some(0x40));
        assert!(!c.contains(0x40));
        assert!(!m.has_free(), "entry lingers until the fill returns");
        m.note_fill(id);
        m.reap();
        assert!(m.has_free());
    }

    #[test]
    fn merged_graduated_reference_protects_line() {
        // Two loads share a miss; one graduates, the other is squashed.
        // The line must stay: a committed operation referenced it.
        let mut c = l1();
        c.access(0x40, false);
        let mut m = MshrFile::new(2, MshrMode::ExtendedLifetime);
        let id = m.allocate(0x40).unwrap();
        let id2 = m.allocate(0x40).unwrap();
        assert_eq!(id, id2);
        m.note_fill(id);
        m.graduate(id);
        assert_eq!(m.squash(id, &mut c), None);
        assert!(c.contains(0x40), "graduated reference legitimises the line");
        assert!(m.has_free());
    }

    #[test]
    fn standard_mode_squash_never_invalidates() {
        let mut c = l1();
        c.access(0x40, false);
        let mut m = MshrFile::new(1, MshrMode::Standard);
        let id = m.allocate(0x40).unwrap();
        // Fill has not yet returned; squash in standard mode.
        assert_eq!(m.squash(id, &mut c), None);
        assert!(c.contains(0x40), "standard MSHRs silently keep speculative state");
    }

    #[test]
    fn peak_in_use_tracked() {
        let mut m = MshrFile::new(4, MshrMode::ExtendedLifetime);
        let ids: Vec<_> = (0..3).map(|i| m.allocate(0x40 * (i + 1)).unwrap()).collect();
        assert_eq!(m.stats().peak_in_use, 3);
        for id in ids {
            m.note_fill(id);
            m.graduate(id);
        }
        assert_eq!(m.in_use(), 0);
        assert_eq!(m.stats().peak_in_use, 3);
    }

    #[test]
    fn snapshot_round_trip_mid_miss() {
        // One filled entry with a merged reference, one pending entry.
        let mut m = MshrFile::new(4, MshrMode::ExtendedLifetime);
        let a = m.allocate(0x40).unwrap();
        let _ = m.allocate(0x40).unwrap();
        let b = m.allocate(0x80).unwrap();
        m.note_fill(a);
        m.graduate(a);
        let wire = m.to_wire().pretty();
        let mut back =
            MshrFile::from_wire(&imo_util::json::parse(&wire).unwrap()).expect("decodes");
        assert_eq!(back.to_wire(), m.to_wire(), "re-encoding is byte-stable");
        assert_eq!(back.mode(), m.mode());
        assert_eq!(back.stats(), m.stats());
        assert_eq!(back.in_use(), m.in_use());
        assert_eq!(back.find(0x40), Some(a));
        assert_eq!(back.find(0x80), Some(b));
        // The restored file finishes the protocol exactly like the original.
        let mut c = l1();
        c.access(0x40, false);
        assert_eq!(back.squash(a, &mut c), None, "graduated ref protects the line");
        back.note_fill(b);
        back.graduate(b);
        assert_eq!(back.in_use(), 0);
    }

    #[test]
    fn mshr_id_raw_round_trip() {
        let mut m = MshrFile::new(2, MshrMode::ExtendedLifetime);
        let id = m.allocate(0x100).unwrap();
        assert_eq!(MshrId::from_raw(id.raw()), id);
    }

    #[test]
    fn find_by_line() {
        let mut m = MshrFile::new(2, MshrMode::ExtendedLifetime);
        let id = m.allocate(0x100).unwrap();
        assert_eq!(m.find(0x100), Some(id));
        assert_eq!(m.find(0x140), None);
    }
}
