//! Set-associative cache state model.

use crate::config::CacheConfig;
use crate::ecc::{EccEvent, EccFailure};
use imo_util::json::Json;
use imo_util::snapshot::{self, Snapshot, SnapshotError};

/// Outcome of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// The line was present.
    Hit,
    /// The line was absent and has been installed; if a valid line was
    /// displaced, its line address and dirtiness are reported.
    Miss {
        /// Displaced victim, if the chosen way held a valid line.
        evicted: Option<Eviction>,
    },
}

/// A line displaced by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Line-aligned address of the victim.
    pub line: u64,
    /// Whether the victim was dirty (needs a writeback).
    pub dirty: bool,
}

/// Aggregate cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total probes (reads + writes).
    pub accesses: u64,
    /// Probes that missed.
    pub misses: u64,
    /// Dirty lines displaced (writebacks generated).
    pub writebacks: u64,
    /// Lines removed by explicit invalidation.
    pub invalidations: u64,
    /// Single-bit ECC faults corrected in place.
    pub ecc_corrected: u64,
    /// Double-bit ECC faults detected (line discarded, access failed).
    pub ecc_uncorrectable: u64,
}

impl CacheStats {
    /// Miss ratio (0 when no accesses were made).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    valid: bool,
    tag: u64,
    dirty: bool,
    /// Monotonic counter value at last touch; smallest = LRU.
    lru: u64,
}

/// A set-associative, write-allocate, write-back cache with true-LRU
/// replacement. Models tags and replacement state only (data lives in the
/// functional executor's memory).
///
/// # Example
///
/// ```
/// use imo_mem::{Cache, CacheConfig, Probe};
///
/// let mut c = Cache::new(CacheConfig::new(1024, 2, 32));
/// assert!(matches!(c.access(0x40, false), Probe::Miss { .. }));
/// assert_eq!(c.access(0x40, false), Probe::Hit);
/// assert_eq!(c.stats().misses, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Cached geometry: `log2(line_bytes)`, `num_sets - 1`, and
    /// `log2(line_bytes * num_sets)`. Tag/set extraction runs on every
    /// simulated memory reference and instruction-line probe, so it must be
    /// shifts and masks, not the three 64-bit divisions the naive
    /// `addr / line_bytes / num_sets` form costs.
    line_shift: u32,
    set_mask: u64,
    tag_shift: u32,
    sets: Vec<Way>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not power-of-two (guaranteed for configs
    /// built via [`CacheConfig::new`], which validates exactly that).
    pub fn new(config: CacheConfig) -> Cache {
        let num_sets = config.num_sets();
        assert!(
            config.line_bytes.is_power_of_two() && num_sets.is_power_of_two(),
            "cache geometry must be power-of-two"
        );
        let line_shift = config.line_bytes.trailing_zeros();
        let ways = (num_sets * config.assoc as u64) as usize;
        Cache {
            config,
            line_shift,
            set_mask: num_sets - 1,
            tag_shift: line_shift + num_sets.trailing_zeros(),
            sets: vec![Way::default(); ways],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Aggregate statistics since construction (or the last [`Cache::reset_stats`]).
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Clears the statistics counters (tag state is preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_range(&self, addr: u64) -> std::ops::Range<usize> {
        let set = ((addr >> self.line_shift) & self.set_mask) as usize;
        let a = self.config.assoc as usize;
        set * a..(set + 1) * a
    }

    #[inline]
    fn tag_of(&self, addr: u64) -> u64 {
        addr >> self.tag_shift
    }

    /// Probes the cache for `addr`, installing the line on a miss
    /// (write-allocate) and updating LRU state. `is_write` marks the line
    /// dirty.
    #[inline]
    pub fn access(&mut self, addr: u64, is_write: bool) -> Probe {
        self.clock += 1;
        self.stats.accesses += 1;
        let tag = self.tag_of(addr);
        let start = self.set_range(addr).start;
        let assoc = self.config.assoc as usize;
        let clock = self.clock;

        // Hit?
        let set = &mut self.sets[start..start + assoc];
        for w in set.iter_mut() {
            if w.valid && w.tag == tag {
                w.lru = clock;
                if is_write {
                    w.dirty = true;
                }
                return Probe::Hit;
            }
        }

        // Miss: choose invalid way, else LRU way.
        self.stats.misses += 1;
        let victim_idx = match set.iter().position(|w| !w.valid) {
            Some(i) => start + i,
            None => {
                let (i, _) = set
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.lru)
                    .expect("associativity is positive");
                start + i
            }
        };
        let set_idx = (addr >> self.line_shift) & self.set_mask;
        let w = &mut self.sets[victim_idx];
        let evicted = if w.valid {
            let victim_line = ((w.tag * (self.set_mask + 1)) + set_idx) << self.line_shift;
            let e = Eviction { line: victim_line, dirty: w.dirty };
            if w.dirty {
                self.stats.writebacks += 1;
            }
            Some(e)
        } else {
            None
        };
        w.valid = true;
        w.tag = tag;
        w.dirty = is_write;
        w.lru = clock;
        Probe::Miss { evicted }
    }

    /// Whether the line containing `addr` is currently present (does not
    /// perturb LRU state or statistics).
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        let tag = self.tag_of(addr);
        self.sets[self.set_range(addr)].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Invalidates the line containing `addr` if present; returns whether a
    /// line was removed and whether it was dirty.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let tag = self.tag_of(addr);
        let range = self.set_range(addr);
        for w in &mut self.sets[range] {
            if w.valid && w.tag == tag {
                w.valid = false;
                let dirty = w.dirty;
                w.dirty = false;
                self.stats.invalidations += 1;
                return Some(dirty);
            }
        }
        None
    }

    /// Invalidates the line containing `addr`, checking ECC on the way out.
    ///
    /// This is the faulty-substrate variant of [`Cache::invalidate`], used by
    /// the coherence simulator when a fault plan schedules an ECC event on
    /// the line being recalled:
    ///
    /// * `fault == None` — behaves exactly like [`Cache::invalidate`].
    /// * `Some(EccEvent::SingleBit)` — the code corrects the flip; the
    ///   invalidation proceeds normally and `ecc_corrected` is bumped.
    /// * `Some(EccEvent::DoubleBit)` — detectable but uncorrectable. The line
    ///   is still removed (its contents cannot be trusted), `ecc_uncorrectable`
    ///   is bumped, and an [`EccFailure`] reports whether dirty data was lost.
    ///
    /// ECC events on an absent line are ignored (there is nothing to check).
    pub fn invalidate_ecc(
        &mut self,
        addr: u64,
        fault: Option<EccEvent>,
    ) -> Result<Option<bool>, EccFailure> {
        let removed = self.invalidate(addr);
        match (fault, removed) {
            (Some(EccEvent::SingleBit), Some(dirty)) => {
                self.stats.ecc_corrected += 1;
                Ok(Some(dirty))
            }
            (Some(EccEvent::DoubleBit), Some(dirty)) => {
                self.stats.ecc_uncorrectable += 1;
                Err(EccFailure { addr, dirty })
            }
            (_, removed) => Ok(removed),
        }
    }

    /// Invalidates every line (e.g. at a simulated context switch).
    pub fn flush(&mut self) {
        for w in &mut self.sets {
            w.valid = false;
            w.dirty = false;
        }
    }

    /// Number of currently valid lines.
    pub fn valid_lines(&self) -> usize {
        self.sets.iter().filter(|w| w.valid).count()
    }
}

/// Packs an iterator of booleans into `u64` words, bit `i % 64` of word
/// `i / 64` (checkpoint encoding of per-way flag columns).
pub(crate) fn pack_bits(bits: impl Iterator<Item = bool>) -> Vec<u64> {
    let mut words = Vec::new();
    for (i, b) in bits.enumerate() {
        if i % 64 == 0 {
            words.push(0u64);
        }
        if b {
            *words.last_mut().expect("word was just pushed") |= 1u64 << (i % 64);
        }
    }
    words
}

/// Reads bit `i` of a [`pack_bits`] word vector.
pub(crate) fn bit_at(words: &[u64], i: usize) -> bool {
    (words[i / 64] >> (i % 64)) & 1 == 1
}

fn stats_json(s: &CacheStats) -> Json {
    Json::obj([
        ("accesses", snapshot::u64_json(s.accesses)),
        ("misses", snapshot::u64_json(s.misses)),
        ("writebacks", snapshot::u64_json(s.writebacks)),
        ("invalidations", snapshot::u64_json(s.invalidations)),
        ("ecc_corrected", snapshot::u64_json(s.ecc_corrected)),
        ("ecc_uncorrectable", snapshot::u64_json(s.ecc_uncorrectable)),
    ])
}

fn decode_stats(data: &Json) -> Result<CacheStats, SnapshotError> {
    Ok(CacheStats {
        accesses: snapshot::get_u64(data, "accesses")?,
        misses: snapshot::get_u64(data, "misses")?,
        writebacks: snapshot::get_u64(data, "writebacks")?,
        invalidations: snapshot::get_u64(data, "invalidations")?,
        ecc_corrected: snapshot::get_u64(data, "ecc_corrected")?,
        ecc_uncorrectable: snapshot::get_u64(data, "ecc_uncorrectable")?,
    })
}

impl Snapshot for Cache {
    const KIND: &'static str = "mem.cache";
    const VERSION: u32 = 1;

    /// Way state is emitted as four parallel columns (packed valid/dirty
    /// bits, hex-concatenated tags and LRU stamps) so the encoding stays
    /// compact for the 2 MB secondary cache.
    fn encode(&self) -> Json {
        let valid = pack_bits(self.sets.iter().map(|w| w.valid));
        let dirty = pack_bits(self.sets.iter().map(|w| w.dirty));
        let tags: Vec<u64> = self.sets.iter().map(|w| w.tag).collect();
        let lru: Vec<u64> = self.sets.iter().map(|w| w.lru).collect();
        Json::obj([
            ("size_bytes", snapshot::u64_json(self.config.size_bytes)),
            ("assoc", snapshot::u64_json(self.config.assoc as u64)),
            ("line_bytes", snapshot::u64_json(self.config.line_bytes)),
            ("clock", snapshot::u64_json(self.clock)),
            ("valid", snapshot::u64s_json(&valid)),
            ("dirty", snapshot::u64s_json(&dirty)),
            ("tags", snapshot::u64s_json(&tags)),
            ("lru", snapshot::u64s_json(&lru)),
            ("stats", stats_json(&self.stats)),
        ])
    }

    fn decode(data: &Json) -> Result<Self, SnapshotError> {
        let size_bytes = snapshot::get_u64(data, "size_bytes")?;
        let assoc = snapshot::get_u32(data, "assoc")?;
        let line_bytes = snapshot::get_u64(data, "line_bytes")?;
        // Re-validate the geometry before CacheConfig::new so a malformed
        // checkpoint reports a typed error instead of panicking.
        if !size_bytes.is_power_of_two()
            || !line_bytes.is_power_of_two()
            || assoc == 0
            || size_bytes % (assoc as u64 * line_bytes) != 0
        {
            return Err(SnapshotError::Bad("geometry"));
        }
        let tags = snapshot::get_u64s(data, "tags")?;
        // Bound the allocation by what the wire actually carries.
        if tags.len() as u64 != size_bytes / line_bytes {
            return Err(SnapshotError::Bad("tags"));
        }
        let lru = snapshot::get_u64s(data, "lru")?;
        let valid = snapshot::get_u64s(data, "valid")?;
        let dirty = snapshot::get_u64s(data, "dirty")?;
        let words = tags.len().div_ceil(64);
        if lru.len() != tags.len() || valid.len() != words || dirty.len() != words {
            return Err(SnapshotError::Bad("way columns"));
        }
        let mut cache = Cache::new(CacheConfig::new(size_bytes, assoc, line_bytes));
        for (i, w) in cache.sets.iter_mut().enumerate() {
            *w = Way {
                valid: bit_at(&valid, i),
                tag: tags[i],
                dirty: bit_at(&dirty, i),
                lru: lru[i],
            };
        }
        cache.clock = snapshot::get_u64(data, "clock")?;
        cache.stats = decode_stats(snapshot::field(data, "stats")?)?;
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets, 2 ways, 32B lines = 256B
        Cache::new(CacheConfig::new(256, 2, 32))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(matches!(c.access(0, false), Probe::Miss { evicted: None }));
        assert_eq!(c.access(0, false), Probe::Hit);
        assert_eq!(c.access(31, false), Probe::Hit, "same line");
        assert!(matches!(c.access(32, false), Probe::Miss { .. }), "next line");
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Set 0 holds lines at stride 4*32 = 128.
        c.access(0, false); // A
        c.access(128, false); // B
        c.access(0, false); // touch A -> B is LRU
        let p = c.access(256, false); // C evicts B
        match p {
            Probe::Miss { evicted: Some(e) } => assert_eq!(e.line, 128),
            other => panic!("expected eviction of B, got {other:?}"),
        }
        assert!(c.contains(0));
        assert!(!c.contains(128));
        assert!(c.contains(256));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(0, true);
        c.access(128, false);
        let p = c.access(256, false); // evicts dirty line 0 (LRU)
        match p {
            Probe::Miss { evicted: Some(e) } => {
                assert_eq!(e.line, 0);
                assert!(e.dirty);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(0, false);
        c.access(0, true);
        c.access(128, false);
        match c.access(256, false) {
            Probe::Miss { evicted: Some(e) } => assert!(e.dirty),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.access(0, true);
        assert_eq!(c.invalidate(0), Some(true));
        assert!(!c.contains(0));
        assert_eq!(c.invalidate(0), None);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(CacheConfig::new(128, 1, 32)); // 4 sets
        c.access(0, false);
        c.access(128, false); // same set, evicts
        assert!(!c.contains(0));
        assert!(c.contains(128));
    }

    #[test]
    fn flush_empties() {
        let mut c = small();
        c.access(0, false);
        c.access(32, false);
        assert_eq!(c.valid_lines(), 2);
        c.flush();
        assert_eq!(c.valid_lines(), 0);
    }

    #[test]
    fn miss_rate() {
        let mut c = small();
        c.access(0, false);
        c.access(0, false);
        assert_eq!(c.stats().miss_rate(), 0.5);
    }

    #[test]
    fn ecc_single_bit_corrects_and_invalidates() {
        let mut c = small();
        c.access(0, true);
        let r = c.invalidate_ecc(0, Some(EccEvent::SingleBit));
        assert_eq!(r, Ok(Some(true)));
        assert!(!c.contains(0));
        assert_eq!(c.stats().ecc_corrected, 1);
        assert_eq!(c.stats().ecc_uncorrectable, 0);
    }

    #[test]
    fn ecc_double_bit_fails_and_discards() {
        let mut c = small();
        c.access(0, true);
        let r = c.invalidate_ecc(0, Some(EccEvent::DoubleBit));
        assert_eq!(r, Err(EccFailure { addr: 0, dirty: true }));
        assert!(!c.contains(0), "untrustworthy line must still be discarded");
        assert_eq!(c.stats().ecc_uncorrectable, 1);
        // Clean double-bit failure is reported as non-lossy.
        c.access(32, false);
        let r = c.invalidate_ecc(32, Some(EccEvent::DoubleBit));
        assert_eq!(r, Err(EccFailure { addr: 32, dirty: false }));
    }

    #[test]
    fn ecc_on_absent_line_is_ignored() {
        let mut c = small();
        assert_eq!(c.invalidate_ecc(0, Some(EccEvent::DoubleBit)), Ok(None));
        assert_eq!(c.stats().ecc_uncorrectable, 0);
        // And the no-fault path matches plain invalidate.
        c.access(0, false);
        assert_eq!(c.invalidate_ecc(0, None), Ok(Some(false)));
    }

    #[test]
    fn snapshot_round_trip_preserves_tags_lru_and_stats() {
        let mut c = small();
        c.access(0, true);
        c.access(128, false);
        c.access(0, false); // refresh A so B is LRU
        c.invalidate(32);
        let wire = c.to_wire().pretty();
        let back = Cache::from_wire(&imo_util::json::parse(&wire).unwrap()).expect("decodes");
        assert_eq!(back.to_wire(), c.to_wire(), "re-encoding is byte-stable");
        assert_eq!(back.stats(), c.stats());
        assert_eq!(back.valid_lines(), c.valid_lines());
        // LRU state survives: the next conflict miss must still evict B.
        let mut back = back;
        match back.access(256, false) {
            Probe::Miss { evicted: Some(e) } => assert_eq!(e.line, 128, "B is still LRU"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn snapshot_rejects_malformed_geometry() {
        let mut wire = small().to_wire();
        if let imo_util::json::Json::Obj(fields) = &mut wire {
            for (k, v) in fields.iter_mut() {
                if k == "data" {
                    if let imo_util::json::Json::Obj(inner) = v {
                        for (ik, iv) in inner.iter_mut() {
                            if ik == "assoc" {
                                *iv = imo_util::json::Json::from("0");
                            }
                        }
                    }
                }
            }
        }
        assert!(matches!(Cache::from_wire(&wire), Err(SnapshotError::Bad("geometry"))));
    }

    #[test]
    fn contains_does_not_touch_lru() {
        let mut c = small();
        c.access(0, false); // A
        c.access(128, false); // B (A is LRU)
        let _ = c.contains(0); // must not refresh A
        match c.access(256, false) {
            Probe::Miss { evicted: Some(e) } => assert_eq!(e.line, 0, "A still LRU"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
