//! Set-associative cache state model.

use crate::config::CacheConfig;
use crate::ecc::{EccEvent, EccFailure};

/// Outcome of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// The line was present.
    Hit,
    /// The line was absent and has been installed; if a valid line was
    /// displaced, its line address and dirtiness are reported.
    Miss {
        /// Displaced victim, if the chosen way held a valid line.
        evicted: Option<Eviction>,
    },
}

/// A line displaced by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Line-aligned address of the victim.
    pub line: u64,
    /// Whether the victim was dirty (needs a writeback).
    pub dirty: bool,
}

/// Aggregate cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total probes (reads + writes).
    pub accesses: u64,
    /// Probes that missed.
    pub misses: u64,
    /// Dirty lines displaced (writebacks generated).
    pub writebacks: u64,
    /// Lines removed by explicit invalidation.
    pub invalidations: u64,
    /// Single-bit ECC faults corrected in place.
    pub ecc_corrected: u64,
    /// Double-bit ECC faults detected (line discarded, access failed).
    pub ecc_uncorrectable: u64,
}

impl CacheStats {
    /// Miss ratio (0 when no accesses were made).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    valid: bool,
    tag: u64,
    dirty: bool,
    /// Monotonic counter value at last touch; smallest = LRU.
    lru: u64,
}

/// A set-associative, write-allocate, write-back cache with true-LRU
/// replacement. Models tags and replacement state only (data lives in the
/// functional executor's memory).
///
/// # Example
///
/// ```
/// use imo_mem::{Cache, CacheConfig, Probe};
///
/// let mut c = Cache::new(CacheConfig::new(1024, 2, 32));
/// assert!(matches!(c.access(0x40, false), Probe::Miss { .. }));
/// assert_eq!(c.access(0x40, false), Probe::Hit);
/// assert_eq!(c.stats().misses, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Way>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Cache {
        let ways = (config.num_sets() * config.assoc as u64) as usize;
        Cache { config, sets: vec![Way::default(); ways], clock: 0, stats: CacheStats::default() }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Aggregate statistics since construction (or the last [`Cache::reset_stats`]).
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Clears the statistics counters (tag state is preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_range(&self, addr: u64) -> std::ops::Range<usize> {
        let set = self.config.set_of(addr) as usize;
        let a = self.config.assoc as usize;
        set * a..(set + 1) * a
    }

    #[inline]
    fn tag_of(&self, addr: u64) -> u64 {
        addr / self.config.line_bytes / self.config.num_sets()
    }

    /// Probes the cache for `addr`, installing the line on a miss
    /// (write-allocate) and updating LRU state. `is_write` marks the line
    /// dirty.
    #[inline]
    pub fn access(&mut self, addr: u64, is_write: bool) -> Probe {
        self.clock += 1;
        self.stats.accesses += 1;
        let tag = self.tag_of(addr);
        let start = self.set_range(addr).start;
        let assoc = self.config.assoc as usize;
        let clock = self.clock;

        // Hit?
        let set = &mut self.sets[start..start + assoc];
        for w in set.iter_mut() {
            if w.valid && w.tag == tag {
                w.lru = clock;
                if is_write {
                    w.dirty = true;
                }
                return Probe::Hit;
            }
        }

        // Miss: choose invalid way, else LRU way.
        self.stats.misses += 1;
        let victim_idx = match set.iter().position(|w| !w.valid) {
            Some(i) => start + i,
            None => {
                let (i, _) = set
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.lru)
                    .expect("associativity is positive");
                start + i
            }
        };
        let line_bytes = self.config.line_bytes;
        let num_sets = self.config.num_sets();
        let set_idx = self.config.set_of(addr);
        let w = &mut self.sets[victim_idx];
        let evicted = if w.valid {
            let victim_line = (w.tag * num_sets + set_idx) * line_bytes;
            let e = Eviction { line: victim_line, dirty: w.dirty };
            if w.dirty {
                self.stats.writebacks += 1;
            }
            Some(e)
        } else {
            None
        };
        w.valid = true;
        w.tag = tag;
        w.dirty = is_write;
        w.lru = clock;
        Probe::Miss { evicted }
    }

    /// Whether the line containing `addr` is currently present (does not
    /// perturb LRU state or statistics).
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        let tag = self.tag_of(addr);
        self.sets[self.set_range(addr)].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Invalidates the line containing `addr` if present; returns whether a
    /// line was removed and whether it was dirty.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let tag = self.tag_of(addr);
        let range = self.set_range(addr);
        for w in &mut self.sets[range] {
            if w.valid && w.tag == tag {
                w.valid = false;
                let dirty = w.dirty;
                w.dirty = false;
                self.stats.invalidations += 1;
                return Some(dirty);
            }
        }
        None
    }

    /// Invalidates the line containing `addr`, checking ECC on the way out.
    ///
    /// This is the faulty-substrate variant of [`Cache::invalidate`], used by
    /// the coherence simulator when a fault plan schedules an ECC event on
    /// the line being recalled:
    ///
    /// * `fault == None` — behaves exactly like [`Cache::invalidate`].
    /// * `Some(EccEvent::SingleBit)` — the code corrects the flip; the
    ///   invalidation proceeds normally and `ecc_corrected` is bumped.
    /// * `Some(EccEvent::DoubleBit)` — detectable but uncorrectable. The line
    ///   is still removed (its contents cannot be trusted), `ecc_uncorrectable`
    ///   is bumped, and an [`EccFailure`] reports whether dirty data was lost.
    ///
    /// ECC events on an absent line are ignored (there is nothing to check).
    pub fn invalidate_ecc(
        &mut self,
        addr: u64,
        fault: Option<EccEvent>,
    ) -> Result<Option<bool>, EccFailure> {
        let removed = self.invalidate(addr);
        match (fault, removed) {
            (Some(EccEvent::SingleBit), Some(dirty)) => {
                self.stats.ecc_corrected += 1;
                Ok(Some(dirty))
            }
            (Some(EccEvent::DoubleBit), Some(dirty)) => {
                self.stats.ecc_uncorrectable += 1;
                Err(EccFailure { addr, dirty })
            }
            (_, removed) => Ok(removed),
        }
    }

    /// Invalidates every line (e.g. at a simulated context switch).
    pub fn flush(&mut self) {
        for w in &mut self.sets {
            w.valid = false;
            w.dirty = false;
        }
    }

    /// Number of currently valid lines.
    pub fn valid_lines(&self) -> usize {
        self.sets.iter().filter(|w| w.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets, 2 ways, 32B lines = 256B
        Cache::new(CacheConfig::new(256, 2, 32))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(matches!(c.access(0, false), Probe::Miss { evicted: None }));
        assert_eq!(c.access(0, false), Probe::Hit);
        assert_eq!(c.access(31, false), Probe::Hit, "same line");
        assert!(matches!(c.access(32, false), Probe::Miss { .. }), "next line");
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Set 0 holds lines at stride 4*32 = 128.
        c.access(0, false); // A
        c.access(128, false); // B
        c.access(0, false); // touch A -> B is LRU
        let p = c.access(256, false); // C evicts B
        match p {
            Probe::Miss { evicted: Some(e) } => assert_eq!(e.line, 128),
            other => panic!("expected eviction of B, got {other:?}"),
        }
        assert!(c.contains(0));
        assert!(!c.contains(128));
        assert!(c.contains(256));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(0, true);
        c.access(128, false);
        let p = c.access(256, false); // evicts dirty line 0 (LRU)
        match p {
            Probe::Miss { evicted: Some(e) } => {
                assert_eq!(e.line, 0);
                assert!(e.dirty);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(0, false);
        c.access(0, true);
        c.access(128, false);
        match c.access(256, false) {
            Probe::Miss { evicted: Some(e) } => assert!(e.dirty),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.access(0, true);
        assert_eq!(c.invalidate(0), Some(true));
        assert!(!c.contains(0));
        assert_eq!(c.invalidate(0), None);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(CacheConfig::new(128, 1, 32)); // 4 sets
        c.access(0, false);
        c.access(128, false); // same set, evicts
        assert!(!c.contains(0));
        assert!(c.contains(128));
    }

    #[test]
    fn flush_empties() {
        let mut c = small();
        c.access(0, false);
        c.access(32, false);
        assert_eq!(c.valid_lines(), 2);
        c.flush();
        assert_eq!(c.valid_lines(), 0);
    }

    #[test]
    fn miss_rate() {
        let mut c = small();
        c.access(0, false);
        c.access(0, false);
        assert_eq!(c.stats().miss_rate(), 0.5);
    }

    #[test]
    fn ecc_single_bit_corrects_and_invalidates() {
        let mut c = small();
        c.access(0, true);
        let r = c.invalidate_ecc(0, Some(EccEvent::SingleBit));
        assert_eq!(r, Ok(Some(true)));
        assert!(!c.contains(0));
        assert_eq!(c.stats().ecc_corrected, 1);
        assert_eq!(c.stats().ecc_uncorrectable, 0);
    }

    #[test]
    fn ecc_double_bit_fails_and_discards() {
        let mut c = small();
        c.access(0, true);
        let r = c.invalidate_ecc(0, Some(EccEvent::DoubleBit));
        assert_eq!(r, Err(EccFailure { addr: 0, dirty: true }));
        assert!(!c.contains(0), "untrustworthy line must still be discarded");
        assert_eq!(c.stats().ecc_uncorrectable, 1);
        // Clean double-bit failure is reported as non-lossy.
        c.access(32, false);
        let r = c.invalidate_ecc(32, Some(EccEvent::DoubleBit));
        assert_eq!(r, Err(EccFailure { addr: 32, dirty: false }));
    }

    #[test]
    fn ecc_on_absent_line_is_ignored() {
        let mut c = small();
        assert_eq!(c.invalidate_ecc(0, Some(EccEvent::DoubleBit)), Ok(None));
        assert_eq!(c.stats().ecc_uncorrectable, 0);
        // And the no-fault path matches plain invalidate.
        c.access(0, false);
        assert_eq!(c.invalidate_ecc(0, None), Ok(Some(false)));
    }

    #[test]
    fn contains_does_not_touch_lru() {
        let mut c = small();
        c.access(0, false); // A
        c.access(128, false); // B (A is LRU)
        let _ = c.contains(0); // must not refresh A
        match c.access(256, false) {
            Probe::Miss { evicted: Some(e) } => assert_eq!(e.line, 0, "A still LRU"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
