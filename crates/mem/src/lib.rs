//! # Memory-hierarchy substrate
//!
//! Cache and memory models underlying the cycle-level processor simulators in
//! `imo-cpu`, built to the parameters of Table 1 of *Informing Memory
//! Operations* (ISCA 1996):
//!
//! * [`Cache`] — a set-associative, write-allocate, write-back cache model
//!   with true-LRU replacement, line invalidation (needed by the §3.3
//!   squash-invalidate mechanism and the coherence case study), and
//!   statistics.
//! * [`ecc`] — an ECC fault model on cache lines (single-bit correctable /
//!   double-bit detect-fail), hooked into the invalidation path via
//!   [`Cache::invalidate_ecc`]; this is the substrate the §4.3 Blizzard-E
//!   style access-control study perturbs.
//! * [`MshrFile`] — Miss Status Handling Registers for a lockup-free primary
//!   cache, including the paper's §3.3 *lifetime extension*: an MSHR is held
//!   until its memory operation graduates or is squashed, and a squash
//!   invalidates the (possibly already-filled) line so that speculative
//!   informing loads can never silently install primary-cache state.
//! * [`MemoryHierarchy`] — the two-level hierarchy used by the processor
//!   models. It separates *state* (which level serves a reference, updated in
//!   program order via [`MemoryHierarchy::probe_data`]) from *timing*
//!   (completion cycles under bank, MSHR and main-memory-bandwidth
//!   contention, via [`MemoryHierarchy::schedule_data`]).
//!
//! The separation mirrors how the informing mechanism is defined: the
//! hit/miss *outcome* of a reference is architectural (it decides whether the
//! miss handler runs) and must be deterministic in program order, while the
//! *latency* of the reference is a microarchitectural matter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod cache;
pub mod config;
pub mod ecc;
pub mod hier;
pub mod mshr;

pub use cache::{Cache, CacheStats, Probe};
pub use config::{CacheConfig, HierarchyConfig, HitLevel};
pub use ecc::{EccEvent, EccFailure};
pub use hier::{AccessTiming, MemoryHierarchy, ProbeResult};
pub use mshr::{MshrFile, MshrId, MshrMode};
