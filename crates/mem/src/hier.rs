//! The two-level memory hierarchy used by the processor models.
//!
//! State and timing are deliberately decoupled:
//!
//! * [`MemoryHierarchy::probe_data`] is called once per load/store **in
//!   program order** (by the functional executor). It updates cache tags and
//!   reports which level serves the reference. This makes the hit/miss
//!   outcome — which is architecturally visible through informing memory
//!   operations — deterministic, and matches the §3.3 requirement that
//!   speculative references must not silently perturb observable primary
//!   cache state (wrong-path references never reach the functional stream;
//!   the §3.3 squash-invalidate machinery itself is modelled and tested in
//!   [`crate::mshr`]).
//! * [`MemoryHierarchy::schedule_data`] is called when the timing model
//!   actually issues the access. It computes the completion cycle under bank
//!   conflicts, MSHR occupancy, miss merging and finite main-memory
//!   bandwidth.

/// In-flight fill map keyed by line address. SipHash is a measurable cost
/// on [`MemoryHierarchy::schedule_data`]'s lookup, which runs once per
/// simulated memory operation; line addresses need no DoS resistance.
type LineMap = imo_util::hash::WordMap<u64, u64>;

use crate::cache::{Cache, Probe};
use crate::config::{HierarchyConfig, HitLevel};
use imo_util::json::Json;
use imo_util::snapshot::{self, Snapshot, SnapshotError};

/// Result of a program-order probe: which level serves the reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeResult {
    /// Level that supplied the data.
    pub level: HitLevel,
    /// Line-aligned address of the reference.
    pub line: u64,
    /// `true` for stores.
    pub is_store: bool,
}

impl ProbeResult {
    /// The observability-layer view of which level served this reference.
    #[must_use]
    pub fn served_by(&self) -> imo_obs::ServedBy {
        match self.level {
            HitLevel::L1 => imo_obs::ServedBy::L1,
            HitLevel::L2 => imo_obs::ServedBy::L2,
            HitLevel::Memory => imo_obs::ServedBy::Memory,
        }
    }
}

/// Completion information for a scheduled access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessTiming {
    /// Cycle the access began occupying its cache bank.
    pub start: u64,
    /// Cycle the data is available to dependents.
    pub complete: u64,
    /// Whether a primary miss merged into an already-outstanding fill.
    pub merged: bool,
}

/// Aggregate hierarchy statistics (beyond the per-cache counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierStats {
    /// Data references probed.
    pub data_refs: u64,
    /// Primary data-cache misses served by L2.
    pub l1d_misses_to_l2: u64,
    /// Primary data-cache misses served by main memory.
    pub l1d_misses_to_mem: u64,
    /// Instruction-fetch lines that missed in the primary I-cache.
    pub inst_misses: u64,
    /// Dirty L2 victims written back to main memory.
    pub writebacks_to_mem: u64,
    /// Prefetches issued.
    pub prefetches: u64,
}

impl HierStats {
    /// Dumps the hierarchy counters into a shared metrics registry under the
    /// `mem.` prefix — the schema every observed run exports.
    pub fn record_metrics(&self, m: &mut imo_obs::MetricsRegistry) {
        m.set("mem.data_refs", self.data_refs);
        m.set("mem.l1d_misses_to_l2", self.l1d_misses_to_l2);
        m.set("mem.l1d_misses_to_mem", self.l1d_misses_to_mem);
        m.set("mem.inst_misses", self.inst_misses);
        m.set("mem.writebacks_to_mem", self.writebacks_to_mem);
        m.set("mem.prefetches", self.prefetches);
    }
}

/// A two-level cache hierarchy with banked, lockup-free timing.
///
/// # Example
///
/// ```
/// use imo_mem::{HierarchyConfig, HitLevel, MemoryHierarchy};
///
/// let mut h = MemoryHierarchy::new(HierarchyConfig::out_of_order());
/// let p = h.probe_data(0x2000, false);
/// assert_eq!(p.level, HitLevel::Memory); // cold
/// let t = h.schedule_data(p, 100);
/// assert!(t.complete >= 100 + 75); // memory latency
/// let p2 = h.probe_data(0x2000, false);
/// assert_eq!(p2.level, HitLevel::L1); // now resident
/// ```
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    cfg: HierarchyConfig,
    l1d: Cache,
    l1i: Cache,
    l2: Cache,
    /// Next free cycle per L1D bank.
    bank_free: Vec<u64>,
    /// Release cycle per MSHR timing slot.
    mshr_release: Vec<u64>,
    /// Main-memory bandwidth gate: next cycle a new access may start.
    mem_next_free: u64,
    /// Outstanding line fills: line address -> fill-complete cycle.
    inflight: LineMap,
    /// L2 writebacks discovered at probe time, charged at the next schedule.
    pending_writebacks: u64,
    stats: HierStats,
}

impl MemoryHierarchy {
    /// Creates an empty hierarchy.
    pub fn new(cfg: HierarchyConfig) -> MemoryHierarchy {
        MemoryHierarchy {
            l1d: Cache::new(cfg.l1d),
            l1i: Cache::new(cfg.l1i),
            l2: Cache::new(cfg.l2),
            bank_free: vec![0; cfg.banks as usize],
            mshr_release: vec![0; cfg.mshrs as usize],
            mem_next_free: 0,
            inflight: LineMap::default(),
            pending_writebacks: 0,
            stats: HierStats::default(),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// The primary data cache.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// Mutable primary data cache (for invalidations by the §3.3 machinery
    /// and the coherence case study).
    pub fn l1d_mut(&mut self) -> &mut Cache {
        &mut self.l1d
    }

    /// The primary instruction cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The unified secondary cache.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Hierarchy statistics.
    pub fn stats(&self) -> &HierStats {
        &self.stats
    }

    /// Probes the data caches for `addr` in program order, updating tags and
    /// LRU state (write-allocate, write-back).
    pub fn probe_data(&mut self, addr: u64, is_store: bool) -> ProbeResult {
        self.probe_internal(addr, is_store, true)
    }

    fn probe_internal(&mut self, addr: u64, is_store: bool, demand: bool) -> ProbeResult {
        if demand {
            self.stats.data_refs += 1;
        }
        let line = self.cfg.l1d.line_of(addr);
        let level = match self.l1d.access(addr, is_store) {
            Probe::Hit => HitLevel::L1,
            Probe::Miss { evicted } => {
                // A dirty L1 victim writes back into L2.
                if let Some(e) = evicted {
                    if e.dirty {
                        if let Probe::Miss { evicted: Some(e2) } = self.l2.access(e.line, true) {
                            if e2.dirty {
                                self.pending_writebacks += 1;
                                self.stats.writebacks_to_mem += 1;
                            }
                        }
                    }
                }
                match self.l2.access(addr, false) {
                    Probe::Hit => {
                        if demand {
                            self.stats.l1d_misses_to_l2 += 1;
                        }
                        HitLevel::L2
                    }
                    Probe::Miss { evicted } => {
                        if let Some(e) = evicted {
                            if e.dirty {
                                self.pending_writebacks += 1;
                                self.stats.writebacks_to_mem += 1;
                            }
                        }
                        if demand {
                            self.stats.l1d_misses_to_mem += 1;
                        }
                        HitLevel::Memory
                    }
                }
            }
        };
        ProbeResult { level, line, is_store }
    }

    /// Probes for a non-binding prefetch: fills the caches like a read miss
    /// but is never architecturally visible and is not counted as a demand
    /// miss.
    pub fn probe_prefetch(&mut self, addr: u64) -> ProbeResult {
        self.stats.prefetches += 1;
        self.probe_internal(addr, false, false)
    }

    /// Probes the instruction cache for the line containing `pc`.
    pub fn probe_inst(&mut self, pc: u64) -> HitLevel {
        match self.l1i.access(pc, false) {
            Probe::Hit => HitLevel::L1,
            Probe::Miss { .. } => {
                self.stats.inst_misses += 1;
                match self.l2.access(pc, false) {
                    Probe::Hit => HitLevel::L2,
                    Probe::Miss { .. } => HitLevel::Memory,
                }
            }
        }
    }

    /// Installs the instruction line containing `pc` without stalling or
    /// counting a demand miss — the front end's sequential next-line stream
    /// prefetcher (both modelled machines prefetch the instruction stream;
    /// without this, straight-line code would absurdly pay a full memory
    /// round trip per 32-byte line).
    pub fn prefetch_inst(&mut self, pc: u64) {
        if let Probe::Miss { .. } = self.l1i.access(pc, false) {
            let _ = self.l2.access(pc, false);
        }
    }

    fn bank_of(&self, line: u64) -> usize {
        let idx = line >> self.cfg.l1d.line_bytes.trailing_zeros();
        let banks = self.cfg.banks as u64;
        if banks.is_power_of_two() {
            (idx & (banks - 1)) as usize
        } else {
            (idx % banks) as usize
        }
    }

    fn drain_writebacks(&mut self, now: u64) {
        while self.pending_writebacks > 0 {
            let start = self.mem_next_free.max(now);
            self.mem_next_free = start + self.cfg.mem_cycles_per_access;
            self.pending_writebacks -= 1;
        }
    }

    /// Schedules the access described by a prior [`MemoryHierarchy::probe_data`]
    /// at `cycle`, returning its timing under contention.
    ///
    /// Bank arbitration delays the start; primary misses acquire an MSHR
    /// timing slot (held through the fill); misses to the same in-flight line
    /// merge and complete with the existing fill; main-memory accesses are
    /// spaced by the bandwidth gate.
    pub fn schedule_data(&mut self, probe: ProbeResult, cycle: u64) -> AccessTiming {
        self.drain_writebacks(cycle);
        let bank = self.bank_of(probe.line);
        let start = cycle.max(self.bank_free[bank]);
        self.bank_free[bank] = start + 1;

        // Merge with an in-flight fill of the same line.
        if let Some(&fill) = self.inflight.get(&probe.line) {
            if fill > start {
                return AccessTiming { start, complete: fill, merged: true };
            }
            self.inflight.remove(&probe.line);
        }

        let complete = match probe.level {
            HitLevel::L1 => start + self.cfg.l1_latency,
            HitLevel::L2 | HitLevel::Memory => {
                // Acquire the earliest-free MSHR timing slot.
                let (slot, &release) = self
                    .mshr_release
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &r)| r)
                    .expect("mshrs > 0");
                let t0 = start.max(release);
                let data_ready = match probe.level {
                    HitLevel::L2 => t0 + self.cfg.l2_latency,
                    HitLevel::Memory => {
                        let mem_start = t0.max(self.mem_next_free);
                        self.mem_next_free = mem_start + self.cfg.mem_cycles_per_access;
                        mem_start + self.cfg.mem_latency
                    }
                    HitLevel::L1 => unreachable!(),
                };
                // The MSHR is held until the line has filled into the bank.
                self.mshr_release[slot] = data_ready + self.cfg.fill_cycles;
                self.inflight.insert(probe.line, data_ready);
                data_ready
            }
        };
        AccessTiming { start, complete, merged: false }
    }

    /// Schedules an instruction-line fetch that probed to `level`, returning
    /// the cycle at which fetch may proceed.
    pub fn schedule_inst(&mut self, level: HitLevel, cycle: u64) -> u64 {
        match level {
            HitLevel::L1 => cycle,
            HitLevel::L2 => cycle + self.cfg.l2_latency,
            HitLevel::Memory => {
                let start = cycle.max(self.mem_next_free);
                self.mem_next_free = start + self.cfg.mem_cycles_per_access;
                start + self.cfg.mem_latency
            }
        }
    }

    /// Invalidates a line from the primary data cache (§3.3 squash path and
    /// the coherence case study).
    pub fn invalidate_l1d(&mut self, addr: u64) {
        self.l1d.invalidate(addr);
    }

    /// Whether the line containing `addr` is resident in L2 (used to verify
    /// the "squashed informing load acts as an L2 prefetch" property).
    pub fn l2_contains(&self, addr: u64) -> bool {
        self.l2.contains(addr)
    }
}

impl Snapshot for MemoryHierarchy {
    const KIND: &'static str = "mem.hierarchy";
    const VERSION: u32 = 1;

    /// The three cache geometries live inside the nested [`Cache`] snapshots;
    /// bank and MSHR counts are carried by the lengths of their occupancy
    /// vectors, so only the latency scalars are encoded here. The in-flight
    /// fill map is emitted as two parallel columns sorted by line address.
    fn encode(&self) -> Json {
        let mut inflight: Vec<(u64, u64)> = self.inflight.iter().map(|(&k, &v)| (k, v)).collect();
        inflight.sort_unstable();
        let (lines, fills): (Vec<u64>, Vec<u64>) = inflight.into_iter().unzip();
        Json::obj([
            ("l1d", self.l1d.encode()),
            ("l1i", self.l1i.encode()),
            ("l2", self.l2.encode()),
            ("l1_latency", snapshot::u64_json(self.cfg.l1_latency)),
            ("l2_latency", snapshot::u64_json(self.cfg.l2_latency)),
            ("mem_latency", snapshot::u64_json(self.cfg.mem_latency)),
            ("fill_cycles", snapshot::u64_json(self.cfg.fill_cycles)),
            ("mem_cycles_per_access", snapshot::u64_json(self.cfg.mem_cycles_per_access)),
            ("bank_free", snapshot::u64s_json(&self.bank_free)),
            ("mshr_release", snapshot::u64s_json(&self.mshr_release)),
            ("mem_next_free", snapshot::u64_json(self.mem_next_free)),
            ("inflight_lines", snapshot::u64s_json(&lines)),
            ("inflight_fills", snapshot::u64s_json(&fills)),
            ("pending_writebacks", snapshot::u64_json(self.pending_writebacks)),
            (
                "stats",
                Json::obj([
                    ("data_refs", snapshot::u64_json(self.stats.data_refs)),
                    ("l1d_misses_to_l2", snapshot::u64_json(self.stats.l1d_misses_to_l2)),
                    ("l1d_misses_to_mem", snapshot::u64_json(self.stats.l1d_misses_to_mem)),
                    ("inst_misses", snapshot::u64_json(self.stats.inst_misses)),
                    ("writebacks_to_mem", snapshot::u64_json(self.stats.writebacks_to_mem)),
                    ("prefetches", snapshot::u64_json(self.stats.prefetches)),
                ]),
            ),
        ])
    }

    fn decode(data: &Json) -> Result<Self, SnapshotError> {
        let l1d = Cache::decode(snapshot::field(data, "l1d")?)?;
        let l1i = Cache::decode(snapshot::field(data, "l1i")?)?;
        let l2 = Cache::decode(snapshot::field(data, "l2")?)?;
        let bank_free = snapshot::get_u64s(data, "bank_free")?;
        let mshr_release = snapshot::get_u64s(data, "mshr_release")?;
        if bank_free.is_empty() || bank_free.len() > u32::MAX as usize {
            return Err(SnapshotError::Bad("bank_free"));
        }
        if mshr_release.is_empty() || mshr_release.len() > u32::MAX as usize {
            return Err(SnapshotError::Bad("mshr_release"));
        }
        let cfg = HierarchyConfig {
            l1d: *l1d.config(),
            l1i: *l1i.config(),
            l2: *l2.config(),
            l1_latency: snapshot::get_u64(data, "l1_latency")?,
            l2_latency: snapshot::get_u64(data, "l2_latency")?,
            mem_latency: snapshot::get_u64(data, "mem_latency")?,
            mshrs: mshr_release.len() as u32,
            banks: bank_free.len() as u32,
            fill_cycles: snapshot::get_u64(data, "fill_cycles")?,
            mem_cycles_per_access: snapshot::get_u64(data, "mem_cycles_per_access")?,
        };
        let lines = snapshot::get_u64s(data, "inflight_lines")?;
        let fills = snapshot::get_u64s(data, "inflight_fills")?;
        if lines.len() != fills.len() {
            return Err(SnapshotError::Bad("inflight"));
        }
        let stats = snapshot::field(data, "stats")?;
        Ok(MemoryHierarchy {
            cfg,
            l1d,
            l1i,
            l2,
            bank_free,
            mshr_release,
            mem_next_free: snapshot::get_u64(data, "mem_next_free")?,
            inflight: lines.into_iter().zip(fills).collect(),
            pending_writebacks: snapshot::get_u64(data, "pending_writebacks")?,
            stats: HierStats {
                data_refs: snapshot::get_u64(stats, "data_refs")?,
                l1d_misses_to_l2: snapshot::get_u64(stats, "l1d_misses_to_l2")?,
                l1d_misses_to_mem: snapshot::get_u64(stats, "l1d_misses_to_mem")?,
                inst_misses: snapshot::get_u64(stats, "inst_misses")?,
                writebacks_to_mem: snapshot::get_u64(stats, "writebacks_to_mem")?,
                prefetches: snapshot::get_u64(stats, "prefetches")?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::out_of_order())
    }

    #[test]
    fn cold_miss_goes_to_memory_then_hits() {
        let mut m = h();
        assert_eq!(m.probe_data(0x1000, false).level, HitLevel::Memory);
        assert_eq!(m.probe_data(0x1000, false).level, HitLevel::L1);
        assert_eq!(m.stats().l1d_misses_to_mem, 1);
    }

    #[test]
    fn l2_serves_after_l1_eviction() {
        let mut m = h();
        m.probe_data(0x1000, false);
        // Evict from the 2-way L1 set by touching two more conflicting lines.
        let set_stride = 32 * 1024 / 2; // ways * sets * line = 16KB per way
        m.probe_data(0x1000 + set_stride as u64, false);
        m.probe_data(0x1000 + 2 * set_stride as u64, false);
        let p = m.probe_data(0x1000, false);
        assert_eq!(p.level, HitLevel::L2, "L1 victim still in L2");
    }

    #[test]
    fn hit_timing() {
        let mut m = h();
        m.probe_data(0x1000, false);
        let p = m.probe_data(0x1000, false);
        let t = m.schedule_data(p, 10);
        assert_eq!(t.start, 10);
        assert_eq!(t.complete, 12);
        assert!(!t.merged);
    }

    #[test]
    fn memory_latency_and_bandwidth() {
        let mut m = h();
        let p1 = m.probe_data(0x1000, false);
        let p2 = m.probe_data(0x8000_1000, false);
        assert_eq!(p1.level, HitLevel::Memory);
        assert_eq!(p2.level, HitLevel::Memory);
        let t1 = m.schedule_data(p1, 0);
        let t2 = m.schedule_data(p2, 0);
        assert_eq!(t1.complete, 75);
        // Second access waits for the 20-cycle bandwidth gate.
        assert!(t2.complete >= 20 + 75, "bandwidth gate spaces memory accesses: {t2:?}");
    }

    #[test]
    fn same_line_misses_merge() {
        let mut m = h();
        let p1 = m.probe_data(0x1000, false);
        let p2 = m.probe_data(0x1008, false); // same 32B line: probe hits L1 (installed)
        assert_eq!(p2.level, HitLevel::L1);
        let t1 = m.schedule_data(p1, 0);
        let t2 = m.schedule_data(p2, 1);
        assert!(t2.merged, "second access waits on the in-flight fill");
        assert_eq!(t2.complete, t1.complete);
    }

    #[test]
    fn bank_conflicts_serialize() {
        let mut m = h();
        m.probe_data(0x1000, false);
        m.probe_data(0x1000 + 64, false); // same bank (2 banks, stride 64 keeps parity)
        let p1 = m.probe_data(0x1000, false);
        let p2 = m.probe_data(0x1000 + 64, false);
        let t1 = m.schedule_data(p1, 5);
        let t2 = m.schedule_data(p2, 5);
        assert_eq!(t1.start, 5);
        assert_eq!(t2.start, 6, "same-bank access delayed one cycle");
    }

    #[test]
    fn different_banks_parallel() {
        let mut m = h();
        m.probe_data(0x1000, false);
        m.probe_data(0x1020, false); // adjacent line -> other bank
        let p1 = m.probe_data(0x1000, false);
        let p2 = m.probe_data(0x1020, false);
        let t1 = m.schedule_data(p1, 5);
        let t2 = m.schedule_data(p2, 5);
        assert_eq!(t1.start, 5);
        assert_eq!(t2.start, 5);
    }

    #[test]
    fn mshr_slots_limit_outstanding_misses() {
        let mut cfg = HierarchyConfig::out_of_order();
        cfg.mshrs = 1;
        let mut m = MemoryHierarchy::new(cfg);
        let p1 = m.probe_data(0x1000, false);
        let p2 = m.probe_data(0x2000, false);
        let t1 = m.schedule_data(p1, 0);
        let t2 = m.schedule_data(p2, 0);
        assert!(
            t2.complete >= t1.complete + cfg.fill_cycles,
            "second miss waits for the single MSHR: {t1:?} {t2:?}"
        );
    }

    #[test]
    fn inst_probe_and_schedule() {
        let mut m = h();
        let lvl = m.probe_inst(0x10000);
        assert_eq!(lvl, HitLevel::Memory);
        assert_eq!(m.probe_inst(0x10000), HitLevel::L1);
        assert_eq!(m.schedule_inst(HitLevel::L1, 7), 7);
        assert_eq!(m.schedule_inst(HitLevel::L2, 7), 19);
        assert_eq!(m.stats().inst_misses, 1);
    }

    #[test]
    fn prefetch_fills_without_counting_demand() {
        let mut m = h();
        m.probe_prefetch(0x1000);
        assert_eq!(m.stats().data_refs, 0);
        assert_eq!(m.stats().prefetches, 1);
        assert_eq!(m.probe_data(0x1000, false).level, HitLevel::L1);
    }

    #[test]
    fn invalidate_forces_next_probe_to_l2() {
        let mut m = h();
        m.probe_data(0x1000, false);
        m.invalidate_l1d(0x1000);
        let p = m.probe_data(0x1000, false);
        assert_eq!(p.level, HitLevel::L2);
        assert!(m.l2_contains(0x1000));
    }

    #[test]
    fn dirty_l2_writebacks_consume_memory_bandwidth() {
        // Build a dirty line in L2, evict it, and check that the next
        // memory access is delayed behind the writeback's bandwidth slot.
        let mut cfg = HierarchyConfig::out_of_order();
        cfg.l2 = crate::config::CacheConfig::new(64, 1, 32); // 2 sets: easy to evict
        let mut m = MemoryHierarchy::new(cfg);
        // Dirty line 0 in L1 and L2: write, then evict from L1 (dirty into
        // L2), then evict from L2 by touching two conflicting lines.
        m.probe_data(0x0, true);
        let l1_way_stride = 16 * 1024u64;
        m.probe_data(l1_way_stride, true); // L1 set conflict partner (2-way)
        m.probe_data(2 * l1_way_stride, true); // evicts dirty line 0 from L1 -> L2 dirty
                                               // L2 has 2 sets of 32B: line 0x40 conflicts with line 0.
        let p = m.probe_data(0x40, false);
        assert_eq!(p.level, HitLevel::Memory);
        let t = m.schedule_data(p, 0);
        // Without pending writebacks the access would start immediately;
        // with one, the bandwidth gate pushes the memory start by 20.
        assert!(
            t.complete >= 20 + cfg.mem_latency,
            "writeback delays the following memory access: {t:?}"
        );
    }

    #[test]
    fn inst_prefetch_installs_without_counting() {
        let mut m = h();
        m.prefetch_inst(0x2_0000);
        assert_eq!(m.stats().inst_misses, 0, "prefetches are not demand misses");
        assert_eq!(m.probe_inst(0x2_0000), HitLevel::L1, "line was installed");
    }

    #[test]
    fn snapshot_round_trip_resumes_identical_timing() {
        // Drive two hierarchies into a mid-miss state (MSHRs occupied,
        // in-flight fills, pending bandwidth), snapshot one through the wire,
        // and check that identical subsequent traffic times identically.
        let mut a = h();
        let p1 = a.probe_data(0x1000, false);
        let p2 = a.probe_data(0x8000_1000, false);
        a.schedule_data(p1, 0);
        a.schedule_data(p2, 3);
        let wire = a.to_wire().pretty();
        let mut b =
            MemoryHierarchy::from_wire(&imo_util::json::parse(&wire).unwrap()).expect("decodes");
        assert_eq!(b.to_wire(), a.to_wire(), "re-encoding is byte-stable");
        assert_eq!(b.config(), a.config());
        assert_eq!(b.stats(), a.stats());
        // Same-line miss merges with the restored in-flight fill...
        let pa = a.probe_data(0x1008, false);
        let pb = b.probe_data(0x1008, false);
        assert_eq!(a.schedule_data(pa, 5), b.schedule_data(pb, 5));
        // ...and a fresh memory miss sees the same bandwidth/MSHR backlog.
        let qa = a.probe_data(0x4000_0000, false);
        let qb = b.probe_data(0x4000_0000, false);
        assert_eq!(a.schedule_data(qa, 6), b.schedule_data(qb, 6));
    }

    #[test]
    fn in_order_config_smaller_l1_conflicts() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::in_order());
        // Direct-mapped 8KB: stride-8K addresses conflict.
        m.probe_data(0x0, false);
        m.probe_data(8 * 1024, false);
        let p = m.probe_data(0x0, false);
        assert!(p.level.is_l1_miss(), "direct-mapped conflict evicted the line");
    }
}
