//! ECC fault model for cache lines.
//!
//! The §4.3 access-control case study (after Blizzard-E) deliberately writes
//! bad ECC on memory lines to force a trap on access. That trick only works
//! because real ECC distinguishes *correctable* single-bit flips from
//! *detectable-but-uncorrectable* double-bit flips. This module gives the
//! cache model the same vocabulary: an [`EccEvent`] classifies a fault found
//! on a line at invalidation time, and an [`EccFailure`] is the typed error a
//! caller receives when the line's data is unrecoverable (double-bit error on
//! a dirty line means the only up-to-date copy is gone).
//!
//! `imo-mem` is deliberately dependency-free, so these types are defined here
//! rather than borrowed from `imo-faults`; the coherence simulator converts
//! `imo_faults::EccFault` draws into [`EccEvent`]s at the call site.

use std::fmt;

/// An ECC fault observed on a cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccEvent {
    /// A single flipped bit: the code corrects it in place and the access
    /// proceeds normally (counted in `CacheStats::ecc_corrected`).
    SingleBit,
    /// Two flipped bits: detectable but uncorrectable. The line must be
    /// discarded; if it was dirty the data is lost.
    DoubleBit,
}

/// Typed error for an uncorrectable ECC fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EccFailure {
    /// Address (as passed to the access) whose line failed.
    pub addr: u64,
    /// Whether the failing line was dirty — `true` means the only up-to-date
    /// copy of the data was lost, not just a clean cached copy.
    pub dirty: bool,
}

impl fmt::Display for EccFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "uncorrectable double-bit ECC fault on line of {:#x} ({})",
            self.addr,
            if self.dirty { "dirty: data lost" } else { "clean: safe to refetch" }
        )
    }
}

impl std::error::Error for EccFailure {}
