//! `imo-serve` — the sweep job server.
//!
//! A long-running binary that turns the bench harness's
//! [`imo_bench::sweep::CpuCell`] sweeps into a service: clients connect over loopback TCP, submit a
//! `serve.sweep` frame (one line of compact JSON), and receive one
//! `serve.done` frame per cell **in input-index order**. Cells are sharded
//! across a pool of worker subprocesses (`imo-serve --worker`), each running
//! the same deterministic simulation the in-process path runs — results are
//! bit-identical, which `ci_gate --serve` asserts against the committed
//! `BENCH_*.json` files.
//!
//! Modes:
//!
//! * *(default)* server: `imo-serve [--addr 127.0.0.1:0] [--workers N]` —
//!   binds, prints `listening on ADDR` to stdout, serves forever. All
//!   logging goes to stderr; stdout carries only the address line.
//! * `--worker`: internal; reads `serve.job` frames from stdin, writes
//!   `serve.done` frames to stdout. Spawned by the server, never by hand.
//! * `--smoke`: self-test; starts a server subprocess, pushes two small
//!   shards through it (one with checkpoint-based preemption), compares
//!   against in-process results bit-for-bit, and hits `/status`.
//!
//! A `GET /status` HTTP request on the same port returns the server's
//! [`MetricsRegistry`] as JSON (sweeps accepted, cells dispatched and
//! completed, worker failures).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use std::collections::BTreeMap;
use std::env;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread;

use imo_bench::serve::{
    run_cell, run_cells_via_server, CellDone, CellJob, ServeError, SweepRequest,
};
use imo_bench::sweep::cpu_cells;
use imo_core::experiment::{figure2_variants, ExperimentResult};
use imo_obs::MetricsRegistry;
use imo_util::json::{parse, Json};
use imo_util::snapshot::Snapshot;
use imo_workloads::Scale;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut addr = "127.0.0.1:0".to_string();
    let mut workers = default_workers();
    let mut mode = "server";
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--worker" => mode = "worker",
            "--smoke" => mode = "smoke",
            "--addr" => addr = it.next().expect("--addr needs a value").clone(),
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|n| *n > 0)
                    .expect("--workers needs a positive number");
            }
            other => {
                eprintln!("imo-serve: unknown argument `{other}`");
                eprintln!("usage: imo-serve [--addr HOST:PORT] [--workers N] [--worker|--smoke]");
                std::process::exit(2);
            }
        }
    }
    match mode {
        "worker" => worker_main(),
        "smoke" => smoke(workers),
        _ => server_main(&addr, workers),
    }
}

/// Default worker-pool size: leave a core for the server itself.
fn default_workers() -> usize {
    thread::available_parallelism().map_or(2, |n| n.get().saturating_sub(1).clamp(1, 8))
}

// ---------------------------------------------------------------------------
// Worker mode: line-JSON jobs on stdin, line-JSON results on stdout.
// ---------------------------------------------------------------------------

/// Runs `serve.job` frames from stdin until EOF. A malformed frame produces
/// a `serve.error` frame; a simulation failure panics (the server turns the
/// resulting EOF into a client-visible error).
fn worker_main() {
    let stdin = io::stdin();
    let mut out = io::stdout().lock();
    for line in stdin.lock().lines() {
        let line = line.expect("worker stdin");
        if line.trim().is_empty() {
            continue;
        }
        let frame = match parse(&line)
            .map_err(|e| e.to_string())
            .and_then(|j| CellJob::from_wire(&j).map_err(|e| format!("{e:?}")))
        {
            Ok(job) => {
                let result = run_cell(&job.cell, job.preempt_every);
                CellDone { index: job.index, result }.to_wire()
            }
            Err(msg) => ServeError { message: format!("bad job frame: {msg}") }.to_wire(),
        };
        writeln!(out, "{}", frame.compact()).expect("worker stdout");
        out.flush().expect("worker stdout flush");
    }
}

// ---------------------------------------------------------------------------
// Server mode.
// ---------------------------------------------------------------------------

/// One worker subprocess with its job/result pipes.
struct Worker {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Worker {
    fn spawn() -> io::Result<Worker> {
        let exe = env::current_exe()?;
        let mut child = Command::new(exe)
            .arg("--worker")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()?;
        let grab = |side: &str| io::Error::other(format!("worker {side}"));
        let stdin = child.stdin.take().ok_or_else(|| grab("stdin"))?;
        let stdout = child.stdout.take().ok_or_else(|| grab("stdout"))?;
        Ok(Worker { child, stdin, stdout: BufReader::new(stdout) })
    }

    /// Sends one pre-encoded job line and reads the one result line.
    fn run_job(&mut self, job_line: &str) -> Result<String, String> {
        writeln!(self.stdin, "{job_line}").map_err(|e| format!("writing job: {e}"))?;
        self.stdin.flush().map_err(|e| format!("flushing job: {e}"))?;
        let mut resp = String::new();
        match self.stdout.read_line(&mut resp) {
            Ok(0) => Err("worker exited mid-job".to_string()),
            Ok(_) => Ok(resp.trim_end().to_string()),
            Err(e) => Err(format!("reading result: {e}")),
        }
    }

    fn alive(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(None))
    }
}

/// Shared server state: the worker pool (held for the duration of a sweep,
/// so sweeps serialize) and the metrics behind `/status`.
struct Server {
    worker_count: usize,
    workers: Mutex<Vec<Worker>>,
    metrics: Mutex<MetricsRegistry>,
}

impl Server {
    fn count(&self, name: &str, delta: u64) {
        self.metrics.lock().expect("metrics lock").count(name, delta);
    }
}

fn server_main(addr: &str, worker_count: usize) {
    let listener =
        TcpListener::bind(addr).unwrap_or_else(|e| panic!("imo-serve: binding {addr}: {e}"));
    let local = listener.local_addr().expect("local addr");
    let workers: Vec<Worker> = (0..worker_count)
        .map(|i| Worker::spawn().unwrap_or_else(|e| panic!("spawning worker {i}: {e}")))
        .collect();
    eprintln!("imo-serve: {worker_count} workers, listening on {local}");
    // The contract with clients (ci_gate --serve, the smoke test): stdout's
    // first and only line announces the bound address.
    println!("listening on {local}");
    io::stdout().flush().expect("stdout flush");

    let server = Server {
        worker_count,
        workers: Mutex::new(workers),
        metrics: Mutex::new(MetricsRegistry::new()),
    };
    thread::scope(|s| {
        for conn in listener.incoming() {
            match conn {
                Ok(stream) => {
                    let server = &server;
                    s.spawn(move || {
                        if let Err(e) = handle_conn(server, stream) {
                            eprintln!("imo-serve: connection error: {e}");
                        }
                    });
                }
                Err(e) => eprintln!("imo-serve: accept error: {e}"),
            }
        }
    });
}

fn handle_conn(server: &Server, stream: TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut first = String::new();
    if reader.read_line(&mut first)? == 0 {
        return Ok(());
    }
    if first.starts_with("GET ") {
        serve_status(server, stream, reader)
    } else {
        handle_sweep(server, stream, first.trim_end())
    }
}

/// Answers `GET /status`: the metrics registry as an HTTP/JSON snapshot.
/// Reads only the metrics lock, so status stays responsive mid-sweep.
fn serve_status(
    server: &Server,
    mut stream: TcpStream,
    mut reader: BufReader<TcpStream>,
) -> io::Result<()> {
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line.trim().is_empty() {
            break;
        }
    }
    let metrics = server.metrics.lock().expect("metrics lock").to_json();
    let body = Json::obj([("workers", Json::from(server.worker_count)), ("metrics", metrics)])
        .pretty()
        + "\n";
    server.count("status_requests", 1);
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Runs one sweep: shards the cells across the worker pool (each worker
/// pulls the next undispatched cell — dynamic load balancing), reorders
/// completions through a [`BTreeMap`] buffer, and streams `serve.done`
/// frames to the client strictly in input-index order.
fn handle_sweep(server: &Server, mut stream: TcpStream, first: &str) -> io::Result<()> {
    let req = match parse(first)
        .map_err(|e| e.to_string())
        .and_then(|j| SweepRequest::from_wire(&j).map_err(|e| format!("{e:?}")))
    {
        Ok(req) => req,
        Err(msg) => {
            let frame = ServeError { message: format!("bad sweep frame: {msg}") }.to_wire();
            writeln!(stream, "{}", frame.compact())?;
            return stream.flush();
        }
    };
    let n = req.cells.len();
    eprintln!("imo-serve: sweep `{}`: {n} cells (preempt {:?})", req.name, req.preempt_every);
    server.count("sweeps", 1);
    if n == 0 {
        return stream.flush();
    }

    let jobs: Vec<String> = req
        .cells
        .iter()
        .enumerate()
        .map(|(i, cell)| {
            CellJob { index: i as u64, cell: cell.clone(), preempt_every: req.preempt_every }
                .to_wire()
                .compact()
        })
        .collect();

    // Taking the pool for the whole sweep serializes sweeps; `/status` only
    // needs the metrics lock and stays live.
    let mut pool = server.workers.lock().expect("worker pool lock");
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<String, String>)>();
    let mut result: io::Result<()> = Ok(());
    thread::scope(|s| {
        for w in pool.iter_mut() {
            let tx = tx.clone();
            let (jobs, next, server) = (&jobs, &next, &server);
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= jobs.len() {
                    break;
                }
                server.count("cells_dispatched", 1);
                let res = w.run_job(&jobs[i]);
                let failed = res.is_err();
                if tx.send((i, res)).is_err() || failed {
                    break;
                }
            });
        }
        drop(tx);

        let mut buffer: BTreeMap<usize, String> = BTreeMap::new();
        let mut next_emit = 0usize;
        while next_emit < n {
            let frame_err = match rx.recv() {
                Ok((_, Ok(line))) if line.is_empty() => Some("worker sent empty frame".to_string()),
                Ok((i, Ok(line))) => {
                    buffer.insert(i, line);
                    server.count("cells_completed", 1);
                    while let Some(line) = buffer.remove(&next_emit) {
                        if let Err(e) = writeln!(stream, "{line}") {
                            result = Err(e);
                            return;
                        }
                        next_emit += 1;
                    }
                    None
                }
                Ok((i, Err(msg))) => {
                    server.count("worker_failures", 1);
                    Some(format!("cell {i}: {msg}"))
                }
                Err(_) => Some("all workers exited".to_string()),
            };
            if let Some(msg) = frame_err {
                eprintln!("imo-serve: sweep `{}`: {msg}", req.name);
                let frame = ServeError { message: msg }.to_wire();
                result = writeln!(stream, "{}", frame.compact()).and_then(|()| stream.flush());
                return;
            }
        }
        result = stream.flush();
    });

    // Replace any worker that died mid-sweep so the pool stays full.
    for w in pool.iter_mut() {
        if !w.alive() {
            eprintln!("imo-serve: respawning dead worker");
            match Worker::spawn() {
                Ok(fresh) => *w = fresh,
                Err(e) => eprintln!("imo-serve: respawn failed: {e}"),
            }
        }
    }
    result
}

// ---------------------------------------------------------------------------
// Smoke mode: end-to-end self-test against the in-process path.
// ---------------------------------------------------------------------------

/// Starts a server subprocess, runs two shards through it (the second with
/// checkpoint-based preemption), asserts bit-identity with the in-process
/// path, and checks `/status`. Prints `serve smoke ok` on success.
fn smoke(workers: usize) {
    let exe = env::current_exe().expect("current_exe");
    let mut child = Command::new(&exe)
        .args(["--addr", "127.0.0.1:0", "--workers", &workers.to_string()])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawning smoke server");
    let mut stdout = BufReader::new(child.stdout.take().expect("server stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("reading listening line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected server banner: {line:?}"))
        .to_string();

    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| smoke_body(&addr)));
    let _ = child.kill();
    let _ = child.wait();
    match outcome {
        Ok(()) => println!("serve smoke ok"),
        Err(e) => std::panic::resume_unwind(e),
    }
}

fn smoke_body(addr: &str) {
    // Shard 1: ora + compress on both machines, no preemption. The direct
    // results are the in-process ground truth the server must reproduce.
    let cells = cpu_cells(&["ora", "compress"], Scale::Test, &figure2_variants());
    let direct: Vec<ExperimentResult> = cells.iter().map(|c| run_cell(c, None)).collect();
    let served = run_cells_via_server(addr, "smoke", cells);
    assert_eq!(served, direct, "served shard must be bit-identical to in-process");
    eprintln!("smoke: plain shard ok ({} cells)", served.len());

    // Shard 2: ora on both machines with preemption — every worker-side run
    // is sliced through checkpoint wire round trips and must still match.
    env::set_var("IMO_SERVE_PREEMPT", "5000");
    let cells = cpu_cells(&["ora"], Scale::Test, &figure2_variants());
    let served = run_cells_via_server(addr, "smoke-preempt", cells);
    env::remove_var("IMO_SERVE_PREEMPT");
    assert_eq!(served, direct[..2], "preempted shard must be bit-identical");
    eprintln!("smoke: preempted shard ok ({} cells)", served.len());

    let mut stream = TcpStream::connect(addr).expect("status connect");
    write!(stream, "GET /status HTTP/1.0\r\n\r\n").expect("status request");
    stream.flush().expect("status flush");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("status response");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "status must answer 200: {response}");
    assert!(response.contains("cells_completed"), "status must expose metrics: {response}");
    eprintln!("smoke: /status ok");
}
