//! `imo-serve` — the chaos-hardened sweep job server.
//!
//! A long-running binary that turns the bench harness's cell sweeps into a
//! supervised service: clients connect over loopback TCP, submit a
//! `serve.sweep` frame (one line of compact JSON), and receive one
//! `serve.done` frame per cell **in input-index order**. Cells are sharded
//! across a pool of worker subprocesses (`imo-serve --worker`), each running
//! the same deterministic simulation the in-process path runs — results are
//! bit-identical, which `ci_gate --serve` asserts against the committed
//! `BENCH_*.json` files.
//!
//! ## Supervision
//!
//! Each worker is driven by a dispatcher thread that enforces a
//! per-dispatch deadline: a worker that neither completes its cell nor
//! heartbeats a `serve.ckpt` checkpoint within the window is declared dead,
//! killed and respawned, and the cell is re-dispatched under a capped
//! exponential backoff — resuming from the worker's last reported
//! checkpoint, not from scratch. Completed results are verified against
//! their content hash (a corrupted-but-parseable frame is re-dispatched),
//! deduplicated by input index, and a cell that keeps failing is
//! quarantined: the sweep aborts with a typed `serve.error` naming it.
//! Worker lifecycle (`idle`/`busy`/`suspect`/`dead`/`respawning`) and all
//! failure/recovery counters are visible at `/status`.
//!
//! When a sweep carries a deterministic chaos schedule
//! ([`imo_faults::ChaosPlan`]), workers look up their own faults per
//! `(cell index, attempt)` and die, stall, tear frames, lie about hashes,
//! duplicate completions or retire gracefully on cue — the supervisor must
//! make all of it invisible: the streamed results stay byte-identical to a
//! clean serial run. Without a chaos schedule no randomness is drawn
//! anywhere and the fast path is byte-identical to the pre-chaos server.
//!
//! Modes:
//!
//! * *(default)* server: `imo-serve [--addr 127.0.0.1:0] [--workers N]` —
//!   binds, prints `listening on ADDR` to stdout, serves forever. All
//!   logging goes to stderr; stdout carries only the address line.
//! * `--worker`: internal; reads `serve.job` frames from stdin, writes
//!   `serve.ckpt`/`serve.wdone` frames to stdout. Spawned by the server,
//!   never by hand.
//! * `--smoke`: self-test; starts a server subprocess, pushes three small
//!   shards through it (plain, checkpoint-preempted, and chaos-injected),
//!   compares against in-process results bit-for-bit, and hits `/status`.
//!
//! A `GET /status` HTTP request on the same port returns the server's
//! [`MetricsRegistry`] as JSON plus the worker state machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::env;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread;
use std::time::Duration;

use imo_bench::serve::{
    attrib_digest, cell_result_hash, cell_state_progress, run_any_cell, run_any_cell_plain,
    run_cells_via_server, try_run_cells_via_server, AnyCell, CellDone, CellJob, CellResult,
    CohCell, ServeError, SweepPolicy, SweepRequest, SynthCell, WorkerBye, WorkerCkpt, WorkerDone,
};
use imo_bench::sweep::cpu_cells;
use imo_coherence::BackoffPolicy;
use imo_core::experiment::{figure2_variants, ExperimentResult};
use imo_faults::{ChaosConfig, ChaosEvent, ChaosPlan};
use imo_obs::MetricsRegistry;
use imo_util::json::{parse, Json};
use imo_util::snapshot::Snapshot;
use imo_workloads::Scale;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut addr = "127.0.0.1:0".to_string();
    let mut workers = default_workers();
    let mut mode = "server";
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--worker" => mode = "worker",
            "--smoke" => mode = "smoke",
            "--addr" => addr = it.next().expect("--addr needs a value").clone(),
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|n| *n > 0)
                    .expect("--workers needs a positive number");
            }
            other => {
                eprintln!("imo-serve: unknown argument `{other}`");
                eprintln!("usage: imo-serve [--addr HOST:PORT] [--workers N] [--worker|--smoke]");
                std::process::exit(2);
            }
        }
    }
    match mode {
        "worker" => worker_main(),
        "smoke" => smoke(workers),
        _ => server_main(&addr, workers),
    }
}

/// Default worker-pool size: leave a core for the server itself.
fn default_workers() -> usize {
    thread::available_parallelism().map_or(2, |n| n.get().saturating_sub(1).clamp(1, 8))
}

// ---------------------------------------------------------------------------
// Worker mode: line-JSON jobs on stdin, line-JSON frames on stdout.
// ---------------------------------------------------------------------------

/// Progress units a finished result represents (cycles / ops / iters).
fn result_progress(result: &CellResult, cell: &AnyCell) -> u64 {
    match (result, cell) {
        (CellResult::Cpu(e), _) => e.raw.iter().map(|(_, r)| r.cycles).sum(),
        (CellResult::Coh(s), _) => s.ops,
        (CellResult::Synth(_), AnyCell::Synth(c)) => c.iters,
        (CellResult::Synth(_), _) => 0,
    }
}

/// Runs `serve.job` frames from stdin until EOF. A malformed frame produces
/// a `serve.error` frame; a simulation failure panics (the supervisor turns
/// the resulting EOF into a re-dispatch).
///
/// When the job carries a chaos schedule, the worker consults it for its
/// own `(index, attempt)` faults and obeys: exiting before work, stalling,
/// dying after N checkpoint slices, tearing its completion frame mid-write,
/// stamping a wrong hash, duplicating its completion, or announcing
/// `serve.bye` and retiring after the cell. Chaos also arms checkpoint
/// heartbeats: at every preemption boundary the worker streams its
/// resumable state so a replacement can pick up where it died.
fn worker_main() {
    let stdin = io::stdin();
    let mut out = io::stdout().lock();
    for line in stdin.lock().lines() {
        let line = line.expect("worker stdin");
        if line.trim().is_empty() {
            continue;
        }
        let job = match parse(&line)
            .map_err(|e| e.to_string())
            .and_then(|j| CellJob::from_wire(&j).map_err(|e| format!("{e:?}")))
        {
            Ok(job) => job,
            Err(msg) => {
                let frame = ServeError { message: format!("bad job frame: {msg}") }.to_wire();
                writeln!(out, "{}", frame.compact()).expect("worker stdout");
                out.flush().expect("worker stdout flush");
                continue;
            }
        };
        let retire = run_worker_job(&job, &mut out);
        if retire {
            std::process::exit(0);
        }
    }
}

/// Runs one job, obeying its chaos schedule. Returns whether the worker
/// should retire gracefully afterwards.
fn run_worker_job(job: &CellJob, out: &mut impl Write) -> bool {
    let plan = job.chaos.map(ChaosPlan::new);
    let event = plan.as_ref().and_then(|p| p.dispatch(job.index, job.attempt));
    match event {
        // Vanish before doing any work: the supervisor sees a clean EOF.
        Some(ChaosEvent::DropConn) => std::process::exit(3),
        // Stop responding entirely: only the deadline can catch this.
        Some(ChaosEvent::Stall) => loop {
            thread::sleep(Duration::from_secs(3600));
        },
        _ => {}
    }
    let kill_after = match event {
        Some(ChaosEvent::Kill { after_slices }) => Some(after_slices),
        _ => None,
    };

    let start_progress = job
        .resume
        .as_ref()
        .map(|s| cell_state_progress(s).expect("supervisor-provided resume state"))
        .unwrap_or(0);
    let (result, progress) = if job.chaos.is_some() || job.resume.is_some() {
        // Chaos (or a resumed cell) arms checkpoint heartbeats — and the
        // chaos kill, which strikes after the N-th reported slice.
        let mut slices = 0u64;
        let mut on_slice = |prog: u64, state: &Json| {
            slices += 1;
            let ckpt = WorkerCkpt {
                index: job.index,
                attempt: job.attempt,
                progress: prog,
                worked: prog.saturating_sub(start_progress),
                state: state.clone(),
            };
            writeln!(out, "{}", ckpt.to_wire().compact()).expect("worker stdout");
            out.flush().expect("worker stdout flush");
            if kill_after == Some(slices) {
                std::process::exit(9);
            }
        };
        run_any_cell(&job.cell, job.preempt_every, job.resume.as_ref(), &mut on_slice)
    } else {
        // The clean path: no heartbeat frames, no RNG, memoized CPU runs —
        // byte-identical to the pre-chaos worker.
        let result = run_any_cell_plain(&job.cell, job.preempt_every);
        let progress = result_progress(&result, &job.cell);
        (result, progress)
    };

    let mut hash = cell_result_hash(&result);
    let mut extra = 0u64;
    match event {
        // Lie about the hash: the frame parses but fails verification.
        Some(ChaosEvent::CorruptFrame) => hash ^= 1,
        Some(ChaosEvent::DupDone) => extra = 1,
        _ => {}
    }
    let retire = plan.as_ref().is_some_and(|p| p.exit_after(job.index, job.attempt));
    if retire {
        writeln!(out, "{}", WorkerBye {}.to_wire().compact()).expect("worker stdout");
    }
    // Opt-in miss attribution: a strictly passive side-channel digest; the
    // result (and its hash) are untouched.
    let attrib = if job.attrib { attrib_digest(&job.cell) } else { None };
    let done = WorkerDone {
        index: job.index,
        attempt: job.attempt,
        progress,
        worked: progress.saturating_sub(start_progress),
        hash,
        extra,
        attrib,
        result,
    };
    let frame = done.to_wire().compact();
    if matches!(event, Some(ChaosEvent::TornWrite)) {
        // Die mid-write: half a frame, no newline, then gone.
        let half = frame.len() / 2;
        out.write_all(&frame.as_bytes()[..half]).expect("worker stdout");
        out.flush().expect("worker stdout flush");
        std::process::exit(7);
    }
    for _ in 0..=extra {
        writeln!(out, "{frame}").expect("worker stdout");
    }
    out.flush().expect("worker stdout flush");
    retire
}

// ---------------------------------------------------------------------------
// Server mode.
// ---------------------------------------------------------------------------

/// One worker subprocess: its job pipe plus a detached reader thread that
/// forwards stdout lines over a channel, so the dispatcher can enforce
/// deadlines with `recv_timeout` instead of blocking on a dead pipe.
struct Worker {
    child: Child,
    stdin: ChildStdin,
    rx: mpsc::Receiver<io::Result<String>>,
}

impl Worker {
    fn spawn() -> io::Result<Worker> {
        let exe = env::current_exe()?;
        // Workers share the on-disk sweep store read-only: they serve warm
        // cells from it, but only a coordinating process (the gate, tier2)
        // writes, so a crashed or chaos-killed worker can never leave a
        // half-written entry behind.
        let mut child = Command::new(exe)
            .arg("--worker")
            .env("IMO_STORE", imo_bench::sweep::worker_store_env())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()?;
        let grab = |side: &str| io::Error::other(format!("worker {side}"));
        let stdin = child.stdin.take().ok_or_else(|| grab("stdin"))?;
        let stdout = child.stdout.take().ok_or_else(|| grab("stdout"))?;
        let (tx, rx) = mpsc::channel();
        // Reader threads die with their pipe: EOF (worker exit or kill)
        // ends the loop, and an orphaned channel send ends it too.
        thread::spawn(move || {
            let mut reader = BufReader::new(stdout);
            loop {
                let mut line = String::new();
                match reader.read_line(&mut line) {
                    Ok(0) => break,
                    Ok(_) => {
                        if tx.send(Ok(line.trim_end().to_string())).is_err() {
                            break;
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        break;
                    }
                }
            }
        });
        Ok(Worker { child, stdin, rx })
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Shared server state: the worker pool (held for the duration of a sweep,
/// so sweeps serialize), the per-worker state machine, and the metrics
/// behind `/status`.
struct Server {
    worker_count: usize,
    workers: Mutex<Vec<Worker>>,
    states: Mutex<Vec<&'static str>>,
    metrics: Mutex<MetricsRegistry>,
    /// Most recent miss-attribution digests from attrib-enabled sweeps,
    /// surfaced verbatim in `/status`.
    profiles: Mutex<VecDeque<Json>>,
}

/// How many recent attribution digests `/status` retains.
const PROFILE_KEEP: usize = 8;

impl Server {
    fn count(&self, name: &str, delta: u64) {
        self.metrics.lock().expect("metrics lock").count(name, delta);
    }

    fn set_state(&self, id: usize, state: &'static str) {
        self.states.lock().expect("states lock")[id] = state;
    }

    /// Folds a worker's attribution digest into the aggregate `attrib.*`
    /// counters and the recent-profile ring behind `/status`.
    fn fold_attrib(&self, digest: &Json) {
        let field = |k: &str| digest.get(k).and_then(Json::as_f64).unwrap_or(0.0) as u64;
        self.count("attrib.cells_profiled", 1);
        self.count("attrib.demand_refs", field("demand_refs"));
        self.count("attrib.demand_misses", field("demand_misses"));
        self.count("attrib.compulsory", field("compulsory"));
        self.count("attrib.coherence", field("coherence"));
        self.count("attrib.capacity", field("capacity"));
        self.count("attrib.conflict", field("conflict"));
        self.count("attrib.recorder_events_seen", field("events_seen"));
        self.count("attrib.recorder_dropped", field("events_dropped"));
        let reconciled = digest.get("reconciled").is_some_and(|j| matches!(j, Json::Bool(true)));
        self.count(if reconciled { "attrib.reconciled" } else { "attrib.unreconciled" }, 1);
        let mut profiles = self.profiles.lock().expect("profiles lock");
        if profiles.len() == PROFILE_KEEP {
            profiles.pop_front();
        }
        profiles.push_back(digest.clone());
    }
}

fn server_main(addr: &str, worker_count: usize) {
    let listener =
        TcpListener::bind(addr).unwrap_or_else(|e| panic!("imo-serve: binding {addr}: {e}"));
    let local = listener.local_addr().expect("local addr");
    let workers: Vec<Worker> = (0..worker_count)
        .map(|i| Worker::spawn().unwrap_or_else(|e| panic!("spawning worker {i}: {e}")))
        .collect();
    eprintln!("imo-serve: {worker_count} workers, listening on {local}");
    // The contract with clients (ci_gate --serve, the smoke test): stdout's
    // first and only line announces the bound address.
    println!("listening on {local}");
    io::stdout().flush().expect("stdout flush");

    let server = Server {
        worker_count,
        workers: Mutex::new(workers),
        states: Mutex::new(vec!["idle"; worker_count]),
        metrics: Mutex::new(MetricsRegistry::new()),
        profiles: Mutex::new(VecDeque::new()),
    };
    thread::scope(|s| {
        for conn in listener.incoming() {
            match conn {
                Ok(stream) => {
                    let server = &server;
                    s.spawn(move || {
                        if let Err(e) = handle_conn(server, stream) {
                            eprintln!("imo-serve: connection error: {e}");
                        }
                    });
                }
                Err(e) => eprintln!("imo-serve: accept error: {e}"),
            }
        }
    });
}

fn handle_conn(server: &Server, stream: TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut first = String::new();
    if reader.read_line(&mut first)? == 0 {
        return Ok(());
    }
    if first.starts_with("GET ") {
        serve_status(server, stream, reader)
    } else {
        handle_sweep(server, stream, first.trim_end())
    }
}

/// Answers `GET /status`: the metrics registry plus the worker state
/// machine as an HTTP/JSON snapshot. Reads only the metrics and state
/// locks, so status stays responsive mid-sweep.
fn serve_status(
    server: &Server,
    mut stream: TcpStream,
    mut reader: BufReader<TcpStream>,
) -> io::Result<()> {
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line.trim().is_empty() {
            break;
        }
    }
    let metrics = server.metrics.lock().expect("metrics lock").to_json();
    let states = server.states.lock().expect("states lock").clone();
    let profiles: Vec<Json> =
        server.profiles.lock().expect("profiles lock").iter().cloned().collect();
    let body = Json::obj([
        ("workers", Json::from(server.worker_count)),
        ("worker_states", Json::arr(states.into_iter().map(Json::from))),
        ("attrib_profiles", Json::arr(profiles)),
        ("metrics", metrics),
    ])
    .pretty()
        + "\n";
    server.count("status_requests", 1);
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Per-sweep shared state between the dispatcher threads and the emitter.
struct SweepRun {
    cells: Vec<AnyCell>,
    preempt_every: Option<u64>,
    chaos: Option<ChaosConfig>,
    policy: SweepPolicy,
    attrib: bool,
    backoff: BackoffPolicy,
    /// Undispatched work: `(cell index, attempt)`.
    queue: Mutex<VecDeque<(usize, u64)>>,
    /// Best checkpoint per cell (highest progress wins): the resume state
    /// a re-dispatch starts from.
    ckpts: Mutex<HashMap<usize, (u64, Json)>>,
    /// Verified completion hash per cell, for idempotent dedup.
    done_hashes: Mutex<HashMap<usize, u64>>,
    /// Cells not yet completed.
    pending: AtomicUsize,
    /// Set on quarantine or client death; dispatchers drain and stop.
    abort: AtomicBool,
}

/// How one dispatch ended, supervisor-side.
enum DispatchEnd {
    /// Verified completion (and whether the worker announced retirement).
    Done(Box<WorkerDone>, bool),
    /// The attempt failed; the worker must be presumed dead.
    Failed(String),
}

/// Runs one sweep under supervision: dispatcher threads (one per worker)
/// pull cells off the shared queue, enforce deadlines, collect checkpoint
/// heartbeats, verify and deduplicate completions, and re-dispatch failures
/// with backoff; the emitter reorders completions through a [`BTreeMap`]
/// buffer and streams `serve.done` frames strictly in input-index order.
fn handle_sweep(server: &Server, mut stream: TcpStream, first: &str) -> io::Result<()> {
    let req = match parse(first)
        .map_err(|e| e.to_string())
        .and_then(|j| SweepRequest::from_wire(&j).map_err(|e| format!("{e:?}")))
    {
        Ok(req) => req,
        Err(msg) => {
            let frame = ServeError { message: format!("bad sweep frame: {msg}") }.to_wire();
            writeln!(stream, "{}", frame.compact())?;
            return stream.flush();
        }
    };
    let n = req.cells.len();
    eprintln!(
        "imo-serve: sweep `{}`: {n} cells (preempt {:?}, chaos {})",
        req.name,
        req.preempt_every,
        if req.chaos.is_some() { "on" } else { "off" }
    );
    server.count("sweeps", 1);
    if n == 0 {
        return stream.flush();
    }
    let policy = req.policy.unwrap_or_default();
    let run = SweepRun {
        cells: req.cells,
        preempt_every: req.preempt_every,
        chaos: req.chaos,
        policy,
        attrib: req.attrib,
        backoff: BackoffPolicy {
            base: policy.backoff_base_ms,
            multiplier: 2,
            cap: policy.backoff_cap_ms,
            max_retries: policy.max_attempts.saturating_sub(1),
        },
        queue: Mutex::new((0..n).map(|i| (i, 0u64)).collect()),
        ckpts: Mutex::new(HashMap::new()),
        done_hashes: Mutex::new(HashMap::new()),
        pending: AtomicUsize::new(n),
        abort: AtomicBool::new(false),
    };

    // Taking the pool for the whole sweep serializes sweeps; `/status` only
    // needs the metrics and state locks and stays live.
    let mut pool = server.workers.lock().expect("worker pool lock");
    let (tx, rx) = mpsc::channel::<Result<(usize, String), String>>();
    let mut result: io::Result<()> = Ok(());
    thread::scope(|s| {
        for (id, w) in pool.iter_mut().enumerate() {
            let tx = tx.clone();
            let run = &run;
            s.spawn(move || dispatcher(server, id, w, run, &tx));
        }
        drop(tx);

        let mut buffer: BTreeMap<usize, String> = BTreeMap::new();
        let mut next_emit = 0usize;
        while next_emit < n {
            let abort_msg = match rx.recv() {
                Ok(Ok((i, frame))) => {
                    buffer.insert(i, frame);
                    while let Some(frame) = buffer.remove(&next_emit) {
                        if let Err(e) = writeln!(stream, "{frame}") {
                            run.abort.store(true, Ordering::SeqCst);
                            result = Err(e);
                            return;
                        }
                        next_emit += 1;
                    }
                    None
                }
                Ok(Err(msg)) => Some(msg),
                Err(_) => Some("all workers exited".to_string()),
            };
            if let Some(msg) = abort_msg {
                run.abort.store(true, Ordering::SeqCst);
                eprintln!("imo-serve: sweep aborted: {msg}");
                let frame = ServeError { message: msg }.to_wire();
                result = writeln!(stream, "{}", frame.compact()).and_then(|()| stream.flush());
                return;
            }
        }
        result = stream.flush();
    });
    result
}

/// One worker's dispatch loop: pull a cell, supervise the attempt, account
/// for the outcome, re-dispatch or quarantine on failure, respawn the
/// worker whenever it is presumed (or known) dead.
fn dispatcher(
    server: &Server,
    id: usize,
    w: &mut Worker,
    run: &SweepRun,
    tx: &mpsc::Sender<Result<(usize, String), String>>,
) {
    loop {
        if run.abort.load(Ordering::SeqCst) {
            break;
        }
        let job = run.queue.lock().expect("queue lock").pop_front();
        let Some((index, attempt)) = job else {
            if run.pending.load(Ordering::SeqCst) == 0 {
                break;
            }
            // Another worker may yet fail its cell and requeue it.
            thread::sleep(Duration::from_millis(2));
            continue;
        };
        match run_one(server, id, w, run, index, attempt) {
            DispatchEnd::Done(done, retiring) => {
                let fresh = {
                    let mut hashes = run.done_hashes.lock().expect("hash lock");
                    hashes.insert(index, done.hash).is_none()
                };
                if fresh {
                    server.count("cells_completed", 1);
                    server.count("useful_cycles", done.worked);
                    if let Some(digest) = &done.attrib {
                        server.fold_attrib(digest);
                    }
                    let frame =
                        CellDone { index: done.index, result: done.result }.to_wire().compact();
                    run.pending.fetch_sub(1, Ordering::SeqCst);
                    if tx.send(Ok((index, frame))).is_err() {
                        break; // client is gone
                    }
                } else {
                    server.count("dup_frames", 1);
                }
                if retiring {
                    // A chaos-scheduled graceful exit: not a failure.
                    server.count("worker_exits", 1);
                    if !respawn(server, id, w) {
                        break;
                    }
                } else {
                    server.set_state(id, "idle");
                }
            }
            DispatchEnd::Failed(msg) => {
                server.count("worker_failures", 1);
                eprintln!("imo-serve: worker {id}, cell {index} attempt {attempt}: {msg}");
                if !respawn(server, id, w) {
                    run.queue.lock().expect("queue lock").push_back((index, attempt));
                    break;
                }
                let next_attempt = attempt + 1;
                if next_attempt >= u64::from(run.policy.max_attempts) {
                    server.count("quarantined_cells", 1);
                    run.abort.store(true, Ordering::SeqCst);
                    let _ = tx.send(Err(format!(
                        "cell {index} quarantined after {next_attempt} failed attempts: {msg}"
                    )));
                    break;
                }
                server.count("redispatches", 1);
                run.queue.lock().expect("queue lock").push_back((index, next_attempt));
                #[allow(clippy::cast_possible_truncation)]
                let delay = run.backoff.delay(attempt.min(u64::from(u32::MAX)) as u32);
                thread::sleep(Duration::from_millis(delay));
            }
        }
    }
    server.set_state(id, "idle");
}

/// Replaces a dead (or retired) worker. Returns false if the respawn
/// itself failed — the dispatcher then retires.
fn respawn(server: &Server, id: usize, w: &mut Worker) -> bool {
    server.set_state(id, "respawning");
    match Worker::spawn() {
        Ok(fresh) => {
            *w = fresh; // Drop kills and reaps the old child.
            server.count("workers_respawned", 1);
            server.set_state(id, "idle");
            true
        }
        Err(e) => {
            eprintln!("imo-serve: worker {id} respawn failed: {e}");
            server.set_state(id, "dead");
            false
        }
    }
}

/// Receives one frame line within the deadline. Halfway through the window
/// the worker is marked `suspect`; at expiry it is declared dead.
fn recv_frame(server: &Server, id: usize, w: &Worker, deadline_ms: u64) -> Result<String, String> {
    let half = Duration::from_millis((deadline_ms / 2).max(1));
    let got = match w.rx.recv_timeout(half) {
        Ok(got) => got,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            server.set_state(id, "suspect");
            match w.rx.recv_timeout(half) {
                Ok(got) => {
                    server.set_state(id, "busy");
                    got
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    server.count("deadline_timeouts", 1);
                    server.set_state(id, "dead");
                    return Err(format!("no progress within the {deadline_ms} ms deadline"));
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    server.set_state(id, "dead");
                    return Err("worker exited mid-job".to_string());
                }
            }
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            server.set_state(id, "dead");
            return Err("worker exited mid-job".to_string());
        }
    };
    got.map_err(|e| {
        server.set_state(id, "dead");
        format!("reading from worker: {e}")
    })
}

/// Supervises a single dispatch: sends the job (resuming from the cell's
/// best checkpoint if one exists), then consumes heartbeats until a
/// verified completion or a declared death.
fn run_one(
    server: &Server,
    id: usize,
    w: &mut Worker,
    run: &SweepRun,
    index: usize,
    attempt: u64,
) -> DispatchEnd {
    let fail = DispatchEnd::Failed;
    let resume = {
        let ckpts = run.ckpts.lock().expect("ckpt lock");
        ckpts.get(&index).map(|(p, s)| (*p, s.clone()))
    };
    if let Some((progress, _)) = &resume {
        server.count("recovered_from_checkpoint", 1);
        server.count("recovered_cycles", *progress);
        let kind = match &run.cells[index] {
            AnyCell::Cpu(_) => "recovered_ckpt_cpu",
            AnyCell::Coh(_) => "recovered_ckpt_coh",
            AnyCell::Synth(_) => "recovered_ckpt_synth",
        };
        server.count(kind, 1);
    }
    let job = CellJob {
        index: index as u64,
        attempt,
        cell: run.cells[index].clone(),
        preempt_every: run.preempt_every,
        chaos: run.chaos,
        resume: resume.map(|(_, s)| s),
        attrib: run.attrib,
    };
    server.count("cells_dispatched", 1);
    server.set_state(id, "busy");
    let line = job.to_wire().compact();
    if let Err(e) = writeln!(w.stdin, "{line}").and_then(|()| w.stdin.flush()) {
        return fail(format!("writing job: {e}"));
    }

    let mut retiring = false;
    loop {
        let line = match recv_frame(server, id, w, run.policy.deadline_ms) {
            Ok(line) => line,
            Err(msg) => return fail(msg),
        };
        let Ok(frame) = parse(&line) else {
            // A torn write arrives as a truncated, unparseable line.
            server.count("corrupt_frames", 1);
            return fail("unparseable frame (torn write?)".to_string());
        };
        if WorkerBye::from_wire(&frame).is_ok() {
            retiring = true;
            continue;
        }
        if let Ok(ckpt) = WorkerCkpt::from_wire(&frame) {
            if ckpt.index != index as u64 || ckpt.attempt != attempt {
                server.count("stale_frames", 1);
                continue;
            }
            server.count("heartbeats", 1);
            let mut ckpts = run.ckpts.lock().expect("ckpt lock");
            let best = ckpts.entry(index).or_insert((0, Json::Null));
            if ckpt.progress >= best.0 {
                *best = (ckpt.progress, ckpt.state);
            }
            continue;
        }
        if let Ok(done) = WorkerDone::from_wire(&frame) {
            if done.index != index as u64 || done.attempt != attempt {
                // A duplicate of an already-completed cell, or junk.
                let known =
                    run.done_hashes.lock().expect("hash lock").get(&(done.index as usize)).copied();
                server
                    .count(if known == Some(done.hash) { "dup_frames" } else { "stale_frames" }, 1);
                continue;
            }
            if cell_result_hash(&done.result) != done.hash {
                server.count("corrupt_frames", 1);
                // Everything past the last checkpoint must be redone.
                let kept = run.ckpts.lock().expect("ckpt lock").get(&index).map_or(0, |(p, _)| *p);
                server.count("wasted_cycles", done.progress.saturating_sub(kept));
                return fail(format!("cell {index}: result hash mismatch"));
            }
            // Drain announced duplicate completions so they never alias the
            // next job's frames.
            for _ in 0..done.extra {
                match w.rx.recv_timeout(Duration::from_millis(2000)) {
                    Ok(Ok(_)) => server.count("dup_frames", 1),
                    _ => break,
                }
            }
            return DispatchEnd::Done(Box::new(done), retiring);
        }
        if let Ok(err) = ServeError::from_wire(&frame) {
            return fail(format!("worker error: {}", err.message));
        }
        server.count("corrupt_frames", 1);
        return fail("unrecognized frame".to_string());
    }
}

// ---------------------------------------------------------------------------
// Smoke mode: end-to-end self-test against the in-process path.
// ---------------------------------------------------------------------------

/// Starts a server subprocess, runs three shards through it (plain,
/// checkpoint-preempted, chaos-injected), asserts bit-identity with the
/// in-process path, and checks `/status`. Prints `serve smoke ok` on
/// success.
fn smoke(workers: usize) {
    let exe = env::current_exe().expect("current_exe");
    let mut child = Command::new(&exe)
        .args(["--addr", "127.0.0.1:0", "--workers", &workers.to_string()])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawning smoke server");
    let mut stdout = BufReader::new(child.stdout.take().expect("server stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("reading listening line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected server banner: {line:?}"))
        .to_string();

    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| smoke_body(&addr)));
    let _ = child.kill();
    let _ = child.wait();
    match outcome {
        Ok(()) => println!("serve smoke ok"),
        Err(e) => std::panic::resume_unwind(e),
    }
}

fn smoke_body(addr: &str) {
    // Shard 1: ora + compress on both machines, no preemption. The direct
    // results are the in-process ground truth the server must reproduce.
    let cells = cpu_cells(&["ora", "compress"], Scale::Test, &figure2_variants());
    let direct: Vec<ExperimentResult> =
        cells.iter().map(|c| imo_bench::serve::run_cell(c, None)).collect();
    let served = run_cells_via_server(addr, "smoke", cells);
    assert_eq!(served, direct, "served shard must be bit-identical to in-process");
    eprintln!("smoke: plain shard ok ({} cells)", served.len());

    // Shard 2: ora on both machines with preemption — every worker-side run
    // is sliced through checkpoint wire round trips and must still match.
    env::set_var("IMO_SERVE_PREEMPT", "5000");
    let cells = cpu_cells(&["ora"], Scale::Test, &figure2_variants());
    let served = run_cells_via_server(addr, "smoke-preempt", cells);
    env::remove_var("IMO_SERVE_PREEMPT");
    assert_eq!(served, direct[..2], "preempted shard must be bit-identical");
    eprintln!("smoke: preempted shard ok ({} cells)", served.len());

    // Shard 3: chaos. Synthetic hash chains plus a coherence cell under a
    // saturated failure schedule — kills, torn writes, corrupt frames,
    // duplicate completions, graceful retirements. The streamed results
    // must still be byte-identical to a clean serial run.
    let mut cells: Vec<AnyCell> = (0..40)
        .map(|i| AnyCell::Synth(SynthCell { seed: 0xC0FFEE ^ (i as u64) << 8, iters: 500 }))
        .collect();
    cells.push(AnyCell::Coh(CohCell {
        app: "migratory",
        procs: 4,
        ops_per_proc: 800,
        seed: 5,
        scheme: imo_coherence::Scheme::Informing,
    }));
    let expected: Vec<CellResult> = cells.iter().map(|c| run_any_cell_plain(c, None)).collect();
    let mut chaos = ChaosConfig::none(0xC4A0);
    chaos.kill_rate = 0.15;
    chaos.kill_slices = 2;
    chaos.drop_conn_rate = 0.05;
    chaos.torn_rate = 0.05;
    chaos.corrupt_rate = 0.05;
    chaos.dup_done_rate = 0.10;
    chaos.exit_rate = 0.10;
    let req = SweepRequest {
        name: "smoke-chaos".to_string(),
        preempt_every: Some(100),
        chaos: Some(chaos),
        policy: Some(SweepPolicy {
            deadline_ms: 3000,
            max_attempts: 6,
            backoff_base_ms: 2,
            backoff_cap_ms: 20,
        }),
        attrib: false,
        cells,
    };
    let served = try_run_cells_via_server(addr, &req).expect("chaos sweep must complete");
    assert_eq!(served, expected, "chaos must be invisible in the streamed results");
    eprintln!("smoke: chaos shard ok ({} cells)", served.len());

    // Shard 4: miss attribution. One CPU cell and one coherence cell with
    // the opt-in attrib flag — the results must stay bit-identical to the
    // plain path (the digest is a side-channel) and the server must fold
    // the per-cell digests into its `attrib.*` metrics.
    let cells: Vec<AnyCell> = vec![
        AnyCell::Cpu(cpu_cells(&["ora"], Scale::Test, &figure2_variants()).remove(0)),
        AnyCell::Coh(CohCell {
            app: "migratory",
            procs: 4,
            ops_per_proc: 800,
            seed: 5,
            scheme: imo_coherence::Scheme::Informing,
        }),
    ];
    let expected: Vec<CellResult> = cells.iter().map(|c| run_any_cell_plain(c, None)).collect();
    let req = SweepRequest {
        name: "smoke-attrib".to_string(),
        preempt_every: None,
        chaos: None,
        policy: None,
        attrib: true,
        cells,
    };
    let served = try_run_cells_via_server(addr, &req).expect("attrib sweep must complete");
    assert_eq!(served, expected, "attribution must be invisible in the streamed results");
    eprintln!("smoke: attrib shard ok ({} cells)", served.len());

    let mut stream = TcpStream::connect(addr).expect("status connect");
    write!(stream, "GET /status HTTP/1.0\r\n\r\n").expect("status request");
    stream.flush().expect("status flush");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("status response");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "status must answer 200: {response}");
    assert!(response.contains("cells_completed"), "status must expose metrics: {response}");
    assert!(response.contains("worker_states"), "status must expose worker states: {response}");
    assert!(response.contains("redispatches"), "chaos must have exercised recovery: {response}");
    assert!(
        response.contains("attrib.cells_profiled"),
        "status must expose attribution counters: {response}"
    );
    assert!(
        response.contains("attrib.reconciled"),
        "profiled cells must have reconciled exactly: {response}"
    );
    assert!(
        response.contains("attrib_profiles"),
        "status must surface recent miss profiles: {response}"
    );
    eprintln!("smoke: /status ok");
}
