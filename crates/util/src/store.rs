//! Content-addressed on-disk key→value store: the persistent L2 behind the
//! sweep memo cache.
//!
//! The in-process memoizer (`imo-bench::sweep`) dedups cells *within* one
//! run; this store dedups them *across* runs. Every entry lives under
//!
//! ```text
//! <dir>/v<SCHEMA_VERSION>/<code fingerprint, 16 hex>/<fnv1a(key), 16 hex>.json
//! ```
//!
//! so the full address of a value is `(store schema version, code
//! fingerprint, key)`. The *code fingerprint* is supplied by the caller —
//! the bench crate bakes in a build-time digest of every simulator crate's
//! sources — so any simulator change moves the whole store to a fresh
//! directory (wholesale invalidation), while a bench-matrix edit only
//! changes the keys of the touched cells (per-cell invalidation). Stale
//! fingerprint directories are garbage, reclaimed by `scripts/store_gc.sh`.
//!
//! ## Safety model: a cache miss is always an option
//!
//! The store can make a run faster; it can never make a run wrong:
//!
//! * **writes are atomic** — a value is rendered to a temp file in the same
//!   directory and `rename`d over the final path, so a reader sees either
//!   no entry or a complete one, never a torn write;
//! * **reads are verified** — every entry embeds its schema version, code
//!   fingerprint, the *full* key string (the file name is only a 64-bit
//!   hash of it), and an FNV-1a integrity hash of the payload's compact
//!   rendering. Any mismatch — torn file, flipped byte, wrong version,
//!   hash-colliding key — makes [`Store::get`] return `None` (and, in
//!   read-write mode, delete the bad entry so it is repaired by the
//!   recompute that follows);
//! * **failures are silent** — an unwritable directory or a full disk only
//!   bumps an error counter; the caller recomputes as if the store were
//!   cold.
//!
//! The payloads themselves are opaque [`Json`] values; callers bring their
//! own typed codecs (the bench crate reuses its serve-layer wire codecs,
//! which encode every counter bit-exactly).

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::hash::fnv1a_64;
use crate::json::{parse, Json};

/// The `store` field every entry file carries.
pub const STORE_KIND: &str = "imo.store";

/// On-disk schema version; bump on any incompatible entry-format change.
/// Old versions become unreadable garbage under `v<old>/`, never misreads.
pub const SCHEMA_VERSION: u32 = 1;

/// Whether a [`Store`] may write (and repair) entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreMode {
    /// Serve hits, never touch the filesystem beyond reads. Shared
    /// consumers (job-server workers) use this so only the coordinating
    /// process mutates the store.
    ReadOnly,
    /// Serve hits, persist new values, delete entries that fail
    /// verification so the following recompute repairs them.
    ReadWrite,
}

/// A point-in-time snapshot of a store's counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// `get` calls.
    pub probes: u64,
    /// Probes served with a fully verified payload.
    pub hits: u64,
    /// Probes with no entry on disk.
    pub misses: u64,
    /// Entries that existed but failed verification (torn/corrupt/wrong
    /// version/wrong fingerprint/key mismatch) or a caller's typed decode,
    /// and fell back to recompute.
    pub rejected: u64,
    /// Values persisted.
    pub writes: u64,
    /// Failed write attempts (the value was simply not persisted).
    pub write_errors: u64,
}

/// A content-addressed on-disk cache rooted at
/// `<dir>/v<SCHEMA_VERSION>/<fingerprint>/`.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    mode: StoreMode,
    fingerprint: u64,
    probes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
    writes: AtomicU64,
    write_errors: AtomicU64,
}

/// Temp-file sequence shared by every [`Store`] in the process: two handles
/// on the same directory (tests, a library embedder) must not generate
/// colliding temp names, and pid disambiguates across processes.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl Store {
    /// Opens (lazily — no filesystem access until the first read or write)
    /// the store for `fingerprint` under `dir`.
    #[must_use]
    pub fn open(dir: &Path, mode: StoreMode, fingerprint: u64) -> Store {
        let root = dir.join(format!("v{SCHEMA_VERSION}")).join(format!("{fingerprint:016x}"));
        Store {
            root,
            mode,
            fingerprint,
            probes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
        }
    }

    /// The store's mode.
    #[must_use]
    pub fn mode(&self) -> StoreMode {
        self.mode
    }

    /// The code fingerprint this store is addressed by.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The directory entries live in (`<dir>/v<SCHEMA_VERSION>/<fp>`).
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Where `key`'s entry lives. The file name is only a 64-bit hash of
    /// the key; the full key string inside the entry disambiguates
    /// collisions on read.
    #[must_use]
    pub fn entry_path(&self, key: &str) -> PathBuf {
        self.root.join(format!("{:016x}.json", fnv1a_64(key.as_bytes())))
    }

    /// Fetches and fully verifies `key`'s payload. Returns `None` — never a
    /// wrong payload — on a missing entry or any verification failure; in
    /// read-write mode a failing entry is deleted so the recompute that
    /// follows repairs it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<Json> {
        self.probes.fetch_add(1, Ordering::Relaxed);
        let path = self.entry_path(key);
        let Ok(text) = fs::read_to_string(&path) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        match self.verify(key, &text) {
            Some(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            None => {
                self.reject_path(&path);
                None
            }
        }
    }

    /// Checks every field of an entry: kind, schema version, fingerprint,
    /// full key equality, and the payload integrity hash.
    fn verify(&self, key: &str, text: &str) -> Option<Json> {
        let doc = parse(text).ok()?;
        if doc.get("store").and_then(Json::as_str) != Some(STORE_KIND) {
            return None;
        }
        if doc.get("version").and_then(Json::as_f64) != Some(f64::from(SCHEMA_VERSION)) {
            return None;
        }
        let fp = doc.get("fingerprint").and_then(Json::as_str)?;
        if u64::from_str_radix(fp, 16).ok()? != self.fingerprint {
            return None;
        }
        if doc.get("key").and_then(Json::as_str) != Some(key) {
            return None;
        }
        let integrity = doc.get("integrity").and_then(Json::as_str)?;
        let payload = doc.get("payload")?;
        if u64::from_str_radix(integrity, 16).ok()? != fnv1a_64(payload.compact().as_bytes()) {
            return None;
        }
        Some(payload.clone())
    }

    /// Records that `key`'s entry verified at the store layer but failed
    /// the caller's typed decode — counted (and repaired) like any other
    /// rejection.
    pub fn reject(&self, key: &str) {
        self.reject_path(&self.entry_path(key));
    }

    fn reject_path(&self, path: &Path) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        if self.mode == StoreMode::ReadWrite {
            let _ = fs::remove_file(path);
        }
    }

    /// Persists `payload` under `key` atomically (temp file + rename).
    /// Returns whether a value was written; read-only stores and
    /// filesystem errors return `false` without disturbing the run.
    pub fn put(&self, key: &str, payload: &Json) -> bool {
        if self.mode != StoreMode::ReadWrite {
            return false;
        }
        let doc = Json::obj([
            ("store", Json::from(STORE_KIND)),
            ("version", Json::from(u64::from(SCHEMA_VERSION))),
            ("fingerprint", Json::Str(format!("{:016x}", self.fingerprint))),
            ("key", Json::from(key)),
            ("integrity", Json::Str(format!("{:016x}", fnv1a_64(payload.compact().as_bytes())))),
            ("payload", payload.clone()),
        ]);
        match self.write_atomic(key, &doc) {
            Ok(()) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    fn write_atomic(&self, key: &str, doc: &Json) -> std::io::Result<()> {
        fs::create_dir_all(&self.root)?;
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = self.root.join(format!(
            ".tmp.{}.{}.{:016x}",
            std::process::id(),
            seq,
            fnv1a_64(key.as_bytes())
        ));
        fs::write(&tmp, doc.pretty())?;
        fs::rename(&tmp, self.entry_path(key)).inspect_err(|_| {
            let _ = fs::remove_file(&tmp);
        })
    }

    /// A snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            probes: self.probes.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    /// A fresh private store directory, removed on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
            let p = std::env::temp_dir()
                .join(format!("imo-store-test-{}-{seq}-{tag}", std::process::id()));
            let _ = fs::remove_dir_all(&p);
            TempDir(p)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn payload() -> Json {
        Json::obj([("cycles", Json::Str("1a2b".into())), ("ok", Json::Bool(true))])
    }

    #[test]
    fn round_trip_and_layout() {
        let dir = TempDir::new("roundtrip");
        let store = Store::open(&dir.0, StoreMode::ReadWrite, 0xfeed);
        assert!(store.get("k1").is_none(), "cold store misses");
        assert!(store.put("k1", &payload()));
        assert_eq!(store.get("k1"), Some(payload()));
        let path = store.entry_path("k1");
        assert!(path.starts_with(dir.0.join(format!("v{SCHEMA_VERSION}")).join("000000000000feed")));
        assert!(path.exists());
        let s = store.stats();
        assert_eq!((s.probes, s.hits, s.misses, s.writes), (2, 1, 1, 1));
        assert_eq!((s.rejected, s.write_errors), (0, 0));
    }

    #[test]
    fn no_temp_files_survive_a_put() {
        let dir = TempDir::new("tmpfiles");
        let store = Store::open(&dir.0, StoreMode::ReadWrite, 1);
        assert!(store.put("k", &payload()));
        let leftovers: Vec<_> = fs::read_dir(store.root())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
    }

    #[test]
    fn read_only_store_never_writes_or_repairs() {
        let dir = TempDir::new("readonly");
        let rw = Store::open(&dir.0, StoreMode::ReadWrite, 2);
        assert!(rw.put("k", &payload()));
        let ro = Store::open(&dir.0, StoreMode::ReadOnly, 2);
        assert_eq!(ro.get("k"), Some(payload()));
        assert!(!ro.put("k2", &payload()));
        assert!(ro.get("k2").is_none());
        // Corrupt the entry: the read-only store rejects it but leaves the
        // file in place (repair is the writer's job).
        fs::write(rw.entry_path("k"), "garbage").unwrap();
        assert!(ro.get("k").is_none());
        assert!(rw.entry_path("k").exists());
        assert_eq!(ro.stats().rejected, 1);
    }

    #[test]
    fn corrupt_entries_are_rejected_and_repaired() {
        let dir = TempDir::new("corrupt");
        let store = Store::open(&dir.0, StoreMode::ReadWrite, 3);
        assert!(store.put("k", &payload()));
        let path = store.entry_path("k");
        let text = fs::read_to_string(&path).unwrap();
        // Truncate mid-file: unparseable → rejected and deleted.
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert_eq!(store.get("k"), None);
        assert!(!path.exists(), "rw store repairs by deleting the bad entry");
        // Flip a payload byte (keeps it parseable): integrity mismatch.
        assert!(store.put("k", &payload()));
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replace("1a2b", "2a2b")).unwrap();
        assert_eq!(store.get("k"), None);
        assert_eq!(store.stats().rejected, 2);
        // A repaired put serves again.
        assert!(store.put("k", &payload()));
        assert_eq!(store.get("k"), Some(payload()));
    }

    #[test]
    fn wrong_version_and_wrong_fingerprint_are_rejected() {
        let dir = TempDir::new("version");
        let store = Store::open(&dir.0, StoreMode::ReadWrite, 4);
        assert!(store.put("k", &payload()));
        let path = store.entry_path("k");
        let text = fs::read_to_string(&path).unwrap();
        fs::write(
            &path,
            text.replace(&format!("\"version\": {SCHEMA_VERSION}"), "\"version\": 99"),
        )
        .unwrap();
        assert_eq!(store.get("k"), None);
        // An entry written under another fingerprint, copied into this
        // store's directory, still fails the embedded-fingerprint check.
        let other = Store::open(&dir.0, StoreMode::ReadWrite, 5);
        assert!(other.put("k", &payload()));
        fs::copy(other.entry_path("k"), store.entry_path("k")).unwrap();
        assert_eq!(store.get("k"), None);
        assert_eq!(store.stats().rejected, 2);
    }

    #[test]
    fn colliding_file_never_serves_the_wrong_key() {
        let dir = TempDir::new("collide");
        let store = Store::open(&dir.0, StoreMode::ReadWrite, 6);
        assert!(store.put("key-a", &payload()));
        // Force a "collision": key-b's slot holds key-a's entry.
        fs::copy(store.entry_path("key-a"), store.entry_path("key-b")).unwrap();
        assert_eq!(store.get("key-b"), None, "full-key check catches the mismatch");
        assert_eq!(store.get("key-a"), Some(payload()));
    }

    #[test]
    fn unwritable_dir_only_counts_an_error() {
        let dir = TempDir::new("unwritable");
        // A file where the cache directory should be: create_dir_all fails.
        fs::create_dir_all(&dir.0).unwrap();
        let blocker = dir.0.join(format!("v{SCHEMA_VERSION}"));
        fs::write(&blocker, "not a directory").unwrap();
        let store = Store::open(&dir.0, StoreMode::ReadWrite, 7);
        assert!(!store.put("k", &payload()));
        assert_eq!(store.stats().write_errors, 1);
        assert!(store.get("k").is_none());
    }
}
