//! Shared result accounting: the graduation-slot breakdown used by both
//! cycle-level CPU models, and an ordered counter [`Report`] every simulator
//! result can render to — as an aligned text table or as JSON for the
//! `BENCH_*.json` baselines.

use crate::json::Json;

/// Graduation-slot accounting, following the paper's Figure 2 methodology.
///
/// The machine offers `issue_width × cycles` graduation slots. Each cycle,
/// slots that do not graduate an instruction are attributed to **cache
/// stall** if the oldest in-flight instruction is blocked on a primary
/// data-cache miss, otherwise to **other stall** (data dependences, fetch
/// bubbles from mispredictions and informing traps, structural hazards,
/// …). As the paper notes, the cache-stall section is a first-order
/// approximation: miss delays also exacerbate subsequent dependence stalls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotBreakdown {
    /// Slots in which an instruction graduated ("busy").
    pub busy: u64,
    /// Lost slots immediately caused by the oldest instruction suffering a
    /// data-cache miss.
    pub cache_stall: u64,
    /// All other lost slots.
    pub other_stall: u64,
}

impl SlotBreakdown {
    /// Total slots.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.busy + self.cache_stall + self.other_stall
    }

    /// Fractions `(busy, cache, other)` of the total.
    #[must_use]
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total() as f64;
        if t == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (self.busy as f64 / t, self.cache_stall as f64 / t, self.other_stall as f64 / t)
    }

    /// The breakdown as an ordered JSON object (raw slot counts).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("busy", Json::from(self.busy)),
            ("cache_stall", Json::from(self.cache_stall)),
            ("other_stall", Json::from(self.other_stall)),
        ])
    }
}

/// One metric value in a [`Report`].
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// An exact counter.
    U64(u64),
    /// A derived rate or normalized value.
    F64(f64),
    /// A label (scheme name, workload, machine, …).
    Str(String),
}

impl Metric {
    fn to_json(&self) -> Json {
        match self {
            Metric::U64(v) => Json::from(*v),
            Metric::F64(v) => Json::from(*v),
            Metric::Str(v) => Json::Str(v.clone()),
        }
    }

    fn render(&self) -> String {
        match self {
            Metric::U64(v) => v.to_string(),
            Metric::F64(v) => format!("{v:.3}"),
            Metric::Str(v) => v.clone(),
        }
    }
}

impl From<u64> for Metric {
    fn from(v: u64) -> Metric {
        Metric::U64(v)
    }
}

impl From<f64> for Metric {
    fn from(v: f64) -> Metric {
        Metric::F64(v)
    }
}

impl From<&str> for Metric {
    fn from(v: &str) -> Metric {
        Metric::Str(v.to_string())
    }
}

impl From<String> for Metric {
    fn from(v: String) -> Metric {
        Metric::Str(v)
    }
}

/// An ordered set of named metrics describing one simulation run — the
/// common currency between `cpu::RunResult`, `coherence::SimResult` and the
/// bench reporting layer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    metrics: Vec<(String, Metric)>,
}

impl Report {
    /// An empty report.
    #[must_use]
    pub fn new() -> Report {
        Report::default()
    }

    /// Appends a metric, replacing any existing one with the same key.
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<Metric>) -> &mut Report {
        let key = key.into();
        let value = value.into();
        if let Some(slot) = self.metrics.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.metrics.push((key, value));
        }
        self
    }

    /// Looks up a metric by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Metric> {
        self.metrics.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The metrics in insertion order.
    #[must_use]
    pub fn metrics(&self) -> &[(String, Metric)] {
        &self.metrics
    }

    /// The report as an ordered JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(self.metrics.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }

    /// One `key=value` line per metric (debug/console rendering).
    #[must_use]
    pub fn render(&self) -> String {
        self.metrics
            .iter()
            .map(|(k, v)| format!("{k}={}", v.render()))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Anything that can summarize itself as a [`Report`]. Implemented by the
/// CPU models' `RunResult` and the coherence simulator's `SimResult`; the
/// bench layer serializes these into `BENCH_*.json`.
pub trait Summarize {
    /// The run's metrics, in a stable order.
    fn report(&self) -> Report;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_fractions_sum_to_one() {
        let s = SlotBreakdown { busy: 50, cache_stall: 30, other_stall: 20 };
        let (b, c, o) = s.fractions();
        assert!((b + c + o - 1.0).abs() < 1e-12);
        assert_eq!(s.total(), 100);
    }

    #[test]
    fn empty_breakdown() {
        let s = SlotBreakdown::default();
        assert_eq!(s.fractions(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn slot_json_has_all_three_categories() {
        let s = SlotBreakdown { busy: 1, cache_stall: 2, other_stall: 3 };
        let j = s.to_json();
        assert_eq!(j.get("busy").unwrap().as_f64(), Some(1.0));
        assert_eq!(j.get("cache_stall").unwrap().as_f64(), Some(2.0));
        assert_eq!(j.get("other_stall").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn report_preserves_order_and_replaces() {
        let mut r = Report::new();
        r.push("cycles", 100u64).push("ipc", 2.5).push("cycles", 200u64);
        assert_eq!(r.metrics().len(), 2);
        assert_eq!(r.metrics()[0].0, "cycles");
        assert_eq!(r.get("cycles"), Some(&Metric::U64(200)));
        assert!(r.render().starts_with("cycles=200"));
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = Report::new();
        r.push("app", "stencil").push("ops", 64_000u64).push("cpo", 31.5);
        let j = r.to_json();
        let reparsed = crate::json::parse(&j.pretty()).unwrap();
        assert_eq!(reparsed, j);
        assert_eq!(reparsed.get("app").unwrap().as_str(), Some("stencil"));
    }
}
