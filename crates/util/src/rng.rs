//! Seeded pseudo-random number generation with no external dependencies.
//!
//! [`SmallRng`] is an xoshiro256** generator seeded through splitmix64 —
//! the same construction the `rand` crate's `SmallRng` used on 64-bit
//! targets — exposing the small API surface the workload generators and the
//! property-test harness actually need (`seed_from_u64`, `gen_range`,
//! `gen_bool`). The streams are fixed for all time: workload traces and
//! property-test cases derived from a seed must never change between
//! releases, or recorded `BENCH_*.json` baselines and reproducing seeds
//! stop being comparable.

use std::ops::Range;

/// One step of the splitmix64 sequence; also usable standalone to derive
/// independent seeds from a counter.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixes `seed` and `stream` into a decorrelated 64-bit value (two
/// splitmix64 steps). Used to give every property-test case and every
/// per-processor trace its own independent stream.
#[inline]
#[must_use]
pub fn mix64(seed: u64, stream: u64) -> u64 {
    let mut s = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let a = splitmix64(&mut s);
    splitmix64(&mut s) ^ a.rotate_left(32)
}

/// A small, fast, seedable PRNG (xoshiro256**).
///
/// Not cryptographically secure; statistically solid for simulation
/// workloads. Deterministic across platforms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator whose state is expanded from `seed` via
    /// splitmix64 (never all-zero).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        let mut sm = seed;
        SmallRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Next raw 32-bit output (upper half of [`Self::next_u64`]).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)` by unbiased rejection sampling
    /// (Lemire's multiply-shift with a single widening multiply).
    #[inline]
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bounded_u64 requires a non-zero bound");
        let reject_below = bound.wrapping_neg() % bound;
        loop {
            let m = u128::from(self.next_u64()) * u128::from(bound);
            // Accept unless the low word falls in the biased zone.
            if m as u64 >= reject_below {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value from a half-open range, like `rand`'s `gen_range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 bits of mantissa: exact enough for any simulation use.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Integer types [`SmallRng::gen_range`] can sample uniformly.
pub trait UniformInt: Copy {
    /// Draws a uniform sample from the half-open `range`.
    fn sample(rng: &mut SmallRng, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample(rng: &mut SmallRng, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end - range.start) as u64;
                range.start + rng.bounded_u64(span) as $t
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample(rng: &mut SmallRng, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as $u).wrapping_sub(range.start as $u) as u64;
                range.start.wrapping_add(rng.bounded_u64(span) as $t)
            }
        }
    )*};
}

impl_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fixed_stream_never_changes() {
        // Golden values: changing them invalidates every recorded trace and
        // reproducing seed. Do not update without bumping workload seeds.
        let mut r = SmallRng::seed_from_u64(0x1996);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let expect = [
            17_727_078_727_179_929_608,
            16_712_386_671_181_463_150,
            4_118_015_354_935_653_464,
            3_386_756_349_920_856_373,
        ];
        assert_eq!(got, expect, "xoshiro/splitmix stream drifted");
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(3u64..13);
            assert!((3..13).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range appear");
    }

    #[test]
    fn signed_ranges_cover_negatives() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut neg = 0;
        for _ in 0..1000 {
            let v = r.gen_range(-100i64..100);
            assert!((-100..100).contains(&v));
            if v < 0 {
                neg += 1;
            }
        }
        assert!(neg > 300, "roughly half the draws are negative: {neg}");
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.bounded_u64(8) as usize] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    fn gen_bool_extremes_and_middle() {
        let mut r = SmallRng::seed_from_u64(13);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
        let heads = (0..4000).filter(|_| r.gen_bool(0.25)).count();
        assert!((800..1200).contains(&heads), "{heads}");
    }

    #[test]
    fn mix64_streams_are_independent() {
        let a = mix64(5, 0);
        let b = mix64(5, 1);
        let c = mix64(6, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, mix64(5, 0));
    }
}
