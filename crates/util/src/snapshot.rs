//! Versioned snapshot (checkpoint) encoding on top of the in-tree JSON.
//!
//! Every piece of live simulation state that can be paused and resumed —
//! architectural registers, cache arrays, MSHR files, scheduler queues, the
//! pipeline structures of both CPU models — implements [`Snapshot`]: a typed
//! encode/decode pair over [`Json`] plus a versioned wire envelope
//! (`{"snapshot": KIND, "version": N, "data": …}`) that is checked on load,
//! so a checkpoint written by one build is either restored exactly or
//! rejected with a typed [`SnapshotError`], never silently misread.
//!
//! ## Encoding conventions
//!
//! JSON numbers are `f64`, so integers above 2^53 and exact float bit
//! patterns cannot ride on [`Json::Num`]. The helpers here fix one wire
//! discipline for all implementors:
//!
//! * `u64` → lowercase hex **string** (`"1a2b"`), exact for all 64 bits;
//! * `f64` → 16-hex-digit **bit pattern** string, exact for NaN payloads
//!   and signed zeros alike;
//! * bulk `u64` arrays (register files, cache tag arrays, memory pages) →
//!   one string of concatenated fixed-width 16-hex-digit groups;
//! * maps are encoded in sorted key order so the same state always renders
//!   byte-identical wire text.

use std::fmt;

use crate::json::Json;

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The wire envelope names a different state kind.
    Kind {
        /// The kind the decoder expected.
        expected: &'static str,
        /// The kind found in the envelope.
        found: String,
    },
    /// The wire envelope carries an incompatible format version.
    Version {
        /// The snapshot kind being decoded.
        kind: &'static str,
        /// The version the decoder implements.
        expected: u32,
        /// The version found in the envelope.
        found: u64,
    },
    /// A required field is absent.
    Missing(&'static str),
    /// A field is present but malformed (wrong JSON type, bad hex, value
    /// out of range, …).
    Bad(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Kind { expected, found } => {
                write!(f, "snapshot kind mismatch: expected `{expected}`, found `{found}`")
            }
            SnapshotError::Version { kind, expected, found } => {
                write!(f, "snapshot `{kind}` version mismatch: expected {expected}, found {found}")
            }
            SnapshotError::Missing(k) => write!(f, "snapshot field `{k}` missing"),
            SnapshotError::Bad(k) => write!(f, "snapshot field `{k}` malformed"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// State that can be serialized to a versioned JSON wire format and
/// restored bit-exactly.
///
/// Implementors provide [`Snapshot::encode`]/[`Snapshot::decode`] over the
/// *body*; the provided [`Snapshot::to_wire`]/[`Snapshot::from_wire`] wrap
/// the body in the `{"snapshot", "version", "data"}` envelope and check
/// kind and version on load.
pub trait Snapshot: Sized {
    /// Stable name of this state kind on the wire.
    const KIND: &'static str;
    /// Wire-format version; bump on any incompatible encoding change.
    const VERSION: u32;

    /// Encodes the state body (without the envelope).
    fn encode(&self) -> Json;

    /// Decodes a state body produced by [`Snapshot::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] if a field is missing or malformed.
    fn decode(data: &Json) -> Result<Self, SnapshotError>;

    /// The state wrapped in the versioned wire envelope.
    fn to_wire(&self) -> Json {
        Json::obj([
            ("snapshot", Json::from(Self::KIND)),
            ("version", Json::from(u64::from(Self::VERSION))),
            ("data", self.encode()),
        ])
    }

    /// Unwraps and checks the envelope, then decodes the body.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on a kind or version mismatch, or if the
    /// body fails to decode.
    fn from_wire(wire: &Json) -> Result<Self, SnapshotError> {
        let kind = wire
            .get("snapshot")
            .and_then(Json::as_str)
            .ok_or(SnapshotError::Missing("snapshot"))?;
        if kind != Self::KIND {
            return Err(SnapshotError::Kind { expected: Self::KIND, found: kind.to_string() });
        }
        let version =
            wire.get("version").and_then(Json::as_f64).ok_or(SnapshotError::Missing("version"))?;
        if version != f64::from(Self::VERSION) {
            return Err(SnapshotError::Version {
                kind: Self::KIND,
                expected: Self::VERSION,
                found: version as u64,
            });
        }
        Self::decode(wire.get("data").ok_or(SnapshotError::Missing("data"))?)
    }
}

/// A `u64` as its exact hex-string encoding.
#[must_use]
pub fn u64_json(v: u64) -> Json {
    Json::Str(format!("{v:x}"))
}

/// An `f64` as its exact 16-hex-digit bit pattern.
#[must_use]
pub fn f64_json(v: f64) -> Json {
    Json::Str(format!("{:016x}", v.to_bits()))
}

/// A `u64` slice as one string of fixed-width 16-hex-digit groups.
#[must_use]
pub fn u64s_json(vs: &[u64]) -> Json {
    let mut s = String::with_capacity(vs.len() * 16);
    for v in vs {
        use fmt::Write as _;
        let _ = write!(s, "{v:016x}");
    }
    Json::Str(s)
}

/// Looks up a required field of an object body.
///
/// # Errors
///
/// Returns [`SnapshotError::Missing`] if the key is absent.
pub fn field<'a>(data: &'a Json, key: &'static str) -> Result<&'a Json, SnapshotError> {
    data.get(key).ok_or(SnapshotError::Missing(key))
}

/// Decodes a required hex-string `u64` field.
///
/// # Errors
///
/// Returns [`SnapshotError`] if the field is absent or not valid hex.
pub fn get_u64(data: &Json, key: &'static str) -> Result<u64, SnapshotError> {
    let s = field(data, key)?.as_str().ok_or(SnapshotError::Bad(key))?;
    u64::from_str_radix(s, 16).map_err(|_| SnapshotError::Bad(key))
}

/// Decodes a required hex-string `u32` field.
///
/// # Errors
///
/// Returns [`SnapshotError`] if the field is absent, not valid hex, or out
/// of range.
pub fn get_u32(data: &Json, key: &'static str) -> Result<u32, SnapshotError> {
    u32::try_from(get_u64(data, key)?).map_err(|_| SnapshotError::Bad(key))
}

/// Decodes a required hex-string `usize` field.
///
/// # Errors
///
/// Returns [`SnapshotError`] if the field is absent, not valid hex, or out
/// of range.
pub fn get_usize(data: &Json, key: &'static str) -> Result<usize, SnapshotError> {
    usize::try_from(get_u64(data, key)?).map_err(|_| SnapshotError::Bad(key))
}

/// Decodes a required bit-pattern `f64` field written by [`f64_json`].
///
/// # Errors
///
/// Returns [`SnapshotError`] if the field is absent or not a 64-bit hex
/// pattern.
pub fn get_f64(data: &Json, key: &'static str) -> Result<f64, SnapshotError> {
    Ok(f64::from_bits(get_u64(data, key)?))
}

/// Decodes a required boolean field.
///
/// # Errors
///
/// Returns [`SnapshotError`] if the field is absent or not a JSON boolean.
pub fn get_bool(data: &Json, key: &'static str) -> Result<bool, SnapshotError> {
    match field(data, key)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(SnapshotError::Bad(key)),
    }
}

/// Decodes a required string field.
///
/// # Errors
///
/// Returns [`SnapshotError`] if the field is absent or not a string.
pub fn get_str<'a>(data: &'a Json, key: &'static str) -> Result<&'a str, SnapshotError> {
    field(data, key)?.as_str().ok_or(SnapshotError::Bad(key))
}

/// Decodes an optional hex-string `u64` field (`null` ⇒ `None`).
///
/// # Errors
///
/// Returns [`SnapshotError`] if the field is absent or malformed.
pub fn get_opt_u64(data: &Json, key: &'static str) -> Result<Option<u64>, SnapshotError> {
    match field(data, key)? {
        Json::Null => Ok(None),
        Json::Str(s) => u64::from_str_radix(s, 16).map(Some).map_err(|_| SnapshotError::Bad(key)),
        _ => Err(SnapshotError::Bad(key)),
    }
}

/// An optional `u64` as `null` or its hex string.
#[must_use]
pub fn opt_u64_json(v: Option<u64>) -> Json {
    v.map_or(Json::Null, u64_json)
}

/// Decodes a fixed-width hex-group string written by [`u64s_json`].
///
/// # Errors
///
/// Returns [`SnapshotError`] if the field is absent, its length is not a
/// multiple of 16, or any group is not valid hex.
pub fn get_u64s(data: &Json, key: &'static str) -> Result<Vec<u64>, SnapshotError> {
    let s = field(data, key)?.as_str().ok_or(SnapshotError::Bad(key))?;
    if s.len() % 16 != 0 || !s.is_ascii() {
        return Err(SnapshotError::Bad(key));
    }
    s.as_bytes()
        .chunks(16)
        .map(|c| {
            std::str::from_utf8(c)
                .ok()
                .and_then(|t| u64::from_str_radix(t, 16).ok())
                .ok_or(SnapshotError::Bad(key))
        })
        .collect()
}

/// Decodes a required array field, mapping each element.
///
/// # Errors
///
/// Returns [`SnapshotError`] if the field is absent, not an array, or any
/// element fails to decode.
pub fn get_arr<T>(
    data: &Json,
    key: &'static str,
    f: impl Fn(&Json) -> Result<T, SnapshotError>,
) -> Result<Vec<T>, SnapshotError> {
    field(data, key)?.as_arr().ok_or(SnapshotError::Bad(key))?.iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Demo {
        a: u64,
        b: f64,
        c: Vec<u64>,
        d: Option<u64>,
    }

    impl Snapshot for Demo {
        const KIND: &'static str = "demo";
        const VERSION: u32 = 3;

        fn encode(&self) -> Json {
            Json::obj([
                ("a", u64_json(self.a)),
                ("b", f64_json(self.b)),
                ("c", u64s_json(&self.c)),
                ("d", opt_u64_json(self.d)),
            ])
        }

        fn decode(data: &Json) -> Result<Self, SnapshotError> {
            Ok(Demo {
                a: get_u64(data, "a")?,
                b: get_f64(data, "b")?,
                c: get_u64s(data, "c")?,
                d: get_opt_u64(data, "d")?,
            })
        }
    }

    #[test]
    fn wire_round_trip_is_exact() {
        let d = Demo { a: u64::MAX, b: -0.0, c: vec![0, 1, u64::MAX, 0xdead_beef], d: Some(7) };
        let text = d.to_wire().pretty();
        let back = Demo::from_wire(&crate::json::parse(&text).expect("parses")).expect("decodes");
        assert_eq!(back, d);
        assert_eq!(back.b.to_bits(), (-0.0f64).to_bits(), "signed zero preserved");
    }

    #[test]
    fn nan_payload_round_trips() {
        let d = Demo { a: 0, b: f64::from_bits(0x7ff8_0000_0000_1234), c: vec![], d: None };
        let back = Demo::from_wire(&d.to_wire()).expect("decodes");
        assert_eq!(back.b.to_bits(), 0x7ff8_0000_0000_1234);
        assert_eq!(back.d, None);
    }

    #[test]
    fn envelope_checks_kind_and_version() {
        let d = Demo { a: 1, b: 2.0, c: vec![3], d: None };
        let mut wire = d.to_wire();
        if let Json::Obj(pairs) = &mut wire {
            pairs[0].1 = Json::from("other");
        }
        assert!(matches!(Demo::from_wire(&wire), Err(SnapshotError::Kind { .. })));

        let mut wire = d.to_wire();
        if let Json::Obj(pairs) = &mut wire {
            pairs[1].1 = Json::from(99u64);
        }
        assert!(matches!(
            Demo::from_wire(&wire),
            Err(SnapshotError::Version { expected: 3, found: 99, .. })
        ));
    }

    #[test]
    fn missing_and_malformed_fields_are_typed() {
        let empty = Json::Obj(vec![]);
        assert_eq!(Demo::decode(&empty), Err(SnapshotError::Missing("a")));
        let bad = Json::obj([("a", Json::from("zz"))]);
        assert_eq!(get_u64(&bad, "a"), Err(SnapshotError::Bad("a")));
        let bad_len = Json::obj([("c", Json::from("abc"))]);
        assert_eq!(get_u64s(&bad_len, "c"), Err(SnapshotError::Bad("c")));
    }

    #[test]
    fn helper_shapes() {
        assert_eq!(u64_json(255), Json::Str("ff".to_string()));
        assert_eq!(u64s_json(&[1, 2]).as_str().map(str::len), Some(32));
        assert_eq!(opt_u64_json(None), Json::Null);
        let obj = Json::obj([("x", Json::Bool(true)), ("s", Json::from("hi"))]);
        assert_eq!(get_bool(&obj, "x"), Ok(true));
        assert_eq!(get_str(&obj, "s"), Ok("hi"));
        let arr = Json::obj([("v", Json::arr([u64_json(4), u64_json(5)]))]);
        assert_eq!(get_arr(&arr, "v", |j| Ok(j.clone())).map(|v| v.len()), Ok(2));
    }
}
