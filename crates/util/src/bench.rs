//! A wall-clock micro-benchmark runner.
//!
//! Replaces `criterion` for this workspace's substrate benches: each
//! benchmark function is calibrated to a per-sample batch size, warmed up,
//! then timed for a fixed number of batches; the reported figure is the
//! median ns/iteration (robust to scheduler noise, no statistics machinery
//! needed). Results render as an aligned text table and serialize to JSON
//! for the `BENCH_*.json` baselines.
//!
//! Environment overrides for CI speed: `IMO_BENCH_SAMPLES` (batches per
//! benchmark) and `IMO_BENCH_SAMPLE_MS` (target batch duration).

use std::hint::black_box;
use std::time::{Duration, Instant};

use crate::json::Json;

/// Timing of one benchmark function.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark id, e.g. `cache/probe_hit`.
    pub id: String,
    /// Median nanoseconds per iteration across samples.
    pub median_ns: f64,
    /// Fastest sample (ns/iter).
    pub min_ns: f64,
    /// Slowest sample (ns/iter).
    pub max_ns: f64,
    /// Iterations per timed batch (the calibration outcome).
    pub iters_per_sample: u64,
    /// Per-sample ns/iter, in measurement order.
    pub samples: Vec<f64>,
}

impl BenchResult {
    /// The result as an ordered JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::from(self.id.as_str())),
            ("median_ns", Json::from(round3(self.median_ns))),
            ("min_ns", Json::from(round3(self.min_ns))),
            ("max_ns", Json::from(round3(self.max_ns))),
            ("iters_per_sample", Json::from(self.iters_per_sample)),
            ("samples", Json::arr(self.samples.iter().map(|&s| Json::from(round3(s))))),
        ])
    }
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

/// A named collection of benchmark functions, run as they are registered.
#[derive(Debug)]
pub struct Bench {
    name: String,
    warmup: Duration,
    target_sample: Duration,
    samples: u32,
    results: Vec<BenchResult>,
}

impl Bench {
    /// A runner for the bench target `name` (defaults: 20 ms warmup,
    /// 11 samples of ~10 ms each).
    #[must_use]
    pub fn new(name: impl Into<String>) -> Bench {
        let sample_ms = env_u64("IMO_BENCH_SAMPLE_MS").unwrap_or(10).max(1);
        let samples = env_u64("IMO_BENCH_SAMPLES").unwrap_or(11).clamp(3, 1000) as u32;
        Bench {
            name: name.into(),
            warmup: Duration::from_millis(20),
            target_sample: Duration::from_millis(sample_ms),
            samples,
            results: Vec::new(),
        }
    }

    /// Times `f` with the default sample count and records the result.
    /// The closure's return value is passed through [`black_box`] so its
    /// computation cannot be optimized away.
    pub fn bench<T>(&mut self, id: &str, f: impl FnMut() -> T) {
        let samples = self.samples;
        self.bench_sampled(id, samples, f);
    }

    /// Times `f` with an explicit sample count (for expensive end-to-end
    /// benchmarks where the default would take too long).
    pub fn bench_sampled<T>(&mut self, id: &str, samples: u32, mut f: impl FnMut() -> T) {
        // Calibrate: find how long one iteration takes, then batch so each
        // timed sample lasts ~target_sample.
        let once = Instant::now();
        black_box(f());
        let single = once.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target_sample.as_nanos() / single.as_nanos()).clamp(1, 10_000_000) as u64;

        let warmup_start = Instant::now();
        while warmup_start.elapsed() < self.warmup {
            for _ in 0..iters.min(1000) {
                black_box(f());
            }
        }

        let mut per_iter = Vec::with_capacity(samples as usize);
        for _ in 0..samples.max(1) {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }

        let mut sorted = per_iter.clone();
        sorted.sort_by(f64::total_cmp);
        self.results.push(BenchResult {
            id: id.to_string(),
            median_ns: sorted[sorted.len() / 2],
            min_ns: sorted[0],
            max_ns: sorted[sorted.len() - 1],
            iters_per_sample: iters,
            samples: per_iter,
        });
    }

    /// The results recorded so far.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// The whole run as JSON (`{bench, unit, results: [...]}`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("bench", Json::from(self.name.as_str())),
            ("unit", Json::from("ns_per_iter")),
            ("results", Json::arr(self.results.iter().map(BenchResult::to_json))),
        ])
    }

    /// An aligned text table of median/min/max per benchmark.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<40}  {:>12}  {:>12}  {:>12}\n",
            "benchmark", "median ns", "min ns", "max ns"
        );
        out.push_str(&"-".repeat(82));
        out.push('\n');
        for r in &self.results {
            out.push_str(&format!(
                "{:<40}  {:>12.1}  {:>12.1}  {:>12.1}\n",
                r.id, r.median_ns, r.min_ns, r.max_ns
            ));
        }
        out
    }
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_runner() -> Bench {
        let mut b = Bench::new("test");
        b.warmup = Duration::from_millis(1);
        b.target_sample = Duration::from_millis(1);
        b.samples = 5;
        b
    }

    #[test]
    fn measures_and_orders_results() {
        let mut b = fast_runner();
        b.bench("first", || std::hint::black_box(1u64 + 1));
        b.bench("second", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert_eq!(b.results().len(), 2);
        assert_eq!(b.results()[0].id, "first");
        for r in b.results() {
            assert!(r.median_ns > 0.0);
            assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
            assert_eq!(r.samples.len(), 5);
            assert!(r.iters_per_sample >= 1);
        }
    }

    #[test]
    fn json_round_trips_and_names_the_target() {
        let mut b = fast_runner();
        b.bench_sampled("only", 3, || 42u64);
        let j = b.to_json();
        assert_eq!(j.get("bench").unwrap().as_str(), Some("test"));
        let results = j.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].get("id").unwrap().as_str(), Some("only"));
        assert_eq!(crate::json::parse(&j.pretty()).unwrap(), j);
    }

    #[test]
    fn render_contains_every_id() {
        let mut b = fast_runner();
        b.bench_sampled("alpha/one", 3, || 1u32);
        b.bench_sampled("beta/two", 3, || 2u32);
        let table = b.render();
        assert!(table.contains("alpha/one"));
        assert!(table.contains("beta/two"));
        assert!(table.contains("median ns"));
    }
}
