//! A deterministic mini property-test harness.
//!
//! Replaces `proptest` for this workspace: each property runs a fixed
//! number of generated cases, every case is derived from a stable per-case
//! seed, and a failing case panics with the seed and a one-line reproduce
//! command. There is no shrinking — cases are kept small by construction
//! instead, which the ported suites already were.
//!
//! ```
//! use imo_util::check::Checker;
//! use imo_util::{ensure, ensure_eq};
//!
//! Checker::new("addition_commutes").cases(64).run(|g| {
//!     let (a, b) = (g.int(0u64..1000), g.int(0u64..1000));
//!     ensure_eq!(a + b, b + a, "a={} b={}", a, b);
//!     ensure!(a + b >= a);
//!     Ok(())
//! });
//! ```
//!
//! Environment overrides:
//!
//! * `IMO_CHECK_SEED=<u64>` — run exactly one case with that seed
//!   (the reproduce command printed on failure).
//! * `IMO_CHECK_CASES=<n>` — override the case count for every property.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::{mix64, SmallRng, UniformInt};

/// The outcome of one property case: `Err` carries the failure description.
pub type CheckResult = Result<(), String>;

/// The per-case value source handed to a property.
#[derive(Debug, Clone)]
pub struct Gen {
    rng: SmallRng,
    seed: u64,
}

impl Gen {
    /// A generator for one case, fully determined by `seed`.
    #[must_use]
    pub fn from_seed(seed: u64) -> Gen {
        Gen { rng: SmallRng::seed_from_u64(seed), seed }
    }

    /// The seed this case was derived from (what the failure report prints).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A uniform integer from a half-open range.
    pub fn int<T: UniformInt>(&mut self, range: Range<T>) -> T {
        self.rng.gen_range(range)
    }

    /// A fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// `true` with probability `p`.
    pub fn ratio(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<T>(&mut self, len: Range<usize>, mut element: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = if len.start + 1 == len.end { len.start } else { self.int(len) };
        (0..n).map(|_| element(self)).collect()
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.int(0..items.len())]
    }

    /// Direct access to the underlying PRNG for custom distributions.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// A configured property runner. Defaults match `proptest`: 256 cases.
#[derive(Debug, Clone)]
pub struct Checker {
    name: &'static str,
    cases: u32,
}

/// Workspace-wide base seed; per-property streams are split off it by name.
const BASE_SEED: u64 = 0x1996_0522_15CA_0001;

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

impl Checker {
    /// A runner for the property `name` with the default 256 cases.
    #[must_use]
    pub fn new(name: &'static str) -> Checker {
        Checker { name, cases: 256 }
    }

    /// Overrides the number of generated cases.
    #[must_use]
    pub fn cases(mut self, cases: u32) -> Checker {
        self.cases = cases;
        self
    }

    /// Runs the property over every case, panicking on the first failure
    /// with the case seed and a reproduce command.
    ///
    /// # Panics
    ///
    /// Panics if any case returns `Err` or panics itself.
    pub fn run(self, prop: impl Fn(&mut Gen) -> CheckResult) {
        if let Some(seed) = env_u64("IMO_CHECK_SEED") {
            let mut g = Gen::from_seed(seed);
            if let Err(msg) = prop(&mut g) {
                panic!("property `{}` failed under IMO_CHECK_SEED={seed}: {msg}", self.name);
            }
            return;
        }
        let cases = env_u64("IMO_CHECK_CASES").map_or(self.cases, |n| n as u32);
        let stream = fnv1a(self.name);
        for case in 0..cases {
            let seed = mix64(BASE_SEED ^ stream, u64::from(case));
            let mut g = Gen::from_seed(seed);
            let outcome = catch_unwind(AssertUnwindSafe(|| prop(&mut g)));
            let failure = match outcome {
                Ok(Ok(())) => continue,
                Ok(Err(msg)) => msg,
                Err(payload) => format!("panicked: {}", panic_message(payload.as_ref())),
            };
            panic!(
                "property `{name}` failed at case {case}/{cases}\n  \
                 seed: {seed}\n  \
                 reproduce with: IMO_CHECK_SEED={seed} cargo test {name}\n  \
                 error: {failure}",
                name = self.name,
            );
        }
    }
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok())
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Returns `Err` from the enclosing property when the condition is false.
#[macro_export]
macro_rules! ensure {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!(
                "ensure failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "{}: ensure failed: {} ({}:{})",
                format!($($fmt)+),
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
}

/// Returns `Err` from the enclosing property when the two values differ.
#[macro_export]
macro_rules! ensure_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a != __b {
            return Err(format!(
                "ensure_eq failed: {} == {}\n    left: {:?}\n   right: {:?} ({}:{})",
                stringify!($a),
                stringify!($b),
                __a,
                __b,
                file!(),
                line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if __a != __b {
            return Err(format!(
                "{}: ensure_eq failed: {} == {}\n    left: {:?}\n   right: {:?} ({}:{})",
                format!($($fmt)+),
                stringify!($a),
                stringify!($b),
                __a,
                __b,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0u32);
        Checker::new("trivially_true").cases(40).run(|g| {
            count.set(count.get() + 1);
            let v = g.int(0u64..10);
            ensure!(v < 10);
            Ok(())
        });
        assert_eq!(count.get(), 40);
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let collect = || {
            let vals = std::cell::RefCell::new(Vec::new());
            Checker::new("det").cases(16).run(|g| {
                vals.borrow_mut().push((g.seed(), g.int(0u64..1_000_000)));
                Ok(())
            });
            vals.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn distinct_properties_get_distinct_streams() {
        let first = |name: &'static str| {
            let v = std::cell::Cell::new(0u64);
            Checker::new(name).cases(1).run(|g| {
                v.set(g.int(0u64..u64::MAX));
                Ok(())
            });
            v.get()
        };
        assert_ne!(first("stream_a"), first("stream_b"));
    }

    #[test]
    fn failure_reports_reproducing_seed() {
        let err = catch_unwind(|| {
            Checker::new("always_fails").cases(8).run(|g| {
                let v = g.int(0u64..100);
                ensure!(v > 1000, "v={}", v);
                Ok(())
            });
        })
        .expect_err("property must fail");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("IMO_CHECK_SEED="), "{msg}");
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("ensure failed"), "{msg}");
    }

    #[test]
    fn panicking_property_also_reports_seed() {
        let err = catch_unwind(|| {
            Checker::new("panics").cases(4).run(|_| panic!("boom"));
        })
        .expect_err("property must fail");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("seed:"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn vec_and_pick_respect_bounds() {
        Checker::new("vec_pick").cases(64).run(|g| {
            let v = g.vec(1..20, |g| g.int(5u32..8));
            ensure!(!v.is_empty() && v.len() < 20, "len {}", v.len());
            ensure!(v.iter().all(|&x| (5..8).contains(&x)));
            let items = [1, 2, 3];
            ensure!(items.contains(g.pick(&items)));
            Ok(())
        });
    }

    #[test]
    fn ensure_eq_formats_both_sides() {
        let r: CheckResult = (|| {
            ensure_eq!(1 + 1, 3, "context {}", 42);
            Ok(())
        })();
        let msg = r.unwrap_err();
        assert!(msg.contains("context 42"), "{msg}");
        assert!(msg.contains("left: 2"), "{msg}");
        assert!(msg.contains("right: 3"), "{msg}");
    }
}
