//! A minimal JSON value, serializer and parser.
//!
//! The bench harnesses emit machine-readable `BENCH_*.json` baselines and
//! the build must stay registry-free, so this module implements the small
//! JSON subset the reports need: objects preserve insertion order, numbers
//! are emitted as integers when exact and as shortest-round-trip floats
//! otherwise, and the parser exists mainly so tests can prove every emitted
//! report re-parses.

use std::fmt;

/// A JSON document node. Object keys keep insertion order so reports diff
/// cleanly between runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers up to 2^53 round-trip exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Looks up a key in an object node.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this node is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this node is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this node is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline — the
    /// format of every `BENCH_*.json` file.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders on a single line with no indentation — one frame of a
    /// line-delimited JSON protocol. Strings escape embedded control
    /// characters, so the output never contains a raw newline.
    #[must_use]
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null | Json::Bool(_) | Json::Num(_) | Json::Str(_) => self.write(out, 0),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    v.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s, 0);
        f.write_str(&s)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    use fmt::Write as _;
    if !n.is_finite() {
        // JSON has no NaN/Inf; reports must not silently corrupt.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document (strict enough for round-tripping our own output
/// and hand-written configs; no comments, no trailing commas).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let b = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(ParseError { at: pos, msg: "trailing characters" });
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), ParseError> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(ParseError { at: *pos, msg: "unexpected character" })
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(ParseError { at: *pos, msg: "unexpected end of input" }),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(ParseError { at: *pos, msg: "expected ',' or ']'" }),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(ParseError { at: *pos, msg: "expected ',' or '}'" }),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, ParseError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(ParseError { at: *pos, msg: "invalid literal" })
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(b, pos, b'"')?;
    let mut s = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(ParseError { at: *pos, msg: "unterminated string" }),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b.get(*pos).ok_or(ParseError { at: *pos, msg: "bad escape" })?;
                match esc {
                    b'"' => s.push('"'),
                    b'\\' => s.push('\\'),
                    b'/' => s.push('/'),
                    b'n' => s.push('\n'),
                    b'r' => s.push('\r'),
                    b't' => s.push('\t'),
                    b'b' => s.push('\u{8}'),
                    b'f' => s.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(ParseError { at: *pos, msg: "bad \\u escape" })?;
                        // Surrogate pairs are not needed for our reports.
                        s.push(
                            char::from_u32(hex)
                                .ok_or(ParseError { at: *pos, msg: "bad \\u escape" })?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(ParseError { at: *pos, msg: "bad escape" }),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = &b[*pos..];
                let ch = std::str::from_utf8(&rest[..rest.len().min(4)])
                    .ok()
                    .and_then(|t| t.chars().next())
                    .or_else(|| std::str::from_utf8(rest).ok().and_then(|t| t.chars().next()))
                    .ok_or(ParseError { at: *pos, msg: "invalid UTF-8" })?;
                s.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|t| t.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or(ParseError { at: start, msg: "invalid number" })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = Json::obj([
            ("name", Json::from("fig2")),
            ("n", Json::from(3u64)),
            ("ratio", Json::from(1.25)),
            ("tags", Json::arr([Json::from("a"), Json::Null, Json::Bool(true)])),
        ]);
        let s = v.pretty();
        assert!(s.contains("\"name\": \"fig2\""));
        assert!(s.contains("\"n\": 3"));
        assert!(s.contains("\"ratio\": 1.25"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn integers_render_without_fraction() {
        let mut s = String::new();
        write_num(&mut s, 1_000_000.0);
        assert_eq!(s, "1000000");
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".to_string());
        let parsed = parse(&v.pretty()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn pretty_output_reparses_identically() {
        let v = Json::obj([
            ("rows", Json::arr([Json::obj([("x", Json::from(0.5)), ("y", Json::from(7u64))])])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        assert_eq!(parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn compact_is_single_line_and_reparses() {
        let v = Json::obj([
            ("s", Json::from("a\nb")),
            ("rows", Json::arr([Json::from(1u64), Json::Null, Json::Bool(true)])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let line = v.compact();
        assert!(!line.contains('\n'), "one protocol frame per line: {line}");
        assert_eq!(line, r#"{"s":"a\nb","rows":[1,null,true],"empty_arr":[],"empty_obj":{}}"#);
        assert_eq!(parse(&line).unwrap(), v);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("\"abc").is_err());
    }

    #[test]
    fn get_and_accessors() {
        let v = parse(r#"{"a": [1, 2.5], "b": "s"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().as_str(), Some("s"));
        assert!(v.get("c").is_none());
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let mut s = String::new();
        write_num(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }
}
