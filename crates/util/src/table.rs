//! A simple aligned text table — the one table renderer shared by the
//! pipeline trace dump, the bench figure reports and the coherence example
//! output (each used to hand-roll its own).

use std::fmt::Write as _;

use crate::json::Json;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Table {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Table {
        let r: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(r.len(), self.headers.len(), "row width mismatch");
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table: a header line, a dashed rule, then the rows,
    /// every column left-aligned to its widest cell.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}  ", c, w = widths[i]);
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            line(&mut out, r);
        }
        out
    }

    /// The table as JSON: an array of row objects keyed by header.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::arr(self.rows.iter().map(|r| {
            Json::Obj(
                self.headers
                    .iter()
                    .zip(r)
                    .map(|(h, c)| (h.clone(), Json::from(c.as_str())))
                    .collect(),
            )
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["a", "long header"]);
        t.row(["xxxxx", "1"]);
        t.row(["y", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long header"));
        assert!(lines[2].starts_with("xxxxx"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn table_json_keys_rows_by_header() {
        let mut t = Table::new(["name", "value"]);
        t.row(["cycles", "100"]);
        let j = t.to_json();
        let rows = j.as_arr().unwrap();
        assert_eq!(rows[0].get("name").unwrap().as_str(), Some("cycles"));
        assert_eq!(rows[0].get("value").unwrap().as_str(), Some("100"));
    }
}
