//! # imo-util
//!
//! The hermetic, zero-dependency substrate under every other crate in this
//! workspace. The build environment has no crates.io access, so the
//! facilities other projects pull from `rand`, `proptest` and `criterion`
//! live here, in-tree, with fixed deterministic behaviour:
//!
//! * [`rng`] — seeded splitmix64/xoshiro256** PRNG with the small
//!   `SmallRng`-shaped API the workload/trace generators use.
//! * [`check`] — a deterministic mini property-test harness (seeded case
//!   generation, fixed case counts, reproducing-seed failure reports).
//! * [`bench`] — a wall-clock micro-benchmark runner (warmup, median-of-N,
//!   JSON emission) behind the `cargo bench` targets.
//! * [`stats`] — shared run accounting: the graduation-slot breakdown used
//!   by both CPU models and the ordered counter [`stats::Report`] every
//!   simulator result renders to.
//! * [`json`] — a minimal ordered JSON value/serializer/parser for the
//!   `BENCH_*.json` baselines.
//! * [`hash`] — streaming FNV-1a 64 hashing (`Debug`-structural) for the
//!   sweep memoization keys.
//! * [`pool`] — a scoped `std::thread` work-stealing pool whose
//!   `map_indexed` returns results in input order, so parallel sweeps are
//!   byte-identical to serial ones.
//! * [`snapshot`] — the versioned checkpoint wire format: a [`Snapshot`]
//!   trait over the in-tree JSON with exact `u64`/`f64` encodings, so live
//!   simulation state can pause and resume bit-deterministically.
//! * [`store`] — a content-addressed on-disk key→value cache (atomic
//!   writes, integrity-verified reads) behind the cross-run sweep memo
//!   store.
//! * [`table`] — the aligned text-table renderer shared by the pipeline
//!   trace dump, the bench reports and the coherence example.
//!
//! Policy: this crate depends on `std` only, and every other crate's
//! external-registry dependency list stays empty. See `DESIGN.md` §6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod bench;
pub mod check;
pub mod hash;
pub mod json;
pub mod pool;
pub mod rng;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod table;

pub use bench::Bench;
pub use check::{CheckResult, Checker, Gen};
pub use hash::{debug_hash, fnv1a_64};
pub use json::Json;
pub use pool::Pool;
pub use rng::SmallRng;
pub use snapshot::{Snapshot, SnapshotError};
pub use stats::{Report, SlotBreakdown, Summarize};
pub use store::{Store, StoreMode, StoreStats};
pub use table::Table;
