//! A scoped, work-stealing thread pool with an order-preserving map.
//!
//! The bench layer walks workload × machine × variant × scheme matrices
//! whose cells are independent, pure functions of their inputs — ideal
//! fan-out work. [`Pool::map_indexed`] runs one closure per cell across a
//! fixed number of `std::thread::scope` workers and collects results **in
//! input order**, so the output is byte-identical regardless of thread
//! count or scheduling:
//!
//! * every cell is identified by its input index, and each worker tags its
//!   result with that index before sending it back;
//! * the caller reassembles results into a vector indexed by cell, so the
//!   interleaving of workers never reaches the output;
//! * the closure receives only the index and the (owned) cell — as long as
//!   it is a pure function of those (our cells carry explicit seeds), a
//!   1-thread and a 64-thread run produce the same vector.
//!
//! Scheduling is work-stealing: cells are dealt to per-worker deques in
//! contiguous chunks; a worker pops from the front of its own deque and,
//! when empty, steals from the back of a sibling's. A panicking worker
//! propagates its panic to the caller when the scope joins.
//!
//! Thread count defaults to [`default_threads`] (`IMO_THREADS` override,
//! else `std::thread::available_parallelism`).

use std::collections::VecDeque;
use std::sync::{mpsc, Mutex, PoisonError};
use std::thread;

/// Upper bound on worker threads; a safety clamp for absurd `IMO_THREADS`.
const MAX_THREADS: usize = 256;

/// The default worker count: the `IMO_THREADS` environment variable if set
/// to a positive integer, otherwise the host's available parallelism.
#[must_use]
pub fn default_threads() -> usize {
    std::env::var("IMO_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
        .min(MAX_THREADS)
}

/// A fixed-width scoped thread pool. Cheap to construct; threads are
/// spawned per [`Pool::map_indexed`] call and joined before it returns, so
/// borrowed data may flow into the closure freely.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool of exactly `threads` workers (clamped to `1..=256`).
    #[must_use]
    pub fn new(threads: usize) -> Pool {
        Pool { threads: threads.clamp(1, MAX_THREADS) }
    }

    /// A pool sized by [`default_threads`].
    #[must_use]
    pub fn auto() -> Pool {
        Pool::new(default_threads())
    }

    /// The worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every `(index, item)` pair and returns the results in
    /// input order. Execution order is unspecified (work-stealing), but the
    /// returned vector is identical for any thread count whenever `f` is a
    /// pure function of its arguments.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised inside `f` on any worker.
    pub fn map_indexed<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }

        let workers = self.threads.min(n);
        // Deal cells to per-worker deques in contiguous chunks so each
        // worker starts on a distinct region of the matrix.
        let chunk = n.div_ceil(workers);
        let mut queues: Vec<Mutex<VecDeque<(usize, T)>>> = Vec::with_capacity(workers);
        let mut it = items.into_iter().enumerate();
        for _ in 0..workers {
            queues.push(Mutex::new(it.by_ref().take(chunk).collect()));
        }

        let (tx, rx) = mpsc::channel::<(usize, R)>();
        thread::scope(|s| {
            for w in 0..workers {
                let tx = tx.clone();
                let queues = &queues;
                let f = &f;
                s.spawn(move || {
                    while let Some((i, item)) = next_job(queues, w) {
                        let r = f(i, item);
                        if tx.send((i, r)).is_err() {
                            return; // receiver gone: the sweep is aborting
                        }
                    }
                });
            }
        });
        drop(tx);

        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("every cell produced a result (no worker panicked)"))
            .collect()
    }
}

/// Pops the next job for worker `own`: front of its own deque first, then
/// the back of each sibling's (classic work-stealing).
fn next_job<T>(queues: &[Mutex<VecDeque<T>>], own: usize) -> Option<T> {
    // A panicking worker may poison a queue lock; the job data inside is
    // still valid, so recover it rather than cascading the panic.
    let lock = |i: usize| queues[i].lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(job) = lock(own).pop_front() {
        return Some(job);
    }
    for off in 1..queues.len() {
        if let Some(job) = lock((own + off) % queues.len()).pop_back() {
            return Some(job);
        }
    }
    None
}

/// [`Pool::map_indexed`] on an auto-sized pool.
pub fn map_indexed<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    Pool::auto().map_indexed(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SmallRng;

    fn cell_value(seed: u64, i: usize) -> u64 {
        // A small deterministic computation per cell, like a bench cell.
        let mut rng = SmallRng::seed_from_u64(seed ^ i as u64);
        (0..100).map(|_| rng.next_u64() & 0xffff).sum()
    }

    #[test]
    fn identical_across_thread_counts() {
        let items: Vec<usize> = (0..97).collect();
        let serial = Pool::new(1).map_indexed(items.clone(), |i, x| cell_value(7, i) + x as u64);
        for threads in [2, 3, 4, 8, 16] {
            let par =
                Pool::new(threads).map_indexed(items.clone(), |i, x| cell_value(7, i) + x as u64);
            assert_eq!(par, serial, "thread count {threads} changed the result");
        }
    }

    #[test]
    fn preserves_input_order() {
        let out = Pool::new(4).map_indexed((0..1000).collect::<Vec<usize>>(), |i, x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<usize>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out = Pool::new(8).map_indexed(Vec::<u32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(Pool::new(8).map_indexed(vec![41u32], |_, x| x + 1), vec![42]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = Pool::new(16).map_indexed(vec![1u32, 2, 3], |_, x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn worker_panic_propagates() {
        let res = std::panic::catch_unwind(|| {
            Pool::new(4).map_indexed((0..64).collect::<Vec<usize>>(), |i, _| {
                assert!(i != 17, "boom at 17");
                i
            })
        });
        assert!(res.is_err(), "a worker panic must reach the caller");
    }

    #[test]
    fn borrows_locals_through_the_scope() {
        let base = [100u64, 200, 300];
        let out = Pool::new(2).map_indexed(vec![0usize, 1, 2], |_, i| base[i] + 1);
        assert_eq!(out, vec![101, 201, 301]);
    }

    #[test]
    fn clamps_thread_count() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::new(100_000).threads(), MAX_THREADS);
    }
}
