//! Streaming FNV-1a 64-bit hashing for structural memo keys.
//!
//! The sweep memoization layer (`imo-bench::sweep`) keys completed cells by
//! a structural hash of their inputs. Most inputs render to short `Debug`
//! strings that go into the key verbatim, but generated parallel traces are
//! tens of thousands of operations — far too large to embed. [`debug_hash`]
//! streams a value's `Debug` output through the hasher without ever
//! materialising the string, so arbitrarily large inputs cost O(1) memory.
//!
//! FNV-1a is not cryptographic; collisions are tolerable because the memo
//! map is keyed by the *full* key string (the hash is just a compact stand-in
//! for one oversized component), and the keyspace per run is tiny.

use std::collections::HashMap;
use std::fmt::{self, Debug, Write};
use std::hash::{BuildHasherDefault, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of a byte slice.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A [`fmt::Write`] sink that folds everything written into an FNV-1a state.
pub struct FnvWriter {
    state: u64,
}

impl FnvWriter {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for FnvWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for &b in s.as_bytes() {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        Ok(())
    }
}

/// Multiply-shift hasher for integer-keyed hot-path maps (cache-line
/// indices, page numbers). One `wrapping_mul` by a 64-bit odd constant plus
/// a xor-shift finish replaces SipHash's multi-round permutation — an order
/// of magnitude cheaper per lookup, which matters in the simulators' inner
/// loops where every memory reference consults such a map.
///
/// Only suitable where keys are not attacker-controlled (simulated
/// addresses, page indices). Iteration order is arbitrary, exactly as with
/// the default hasher, so any serialization must sort — callers already do.
#[derive(Default)]
pub struct WordHasher(u64);

impl Hasher for WordHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn finish(&self) -> u64 {
        self.0 ^ (self.0 >> 32)
    }
}

/// A `HashMap` keyed by machine words using [`WordHasher`].
pub type WordMap<K, V> = HashMap<K, V, BuildHasherDefault<WordHasher>>;

/// Hashes a value's `Debug` rendering without allocating the string.
///
/// Two values hash equal iff their `Debug` output is byte-identical, which
/// for the derive-`Debug` config types used as memo-key components means
/// structural equality.
#[must_use]
pub fn debug_hash<T: Debug + ?Sized>(value: &T) -> u64 {
    let mut w = FnvWriter::new();
    write!(w, "{value:?}").expect("FnvWriter never fails");
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn writer_matches_slice_hash() {
        let mut w = FnvWriter::new();
        w.write_str("foo").unwrap();
        w.write_str("bar").unwrap();
        assert_eq!(w.finish(), fnv1a_64(b"foobar"));
    }

    #[test]
    fn debug_hash_is_structural() {
        #[derive(Debug)]
        #[allow(dead_code)] // fields are only read through Debug
        struct P {
            x: u64,
            y: bool,
        }
        let a = debug_hash(&P { x: 3, y: true });
        let b = debug_hash(&P { x: 3, y: true });
        let c = debug_hash(&P { x: 4, y: true });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn debug_hash_streams_large_values() {
        let big: Vec<u64> = (0..100_000).collect();
        let h1 = debug_hash(&big);
        let h2 = debug_hash(&big);
        assert_eq!(h1, h2);
        assert_ne!(h1, debug_hash(&(0..99_999).collect::<Vec<u64>>()));
    }
}
