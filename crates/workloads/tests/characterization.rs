//! Characterisation tests: each kernel must exhibit the memory behaviour it
//! was engineered to reproduce (see the per-kernel module docs and
//! DESIGN.md). These properties are what give the paper's Figures 2 and 3
//! their shape, so they are pinned here against both cache geometries of
//! Table 1.

use imo_isa::exec::{Executor, MissOracle};
use imo_isa::Program;
use imo_mem::{Cache, CacheConfig};
use imo_workloads::{all, by_name, Scale};

/// Oracle that models one data cache and counts demand misses.
struct CacheOracle {
    cache: Cache,
    accesses: u64,
    misses: u64,
}

impl CacheOracle {
    fn in_order_l1() -> CacheOracle {
        CacheOracle { cache: Cache::new(CacheConfig::new(8 * 1024, 1, 32)), accesses: 0, misses: 0 }
    }

    fn out_of_order_l1() -> CacheOracle {
        CacheOracle {
            cache: Cache::new(CacheConfig::new(32 * 1024, 2, 32)),
            accesses: 0,
            misses: 0,
        }
    }

    fn miss_rate(&self) -> f64 {
        self.misses as f64 / self.accesses.max(1) as f64
    }
}

impl MissOracle for CacheOracle {
    fn probe(&mut self, addr: u64, is_store: bool) -> imo_isa::exec::MissDepth {
        self.accesses += 1;
        let miss = matches!(self.cache.access(addr, is_store), imo_mem::Probe::Miss { .. });
        if miss {
            self.misses += 1;
            imo_isa::exec::MissDepth::L1Miss
        } else {
            imo_isa::exec::MissDepth::Hit
        }
    }
}

fn run(p: &Program, oracle: &mut CacheOracle) -> u64 {
    let mut e = Executor::new(p);
    e.run(oracle, 50_000_000).expect("kernel completes")
}

fn miss_rates(name: &str) -> (f64, f64, u64) {
    let spec = by_name(name).unwrap();
    let p = (spec.build)(Scale::Test);
    let mut dm = CacheOracle::in_order_l1();
    let instrs = run(&p, &mut dm);
    let mut sa = CacheOracle::out_of_order_l1();
    run(&p, &mut sa);
    (dm.miss_rate(), sa.miss_rate(), instrs)
}

#[test]
fn all_kernels_complete_on_both_geometries() {
    for spec in all() {
        let p = (spec.build)(Scale::Test);
        let mut o = CacheOracle::in_order_l1();
        let n = run(&p, &mut o);
        assert!(n > 5_000, "{}: {} dynamic instructions is too tiny", spec.name, n);
        assert!(n < 2_000_000, "{}: {} dynamic instructions is too big for Test", spec.name, n);
        assert!(o.accesses > 100, "{}: kernels must reference memory", spec.name);
    }
}

#[test]
fn ora_has_negligible_misses() {
    let (dm, sa, _) = miss_rates("ora");
    assert!(dm < 0.02, "ora on 8KB DM: {dm}");
    assert!(sa < 0.02, "ora on 32KB 2-way: {sa}");
}

#[test]
fn compress_misses_heavily_everywhere() {
    let (dm, sa, _) = miss_rates("compress");
    assert!(dm > 0.25, "compress on 8KB DM: {dm}");
    assert!(sa > 0.1, "compress on 32KB 2-way: {sa}");
}

#[test]
fn su2cor_thrashes_only_the_direct_mapped_cache() {
    let (dm, sa, _) = miss_rates("su2cor");
    assert!(dm > 0.8, "su2cor must thrash an 8KB DM cache: {dm}");
    assert!(sa < 0.3, "but stream moderately in 32KB 2-way: {sa}");
    assert!(dm > 3.0 * sa, "the geometry gap is the Figure 3 story");
}

#[test]
fn tomcatv_conflicts_to_a_lesser_extent_than_su2cor() {
    let (tom_dm, tom_sa, _) = miss_rates("tomcatv");
    let (su_dm, _, _) = miss_rates("su2cor");
    assert!(tom_dm > 0.25, "tomcatv conflicts in DM: {tom_dm}");
    assert!(tom_dm < su_dm, "but less than su2cor: {tom_dm} vs {su_dm}");
    assert!(tom_sa < 0.3, "tomcatv streams in 32KB 2-way: {tom_sa}");
}

#[test]
fn alvinn_streams_with_regular_misses() {
    let (dm, sa, _) = miss_rates("alvinn");
    // Streaming misses: roughly one per line (every 4th access) or fewer.
    assert!((0.02..0.5).contains(&dm), "alvinn DM: {dm}");
    assert!((0.01..0.4).contains(&sa), "alvinn SA: {sa}");
}

#[test]
fn doduc_is_compute_bound() {
    let (dm, sa, _) = miss_rates("doduc");
    assert!(dm < 0.05, "doduc DM: {dm}");
    assert!(sa < 0.05, "doduc SA: {sa}");
}

#[test]
fn xlisp_chases_pointers_with_moderate_misses() {
    let (dm, sa, _) = miss_rates("xlisp");
    assert!(dm > 0.3, "2048 one-per-line cells overflow 8KB: {dm}");
    assert!(sa > 0.2, "and 32KB (1024 lines): {sa}");
}

#[test]
fn working_set_kernels_fit_the_bigger_cache_better() {
    // espresso/eqntott/sc have working sets between 8KB and 36KB: the 32KB
    // 2-way cache must beat the 8KB DM cache clearly.
    for name in ["espresso", "eqntott", "sc"] {
        let (dm, sa, _) = miss_rates(name);
        assert!(sa < dm * 0.8 || dm < 0.01, "{name}: 32KB 2-way ({sa}) should beat 8KB DM ({dm})");
    }
}

#[test]
fn integer_kernels_use_no_fp_and_fp_kernels_do() {
    use imo_isa::FuClass;
    for spec in all() {
        let p = (spec.build)(Scale::Test);
        let has_fp = p.instrs().iter().any(|i| i.fu_class() == FuClass::Fp);
        match spec.class {
            imo_workloads::WorkloadClass::Integer => {
                assert!(!has_fp, "{} is an integer benchmark", spec.name)
            }
            imo_workloads::WorkloadClass::FloatingPoint => {
                assert!(has_fp, "{} is an FP benchmark", spec.name)
            }
        }
    }
}

#[test]
fn kernels_respect_the_handler_register_reservation() {
    // r24..r27 (and in general r16+ apart from documented exceptions) are
    // reserved for instrumentation; kernels must not touch r24..r27.
    for spec in all() {
        let p = (spec.build)(Scale::Test);
        for (pc, ins) in p.iter() {
            for reg in ins.sources().chain(ins.dest()) {
                if reg.class() == imo_isa::RegClass::Int {
                    assert!(
                        !(24..=27).contains(&reg.index()),
                        "{}: {ins} at {pc:#x} touches reserved {reg}",
                        spec.name
                    );
                }
            }
        }
    }
}

#[test]
fn scale_small_is_roughly_8x_test() {
    for name in ["compress", "ora", "hydro2d"] {
        let spec = by_name(name).unwrap();
        let mut o1 = CacheOracle::in_order_l1();
        let n1 = run(&(spec.build)(Scale::Test), &mut o1);
        let mut o8 = CacheOracle::in_order_l1();
        let n8 = run(&(spec.build)(Scale::Small), &mut o8);
        let ratio = n8 as f64 / n1 as f64;
        assert!((4.0..10.0).contains(&ratio), "{name}: ratio {ratio}");
    }
}
