//! # SPEC92-like workload kernels
//!
//! The paper evaluates informing memory operations on fourteen SPEC92
//! benchmarks (five integer, nine floating-point) compiled with the MIPS
//! compilers. Neither those binaries nor a MIPS compiler is available here,
//! so this crate provides hand-written IRIS kernels that reproduce each
//! benchmark's *memory-behaviour class* — miss rate, stride/conflict
//! pattern, branch predictability and instruction mix — which is what drives
//! the shape of the paper's Figures 2 and 3. See `DESIGN.md` for the
//! substitution rationale.
//!
//! Notable engineered behaviours:
//!
//! * [`kernels::su2cor`] thrashes an 8 KB direct-mapped primary cache (its
//!   arrays are 8 KB apart) while behaving moderately in the out-of-order
//!   model's 32 KB 2-way cache — the paper's Figure 3 pathology;
//! * [`kernels::tomcatv`] has a milder version of the same conflict problem;
//! * [`kernels::ora`] performs almost no memory references (the paper's
//!   "only 2 % overhead even with 100-instruction handlers" case);
//! * [`kernels::xlisp`] chases pointers (dependent misses).
//!
//! The [`parallel`] module generates the shared-memory reference traces used
//! by the `imo-coherence` case study (§4.3).
//!
//! ## Example
//!
//! ```
//! use imo_workloads::{by_name, Scale};
//! use imo_isa::exec::{Executor, NeverMiss};
//!
//! let spec = by_name("ora").expect("ora exists");
//! let program = (spec.build)(Scale::Test);
//! let mut e = Executor::new(&program);
//! e.run(&mut NeverMiss, 10_000_000).expect("runs to completion");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod kernels;
pub mod parallel;
pub mod spec;
mod util;

pub use spec::{all, by_name, floating_point, integer, Scale, Spec, WorkloadClass};
