//! The workload registry.

use imo_isa::Program;

use crate::kernels;

/// Problem scale: all kernels are linear in the scale factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Tiny runs for unit tests (~10⁴ dynamic instructions).
    Test,
    /// The default for experiments (~10⁵–10⁶ dynamic instructions).
    #[default]
    Small,
    /// Longer runs (~10⁶–10⁷ dynamic instructions).
    Reference,
}

impl Scale {
    /// Linear iteration multiplier.
    pub fn factor(self) -> u64 {
        match self {
            Scale::Test => 1,
            Scale::Small => 8,
            Scale::Reference => 64,
        }
    }
}

/// Integer vs floating-point benchmark (SPECint92 vs SPECfp92).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// SPECint92-like.
    Integer,
    /// SPECfp92-like.
    FloatingPoint,
}

/// A registered workload.
#[derive(Debug, Clone, Copy)]
pub struct Spec {
    /// The SPEC92 benchmark this kernel stands in for.
    pub name: &'static str,
    /// Integer or floating point.
    pub class: WorkloadClass,
    /// Builds the program at a given scale.
    pub build: fn(Scale) -> Program,
    /// One-line description of the modelled memory behaviour.
    pub behaviour: &'static str,
}

/// The five SPECint92-like kernels.
pub fn integer() -> Vec<Spec> {
    use WorkloadClass::Integer as I;
    vec![
        Spec {
            name: "compress",
            class: I,
            build: kernels::compress::program,
            behaviour: "LZW-style hash-table probes: scattered references, high miss rate",
        },
        Spec {
            name: "espresso",
            class: I,
            build: kernels::espresso::program,
            behaviour: "bit-set cube operations: small working set, data-dependent branches",
        },
        Spec {
            name: "eqntott",
            class: I,
            build: kernels::eqntott::program,
            behaviour: "sort-dominated: sequential sweeps, unpredictable comparisons",
        },
        Spec {
            name: "sc",
            class: I,
            build: kernels::sc::program,
            behaviour: "spreadsheet grid: row and column sweeps over a 2-D table",
        },
        Spec {
            name: "xlisp",
            class: I,
            build: kernels::xlisp::program,
            behaviour: "interpreter heap: pointer chasing, dependent misses",
        },
    ]
}

/// The nine SPECfp92-like kernels.
pub fn floating_point() -> Vec<Spec> {
    use WorkloadClass::FloatingPoint as F;
    vec![
        Spec {
            name: "alvinn",
            class: F,
            build: kernels::alvinn::program,
            behaviour: "neural-net matrix-vector products: long unit-stride FP streams",
        },
        Spec {
            name: "doduc",
            class: F,
            build: kernels::doduc::program,
            behaviour: "Monte-Carlo kernels: divide/sqrt-heavy compute, tiny data",
        },
        Spec {
            name: "ear",
            class: F,
            build: kernels::ear::program,
            behaviour: "filter banks: strided convolution windows",
        },
        Spec {
            name: "hydro2d",
            class: F,
            build: kernels::hydro2d::program,
            behaviour: "2-D stencil sweeps: streaming with row reuse",
        },
        Spec {
            name: "mdljsp2",
            class: F,
            build: kernels::mdljsp2::program,
            behaviour: "molecular dynamics: index-list gathers, scattered FP loads",
        },
        Spec {
            name: "nasa7",
            class: F,
            build: kernels::nasa7::program,
            behaviour: "blocked matrix multiply + power-of-two-stride butterfly",
        },
        Spec {
            name: "ora",
            class: F,
            build: kernels::ora::program,
            behaviour: "ray tracing through registers: almost no memory references",
        },
        Spec {
            name: "su2cor",
            class: F,
            build: kernels::su2cor::program,
            behaviour: "lattice sweep with 8KB-aligned arrays: thrashes a direct-mapped L1",
        },
        Spec {
            name: "tomcatv",
            class: F,
            build: kernels::tomcatv::program,
            behaviour: "mesh generation: multi-array unit-stride sweeps with partial conflicts",
        },
    ]
}

/// All fourteen kernels (integer first), matching the paper's benchmark set.
pub fn all() -> Vec<Spec> {
    let mut v = integer();
    v.extend(floating_point());
    v
}

/// Looks a workload up by name.
pub fn by_name(name: &str) -> Option<Spec> {
    all().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_kernels_five_integer() {
        let a = all();
        assert_eq!(a.len(), 14);
        assert_eq!(a.iter().filter(|s| s.class == WorkloadClass::Integer).count(), 5);
        assert_eq!(integer().len(), 5);
        assert_eq!(floating_point().len(), 9);
    }

    #[test]
    fn names_are_unique() {
        let a = all();
        let mut names: Vec<_> = a.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn lookup() {
        assert!(by_name("su2cor").is_some());
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn scale_factors_increase() {
        assert!(Scale::Test.factor() < Scale::Small.factor());
        assert!(Scale::Small.factor() < Scale::Reference.factor());
    }
}
