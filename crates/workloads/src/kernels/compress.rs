//! `compress`-like kernel: LZW-style dictionary probing.
//!
//! SPECint92 `compress` spends its time hashing (prefix, character) pairs
//! into a large code table and probing it. The table is much larger than the
//! primary cache and indices are effectively random, so the probe stream has
//! a high primary-miss rate that mostly hits in L2 — the behaviour that
//! makes `compress` the paper's running example for informing-trap cost
//! (§4.2.2 measures both the 100-instruction-handler blow-up and the
//! branch-vs-exception gap on it).

use imo_isa::{Asm, Cond, Program, Reg};

use crate::spec::Scale;
use crate::util::{lcg_step, r};

/// Code table: 32 K entries × 8 B = 256 KB (≫ both primary caches, ⊂ L2).
const TABLE_BASE: u64 = 0x40_0000;
const TABLE_MASK: u64 = 32 * 1024 - 1;
/// Pseudo-input symbols consumed per scale unit.
const ITERS_PER_UNIT: u64 = 4000;

/// Builds the kernel at `scale`.
pub fn program(scale: Scale) -> Program {
    let n = ITERS_PER_UNIT * scale.factor();
    let mut a = Asm::new();
    let (seed, tmp) = (r(1), r(2));
    let (prefix, ch, hash, tbase, val, outsum) = (r(3), r(4), r(5), r(6), r(7), r(10));
    let (ctr, limit) = (r(8), r(9));

    a.li(seed, 0x1234_5678);
    a.li(prefix, 0);
    a.li(tbase, TABLE_BASE as i64);
    a.li(ctr, 0);
    a.li(limit, n as i64);
    let top = a.here("top");
    // Next input "character".
    lcg_step(&mut a, seed, tmp);
    a.srl(ch, seed, 33);
    a.andi(ch, ch, 0xff);
    // hash = ((prefix << 4) ^ ch ^ (seed >> 17)) & TABLE_MASK
    a.sll(hash, prefix, 4);
    a.xor(hash, hash, ch);
    a.srl(tmp, seed, 17);
    a.xor(hash, hash, tmp);
    a.andi(hash, hash, TABLE_MASK);
    // Dictionary probes exhibit locality: 3 of 4 probes land in a hot 16 KB
    // region of the table (recently-used codes), the rest roam the full
    // 256 KB. The hot set fits a 32 KB primary cache but thrashes an 8 KB
    // one — compress stays the high-miss integer benchmark on both machines.
    a.srl(tmp, seed, 13);
    a.andi(tmp, tmp, 3);
    let cold = a.label("cold_probe");
    a.branch(Cond::Eq, tmp, Reg::ZERO, cold);
    a.andi(hash, hash, 2047);
    a.bind(cold).expect("label is bound exactly once");
    a.sll(hash, hash, 3);
    a.add(hash, hash, tbase);
    // Probe.
    a.load(val, hash, 0);
    let found = a.label("found");
    let cont = a.label("cont");
    a.branch(Cond::Eq, val, prefix, found);
    // Miss in the dictionary: install the new code.
    a.store(prefix, hash, 0);
    a.jump(cont);
    a.bind(found).expect("label is bound exactly once");
    a.add(outsum, outsum, val);
    a.bind(cont).expect("label is bound exactly once");
    a.or(prefix, ch, Reg::ZERO);
    a.addi(ctr, ctr, 1);
    a.branch(Cond::Lt, ctr, limit, top);
    a.halt();
    a.assemble().expect("compress kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::exec::{Executor, NeverMiss};

    #[test]
    fn runs_to_completion_and_mutates_the_table() {
        let p = program(Scale::Test);
        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 1_000_000).unwrap();
        assert!(e.state().halted());
        assert!(e.state().memory().touched_pages() > 4, "dictionary was written");
    }

    #[test]
    fn scale_increases_work_linearly() {
        let p1 = program(Scale::Test);
        let p8 = program(Scale::Small);
        let mut e1 = Executor::new(&p1);
        let n1 = e1.run(&mut NeverMiss, 10_000_000).unwrap();
        let mut e8 = Executor::new(&p8);
        let n8 = e8.run(&mut NeverMiss, 10_000_000).unwrap();
        let ratio = n8 as f64 / n1 as f64;
        assert!((7.0..9.0).contains(&ratio), "ratio {ratio}");
    }
}
