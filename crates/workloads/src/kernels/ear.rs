//! `ear`-like kernel: cochlea filter banks.
//!
//! SPECfp92 `ear` models the human ear with banks of second-order filters
//! convolved over an audio signal. This kernel slides strided windows over a
//! signal array larger than the primary caches: each output sample reads
//! eight taps 64 bytes apart (a fresh line every other tap), a
//! medium-miss-rate streaming pattern between `alvinn` and the conflict
//! pathologies.

use imo_isa::{Asm, Program};

use crate::spec::Scale;
use crate::util::{counted_loop, f, r};

/// Signal: 16 K samples × 8 B = 128 KB.
const SIGNAL_BASE: u64 = 0x40_0000;
const OUT_BASE: u64 = 0x60_0000;
const SAMPLES: u64 = 16 * 1024;
const TAPS: u64 = 8;
const TAP_STRIDE: i64 = 64;
const OUTPUTS_PER_UNIT: u64 = 700;

/// Builds the kernel at `scale`.
pub fn program(scale: Scale) -> Program {
    let outputs = OUTPUTS_PER_UNIT * scale.factor();
    let mut a = Asm::new();
    let (sbase, obase, saddr, oaddr, t) = (r(1), r(2), r(3), r(4), r(5));
    let (x, acc, coef) = (f(1), f(2), f(3));

    a.li(sbase, SIGNAL_BASE as i64);
    a.li(obase, OUT_BASE as i64);
    a.li(t, 0);

    counted_loop(&mut a, r(11), r(12), outputs, "out", |a| {
        a.fli(acc, 0.0);
        a.fli(coef, 0.5);
        // window start = base + (t mod SAMPLES/2) * 8
        a.andi(saddr, t, SAMPLES / 2 - 1);
        a.sll(saddr, saddr, 3);
        a.add(saddr, saddr, sbase);
        counted_loop(a, r(8), r(9), TAPS, "tap", |a| {
            a.load(x, saddr, 0);
            a.fmul(x, x, coef);
            a.fadd(acc, acc, x);
            a.fmul(coef, coef, coef); // decaying tap weights
            a.addi(saddr, saddr, TAP_STRIDE);
        });
        // Store the output sample (streaming writes).
        a.andi(oaddr, t, SAMPLES - 1);
        a.sll(oaddr, oaddr, 3);
        a.add(oaddr, oaddr, obase);
        a.store(acc, oaddr, 0);
        a.addi(t, t, 2); // small hop: consecutive windows overlap heavily
    });
    a.halt();
    a.assemble().expect("ear kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::exec::{Executor, NeverMiss};

    #[test]
    fn filters_run_over_the_signal() {
        let p = program(Scale::Test);
        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 10_000_000).unwrap();
        assert!(e.state().halted());
        // The signal is all zeros, so outputs are zero but stores happened.
        assert!(e.state().memory().touched_pages() > 1);
    }
}
