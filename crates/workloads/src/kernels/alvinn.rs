//! `alvinn`-like kernel: neural-network training sweeps.
//!
//! SPECfp92 `alvinn` trains a perceptron for road following; its inner loops
//! are dense matrix-vector products streaming over weight arrays much larger
//! than the primary cache. Misses are regular and unit-stride (one per line,
//! i.e. every fourth load) — exactly the pattern where the out-of-order
//! model overlaps miss-handler work well (the paper singles out `alvinn`:
//! instruction count +30 % under unique handlers, execution time +1 %).

use imo_isa::{Asm, Program};

use crate::spec::Scale;
use crate::util::{counted_loop, f, r};

/// 64 hidden × 128 inputs × 8 B = 64 KB of weights.
const WEIGHTS_BASE: u64 = 0x40_0000;
const INPUT_BASE: u64 = 0x48_0000;
const HIDDEN_BASE: u64 = 0x49_0000;
const HIDDEN: u64 = 64;
const INPUTS: u64 = 128;

/// Builds the kernel at `scale`.
pub fn program(scale: Scale) -> Program {
    let epochs = scale.factor();
    let mut a = Asm::new();
    let (wbase, ibase, hbase, waddr, iaddr, haddr) = (r(1), r(2), r(3), r(4), r(5), r(6));
    let (w, x, acc, lr, one) = (f(1), f(2), f(3), f(4), f(5));

    a.li(wbase, WEIGHTS_BASE as i64);
    a.li(ibase, INPUT_BASE as i64);
    a.li(hbase, HIDDEN_BASE as i64);
    a.fli(lr, 0.125);
    a.fli(one, 1.0);

    // Initialise the input vector to 1.0 (the weights train from zero).
    counted_loop(&mut a, r(8), r(9), INPUTS, "init", |a| {
        a.sll(iaddr, r(8), 3);
        a.add(iaddr, iaddr, ibase);
        a.store(one, iaddr, 0);
    });

    counted_loop(&mut a, r(13), r(14), epochs, "epoch", |a| {
        // Forward: hidden[i] = sum_j w[i][j] * in[j]; then a training nudge
        // streams the row again adding lr * in[j].
        a.or(waddr, wbase, imo_isa::Reg::ZERO);
        counted_loop(a, r(11), r(12), HIDDEN, "neuron", |a| {
            a.fli(acc, 0.0);
            a.or(iaddr, ibase, imo_isa::Reg::ZERO);
            counted_loop(a, r(8), r(9), INPUTS, "mac", |a| {
                a.load(w, waddr, 0);
                a.load(x, iaddr, 0);
                a.fmul(w, w, x);
                a.fadd(acc, acc, w);
                // Train: w += lr * x (written back in place).
                a.fmul(x, x, lr);
                a.load(w, waddr, 0);
                a.fadd(w, w, x);
                a.store(w, waddr, 0);
                a.addi(waddr, waddr, 8);
                a.addi(iaddr, iaddr, 8);
            });
            a.sll(haddr, r(11), 3);
            a.add(haddr, haddr, hbase);
            a.store(acc, haddr, 0);
        });
    });
    a.halt();
    a.assemble().expect("alvinn kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::exec::{Executor, NeverMiss};

    #[test]
    fn training_converges_weights_upward() {
        let p = program(Scale::Test);
        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 10_000_000).unwrap();
        assert!(e.state().halted());
        // After one epoch each weight is lr * 1.0 = 0.125.
        assert_eq!(e.state().memory().read_f64(WEIGHTS_BASE), 0.125);
        // The last neuron's activation was stored.
        let h = e.state().memory().read_f64(HIDDEN_BASE + (HIDDEN - 1) * 8);
        assert!(h >= 0.0);
    }
}
