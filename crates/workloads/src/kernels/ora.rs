//! `ora`-like kernel: optical ray tracing in registers.
//!
//! SPECfp92 `ora` traces rays through an optical system; it is famously
//! compute-bound, spending its cycles in square roots and divides with a
//! negligible data footprint. The paper uses it as the other extreme from
//! `compress`/`su2cor`: even 100-instruction miss handlers cost it only
//! ~2 %, because the handler almost never runs.

use imo_isa::{Asm, Cond, Program, Reg};

use crate::spec::Scale;
use crate::util::{counted_loop, f, lcg_step, r};

/// Lens table: 32 entries = 256 B (permanently resident).
const LENS_BASE: u64 = 0x40_0000;
const RAYS_PER_UNIT: u64 = 1800;

/// Builds the kernel at `scale`.
pub fn program(scale: Scale) -> Program {
    let rays = RAYS_PER_UNIT * scale.factor();
    let mut a = Asm::new();
    let (seed, tmp, idx) = (r(1), r(2), r(3));
    let (x, y, z, norm, radius, acc) = (f(1), f(2), f(3), f(4), f(5), f(6));

    a.li(seed, 0x0aa);
    a.fli(norm, 65536.0);
    a.fli(acc, 0.0);

    // Tiny lens table.
    counted_loop(&mut a, r(8), r(9), 32, "init", |a| {
        a.addi(tmp, r(8), 2);
        a.cvtif(radius, tmp);
        a.sll(idx, r(8), 3);
        a.addi(idx, idx, LENS_BASE as i64);
        a.store(radius, idx, 0);
    });

    counted_loop(&mut a, r(8), r(9), rays, "ray", |a| {
        // Random direction components in (0,1].
        lcg_step(a, seed, tmp);
        a.andi(tmp, seed, 0xffff);
        a.addi(tmp, tmp, 1);
        a.cvtif(x, tmp);
        a.fdiv(x, x, norm);
        a.srl(tmp, seed, 16);
        a.andi(tmp, tmp, 0xffff);
        a.addi(tmp, tmp, 1);
        a.cvtif(y, tmp);
        a.fdiv(y, y, norm);
        // Normalise: z = sqrt(x^2 + y^2); refract through a lens.
        a.fmul(z, x, x);
        a.fmul(y, y, y);
        a.fadd(z, z, y);
        a.fsqrt(z, z);
        a.srl(idx, seed, 40);
        a.andi(idx, idx, 31);
        a.sll(idx, idx, 3);
        a.addi(idx, idx, LENS_BASE as i64);
        a.load(radius, idx, 0);
        a.fdiv(z, z, radius);
        a.fsqrt(z, z);
        // Total internal reflection branch.
        a.fcmplt(tmp, z, norm);
        let miss = a.label(&format!("tir_{}", a.len()));
        a.branch(Cond::Eq, tmp, Reg::ZERO, miss);
        a.fadd(acc, acc, z);
        a.bind(miss).expect("label is bound exactly once");
    });
    a.halt();
    a.assemble().expect("ora kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::exec::{Executor, NeverMiss};

    #[test]
    fn rays_accumulate() {
        let p = program(Scale::Test);
        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 10_000_000).unwrap();
        assert!(e.state().halted());
        let acc = e.state().fp(f(6));
        assert!(acc.is_finite() && acc > 0.0);
    }
}
