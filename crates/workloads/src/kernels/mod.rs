//! The fourteen SPEC92-like kernels (five integer, nine floating-point).
//!
//! Each module documents the benchmark it stands in for and the memory
//! behaviour it is engineered to reproduce, and exposes a single
//! `program(scale) -> Program` entry point. Kernels keep to registers
//! `r1`–`r15` / `f1`–`f15`, leaving `r24`–`r27` for miss handlers (see
//! `imo-core::instrument`).

pub mod alvinn;
pub mod compress;
pub mod doduc;
pub mod ear;
pub mod eqntott;
pub mod espresso;
pub mod hydro2d;
pub mod mdljsp2;
pub mod nasa7;
pub mod ora;
pub mod sc;
pub mod su2cor;
pub mod tomcatv;
pub mod xlisp;
