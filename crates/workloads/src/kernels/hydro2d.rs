//! `hydro2d`-like kernel: 2-D hydrodynamics stencil.
//!
//! SPECfp92 `hydro2d` solves Navier-Stokes on a 2-D grid. This kernel sweeps
//! a 5-point stencil over a 256-column grid of doubles: three source rows
//! are live at once (6 KB), so there is substantial line reuse within a
//! sweep but every line is still fetched once per row pass — classic
//! streaming-with-reuse FP behaviour.

use imo_isa::{Asm, Program};

use crate::spec::Scale;
use crate::util::{counted_loop, f, r};

/// Grid: 256 columns × 64 rows × 8 B = 128 KB per grid. The destination is
/// offset by half a row so that its lines do not alias the source rows in a
/// small direct-mapped cache (the arrays-in-lockstep pathology belongs to
/// `su2cor`/`tomcatv`, not here).
const SRC_BASE: u64 = 0x40_0000;
const DST_BASE: u64 = 0x60_0400;
const COLS: u64 = 256;
const ROWS_PER_UNIT: u64 = 20;

/// Builds the kernel at `scale`.
pub fn program(scale: Scale) -> Program {
    let rows = ROWS_PER_UNIT * scale.factor();
    let mut a = Asm::new();
    let (saddr, daddr, rowreg) = (r(1), r(2), r(3));
    let (up, down, left, right, mid, quarter) = (f(1), f(2), f(3), f(4), f(5), f(6));
    let row_bytes = (COLS * 8) as i64;

    a.fli(quarter, 0.25);
    a.li(rowreg, 1);

    counted_loop(&mut a, r(11), r(12), rows, "row", |a| {
        // Row index cycles through 1..=62 to stay in a fixed 64-row grid.
        a.andi(rowreg, rowreg, 63);
        let skip = a.label(&format!("rowok_{}", a.len()));
        a.branch(imo_isa::Cond::Ne, rowreg, imo_isa::Reg::ZERO, skip);
        a.li(rowreg, 1);
        a.bind(skip).expect("label is bound exactly once");
        // saddr = SRC + row*rowbytes + 8 (column 1)
        a.li(saddr, row_bytes);
        a.mul(saddr, saddr, rowreg);
        a.addi(saddr, saddr, SRC_BASE as i64 + 8);
        a.li(daddr, row_bytes);
        a.mul(daddr, daddr, rowreg);
        a.addi(daddr, daddr, DST_BASE as i64 + 8);
        counted_loop(a, r(8), r(9), COLS - 2, "col", |a| {
            a.load(up, saddr, -row_bytes);
            a.load(down, saddr, row_bytes);
            a.load(left, saddr, -8);
            a.load(right, saddr, 8);
            a.fadd(mid, up, down);
            a.fadd(up, left, right);
            a.fadd(mid, mid, up);
            a.fmul(mid, mid, quarter);
            a.store(mid, daddr, 0);
            a.addi(saddr, saddr, 8);
            a.addi(daddr, daddr, 8);
        });
        a.addi(rowreg, rowreg, 1);
    });
    a.halt();
    a.assemble().expect("hydro2d kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::exec::{Executor, NeverMiss};

    #[test]
    fn stencil_sweeps_complete() {
        let p = program(Scale::Test);
        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 10_000_000).unwrap();
        assert!(e.state().halted());
    }

    #[test]
    fn stencil_averages_seeded_values() {
        // Seed one source cell and check its neighbours' average appears.
        let mut asm_src = program(Scale::Test);
        // Instead of editing the program, run it on memory pre-seeded via a
        // fresh executor.
        let mut e = Executor::new(&asm_src);
        let row = 1u64;
        let addr = SRC_BASE + row * COLS * 8; // column 0 = `left` of column 1
        e.state_mut().memory_mut().write_f64(addr, 8.0);
        e.run(&mut NeverMiss, 10_000_000).unwrap();
        let out = e.state().memory().read_f64(DST_BASE + row * COLS * 8 + 8);
        assert_eq!(out, 2.0, "0.25 * (0 + 0 + 8 + 0)");
        let _ = &mut asm_src;
    }
}
