//! `tomcatv`-like kernel: mesh generation with partial conflicts.
//!
//! SPECfp92 `tomcatv` generates meshes with long vectorisable sweeps over
//! half a dozen coordinate arrays. The paper notes that "a similar problem
//! occurs to a lesser extent in tomcatv" as in `su2cor`: some — not all —
//! of its arrays conflict in a small direct-mapped cache. Here two of the
//! four swept arrays are 64 KB apart (≡ 0 mod 8 KB: they collide in the
//! in-order model's direct-mapped L1 on every element) while the other two
//! are offset to fall in distinct sets and merely stream.

use imo_isa::{Asm, Program};

use crate::spec::Scale;
use crate::util::{counted_loop, f, r};

/// x and y conflict in an 8 KB direct-mapped cache (64 KB apart, which is
/// also 0 mod the 16 KB way size of the 32 KB 2-way cache — where the two
/// ways absorb the pair without thrashing).
const X_BASE: u64 = 0x40_0000;
const Y_BASE: u64 = 0x41_0000;
/// rx and ry are offset by non-multiples of 8 KB; in the 2-way cache their
/// set ranges are disjoint from x/y's, in the direct-mapped cache they wrap
/// around and partially collide — the "lesser extent" conflicts.
const RX_BASE: u64 = X_BASE + 0x1800;
const RY_BASE: u64 = X_BASE + 0x2800;
/// 512 points × 8 B = 4 KB per array, 16 KB total: resident and
/// conflict-free in the out-of-order model's 32 KB L1, over-capacity and
/// conflicting in the in-order model's 8 KB one.
const POINTS: u64 = 512;
const SWEEPS_PER_UNIT: u64 = 3;

/// Builds the kernel at `scale`.
pub fn program(scale: Scale) -> Program {
    let sweeps = SWEEPS_PER_UNIT * scale.factor();
    let mut a = Asm::new();
    let (xb, yb, rxb, ryb, off, t) = (r(1), r(2), r(3), r(4), r(5), r(6));
    let (xv, yv, rxv, ryv, relax) = (f(1), f(2), f(3), f(4), f(5));

    a.li(xb, X_BASE as i64);
    a.li(yb, Y_BASE as i64);
    a.li(rxb, RX_BASE as i64);
    a.li(ryb, RY_BASE as i64);
    a.fli(relax, 0.9);

    counted_loop(&mut a, r(11), r(12), sweeps, "sweep", |a| {
        a.li(off, 0);
        counted_loop(a, r(8), r(9), POINTS, "pt", |a| {
            a.add(t, xb, off);
            a.load(xv, t, 0);
            // The conflicting y read happens on every second point — the
            // paper: "a similar problem occurs to a lesser extent in
            // tomcatv" (vs su2cor's every-reference conflicts).
            a.andi(t, r(8), 1);
            let skip_y = a.label(&format!("skip_y_{}", a.len()));
            a.branch(imo_isa::Cond::Ne, t, imo_isa::Reg::ZERO, skip_y);
            a.add(t, yb, off);
            a.load(yv, t, 0);
            a.bind(skip_y).expect("label is bound exactly once");
            a.add(t, rxb, off);
            a.load(rxv, t, 0);
            a.add(t, ryb, off);
            a.load(ryv, t, 0);
            // Relaxation step; results go to the residual arrays (which do
            // not conflict), not back into the thrashing pair.
            a.fadd(rxv, rxv, yv);
            a.fmul(rxv, rxv, relax);
            a.fadd(ryv, ryv, xv);
            a.fmul(ryv, ryv, relax);
            a.add(t, rxb, off);
            a.store(rxv, t, 0);
            a.add(t, ryb, off);
            a.store(ryv, t, 0);
            a.addi(off, off, 8);
        });
    });
    a.halt();
    a.assemble().expect("tomcatv kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::exec::{Executor, NeverMiss};

    #[test]
    fn relaxation_completes() {
        let p = program(Scale::Test);
        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 10_000_000).unwrap();
        assert!(e.state().halted());
    }

    #[test]
    fn conflict_pair_is_8kb_aligned_but_not_the_others() {
        assert_eq!((Y_BASE - X_BASE) % 8192, 0, "x/y collide in an 8KB DM cache");
        assert_ne!((RX_BASE - X_BASE) % 8192, 0);
        assert_ne!((RY_BASE - X_BASE) % 8192, 0);
    }
}
