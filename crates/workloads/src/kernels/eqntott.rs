//! `eqntott`-like kernel: comparison-sort sweeps.
//!
//! SPECint92 `eqntott` converts boolean equations to truth tables and is
//! dominated by `qsort` comparisons over short records. This kernel performs
//! repeated compare-and-swap sweeps (odd-even transposition passes) over an
//! integer array: sequential, low-miss accesses with initially
//! hard-to-predict comparison branches that become predictable as the array
//! sorts — the branch-behaviour profile that distinguishes the integer
//! benchmarks in Figure 2.

use imo_isa::{Asm, Cond, Program};

use crate::spec::Scale;
use crate::util::{counted_loop, lcg_step, r};

/// Array: 2048 × 8 B = 16 KB.
const ARR_BASE: u64 = 0x40_0000;
const ARR_LEN: u64 = 2048;
const PASSES_PER_UNIT: u64 = 2;

/// Builds the kernel at `scale`.
pub fn program(scale: Scale) -> Program {
    let passes = PASSES_PER_UNIT * scale.factor();
    let mut a = Asm::new();
    let (seed, tmp) = (r(1), r(2));
    let (base, addr, x, y) = (r(3), r(4), r(5), r(6));
    let swaps = r(10);

    a.li(seed, 0x5eed);
    a.li(base, ARR_BASE as i64);

    // Fill with pseudo-random keys.
    counted_loop(&mut a, r(8), r(9), ARR_LEN, "init", |a| {
        lcg_step(a, seed, tmp);
        a.sll(addr, r(8), 3);
        a.add(addr, addr, base);
        a.srl(tmp, seed, 20);
        a.store(tmp, addr, 0);
    });

    // Transposition passes.
    counted_loop(&mut a, r(11), r(12), passes, "pass", |a| {
        counted_loop(a, r(8), r(9), ARR_LEN - 1, "sweep", |a| {
            a.sll(addr, r(8), 3);
            a.add(addr, addr, base);
            a.load(x, addr, 0);
            a.load(y, addr, 8);
            let ordered = a.label(&format!("ordered_{}", a.len()));
            a.branch(Cond::Le, x, y, ordered);
            a.store(y, addr, 0);
            a.store(x, addr, 8);
            a.addi(swaps, swaps, 1);
            a.bind(ordered).expect("label is bound exactly once");
        });
    });
    a.halt();
    a.assemble().expect("eqntott kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::exec::{Executor, NeverMiss};

    #[test]
    fn sorting_progresses() {
        let p = program(Scale::Test);
        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 10_000_000).unwrap();
        assert!(e.state().halted());
        assert!(e.state().int(r(10)) > 100, "plenty of swaps happened");
        // Spot-check partial order improvement: after 2 odd-even passes the
        // array is not sorted, but the first element should be small-ish
        // relative to a random draw (the minimum bubbles toward the front).
        let first = e.state().memory().read(ARR_BASE);
        assert!(first < u64::MAX >> 20, "keys are 44-bit");
    }
}
