//! `sc`-like kernel: spreadsheet recalculation.
//!
//! SPECint92 `sc` is a curses spreadsheet; recalculation sweeps a 2-D cell
//! table by rows (unit stride) and by columns (large stride), with
//! conditional per-cell updates. The column sweeps touch a new cache line on
//! every access, giving a moderate miss rate that is much worse on the 8 KB
//! direct-mapped in-order cache than on the 32 KB 2-way out-of-order one.

use imo_isa::{Asm, Cond, Program, Reg};

use crate::spec::Scale;
use crate::util::{counted_loop, r};

/// 64 columns × 48 rows × 8 B = 24 KB (fits the 32 KB 2-way L1, overflows the 8 KB one).
const GRID_BASE: u64 = 0x40_0000;
const COLS: u64 = 64;
const ROWS: u64 = 48;

/// Builds the kernel at `scale`.
pub fn program(scale: Scale) -> Program {
    let recalcs = scale.factor();
    let mut a = Asm::new();
    let (base, addr, v, rowsum) = (r(1), r(2), r(3), r(4));
    let (colstride, colsum) = (r(5), r(6));
    let total = r(10);

    a.li(base, GRID_BASE as i64);
    a.li(colstride, (COLS * 8) as i64);

    counted_loop(&mut a, r(13), r(14), recalcs, "recalc", |a| {
        // Row sweep: sum each row, store the sum into column 0.
        counted_loop(a, r(11), r(12), ROWS, "rows", |a| {
            a.li(rowsum, 0);
            // addr = base + row * COLS*8
            a.mul(addr, r(11), colstride);
            a.add(addr, addr, base);
            counted_loop(a, r(8), r(9), COLS, "cells", |a| {
                a.load(v, addr, 0);
                a.add(rowsum, rowsum, v);
                a.addi(addr, addr, 8);
            });
            a.mul(addr, r(11), colstride);
            a.add(addr, addr, base);
            a.store(rowsum, addr, 0);
        });
        // Column sweep: walk each of 8 spot-check columns downwards
        // (COLS*8-byte stride: a new line per access) and update cells that
        // exceed the running mean.
        counted_loop(a, r(11), r(12), 8, "cols", |a| {
            a.li(colsum, 0);
            a.sll(addr, r(11), 3); // column index * 8
            a.add(addr, addr, base);
            counted_loop(a, r(8), r(9), ROWS, "down", |a| {
                a.load(v, addr, 0);
                a.add(colsum, colsum, v);
                let small = a.label(&format!("small_{}", a.len()));
                a.branch(Cond::Le, v, colsum, small);
                a.addi(v, v, -1);
                a.store(v, addr, 0);
                a.bind(small).expect("label is bound exactly once");
                a.add(addr, addr, colstride);
            });
            a.add(total, total, colsum);
        });
    });
    // Keep `total` live.
    a.or(r(15), total, Reg::ZERO);
    a.halt();
    a.assemble().expect("sc kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::exec::{Executor, NeverMiss};

    #[test]
    fn recalculation_completes() {
        let p = program(Scale::Test);
        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 10_000_000).unwrap();
        assert!(e.state().halted());
    }
}
