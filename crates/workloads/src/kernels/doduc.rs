//! `doduc`-like kernel: Monte-Carlo reactor simulation.
//!
//! SPECfp92 `doduc` simulates a nuclear reactor with Monte-Carlo methods:
//! long chains of divides and square roots over a small resident data set,
//! with data-dependent control flow. Its primary-miss rate is negligible —
//! in Figure 2 such compute-bound codes show almost no informing overhead —
//! while the 15–20-cycle FP latencies of Table 1 dominate.

use imo_isa::{Asm, Cond, Program, Reg};

use crate::spec::Scale;
use crate::util::{counted_loop, f, lcg_step, r};

/// Cross-section table: 64 entries = 512 B (always resident).
const XSEC_BASE: u64 = 0x40_0000;
const ITERS_PER_UNIT: u64 = 2200;

/// Builds the kernel at `scale`.
pub fn program(scale: Scale) -> Program {
    let n = ITERS_PER_UNIT * scale.factor();
    let mut a = Asm::new();
    let (seed, tmp, idx, addr) = (r(1), r(2), r(3), r(4));
    let (e, sigma, path, norm, acc) = (f(1), f(2), f(3), f(4), f(5));

    a.li(seed, 0xd0d);
    a.fli(norm, 65536.0);
    a.fli(acc, 0.0);

    // Fill the tiny cross-section table.
    counted_loop(&mut a, r(8), r(9), 64, "init", |a| {
        lcg_step(a, seed, tmp);
        a.andi(tmp, seed, 0xffff);
        a.addi(tmp, tmp, 1);
        a.cvtif(sigma, tmp);
        a.sll(addr, r(8), 3);
        a.addi(addr, addr, XSEC_BASE as i64);
        a.store(sigma, addr, 0);
    });

    counted_loop(&mut a, r(8), r(9), n, "track", |a| {
        // Sample an energy in (0,1].
        lcg_step(a, seed, tmp);
        a.andi(tmp, seed, 0xffff);
        a.addi(tmp, tmp, 1);
        a.cvtif(e, tmp);
        a.fdiv(e, e, norm);
        // Look up a cross-section (always a cache hit after warmup).
        a.srl(idx, seed, 26);
        a.andi(idx, idx, 63);
        a.sll(idx, idx, 3);
        a.addi(idx, idx, XSEC_BASE as i64);
        a.load(sigma, idx, 0);
        // Path length ~ sqrt(e / sigma) (divide + square root chains).
        a.fdiv(path, e, sigma);
        a.fsqrt(path, path);
        // Scatter or absorb? (data-dependent branch)
        let absorb = a.label(&format!("absorb_{}", a.len()));
        a.andi(tmp, seed, 0x7);
        a.branch(Cond::Eq, tmp, Reg::ZERO, absorb);
        a.fmul(path, path, e);
        a.bind(absorb).expect("label is bound exactly once");
        a.fadd(acc, acc, path);
    });
    a.halt();
    a.assemble().expect("doduc kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::exec::{Executor, NeverMiss};

    #[test]
    fn tracks_accumulate_finite_path_lengths() {
        let p = program(Scale::Test);
        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 10_000_000).unwrap();
        assert!(e.state().halted());
        let acc = e.state().fp(f(5));
        assert!(acc.is_finite() && acc > 0.0, "acc = {acc}");
    }
}
