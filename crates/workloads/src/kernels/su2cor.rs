//! `su2cor`-like kernel: lattice sweep with pathological cache conflicts.
//!
//! SPECfp92 `su2cor` (quark-gluon lattice QCD) is the paper's worst case:
//! "su2cor suffers from severe cache conflicts in the 8 KB direct-mapped
//! primary data cache, hence triggering the 10-instruction miss handler
//! frequently enough to quintuple the instruction count and triple the
//! execution time" (Figure 3). This kernel engineers exactly that geometry:
//! four lattice field arrays placed **8 KB apart**, swept together. In an
//! 8 KB direct-mapped cache all four streams map to the same set on every
//! element — a near-100 % miss rate; in the out-of-order model's 32 KB
//! 2-way cache the streams coexist and only ordinary streaming misses
//! remain. It also reproduces the paper's surprising S-vs-U artifact: with a
//! near-100 % trap rate, a single handler's serial dependence chain (same
//! chain register every invocation) backs up, while unique handlers rotate
//! chain registers and overlap.

use imo_isa::{Asm, Program};

use crate::spec::Scale;
use crate::util::{counted_loop, f, r};

/// Four field arrays, 8 KB apart, 1024 doubles each.
const FIELD_A: u64 = 0x40_0000;
const FIELD_B: u64 = 0x40_2000;
const FIELD_C: u64 = 0x40_4000;
const FIELD_D: u64 = 0x40_6000;
const SITES: u64 = 1024;
const SWEEPS_PER_UNIT: u64 = 5;

/// Builds the kernel at `scale`.
pub fn program(scale: Scale) -> Program {
    let sweeps = SWEEPS_PER_UNIT * scale.factor();
    let mut a = Asm::new();
    let (abase, bbase, cbase, dbase, off) = (r(1), r(2), r(3), r(4), r(5));
    let (bv, cv, dv, acc) = (f(1), f(2), f(3), f(4));

    a.li(abase, FIELD_A as i64);
    a.li(bbase, FIELD_B as i64);
    a.li(cbase, FIELD_C as i64);
    a.li(dbase, FIELD_D as i64);

    counted_loop(&mut a, r(11), r(12), sweeps, "sweep", |a| {
        a.li(off, 0);
        counted_loop(a, r(8), r(9), SITES, "site", |a| {
            // a[i] = b[i]*c[i] + d[i]  — four same-set references per site
            // in an 8 KB direct-mapped cache.
            a.add(r(6), bbase, off);
            a.load(bv, r(6), 0);
            a.add(r(6), cbase, off);
            a.load(cv, r(6), 0);
            a.add(r(6), dbase, off);
            a.load(dv, r(6), 0);
            a.fmul(bv, bv, cv);
            a.fadd(bv, bv, dv);
            a.fadd(acc, acc, bv);
            a.add(r(6), abase, off);
            a.store(bv, r(6), 0);
            a.addi(off, off, 8);
        });
    });
    a.halt();
    a.assemble().expect("su2cor kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::exec::{Executor, NeverMiss};

    #[test]
    fn lattice_sweep_completes() {
        let p = program(Scale::Test);
        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 10_000_000).unwrap();
        assert!(e.state().halted());
    }

    #[test]
    fn array_geometry_is_exactly_8kb_apart() {
        assert_eq!(FIELD_B - FIELD_A, 8 * 1024);
        assert_eq!(FIELD_C - FIELD_B, 8 * 1024);
        assert_eq!(FIELD_D - FIELD_C, 8 * 1024);
    }
}
