//! `mdljsp2`-like kernel: molecular-dynamics pair interactions.
//!
//! SPECfp92 `mdljsp2` computes Lennard-Jones forces over neighbour lists.
//! The defining access pattern is the *gather*: a sequential walk over an
//! index list whose entries point at scattered particle records. The
//! scattered FP loads miss often but are independent, so the out-of-order
//! model overlaps them (and their miss handlers) well — the paper reports
//! `mdljsp2`'s instruction count rising 30 % under unique handlers while its
//! execution time rises only 1 %.

use imo_isa::{Asm, Program};

use crate::spec::Scale;
use crate::util::{counted_loop, f, lcg_step, r};

/// Particle positions: 8192 × 8 B = 64 KB.
const POS_BASE: u64 = 0x40_0000;
const POS_MASK: u64 = 8191;
/// Neighbour list: 1024 indices.
const IDX_BASE: u64 = 0x50_0000;
const IDX_MASK: u64 = 1023;
const PAIRS_PER_UNIT: u64 = 2600;

/// Builds the kernel at `scale`.
pub fn program(scale: Scale) -> Program {
    let pairs = PAIRS_PER_UNIT * scale.factor();
    let mut a = Asm::new();
    let (seed, tmp, iaddr, id, paddr) = (r(1), r(2), r(3), r(4), r(5));
    let (x, d, force, eps) = (f(1), f(2), f(3), f(4));

    a.li(seed, 0x3d3d);
    a.fli(eps, 1.5);
    a.fli(force, 0.0);

    // Build the neighbour list with scattered particle ids.
    counted_loop(&mut a, r(8), r(9), IDX_MASK + 1, "initidx", |a| {
        lcg_step(a, seed, tmp);
        a.srl(tmp, seed, 30);
        a.andi(tmp, tmp, POS_MASK);
        a.sll(iaddr, r(8), 3);
        a.addi(iaddr, iaddr, IDX_BASE as i64);
        a.store(tmp, iaddr, 0);
    });

    counted_loop(&mut a, r(11), r(12), pairs, "pair", |a| {
        // Sequential index-list walk (wraps).
        a.andi(iaddr, r(11), IDX_MASK);
        a.sll(iaddr, iaddr, 3);
        a.addi(iaddr, iaddr, IDX_BASE as i64);
        a.load(id, iaddr, 0);
        // Gather the particle position (scattered).
        a.sll(paddr, id, 3);
        a.addi(paddr, paddr, POS_BASE as i64);
        a.load(x, paddr, 0);
        // Force ~ eps / (x^2 + 1) flavoured update.
        a.fmul(d, x, x);
        a.fadd(d, d, eps);
        a.fdiv(d, eps, d);
        a.fadd(force, force, d);
        // Scatter the update back.
        a.store(d, paddr, 0);
    });
    a.halt();
    a.assemble().expect("mdljsp2 kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::exec::{Executor, NeverMiss};

    #[test]
    fn forces_accumulate() {
        let p = program(Scale::Test);
        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 10_000_000).unwrap();
        assert!(e.state().halted());
        let force = e.state().fp(f(3));
        assert!(force.is_finite() && force > 0.0);
    }
}
