//! `nasa7`-like kernel: numerical kernel collection.
//!
//! SPECfp92 `nasa7` bundles seven numerical kernels (matrix multiply, FFT,
//! Cholesky, …). This stand-in combines the two memory-relevant extremes:
//! a blocked matrix multiply with good locality, and an FFT-style butterfly
//! pass whose power-of-two strides cause conflict misses in a direct-mapped
//! cache.

use imo_isa::{Asm, Program};

use crate::spec::Scale;
use crate::util::{counted_loop, f, r};

const N: u64 = 16; // matmul dimension (16x16 doubles = 2 KB per matrix)
const A_BASE: u64 = 0x40_0000;
const B_BASE: u64 = 0x40_1000;
const C_BASE: u64 = 0x40_2000;
/// Butterfly array: 8 K doubles = 64 KB.
const FFT_BASE: u64 = 0x50_0000;
const FFT_LEN: u64 = 8 * 1024;

/// Builds the kernel at `scale`.
pub fn program(scale: Scale) -> Program {
    let repeats = scale.factor();
    let mut a = Asm::new();
    let (aaddr, baddr, caddr, stride) = (r(1), r(2), r(3), r(4));
    let (av, bv, cv, one) = (f(1), f(2), f(3), f(4));
    let row_bytes = (N * 8) as i64;

    a.fli(one, 1.0);
    a.li(r(15), row_bytes); // B's column stride, used in the inner product

    counted_loop(&mut a, r(13), r(14), repeats, "rep", |a| {
        // --- Matrix multiply C += (A+1)(B+1) with A,B updated in place ---
        counted_loop(a, r(11), r(12), N, "mm_i", |a| {
            counted_loop(a, r(9), r(10), N, "mm_j", |a| {
                a.fli(cv, 0.0);
                // aaddr = A + i*row; baddr = B + j*8
                a.li(aaddr, row_bytes);
                a.mul(aaddr, aaddr, r(11));
                a.addi(aaddr, aaddr, A_BASE as i64);
                a.sll(baddr, r(9), 3);
                a.addi(baddr, baddr, B_BASE as i64);
                counted_loop(a, r(7), r(8), N, "mm_k", |a| {
                    a.load(av, aaddr, 0);
                    a.load(bv, baddr, 0);
                    a.fadd(av, av, one); // keep values alive from zero
                    a.fadd(bv, bv, one);
                    a.fmul(av, av, bv);
                    a.fadd(cv, cv, av);
                    a.addi(aaddr, aaddr, 8);
                    a.add(baddr, baddr, r(15)); // r15 = row_bytes (set below)
                });
                a.li(caddr, row_bytes);
                a.mul(caddr, caddr, r(11));
                a.addi(caddr, caddr, C_BASE as i64);
                a.sll(r(6), r(9), 3);
                a.add(caddr, caddr, r(6));
                a.store(cv, caddr, 0);
            });
        });
        // --- Butterfly pass: stride-2^k exchanges over a 64 KB array ---
        a.li(stride, 8 * 512); // 4 KB stride: conflicts in an 8 KB DM cache
        counted_loop(a, r(11), r(12), FFT_LEN / 1024, "bf_grp", |a| {
            a.sll(aaddr, r(11), 3);
            a.addi(aaddr, aaddr, FFT_BASE as i64);
            counted_loop(a, r(9), r(10), 512, "bf", |a| {
                a.add(baddr, aaddr, stride);
                a.load(av, aaddr, 0);
                a.load(bv, baddr, 0);
                a.fadd(cv, av, bv);
                a.fsub(av, av, bv);
                a.store(cv, aaddr, 0);
                a.store(av, baddr, 0);
                a.addi(aaddr, aaddr, 8);
            });
        });
    });
    a.halt();
    a.assemble().expect("nasa7 kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::exec::{Executor, NeverMiss};

    #[test]
    fn matmul_of_ones_gives_n() {
        let p = program(Scale::Test);
        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 50_000_000).unwrap();
        assert!(e.state().halted());
        // A and B read as zero, (0+1)(0+1) summed over k: C[i][j] = N.
        assert_eq!(e.state().memory().read_f64(C_BASE), N as f64);
    }
}
