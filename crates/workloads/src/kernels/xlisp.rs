//! `xlisp`-like kernel: interpreter heap traversal.
//!
//! SPECint92 `xlisp` is a Lisp interpreter; its memory time goes to chasing
//! cons cells scattered across the heap (list traversal and garbage-collector
//! marking). This kernel builds a permuted singly-linked list whose nodes
//! are spread one-per-line across a 512 KB arena, then repeatedly traverses
//! it: every hop is a *dependent* load, the access pattern dynamic
//! scheduling cannot overlap — which is also why this class of workload
//! motivates the paper's software-multithreading handler (§4.1.3).

use imo_isa::{Asm, Program};

use crate::spec::Scale;
use crate::util::{counted_loop, r};

/// 2048 cells, one per 256 B (`1 << CELL_SHIFT`) -> 512 KB arena.
const ARENA_BASE: u64 = 0x100_0000;
const CELLS: u64 = 2048;
const CELL_SHIFT: u8 = 8;
/// Index stride (odd, so the permutation is a single cycle mod 2048).
const PERM_STRIDE: u64 = 729;
const HOPS_PER_ROUND: u64 = 2048;
const ROUNDS_PER_UNIT: u64 = 3;

/// Builds the kernel at `scale`.
pub fn program(scale: Scale) -> Program {
    let rounds = ROUNDS_PER_UNIT * scale.factor();
    let mut a = Asm::new();
    let (base, idx, next_idx, addr, nptr) = (r(1), r(2), r(3), r(4), r(5));
    let (ptr, sum, mask) = (r(6), r(7), r(11));

    a.li(base, ARENA_BASE as i64);
    a.li(mask, (CELLS - 1) as i64);

    // Build: cell[i].car = arena + perm(i)*stride.
    a.li(idx, 0);
    counted_loop(&mut a, r(8), r(9), CELLS, "build", |a| {
        a.addi(next_idx, idx, PERM_STRIDE as i64);
        a.and(next_idx, next_idx, mask);
        // addr = base + idx*256 ; nptr = base + next_idx*256
        a.sll(addr, idx, CELL_SHIFT);
        a.add(addr, addr, base);
        a.sll(nptr, next_idx, CELL_SHIFT);
        a.add(nptr, nptr, base);
        a.store(nptr, addr, 0);
        a.or(idx, next_idx, imo_isa::Reg::ZERO);
    });

    // Traverse: chase the chain, doing a few ALU operations of "interpreter
    // work" per cons cell (tag checks, environment arithmetic), as a real
    // evaluator does between pointer dereferences.
    counted_loop(&mut a, r(13), r(14), rounds, "round", |a| {
        a.or(ptr, base, imo_isa::Reg::ZERO);
        counted_loop(a, r(8), r(9), HOPS_PER_ROUND, "chase", |a| {
            a.load(ptr, ptr, 0);
            a.srl(r(10), ptr, 3);
            a.andi(r(10), r(10), 0xff);
            a.xor(sum, sum, r(10));
            a.add(sum, sum, ptr);
            a.sll(r(10), sum, 1);
            a.xor(sum, sum, r(10));
        });
    });
    a.halt();
    a.assemble().expect("xlisp kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::exec::{Executor, NeverMiss};

    #[test]
    fn list_is_a_single_cycle() {
        let p = program(Scale::Test);
        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 10_000_000).unwrap();
        assert!(e.state().halted());
        // After a full round of CELLS hops the pointer returns to the head.
        assert_eq!(e.state().int(r(6)), ARENA_BASE);
        assert_ne!(e.state().int(r(7)), 0);
    }
}
