//! `espresso`-like kernel: bit-set operations over a cube list.
//!
//! SPECint92 `espresso` minimises boolean functions by combining "cubes"
//! (bit vectors). The working set is small — a cube list of a few tens of
//! kilobytes — so the primary-cache miss rate is low on the out-of-order
//! model's 32 KB cache and moderate on the in-order model's 8 KB one, while
//! control flow is dominated by data-dependent branches.

use imo_isa::{Asm, Cond, Program};

use crate::spec::Scale;
use crate::util::{counted_loop, lcg_step, r};

/// Cube list: 2048 × 8 B = 16 KB.
const CUBES_BASE: u64 = 0x40_0000;
const CUBE_MASK: u64 = 2047;
const ITERS_PER_UNIT: u64 = 3000;

/// Builds the kernel at `scale`.
pub fn program(scale: Scale) -> Program {
    let n = ITERS_PER_UNIT * scale.factor();
    let mut a = Asm::new();
    let (seed, tmp) = (r(1), r(2));
    let (idx, base, x, y, z, acc) = (r(3), r(4), r(5), r(6), r(7), r(10));

    a.li(seed, 0xbeef);
    a.li(base, CUBES_BASE as i64);

    // Initialise the cube list with pseudo-random masks (streaming writes).
    counted_loop(&mut a, r(8), r(9), CUBE_MASK + 1, "init", |a| {
        lcg_step(a, seed, tmp);
        a.sll(idx, r(8), 3);
        a.add(idx, idx, base);
        a.store(seed, idx, 0);
    });

    // Main pass: combine random cube pairs.
    counted_loop(&mut a, r(8), r(9), n, "main", |a| {
        lcg_step(a, seed, tmp);
        a.srl(idx, seed, 40);
        a.andi(idx, idx, CUBE_MASK - 1); // leave room for idx+1
        a.sll(idx, idx, 3);
        a.add(idx, idx, base);
        a.load(x, idx, 0);
        a.load(y, idx, 8);
        a.and(z, x, y);
        let disjoint = a.label(&format!("disjoint_{}", a.len()));
        a.branch(Cond::Eq, z, imo_isa::Reg::ZERO, disjoint);
        // Overlapping cubes: merge and write back.
        a.or(z, x, y);
        a.xor(z, z, seed);
        a.store(z, idx, 0);
        a.bind(disjoint).expect("label is bound exactly once");
        // Distance metric (population-count flavoured).
        a.srl(tmp, x, 32);
        a.xor(tmp, tmp, x);
        a.srl(x, tmp, 16);
        a.xor(tmp, tmp, x);
        a.add(acc, acc, tmp);
    });
    a.halt();
    a.assemble().expect("espresso kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::exec::{Executor, NeverMiss};

    #[test]
    fn runs_and_accumulates() {
        let p = program(Scale::Test);
        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 2_000_000).unwrap();
        assert!(e.state().halted());
        assert_ne!(e.state().int(r(10)), 0, "distance metric accumulated");
    }
}
