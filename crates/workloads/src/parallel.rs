//! Shared-memory reference traces for the §4.3 coherence case study.
//!
//! The paper evaluates fine-grained access control on parallel applications
//! under a TangoLite-based simulator. The application names in Figure 4 are
//! not recoverable from the text, so this module generates five synthetic
//! parallel kernels spanning the axes that drive the comparison between
//! reference-checking, ECC-fault and informing-memory access control:
//! read/write mix, sharing degree, conflict (coherence-action) rate, and the
//! fraction of potentially-shared references. Reference checking pays per
//! *shared reference*; ECC pays per *fault* (and per write on pages holding
//! READONLY data); informing pays per *primary miss*.
//!
//! The kernels are tuned the way real fine-grained-DSM applications behave:
//! shared working sets that largely fit the caches, most shared-classified
//! references quiet, and a few percent of references triggering coherence —
//! the regime in which the paper's Figure 4 comparison is meaningful. (If
//! coherence actions dominated, the 900-cycle network would drown every
//! detection scheme equally; if nothing were shared, there would be nothing
//! to compare.)

use imo_util::rng::SmallRng;

/// One memory reference in a processor's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Byte address referenced.
    pub addr: u64,
    /// `true` for writes.
    pub is_write: bool,
    /// Whether the compiler classified this datum as potentially shared
    /// (reference-checking schemes only instrument shared references).
    pub shared: bool,
    /// Compute cycles spent before this reference.
    pub think: u32,
}

/// A whole application: one trace per processor.
#[derive(Debug, Clone)]
pub struct ParallelTrace {
    /// Application name.
    pub name: &'static str,
    /// Per-processor reference streams.
    pub per_proc: Vec<Vec<TraceOp>>,
}

impl ParallelTrace {
    /// Total references across all processors.
    pub fn total_ops(&self) -> usize {
        self.per_proc.iter().map(Vec::len).sum()
    }

    /// Fraction of references that are writes.
    pub fn write_fraction(&self) -> f64 {
        let w: usize = self.per_proc.iter().flatten().filter(|o| o.is_write).count();
        w as f64 / self.total_ops().max(1) as f64
    }

    /// Fraction of references classified potentially-shared.
    pub fn shared_fraction(&self) -> f64 {
        let s: usize = self.per_proc.iter().flatten().filter(|o| o.shared).count();
        s as f64 / self.total_ops().max(1) as f64
    }
}

/// Trace-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Number of processors (16 in Table 2).
    pub procs: usize,
    /// References per processor.
    pub ops_per_proc: usize,
    /// RNG seed (traces are deterministic given the seed).
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig { procs: 16, ops_per_proc: 12_000, seed: 0x1996 }
    }
}

const LINE: u64 = 32;
/// Each processor owns a 1 MB private arena starting here.
const PRIVATE_BASE: u64 = 0x1000_0000;
/// Shared space.
const SHARED_BASE: u64 = 0x8000_0000;
/// Per-processor scratch regions inside the *shared-classified* space
/// (partitioned data: instrumented by reference checking, but conflict-free).
const SCRATCH_BASE: u64 = 0x9000_0000;
const SCRATCH_BYTES: u64 = 8 * 1024;

fn rng_for(cfg: &TraceConfig, app: u64, proc_id: usize) -> SmallRng {
    SmallRng::seed_from_u64(cfg.seed ^ (app << 32) ^ proc_id as u64)
}

fn think(rng: &mut SmallRng) -> u32 {
    rng.gen_range(8..24)
}

/// A quiet op in the processor's own shared-classified scratch region.
fn scratch_op(p: usize, cursor: u64, is_write: bool, rng: &mut SmallRng) -> TraceOp {
    let addr = SCRATCH_BASE + (p as u64) * SCRATCH_BYTES + (cursor * 8) % SCRATCH_BYTES;
    TraceOp { addr, is_write, shared: true, think: think(rng) }
}

/// Builds all five applications.
pub fn all_apps(cfg: &TraceConfig) -> Vec<ParallelTrace> {
    vec![stencil(cfg), migratory(cfg), producer_consumer(cfg), reduction(cfg), readmostly(cfg)]
}

/// Row-partitioned grid relaxation: each processor sweeps its own rows of a
/// shared grid (quiet after first touch, but still shared-classified and so
/// instrumented by reference checking) and exchanges halo values with its
/// left neighbour through a dedicated per-processor exchange page every 32nd
/// cell — read-heavy, nearest-neighbour sharing, low action rate.
pub fn stencil(cfg: &TraceConfig) -> ParallelTrace {
    let rows_per_proc = 3u64; // 12 KB per processor: fits the 16 KB L1
    let row_bytes = 4096u64;
    let exchange_base = SHARED_BASE + 0x10_0000; // one 4 KB page per proc
    let per_proc = (0..cfg.procs)
        .map(|p| {
            let mut rng = rng_for(cfg, 1, p);
            let my_base = SHARED_BASE + (p as u64) * rows_per_proc * row_bytes;
            let my_exch = exchange_base + (p as u64) * 4096;
            let left_exch = exchange_base + (((p + cfg.procs - 1) % cfg.procs) as u64) * 4096;
            let mut ops = Vec::with_capacity(cfg.ops_per_proc);
            let mut cursor = 0u64;
            while ops.len() < cfg.ops_per_proc {
                let in_row = cursor % (row_bytes / 8);
                let row = (cursor / (row_bytes / 8)) % rows_per_proc;
                let addr = my_base + row * row_bytes + in_row * 8;
                ops.push(TraceOp { addr, is_write: false, shared: true, think: think(&mut rng) });
                ops.push(TraceOp { addr, is_write: true, shared: true, think: think(&mut rng) });
                if cursor.is_multiple_of(32) {
                    // Publish a halo value; fetch the neighbour's.
                    let slot = ((cursor / 32) % 16) * 8; // 16 words = 4 lines
                    ops.push(TraceOp {
                        addr: my_exch + slot,
                        is_write: true,
                        shared: true,
                        think: think(&mut rng),
                    });
                    ops.push(TraceOp {
                        addr: left_exch + slot,
                        is_write: false,
                        shared: true,
                        think: think(&mut rng),
                    });
                }
                cursor += 3;
            }
            ops.truncate(cfg.ops_per_proc);
            ops
        })
        .collect();
    ParallelTrace { name: "stencil", per_proc }
}

/// Migratory objects: lock-protected records (8 KB pool) bounce between
/// processors in read-modify-write bursts, separated by runs of quiet
/// partitioned work. Write-heavy at the sharing points — the pattern that
/// punishes ECC's page-grain write protection (object pages always hold
/// READONLY lines belonging to other processors' copies).
pub fn migratory(cfg: &TraceConfig) -> ParallelTrace {
    let objects = 64u64;
    let obj_bytes = 4 * LINE;
    let quiet_run = 120u64;
    let per_proc = (0..cfg.procs)
        .map(|p| {
            let mut rng = rng_for(cfg, 2, p);
            let mut ops = Vec::with_capacity(cfg.ops_per_proc);
            let mut cursor = 0u64;
            while ops.len() < cfg.ops_per_proc {
                // Burst: read all four lines of one object, update two.
                let obj = rng.gen_range(0..objects);
                let base = SHARED_BASE + obj * obj_bytes;
                for l in 0..4u64 {
                    ops.push(TraceOp {
                        addr: base + l * LINE,
                        is_write: false,
                        shared: true,
                        think: think(&mut rng),
                    });
                }
                for l in 0..2u64 {
                    ops.push(TraceOp {
                        addr: base + l * LINE,
                        is_write: true,
                        shared: true,
                        think: think(&mut rng),
                    });
                }
                // Quiet partitioned work (alternating read/write).
                for q in 0..quiet_run {
                    ops.push(scratch_op(p, cursor + q, q % 2 == 1, &mut rng));
                }
                cursor += quiet_run;
            }
            ops.truncate(cfg.ops_per_proc);
            ops
        })
        .collect();
    ParallelTrace { name: "migratory", per_proc }
}

/// Ring producer/consumer: small batches flow through 4 KB ring buffers
/// between quiet runs; balanced read/write mix with pairwise sharing.
pub fn producer_consumer(cfg: &TraceConfig) -> ParallelTrace {
    let buf_bytes = 4 * 1024u64;
    let quiet_run = 80u64;
    let per_proc = (0..cfg.procs)
        .map(|p| {
            let mut rng = rng_for(cfg, 3, p);
            let my_buf = SHARED_BASE + (p as u64) * buf_bytes;
            let left_buf = SHARED_BASE + (((p + cfg.procs - 1) % cfg.procs) as u64) * buf_bytes;
            let mut ops = Vec::with_capacity(cfg.ops_per_proc);
            let mut pos = 0u64;
            let mut cursor = 0u64;
            while ops.len() < cfg.ops_per_proc {
                // Produce one line's worth, consume one line's worth.
                for i in 0..4u64 {
                    ops.push(TraceOp {
                        addr: my_buf + ((pos + i) * 8) % buf_bytes,
                        is_write: true,
                        shared: true,
                        think: think(&mut rng),
                    });
                }
                for i in 0..4u64 {
                    ops.push(TraceOp {
                        addr: left_buf + ((pos + i) * 8) % buf_bytes,
                        is_write: false,
                        shared: true,
                        think: think(&mut rng),
                    });
                }
                pos += 4;
                for q in 0..quiet_run {
                    ops.push(scratch_op(p, cursor + q, q % 2 == 1, &mut rng));
                }
                cursor += quiet_run;
            }
            ops.truncate(cfg.ops_per_proc);
            ops
        })
        .collect();
    ParallelTrace { name: "producer_consumer", per_proc }
}

/// Private streaming with a shared accumulator: most references stream over
/// *unshared* private data (reference checking is cheap here — the app where
/// the schemes converge), interleaved with reads of a shared read-only
/// coefficient table; every 32nd reference updates a per-processor slot in a
/// falsely-shared result block.
pub fn reduction(cfg: &TraceConfig) -> ParallelTrace {
    let coef_base = SHARED_BASE + 0x20_0000; // 4 KB read-only table
    let per_proc = (0..cfg.procs)
        .map(|p| {
            let mut rng = rng_for(cfg, 4, p);
            let private = PRIVATE_BASE + (p as u64) * 0x10_0000;
            let acc = SHARED_BASE + (p as u64) * 8; // false-sharing-prone block
            let mut ops = Vec::with_capacity(cfg.ops_per_proc);
            let mut cursor = 0u64;
            while ops.len() < cfg.ops_per_proc {
                for k in 0..31 {
                    if k % 4 == 3 {
                        // Shared-classified read-only coefficient lookup:
                        // quiet for informing/ECC, taxed by ref-checking.
                        ops.push(TraceOp {
                            addr: coef_base + rng.gen_range(0..512u64) * 8,
                            is_write: false,
                            shared: true,
                            think: think(&mut rng),
                        });
                    } else {
                        ops.push(TraceOp {
                            addr: private + (cursor * 8) % 0x10_0000,
                            is_write: false,
                            shared: false,
                            think: think(&mut rng),
                        });
                    }
                    cursor += 1;
                }
                ops.push(TraceOp {
                    addr: acc,
                    is_write: true,
                    shared: true,
                    think: think(&mut rng),
                });
            }
            ops.truncate(cfg.ops_per_proc);
            ops
        })
        .collect();
    ParallelTrace { name: "reduction", per_proc }
}

/// Read-mostly shared table: every processor reads an 8 KB table (resident
/// in each L1 once warm); processor 0 sparsely rewrites entries,
/// invalidating the readers — the pattern that punishes per-reference
/// checking hardest.
pub fn readmostly(cfg: &TraceConfig) -> ParallelTrace {
    let table_bytes = 8 * 1024u64;
    let per_proc = (0..cfg.procs)
        .map(|p| {
            let mut rng = rng_for(cfg, 5, p);
            let mut ops = Vec::with_capacity(cfg.ops_per_proc);
            while ops.len() < cfg.ops_per_proc {
                let addr = SHARED_BASE + rng.gen_range(0..table_bytes / 8) * 8;
                let is_write = p == 0 && rng.gen_range(0..64u32) == 0;
                ops.push(TraceOp { addr, is_write, shared: true, think: think(&mut rng) });
            }
            ops
        })
        .collect();
    ParallelTrace { name: "readmostly", per_proc }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TraceConfig {
        TraceConfig { procs: 4, ops_per_proc: 1000, seed: 7 }
    }

    #[test]
    fn five_apps_with_full_traces() {
        let apps = all_apps(&cfg());
        assert_eq!(apps.len(), 5);
        for app in &apps {
            assert_eq!(app.per_proc.len(), 4, "{}", app.name);
            for t in &app.per_proc {
                assert_eq!(t.len(), 1000, "{}", app.name);
            }
        }
    }

    #[test]
    fn traces_are_deterministic() {
        let a = migratory(&cfg());
        let b = migratory(&cfg());
        assert_eq!(a.per_proc, b.per_proc);
    }

    #[test]
    fn write_mixes_span_the_axes() {
        let apps = all_apps(&cfg());
        let wf: std::collections::HashMap<_, _> =
            apps.iter().map(|a| (a.name, a.write_fraction())).collect();
        assert!(wf["migratory"] > wf["readmostly"] + 0.2, "{wf:?}");
        assert!(wf["producer_consumer"] > 0.3 && wf["producer_consumer"] < 0.7, "{wf:?}");
        assert!(wf["readmostly"] < 0.05, "{wf:?}");
    }

    #[test]
    fn reduction_is_mostly_private_but_others_are_shared_classified() {
        let apps = all_apps(&cfg());
        for app in &apps {
            let sf = app.shared_fraction();
            if app.name == "reduction" {
                // ~25%: coefficient reads + accumulator updates.
                assert!(sf < 0.4, "reduction: {sf}");
            } else {
                assert!(sf > 0.9, "{}: {sf}", app.name);
            }
        }
    }

    #[test]
    fn stencil_exchanges_halo_values_with_left_neighbour() {
        let s = stencil(&cfg());
        let exchange_base = SHARED_BASE + 0x10_0000;
        // Processor 1 must read processor 0's exchange page and write its own.
        let p0_page = exchange_base..exchange_base + 4096;
        let p1_page = exchange_base + 4096..exchange_base + 2 * 4096;
        let ops = &s.per_proc[1];
        assert!(ops.iter().any(|o| !o.is_write && p0_page.contains(&o.addr)));
        assert!(ops.iter().any(|o| o.is_write && p1_page.contains(&o.addr)));
    }

    #[test]
    fn scratch_regions_are_disjoint_per_processor() {
        let m = migratory(&cfg());
        for (p, t) in m.per_proc.iter().enumerate() {
            for op in t {
                if op.addr >= SCRATCH_BASE {
                    let owner = (op.addr - SCRATCH_BASE) / SCRATCH_BYTES;
                    assert_eq!(owner as usize, p, "scratch is partitioned");
                }
            }
        }
    }
}
