//! Shared code-generation helpers for the kernels.
//!
//! Workload kernels restrict themselves to `r1`–`r15` and `f1`–`f15`:
//! `r24`–`r27` belong to miss handlers (see `imo-core`) and the remaining
//! registers are left for instrumentation and future extensions.

use imo_isa::{Asm, Cond, Reg};

/// Integer register `r<i>` (kernels use 1..=15).
pub fn r(i: u8) -> Reg {
    debug_assert!((1..=15).contains(&i), "kernel integer registers are r1..r15");
    Reg::int(i)
}

/// FP register `f<i>` (kernels use 1..=15).
pub fn f(i: u8) -> Reg {
    debug_assert!((1..=15).contains(&i), "kernel fp registers are f1..f15");
    Reg::fp(i)
}

/// Emits one step of a multiplicative LCG in `seed`:
/// `seed = seed * 6364136223846793005 + 1442695040888963407` (the Knuth
/// MMIX constants), leaving pseudo-random high-entropy bits in `seed`.
/// Clobbers `tmp`.
pub fn lcg_step(a: &mut Asm, seed: Reg, tmp: Reg) {
    a.li(tmp, 0x5851_f42d_4c95_7f2d_u64 as i64);
    a.mul(seed, seed, tmp);
    a.li(tmp, 0x1405_7b7e_f767_814f_u64 as i64);
    a.add(seed, seed, tmp);
}

/// Emits a counted loop: `body` is emitted between the counter setup and the
/// backward branch. `ctr` counts 0..n, `limit` holds the bound. Both
/// registers are clobbered.
pub fn counted_loop(
    a: &mut Asm,
    ctr: Reg,
    limit: Reg,
    n: u64,
    label: &str,
    body: impl FnOnce(&mut Asm),
) {
    a.li(ctr, 0);
    a.li(limit, n as i64);
    let top = a.here(label);
    body(a);
    a.addi(ctr, ctr, 1);
    a.branch(Cond::Lt, ctr, limit, top);
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::exec::{Executor, NeverMiss};

    #[test]
    fn lcg_produces_varied_bits() {
        let mut a = Asm::new();
        let (seed, tmp) = (r(1), r(2));
        a.li(seed, 42);
        lcg_step(&mut a, seed, tmp);
        lcg_step(&mut a, seed, tmp);
        a.halt();
        let p = a.assemble().unwrap();
        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 100).unwrap();
        let v = e.state().int(r(1));
        assert_ne!(v, 42);
        assert_ne!(v & 0xffff, 0, "low bits populated");
        assert_ne!(v >> 48, 0, "high bits populated");
    }

    #[test]
    fn counted_loop_runs_n_times() {
        let mut a = Asm::new();
        let acc = r(3);
        counted_loop(&mut a, r(1), r(2), 17, "t", |a| {
            a.addi(acc, acc, 2);
        });
        a.halt();
        let p = a.assemble().unwrap();
        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 1000).unwrap();
        assert_eq!(e.state().int(acc), 34);
    }
}
