//! Property-based tests of the directory protocol: classic coherence
//! invariants must hold after any access sequence. Runs on the in-tree
//! `imo_util::check` harness (256 seeded cases per property; a failure
//! prints its reproducing `IMO_CHECK_SEED`).

use imo_util::check::{Checker, Gen};
use imo_util::{ensure, ensure_eq};

use imo_coherence::{Directory, LineState, MachineParams};

fn params(procs: usize) -> MachineParams {
    let mut p = MachineParams::table2();
    p.procs = procs;
    p
}

#[derive(Debug, Clone, Copy)]
struct Op {
    proc: usize,
    line: u64,
    is_write: bool,
}

fn ops(g: &mut Gen, procs: usize) -> Vec<Op> {
    g.vec(1..300, |g| Op {
        proc: g.int(0..procs),
        line: 0x8000_0000 + g.int(0u64..8) * 32,
        is_write: g.bool(),
    })
}

/// Applies an access the way the simulator does: act only when the current
/// protection is insufficient.
fn access(d: &mut Directory, op: Op) {
    let prot = d.protection(op.proc, op.line);
    let insufficient =
        if op.is_write { prot != LineState::ReadWrite } else { prot == LineState::Invalid };
    if insufficient {
        let _ = d.act(op.proc, op.line, op.is_write);
    }
}

/// Single-writer: whenever some node holds READWRITE, no other node has
/// any access to the line.
#[test]
fn single_writer_invariant() {
    Checker::new("single_writer_invariant").run(|g| {
        let procs = 6;
        let seq = ops(g, procs);
        let mut d = Directory::new(params(procs));
        let mut lines = std::collections::BTreeSet::new();
        for op in seq {
            lines.insert(op.line);
            access(&mut d, op);
            for &line in &lines {
                let writers: Vec<usize> =
                    (0..procs).filter(|&p| d.protection(p, line) == LineState::ReadWrite).collect();
                let readers: Vec<usize> =
                    (0..procs).filter(|&p| d.protection(p, line) == LineState::ReadOnly).collect();
                ensure!(writers.len() <= 1, "multiple writers of {line:#x}: {writers:?}");
                if !writers.is_empty() {
                    ensure!(
                        readers.is_empty(),
                        "writer {} coexists with readers {:?} on {line:#x}",
                        writers[0],
                        readers
                    );
                }
            }
        }
        Ok(())
    });
}

/// Liveness/correctness of the access path: after an access, the
/// requester always ends up with sufficient protection.
#[test]
fn requester_always_gains_access() {
    Checker::new("requester_always_gains_access").run(|g| {
        let procs = 5;
        let seq = ops(g, procs);
        let mut d = Directory::new(params(procs));
        for op in seq {
            access(&mut d, op);
            let prot = d.protection(op.proc, op.line);
            if op.is_write {
                ensure_eq!(prot, LineState::ReadWrite);
            } else {
                ensure!(prot != LineState::Invalid);
            }
        }
        Ok(())
    });
}

/// The page-level READONLY tracking used by the ECC scheme is exactly
/// consistent with the per-line protections.
#[test]
fn page_readonly_tracking_is_consistent() {
    Checker::new("page_readonly_tracking_is_consistent").run(|g| {
        let procs = 4;
        let seq = ops(g, procs);
        let p = params(procs);
        let mut d = Directory::new(p);
        let mut lines = std::collections::BTreeSet::new();
        for op in seq {
            lines.insert(op.line);
            access(&mut d, op);
            for proc in 0..procs {
                for &line in &lines {
                    let derived = lines
                        .iter()
                        .filter(|&&l| p.page_of(l) == p.page_of(line))
                        .any(|&l| d.protection(proc, l) == LineState::ReadOnly);
                    ensure_eq!(
                        d.page_has_readonly(proc, line),
                        derived,
                        "proc {} page of {:#x}",
                        proc,
                        line
                    );
                }
            }
        }
        Ok(())
    });
}

/// Action hop counts are bounded (request + reply + one third-party hop).
#[test]
fn action_hops_are_bounded() {
    Checker::new("action_hops_are_bounded").run(|g| {
        let procs = 6;
        let seq = ops(g, procs);
        let mut d = Directory::new(params(procs));
        for op in seq {
            let prot = d.protection(op.proc, op.line);
            let insufficient =
                if op.is_write { prot != LineState::ReadWrite } else { prot == LineState::Invalid };
            if insufficient {
                let out = d.act(op.proc, op.line, op.is_write);
                ensure!(out.hops <= 3, "hops {}", out.hops);
            }
        }
        Ok(())
    });
}
