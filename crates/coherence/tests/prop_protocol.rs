//! Property-based tests of the directory protocol: classic coherence
//! invariants must hold after any access sequence.

use proptest::prelude::*;

use imo_coherence::{Directory, LineState, MachineParams};

fn params(procs: usize) -> MachineParams {
    let mut p = MachineParams::table2();
    p.procs = procs;
    p
}

#[derive(Debug, Clone, Copy)]
struct Op {
    proc: usize,
    line: u64,
    is_write: bool,
}

fn ops(procs: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0..procs, 0u64..8, any::<bool>()).prop_map(move |(p, l, w)| Op {
            proc: p,
            line: 0x8000_0000 + l * 32,
            is_write: w,
        }),
        1..300,
    )
}

/// Applies an access the way the simulator does: act only when the current
/// protection is insufficient.
fn access(d: &mut Directory, procs: usize, op: Op) {
    let prot = d.protection(op.proc, op.line);
    let insufficient = if op.is_write {
        prot != LineState::ReadWrite
    } else {
        prot == LineState::Invalid
    };
    if insufficient {
        let _ = d.act(op.proc, op.line, op.is_write);
    }
    let _ = procs;
}

proptest! {
    /// Single-writer: whenever some node holds READWRITE, no other node has
    /// any access to the line.
    #[test]
    fn single_writer_invariant(seq in ops(6)) {
        let procs = 6;
        let mut d = Directory::new(params(procs));
        let mut lines = std::collections::BTreeSet::new();
        for op in seq {
            lines.insert(op.line);
            access(&mut d, procs, op);
            for &line in &lines {
                let writers: Vec<usize> = (0..procs)
                    .filter(|&p| d.protection(p, line) == LineState::ReadWrite)
                    .collect();
                let readers: Vec<usize> = (0..procs)
                    .filter(|&p| d.protection(p, line) == LineState::ReadOnly)
                    .collect();
                prop_assert!(writers.len() <= 1, "multiple writers of {line:#x}: {writers:?}");
                if !writers.is_empty() {
                    prop_assert!(
                        readers.is_empty(),
                        "writer {} coexists with readers {:?} on {line:#x}",
                        writers[0],
                        readers
                    );
                }
            }
        }
    }

    /// Liveness/correctness of the access path: after an access, the
    /// requester always ends up with sufficient protection.
    #[test]
    fn requester_always_gains_access(seq in ops(5)) {
        let procs = 5;
        let mut d = Directory::new(params(procs));
        for op in seq {
            access(&mut d, procs, op);
            let prot = d.protection(op.proc, op.line);
            if op.is_write {
                prop_assert_eq!(prot, LineState::ReadWrite);
            } else {
                prop_assert!(prot != LineState::Invalid);
            }
        }
    }

    /// The page-level READONLY tracking used by the ECC scheme is exactly
    /// consistent with the per-line protections.
    #[test]
    fn page_readonly_tracking_is_consistent(seq in ops(4)) {
        let procs = 4;
        let p = params(procs);
        let mut d = Directory::new(p);
        let mut lines = std::collections::BTreeSet::new();
        for op in seq {
            lines.insert(op.line);
            access(&mut d, procs, op);
            for proc in 0..procs {
                for &line in &lines {
                    let derived = lines
                        .iter()
                        .filter(|&&l| p.page_of(l) == p.page_of(line))
                        .any(|&l| d.protection(proc, l) == LineState::ReadOnly);
                    prop_assert_eq!(
                        d.page_has_readonly(proc, line),
                        derived,
                        "proc {} page of {:#x}",
                        proc,
                        line
                    );
                }
            }
        }
    }

    /// Action hop counts are bounded (request + reply + one third-party hop).
    #[test]
    fn action_hops_are_bounded(seq in ops(6)) {
        let procs = 6;
        let mut d = Directory::new(params(procs));
        for op in seq {
            let prot = d.protection(op.proc, op.line);
            let insufficient = if op.is_write {
                prot != LineState::ReadWrite
            } else {
                prot == LineState::Invalid
            };
            if insufficient {
                let out = d.act(op.proc, op.line, op.is_write);
                prop_assert!(out.hops <= 3, "hops {}", out.hops);
            }
        }
    }
}
