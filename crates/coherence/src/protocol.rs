//! Directory-based invalidation protocol over per-line protection state.
//!
//! Each potentially-shared line has, at every node, a user-level protection
//! state — INVALID, READONLY or READWRITE, exactly the three states of the
//! paper's per-cache-line protection table — and a directory entry at its
//! home node tracking the global state and sharer set. The protocol is a
//! standard MSI invalidation protocol expressed over those protection
//! states.

use std::collections::HashMap;

use imo_util::json::Json;
use imo_util::snapshot::{self, SnapshotError};

use crate::config::MachineParams;

/// Per-node protection state of one line (§4.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, PartialOrd, Ord)]
pub enum LineState {
    /// No access; reads and writes need protocol action.
    #[default]
    Invalid,
    /// Reads allowed; writes need protocol action.
    ReadOnly,
    /// Full access.
    ReadWrite,
}

/// What a protocol action had to do, for latency accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActionOutcome {
    /// Network hops on the critical path (0 when the home is the requester
    /// and no third party was involved).
    pub hops: u64,
    /// Nodes whose copy was invalidated (their caches must evict the line).
    pub invalidated: Vec16,
    /// Nodes whose copy was downgraded to READONLY.
    pub downgraded: Option<usize>,
}

/// A tiny inline set of node ids (≤ 64 procs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Vec16 {
    bits: u64,
}

impl Vec16 {
    /// Empty set.
    pub fn new() -> Vec16 {
        Vec16::default()
    }

    /// Inserts a node id.
    pub fn insert(&mut self, p: usize) {
        self.bits |= 1 << p;
    }

    /// Removes a node id.
    pub fn remove(&mut self, p: usize) {
        self.bits &= !(1 << p);
    }

    /// Membership test.
    pub fn contains(&self, p: usize) -> bool {
        self.bits & (1 << p) != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Number of members.
    pub fn len(&self) -> u32 {
        self.bits.count_ones()
    }

    /// Iterates over member ids.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..64).filter(|&p| self.contains(p))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DirState {
    Uncached,
    Shared,
    Exclusive(usize),
}

#[derive(Debug, Clone)]
struct DirEntry {
    state: DirState,
    sharers: Vec16,
}

/// The directory plus every node's protection table.
#[derive(Debug, Clone)]
pub struct Directory {
    params: MachineParams,
    entries: HashMap<u64, DirEntry>,
    /// protection[proc] maps line -> state (absent = Invalid).
    protection: Vec<HashMap<u64, LineState>>,
    /// Per-proc, per-page count of READONLY lines (for the ECC scheme's
    /// page-grain write protection).
    readonly_per_page: Vec<HashMap<u64, u32>>,
}

impl Directory {
    /// Creates an empty directory for `params.procs` nodes.
    pub fn new(params: MachineParams) -> Directory {
        Directory {
            entries: HashMap::new(),
            protection: vec![HashMap::new(); params.procs],
            readonly_per_page: vec![HashMap::new(); params.procs],
            params,
        }
    }

    /// The protection state of `line` at node `p`.
    pub fn protection(&self, p: usize, line: u64) -> LineState {
        self.protection[p].get(&line).copied().unwrap_or_default()
    }

    /// Whether the page containing `line` has any READONLY line at node `p`.
    pub fn page_has_readonly(&self, p: usize, line: u64) -> bool {
        let page = self.params.page_of(line);
        self.readonly_per_page[p].get(&page).copied().unwrap_or(0) > 0
    }

    fn set_protection(&mut self, p: usize, line: u64, new: LineState) {
        let old = self.protection(p, line);
        if old == new {
            return;
        }
        let page = self.params.page_of(line);
        if old == LineState::ReadOnly {
            let c = self.readonly_per_page[p].entry(page).or_insert(0);
            *c = c.saturating_sub(1);
        }
        if new == LineState::ReadOnly {
            *self.readonly_per_page[p].entry(page).or_insert(0) += 1;
        }
        if new == LineState::Invalid {
            self.protection[p].remove(&line);
        } else {
            self.protection[p].insert(line, new);
        }
    }

    /// Performs the protocol action for an access by `p` to `line` whose
    /// current protection is insufficient. Returns what happened; the caller
    /// charges latency and evicts invalidated copies from victim caches.
    pub fn act(&mut self, p: usize, line: u64, is_write: bool) -> ActionOutcome {
        let home = self.params.home_of(line);
        let entry = self
            .entries
            .entry(line)
            .or_insert(DirEntry { state: DirState::Uncached, sharers: Vec16::new() });
        let mut invalidated = Vec16::new();
        let mut downgraded = None;
        let mut third_party = false;

        if is_write {
            match entry.state {
                DirState::Uncached => {}
                DirState::Shared => {
                    for q in entry.sharers.iter().collect::<Vec<_>>() {
                        if q != p {
                            invalidated.insert(q);
                        }
                    }
                    third_party = !invalidated.is_empty();
                }
                DirState::Exclusive(q) => {
                    if q != p {
                        invalidated.insert(q);
                        third_party = true;
                    }
                }
            }
            entry.state = DirState::Exclusive(p);
            entry.sharers = Vec16::new();
            entry.sharers.insert(p);
        } else {
            match entry.state {
                DirState::Uncached => {
                    // First reader gets an exclusive READWRITE copy (the
                    // common read-before-write optimisation).
                    entry.state = DirState::Exclusive(p);
                    entry.sharers.insert(p);
                }
                DirState::Shared => {
                    entry.sharers.insert(p);
                }
                DirState::Exclusive(q) if q == p => {
                    // Re-read of an owned line (protection was lost locally,
                    // e.g. after first-touch): no remote work.
                }
                DirState::Exclusive(q) => {
                    downgraded = Some(q);
                    entry.state = DirState::Shared;
                    entry.sharers.insert(p);
                    third_party = true;
                }
            }
        }

        // Apply protection changes: writers and sole owners get READWRITE,
        // everyone else READONLY.
        let exclusive_owner = matches!(entry.state, DirState::Exclusive(q) if q == p);
        let my_new =
            if is_write || exclusive_owner { LineState::ReadWrite } else { LineState::ReadOnly };
        self.set_protection(p, line, my_new);
        for q in invalidated.iter().collect::<Vec<_>>() {
            self.set_protection(q, line, LineState::Invalid);
        }
        if let Some(q) = downgraded {
            self.set_protection(q, line, LineState::ReadOnly);
        }

        // Critical-path hops: request to home + reply (0 if home is local),
        // plus one more hop if a third party had to be reached.
        let hops = if p == home { 0 } else { 2 } + if third_party { 1 } else { 0 };
        ActionOutcome { hops, invalidated, downgraded }
    }

    /// Encodes the directory, every node's protection table and the per-page
    /// READONLY counts as parallel hex arrays (entries sorted by line, zero
    /// counts dropped), so the same protocol state always renders
    /// byte-identical wire text. Part of the coherence run checkpoint
    /// (`coh.checkpoint`); the envelope lives there, not here.
    pub(crate) fn snap_body(&self) -> Json {
        let mut lines: Vec<u64> = self.entries.keys().copied().collect();
        lines.sort_unstable();
        let mut dstates = Vec::with_capacity(lines.len());
        let mut owners = Vec::with_capacity(lines.len());
        let mut sharers = Vec::with_capacity(lines.len());
        for &line in &lines {
            let e = &self.entries[&line];
            let (s, o) = match e.state {
                DirState::Uncached => (0, 0),
                DirState::Shared => (1, 0),
                DirState::Exclusive(q) => (2, q as u64),
            };
            dstates.push(s);
            owners.push(o);
            sharers.push(e.sharers.bits);
        }
        let prot = self
            .protection
            .iter()
            .map(|m| {
                let mut ls: Vec<u64> = m.keys().copied().collect();
                ls.sort_unstable();
                let states: Vec<u64> = ls
                    .iter()
                    .map(|l| match m[l] {
                        LineState::Invalid => 0,
                        LineState::ReadOnly => 1,
                        LineState::ReadWrite => 2,
                    })
                    .collect();
                Json::obj([
                    ("lines", snapshot::u64s_json(&ls)),
                    ("states", snapshot::u64s_json(&states)),
                ])
            })
            .collect::<Vec<_>>();
        let ro = self
            .readonly_per_page
            .iter()
            .map(|m| {
                let mut pages: Vec<u64> =
                    m.iter().filter(|&(_, &c)| c > 0).map(|(&p, _)| p).collect();
                pages.sort_unstable();
                let counts: Vec<u64> = pages.iter().map(|p| u64::from(m[p])).collect();
                Json::obj([
                    ("pages", snapshot::u64s_json(&pages)),
                    ("counts", snapshot::u64s_json(&counts)),
                ])
            })
            .collect::<Vec<_>>();
        Json::obj([
            ("lines", snapshot::u64s_json(&lines)),
            ("dstates", snapshot::u64s_json(&dstates)),
            ("owners", snapshot::u64s_json(&owners)),
            ("sharers", snapshot::u64s_json(&sharers)),
            ("prot", Json::Arr(prot)),
            ("ro_pages", Json::Arr(ro)),
        ])
    }

    /// Restores a directory encoded by [`Directory::snap_body`] for
    /// `params.procs` nodes.
    pub(crate) fn snap_restore(
        params: MachineParams,
        data: &Json,
    ) -> Result<Directory, SnapshotError> {
        let lines = snapshot::get_u64s(data, "lines")?;
        let dstates = snapshot::get_u64s(data, "dstates")?;
        let owners = snapshot::get_u64s(data, "owners")?;
        let sharers = snapshot::get_u64s(data, "sharers")?;
        if dstates.len() != lines.len()
            || owners.len() != lines.len()
            || sharers.len() != lines.len()
        {
            return Err(SnapshotError::Bad("dstates"));
        }
        let mut dir = Directory::new(params);
        for i in 0..lines.len() {
            let state = match dstates[i] {
                0 => DirState::Uncached,
                1 => DirState::Shared,
                2 => DirState::Exclusive(
                    usize::try_from(owners[i]).map_err(|_| SnapshotError::Bad("owners"))?,
                ),
                _ => return Err(SnapshotError::Bad("dstates")),
            };
            dir.entries.insert(lines[i], DirEntry { state, sharers: Vec16 { bits: sharers[i] } });
        }
        let prot = snapshot::field(data, "prot")?.as_arr().ok_or(SnapshotError::Bad("prot"))?;
        let ro =
            snapshot::field(data, "ro_pages")?.as_arr().ok_or(SnapshotError::Bad("ro_pages"))?;
        if prot.len() != params.procs || ro.len() != params.procs {
            return Err(SnapshotError::Bad("prot"));
        }
        for (p, j) in prot.iter().enumerate() {
            let ls = snapshot::get_u64s(j, "lines")?;
            let states = snapshot::get_u64s(j, "states")?;
            if states.len() != ls.len() {
                return Err(SnapshotError::Bad("states"));
            }
            for (l, s) in ls.iter().zip(&states) {
                let st = match s {
                    1 => LineState::ReadOnly,
                    2 => LineState::ReadWrite,
                    _ => return Err(SnapshotError::Bad("states")),
                };
                dir.protection[p].insert(*l, st);
            }
        }
        for (p, j) in ro.iter().enumerate() {
            let pages = snapshot::get_u64s(j, "pages")?;
            let counts = snapshot::get_u64s(j, "counts")?;
            if counts.len() != pages.len() {
                return Err(SnapshotError::Bad("counts"));
            }
            for (pg, c) in pages.iter().zip(&counts) {
                let c = u32::try_from(*c).map_err(|_| SnapshotError::Bad("counts"))?;
                if c == 0 {
                    return Err(SnapshotError::Bad("counts"));
                }
                dir.readonly_per_page[p].insert(*pg, c);
            }
        }
        Ok(dir)
    }

    /// A one-line human-readable description of `line`'s directory state and
    /// every node's protection — used in deadlock / retry-exhaustion
    /// diagnostics.
    pub fn describe(&self, line: u64) -> String {
        use std::fmt::Write as _;
        match self.entries.get(&line) {
            None => format!("line {line:#x}: uncached (no directory entry)"),
            Some(e) => {
                let mut s = format!("line {line:#x}: {:?}, sharers {{", e.state);
                let mut first = true;
                for q in e.sharers.iter() {
                    if !first {
                        s.push(',');
                    }
                    let _ = write!(s, "{q}");
                    first = false;
                }
                s.push_str("}, protection [");
                first = true;
                for q in 0..self.params.procs {
                    let st = self.protection(q, line);
                    if st != LineState::Invalid {
                        if !first {
                            s.push(' ');
                        }
                        let _ = write!(s, "p{q}={st:?}");
                        first = false;
                    }
                }
                s.push(']');
                s
            }
        }
    }

    /// Checks the protocol's safety invariants over every line the directory
    /// has ever seen:
    ///
    /// * **single writer** — at most one node holds READWRITE protection, and
    ///   only while the directory is in the exclusive state for that node;
    /// * **no lost exclusive lines** — an exclusive owner always still holds
    ///   READWRITE protection (the grant was not silently dropped);
    /// * **sharer consistency** — every node with any protection is a member
    ///   of the sharer set, and shared-state copies are READONLY.
    ///
    /// Returns a description of the first violation, if any. Used by the
    /// fault-injection suites to prove that drop/duplicate/delay schedules
    /// never corrupt protocol state.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (&line, e) in &self.entries {
            let held: Vec<(usize, LineState)> = (0..self.params.procs)
                .map(|q| (q, self.protection(q, line)))
                .filter(|&(_, s)| s != LineState::Invalid)
                .collect();
            let writers: Vec<usize> =
                held.iter().filter(|&&(_, s)| s == LineState::ReadWrite).map(|&(q, _)| q).collect();
            if writers.len() > 1 {
                return Err(format!("multiple writers {writers:?}; {}", self.describe(line)));
            }
            for &(q, _) in &held {
                if !e.sharers.contains(q) {
                    return Err(format!(
                        "p{q} holds protection but is no sharer; {}",
                        self.describe(line)
                    ));
                }
            }
            match e.state {
                DirState::Uncached => {
                    if !held.is_empty() {
                        return Err(format!("uncached line is held; {}", self.describe(line)));
                    }
                }
                DirState::Exclusive(owner) => {
                    if self.protection(owner, line) != LineState::ReadWrite {
                        return Err(format!(
                            "exclusive line lost by its owner p{owner}; {}",
                            self.describe(line)
                        ));
                    }
                    if held.len() != 1 {
                        return Err(format!(
                            "exclusive line held by {} nodes; {}",
                            held.len(),
                            self.describe(line)
                        ));
                    }
                }
                DirState::Shared => {
                    if !writers.is_empty() {
                        return Err(format!(
                            "writer p{} on a shared line; {}",
                            writers[0],
                            self.describe(line)
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> Directory {
        let mut p = MachineParams::table2();
        p.procs = 4;
        Directory::new(p)
    }

    #[test]
    fn first_read_grants_exclusive_readwrite() {
        let mut d = dir();
        let out = d.act(1, 0x8000_0000, false);
        assert_eq!(d.protection(1, 0x8000_0000), LineState::ReadWrite);
        assert!(out.invalidated.is_empty());
        assert_eq!(out.hops, 2, "home of line 0 is proc 0, requester is 1");
    }

    #[test]
    fn local_home_costs_no_hops() {
        let mut d = dir();
        let line = 32; // home = proc 1
        let out = d.act(1, line, false);
        assert_eq!(out.hops, 0);
    }

    #[test]
    fn second_reader_downgrades_the_owner() {
        let mut d = dir();
        let line = 0x8000_0000;
        d.act(1, line, false); // exclusive at 1
        let out = d.act(2, line, false);
        assert_eq!(out.downgraded, Some(1));
        assert_eq!(d.protection(1, line), LineState::ReadOnly);
        assert_eq!(d.protection(2, line), LineState::ReadOnly);
        assert_eq!(out.hops, 3, "request + reply + downgrade hop");
    }

    #[test]
    fn writer_invalidates_all_sharers() {
        let mut d = dir();
        let line = 0x8000_0000;
        d.act(1, line, false);
        d.act(2, line, false);
        d.act(3, line, false);
        let out = d.act(0, line, true);
        assert!(out.invalidated.contains(1));
        assert!(out.invalidated.contains(2));
        assert!(out.invalidated.contains(3));
        assert_eq!(d.protection(0, line), LineState::ReadWrite);
        assert_eq!(d.protection(1, line), LineState::Invalid);
        assert_eq!(out.hops, 1, "home is proc 0 (local) + sharer hop");
    }

    #[test]
    fn writer_upgrade_from_shared_keeps_own_copy() {
        let mut d = dir();
        let line = 0x8000_0000;
        d.act(1, line, false);
        d.act(2, line, false); // 1 and 2 share
        let out = d.act(1, line, true);
        assert!(out.invalidated.contains(2));
        assert!(!out.invalidated.contains(1));
        assert_eq!(d.protection(1, line), LineState::ReadWrite);
    }

    #[test]
    fn readonly_page_tracking() {
        let mut d = dir();
        let line_a = 0x8000_0000;
        let line_b = 0x8000_0020; // same 4 KB page
        assert!(!d.page_has_readonly(2, line_a));
        d.act(1, line_a, false);
        d.act(2, line_a, false); // both downgraded to READONLY
        assert!(d.page_has_readonly(2, line_b), "page-level property");
        // Writing upgrades proc 2 and invalidates proc 1.
        d.act(2, line_a, true);
        assert!(!d.page_has_readonly(2, line_b));
        assert!(!d.page_has_readonly(1, line_b));
    }

    #[test]
    fn invariants_hold_through_a_protocol_exercise() {
        let mut d = dir();
        let line = 0x8000_0000;
        for (p, w) in [(1, false), (2, false), (0, true), (3, false), (3, true), (1, false)] {
            d.act(p, line, w);
            d.check_invariants().expect("invariants after every action");
        }
    }

    #[test]
    fn describe_names_owner_and_sharers() {
        let mut d = dir();
        let line = 0x8000_0000;
        d.act(1, line, true);
        let s = d.describe(line);
        assert!(s.contains("Exclusive(1)"), "{s}");
        assert!(s.contains("p1=ReadWrite"), "{s}");
        assert!(d.describe(0xdead_0000).contains("uncached"));
    }

    #[test]
    fn vec16_basics() {
        let mut v = Vec16::new();
        assert!(v.is_empty());
        v.insert(3);
        v.insert(9);
        assert_eq!(v.len(), 2);
        assert!(v.contains(3));
        v.remove(3);
        assert!(!v.contains(3));
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![9]);
    }
}
