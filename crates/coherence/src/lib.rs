//! # Cache coherence with fine-grained access control (§4.3)
//!
//! The paper's case study: enforcing cache coherence for parallel programs
//! with *fine-grained access control*, comparing three software schemes that
//! need no specialised coherence hardware:
//!
//! * **Reference checking** (Blizzard-S-like) — every potentially-shared
//!   reference executes an inline protection lookup (18 cycles; Table 2).
//! * **ECC faults** (Blizzard-E-like) — invalid blocks are poisoned with bad
//!   ECC; reads to them fault (250 cycles), and writes to any block on a
//!   page containing READONLY data pay the page-protection cost (230
//!   cycles). Valid accesses are free.
//! * **Informing memory operations** — the protection lookup runs in the
//!   cache-miss handler (33 cycles: 6-cycle pipeline delay + 9 handler
//!   cycles + lookup), so it is paid *only on primary misses*; invalid
//!   blocks are evicted from the cache so that accessing them always
//!   misses, and a store to a block held without write permission is a
//!   write miss and likewise informs.
//!
//! The simulator is event-driven at the reference level (the paper used the
//! TangoLite direct-execution simulator for the same reason: the detailed
//! pipeline models are too slow for 16-processor runs). Protocol state
//! changes are applied atomically at the home node while their latency is
//! charged to the requesting processor — remote protocol operations use
//! user-level DMA and never interrupt the remote processor, as in the paper.
//!
//! ## Resilience
//!
//! The protocol runs over an *unreliable* interconnect when driven by an
//! [`imo_faults::FaultPlan`] ([`simulate_faulty`]): directory requests can be
//! dropped, duplicated or delayed per the plan's deterministic schedule. Lost
//! requests time out and are re-sent under a capped exponential
//! [`BackoffPolicy`]; duplicates are NACKed at the home; recalled lines can
//! suffer ECC faults (single-bit corrected, double-bit refetched from
//! memory). [`SimLimits`] bounds every run — an event budget, a per-request
//! retry cap and a forward-progress watchdog turn pathological schedules into
//! typed [`SimError`]s instead of hangs, and deadlock reports carry a
//! [`ProgressSnapshot`] of the stuck line's ownership.
//!
//! ## Example
//!
//! ```
//! use imo_coherence::{simulate, MachineParams, Scheme};
//! use imo_workloads::parallel::{migratory, TraceConfig};
//!
//! let trace = migratory(&TraceConfig { procs: 4, ops_per_proc: 500, seed: 1 });
//! let params = MachineParams::table2();
//! let inf = simulate(&trace, Scheme::Informing, &params).expect("within limits");
//! let ecc = simulate(&trace, Scheme::Ecc, &params).expect("within limits");
//! assert!(inf.total_cycles < ecc.total_cycles); // write-heavy: ECC pays page faults
//! ```
//!
//! Injecting faults (deterministic per seed):
//!
//! ```
//! use imo_coherence::{simulate_faulty, MachineParams, Scheme};
//! use imo_faults::{FaultConfig, FaultPlan};
//! use imo_workloads::parallel::{migratory, TraceConfig};
//!
//! let trace = migratory(&TraceConfig { procs: 4, ops_per_proc: 500, seed: 1 });
//! let mut cfg = FaultConfig::none(7);
//! cfg.drop_rate = 0.05;
//! let r = simulate_faulty(&trace, Scheme::Informing, &MachineParams::table2(),
//!                         &FaultPlan::new(cfg)).expect("recovers via retry");
//! assert_eq!(r.retries, r.dropped_msgs); // every loss was retried
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod config;
pub mod error;
pub mod protocol;
pub mod sim;
pub mod snap;

pub use config::{BackoffPolicy, MachineParams, Scheme, SchemeCosts, SimLimits};
pub use error::{ProgressSnapshot, SimError};
pub use protocol::{Directory, LineState};
pub use sim::{
    simulate, simulate_baseline, simulate_faulty, simulate_faulty_full, simulate_observed,
    SimResult,
};
pub use snap::{CohCheckpoint, CohOutcome, CohSession};
